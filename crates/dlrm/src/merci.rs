//! MERCI sub-query memoization (Lee et al., ASPLOS'21; Sec. VI-D).
//!
//! MERCI clusters correlated items and memoizes the partial sums of item
//! groups that co-occur. We implement the pair-clustered form: items `2p`
//! and `2p+1` form cluster `p`; memoization tables sized at 0.25× the
//! embedding table hold the precomputed sums of the *hottest quarter* of
//! pairs (our Zipf samplers make low ids hot, so that is simply
//! `p < rows/4`). A reduction plan replaces every memoized co-occurring
//! pair with a single memo-table read — fewer memory accesses for the same
//! mathematical result.

use rambda_workloads::{DlrmProfile, DlrmQuery, Zipf};

use rambda_des::SimRng;

use crate::model::EmbeddingTable;
#[cfg(test)]
use crate::model::ReduceOp;

/// The memoization table: precomputed sums for pairs `p < memo_pairs`.
#[derive(Debug, Clone)]
pub struct MemoTable {
    memo_pairs: u32,
    entries: Vec<Vec<f32>>,
}

impl MemoTable {
    /// Builds the memo table over the hottest quarter of pairs, giving a
    /// memory footprint of 0.25× the embedding table.
    pub fn build(table: &EmbeddingTable) -> Self {
        let pairs = (table.len() / 2) as u32;
        let memo_pairs = (table.len() / 4) as u32;
        let entries = (0..memo_pairs.min(pairs))
            .map(|p| {
                let a = table.row(2 * p);
                let b = table.row(2 * p + 1);
                a.iter().zip(b).map(|(x, y)| x + y).collect()
            })
            .collect();
        MemoTable { memo_pairs, entries }
    }

    /// Number of memoized pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pairs are memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Memory footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len() as u64 * 4).sum()
    }

    /// Whether pair `p` is memoized.
    pub fn covers(&self, pair: u32) -> bool {
        pair < self.memo_pairs
    }

    /// The memoized sum of pair `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not covered.
    pub fn entry(&self, pair: u32) -> &[f32] {
        &self.entries[pair as usize]
    }
}

/// The lookup plan for one query: which pairs come from the memo table and
/// which rows are read individually.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionPlan {
    /// Memoized pair reads.
    pub memo_pairs: Vec<u32>,
    /// Individual row reads.
    pub singles: Vec<u32>,
}

impl ReductionPlan {
    /// Builds the plan: co-occurring memoized pairs collapse to one read.
    pub fn build(query: &DlrmQuery, memo: &MemoTable) -> Self {
        let mut memo_pairs = Vec::new();
        let mut singles = Vec::new();
        let mut sorted = query.features.clone();
        sorted.sort_unstable();
        let mut i = 0;
        while i < sorted.len() {
            let f = sorted[i];
            let pair = f / 2;
            if i + 1 < sorted.len() && sorted[i + 1] == f + 1 && f.is_multiple_of(2) && memo.covers(pair) {
                memo_pairs.push(pair);
                i += 2;
            } else {
                singles.push(f);
                i += 1;
            }
        }
        ReductionPlan { memo_pairs, singles }
    }

    /// Memory lookups this plan performs.
    pub fn lookups(&self) -> usize {
        self.memo_pairs.len() + self.singles.len()
    }

    /// Base lookups the naive reduction would perform.
    pub fn base_lookups(&self) -> usize {
        self.memo_pairs.len() * 2 + self.singles.len()
    }

    /// Fraction of base lookups absorbed by memoization.
    pub fn memo_fraction(&self) -> f64 {
        let base = self.base_lookups();
        if base == 0 {
            0.0
        } else {
            (self.memo_pairs.len() * 2) as f64 / base as f64
        }
    }

    /// Executes the plan (sum reduction).
    ///
    /// # Panics
    ///
    /// Panics on an empty plan.
    pub fn reduce(&self, table: &EmbeddingTable, memo: &MemoTable) -> Vec<f32> {
        assert!(self.lookups() > 0, "cannot reduce an empty plan");
        let dim = table.dim();
        let mut acc = vec![0.0f32; dim];
        for &p in &self.memo_pairs {
            for (a, v) in acc.iter_mut().zip(memo.entry(p)) {
                *a += v;
            }
        }
        for &f in &self.singles {
            for (a, v) in acc.iter_mut().zip(table.row(f)) {
                *a += v;
            }
        }
        acc
    }
}

/// Samples a query with MERCI-style pair co-occurrence: pair ids follow the
/// profile's Zipf skew; each sampled pair emits both members with
/// probability [`co_occur`](DlrmProfile::co_occur), else one.
pub fn sample_correlated_query(
    profile: &DlrmProfile,
    functional_rows: u32,
    pair_zipf: &Zipf,
    rng: &mut SimRng,
) -> DlrmQuery {
    debug_assert_eq!(pair_zipf.n(), functional_rows as u64 / 2);
    let p = 1.0 / (profile.mean_features / 2.0).max(1.0);
    let mut features = Vec::new();
    loop {
        let pair = pair_zipf.sample(rng) as u32;
        if rng.chance(profile.co_occur) {
            features.push(2 * pair);
            features.push(2 * pair + 1);
        } else if rng.chance(0.5) {
            features.push(2 * pair);
        } else {
            features.push(2 * pair + 1);
        }
        if rng.chance(p) || features.len() >= 512 {
            break;
        }
    }
    DlrmQuery { features }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EmbeddingTable, MemoTable) {
        let table = EmbeddingTable::synthetic(1000, 16);
        let memo = MemoTable::build(&table);
        (table, memo)
    }

    #[test]
    fn memo_table_is_quarter_sized() {
        let (table, memo) = setup();
        assert_eq!(memo.len(), 250);
        assert_eq!(memo.bytes() * 4, table.len() as u64 * table.row_bytes());
    }

    #[test]
    fn memo_entries_are_pair_sums() {
        let (table, memo) = setup();
        let e = memo.entry(3);
        for (c, &got) in e.iter().enumerate() {
            let want = table.row(6)[c] + table.row(7)[c];
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn plan_collapses_covered_pairs_only() {
        let (_, memo) = setup();
        // 10,11 = pair 5 (covered); 800,801 = pair 400 (not covered);
        // 20 alone.
        let q = DlrmQuery { features: vec![11, 800, 20, 10, 801] };
        let plan = ReductionPlan::build(&q, &memo);
        assert_eq!(plan.memo_pairs, vec![5]);
        let mut singles = plan.singles.clone();
        singles.sort_unstable();
        assert_eq!(singles, vec![20, 800, 801]);
        assert_eq!(plan.lookups(), 4);
        assert_eq!(plan.base_lookups(), 5);
        assert!((plan.memo_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn odd_even_boundary_pairs_do_not_collapse() {
        let (_, memo) = setup();
        // 11,12 are adjacent ids but belong to different pairs.
        let q = DlrmQuery { features: vec![11, 12] };
        let plan = ReductionPlan::build(&q, &memo);
        assert!(plan.memo_pairs.is_empty());
        assert_eq!(plan.singles.len(), 2);
    }

    #[test]
    fn memoized_reduce_equals_naive_reduce() {
        let (table, memo) = setup();
        let q = DlrmQuery { features: vec![0, 1, 2, 3, 7, 500, 501, 999] };
        let plan = ReductionPlan::build(&q, &memo);
        assert!(plan.lookups() < q.len());
        let fast = plan.reduce(&table, &memo);
        let naive = table.reduce(&q.features, ReduceOp::Sum);
        for (a, b) in fast.iter().zip(&naive) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn correlated_queries_hit_the_memo() {
        let profile = DlrmProfile::by_name("Books").unwrap();
        let rows = 10_000u32;
        let pair_zipf = Zipf::new(rows as u64 / 2, profile.zipf_theta);
        let (_, memo) = {
            let t = EmbeddingTable::synthetic(rows as usize, 8);
            let m = MemoTable::build(&t);
            (t, m)
        };
        let mut rng = SimRng::seed(11);
        let mut base = 0usize;
        let mut memoized = 0usize;
        let mut lens = 0usize;
        let n = 500;
        for _ in 0..n {
            let q = sample_correlated_query(&profile, rows, &pair_zipf, &mut rng);
            lens += q.len();
            let plan = ReductionPlan::build(&q, &memo);
            base += plan.base_lookups();
            memoized += plan.memo_pairs.len() * 2;
        }
        let frac = memoized as f64 / base as f64;
        // Books targets ~0.55 memoized lookups; the emergent rate should be
        // in the neighbourhood.
        assert!((0.35..0.75).contains(&frac), "memo fraction={frac}");
        let mean_len = lens as f64 / n as f64;
        let rel = (mean_len - profile.mean_features).abs() / profile.mean_features;
        assert!(rel < 0.25, "mean query length {mean_len}");
    }
}
