//! A small, dependency-free Rust lexer.
//!
//! The analyzer's rules must never fire on text inside a string literal or a
//! comment ("`HashMap` is banned" in a doc comment is not a violation), so a
//! regex over raw source is not good enough. This lexer understands exactly
//! as much Rust surface syntax as the rules need:
//!
//! * line comments (`//`), doc comments (`///`, `//!`) and nested block
//!   comments (`/* /* */ */`, `/** */`, `/*! */`),
//! * string, byte-string, C-string and raw (`r#"..."#`) string literals,
//! * character literals vs. lifetimes (`'a'` vs `'a`),
//! * raw identifiers (`r#match`),
//! * identifiers, numbers and single-character punctuation.
//!
//! Every token carries the 1-based line it starts on so diagnostics can say
//! `file:line`. Comments are *kept* in the stream (with their text): the
//! `// SAFETY:` rule and the missing-docs rule need them.

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `pub`, `r#match`, ...).
    Ident(String),
    /// A single punctuation character (`:`, `#`, `[`, `{`, ...).
    Punct(char),
    /// A plain `//` comment (text excludes the leading slashes).
    LineComment(String),
    /// A `///` (outer) or `//!` (inner) doc comment.
    DocComment {
        /// `true` for `//!` / `/*! ... */` (inner), `false` for `///`.
        inner: bool,
        /// The comment text without the comment markers.
        text: String,
    },
    /// A `/* ... */` comment (text excludes the delimiters).
    BlockComment(String),
    /// A string / byte-string / raw-string literal. The contents are
    /// retained (escapes resolved to the escaped character, raw-string
    /// bodies verbatim) so cross-file rules can reason about counter names
    /// and format strings; rules that only care about code ignore them.
    StrLit(String),
    /// A character or byte literal (`'a'`, `b'\n'`).
    CharLit,
    /// A lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime(String),
    /// A numeric literal.
    Number,
}

/// One token plus source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based line the token ends on (differs for multi-line comments and
    /// strings).
    pub end_line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is a comment of any flavor (line, block or doc).
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment(_) | TokenKind::BlockComment(_) | TokenKind::DocComment { .. }
        )
    }

    /// The comment text, if this token is a comment of any flavor.
    pub fn comment_text(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::LineComment(t) | TokenKind::BlockComment(t) => Some(t),
            TokenKind::DocComment { text, .. } => Some(text),
            _ => None,
        }
    }

    /// The literal contents, if this token is a string literal.
    pub fn str_text(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::StrLit(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Lexes `source` into a token stream. Never fails: unrecognized bytes are
/// skipped (the analyzer only cares about the constructs it knows).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer { chars: source.chars().collect(), pos: 0, line: 1 }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while let Some(c) = self.peek(0) {
            let start = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => out.push(self.line_comment(start)),
                '/' if self.peek(1) == Some('*') => out.push(self.block_comment(start)),
                '"' => {
                    let text = self.string_lit();
                    out.push(self.token(TokenKind::StrLit(text), start));
                }
                '\'' => out.push(self.char_or_lifetime(start)),
                'r' if self.raw_string_ahead(0) => {
                    let text = self.raw_string();
                    out.push(self.token(TokenKind::StrLit(text), start));
                }
                'b' | 'c' if self.peek(1) == Some('"') => {
                    self.bump(); // prefix
                    let text = self.string_lit();
                    out.push(self.token(TokenKind::StrLit(text), start));
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump(); // prefix
                    self.bump(); // opening quote
                    self.char_body();
                    out.push(self.token(TokenKind::CharLit, start));
                }
                'b' | 'c' if self.peek(1) == Some('r') && self.raw_string_ahead(1) => {
                    self.bump(); // prefix
                    let text = self.raw_string();
                    out.push(self.token(TokenKind::StrLit(text), start));
                }
                'r' if self.peek(1) == Some('#') && ident_start(self.peek(2)) => {
                    // Raw identifier r#match.
                    self.bump();
                    self.bump();
                    let name = self.ident_body();
                    out.push(self.token(TokenKind::Ident(name), start));
                }
                c if ident_start(Some(c)) => {
                    let name = self.ident_body();
                    out.push(self.token(TokenKind::Ident(name), start));
                }
                c if c.is_ascii_digit() => {
                    self.number_body();
                    out.push(self.token(TokenKind::Number, start));
                }
                c => {
                    self.bump();
                    out.push(self.token(TokenKind::Punct(c), start));
                }
            }
        }
        out
    }

    fn token(&self, kind: TokenKind, start: u32) -> Token {
        Token { kind, line: start, end_line: self.line }
    }

    /// `r"`, `r#"`, `r##"` ... at `self.pos + offset` (pointing at the `r`)?
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset + 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        i > offset && self.peek(i) == Some('"')
    }

    /// Consumes a raw string starting at the `r` (possibly after a consumed
    /// `b`/`c` prefix), returning the body verbatim. A `"` followed by fewer
    /// `#` than the opener is part of the body, not a terminator.
    fn raw_string(&mut self) -> String {
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                None => return text, // unterminated; tolerate
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        return text;
                    }
                    // Partial terminator: the quote and the hashes we just
                    // consumed belong to the body.
                    text.push('"');
                    for _ in 0..seen {
                        text.push('#');
                    }
                }
                Some(c) => text.push(c),
            }
        }
    }

    /// Consumes a `"..."` literal including escapes; `pos` is at the opening
    /// quote. Escape sequences contribute the escaped character (`\"` → `"`,
    /// `\\` → `\`); other escapes keep the char after the backslash, which
    /// is enough for the rules, none of which inspect control characters.
    fn string_lit(&mut self) -> String {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                None | Some('"') => return text,
                Some('\\') => {
                    if let Some(c) = self.bump() {
                        text.push(c); // including \" and \\
                    }
                }
                Some(c) => text.push(c),
            }
        }
    }

    /// Consumes a char-literal body after the opening quote (escape-aware),
    /// through the closing quote.
    fn char_body(&mut self) {
        loop {
            match self.bump() {
                None | Some('\'') => return,
                Some('\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self, start: u32) -> Token {
        // A lifetime is `'` + ident-start + ident-continue* not followed by a
        // closing `'`. Everything else (`'x'`, `'\n'`, `'\u{1F600}'`) is a
        // char literal.
        if ident_start(self.peek(1)) {
            // Find where the identifier run ends.
            let mut i = 2;
            while ident_continue(self.peek(i)) {
                i += 1;
            }
            if self.peek(i) != Some('\'') {
                self.bump(); // the quote
                let name = self.ident_body();
                return self.token(TokenKind::Lifetime(name), start);
            }
        }
        self.bump(); // the quote
        self.char_body();
        self.token(TokenKind::CharLit, start)
    }

    fn ident_body(&mut self) -> String {
        let mut s = String::new();
        while ident_continue(self.peek(0)) {
            s.push(self.bump().unwrap());
        }
        s
    }

    fn number_body(&mut self) {
        // Numbers never matter to the rules; consume a permissive token run
        // (covers 0xFF_u64, 1.5e-3, 1_000).
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                // Don't swallow a range `0..x` or a method call `1.max(2)`.
                if c == '.'
                    && (self.peek(1) == Some('.') || ident_start(self.peek(1)) || self.peek(1).is_none())
                {
                    break;
                }
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(self.chars.get(self.pos.wrapping_sub(1)), Some('e') | Some('E'))
            {
                self.bump(); // exponent sign in 1.5e-3
            } else {
                break;
            }
        }
    }

    fn line_comment(&mut self, start: u32) -> Token {
        self.bump();
        self.bump(); // the two slashes
        let (inner, doc) = match self.peek(0) {
            Some('/') if self.peek(1) != Some('/') => {
                self.bump();
                (false, true)
            }
            Some('!') => {
                self.bump();
                (true, true)
            }
            _ => (false, false),
        };
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(self.bump().unwrap());
        }
        let kind = if doc { TokenKind::DocComment { inner, text } } else { TokenKind::LineComment(text) };
        self.token(kind, start)
    }

    fn block_comment(&mut self, start: u32) -> Token {
        self.bump();
        self.bump(); // "/*"
        let (inner, doc) = match self.peek(0) {
            // `/**/` is not a doc comment; `/**x` is.
            Some('*') if self.peek(1) != Some('/') && self.peek(1) != Some('*') => {
                self.bump();
                (false, true)
            }
            Some('!') => {
                self.bump();
                (true, true)
            }
            _ => (false, false),
        };
        let mut text = String::new();
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                None => break, // unterminated; tolerate
                Some('/') if self.peek(0) == Some('*') => {
                    self.bump();
                    depth += 1;
                    text.push_str("/*");
                }
                Some('*') if self.peek(0) == Some('/') => {
                    self.bump();
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                Some(c) => text.push(c),
            }
        }
        let kind = if doc { TokenKind::DocComment { inner, text } } else { TokenKind::BlockComment(text) };
        self.token(kind, start)
    }
}

fn ident_start(c: Option<char>) -> bool {
    matches!(c, Some(c) if c.is_alphabetic() || c == '_')
}

fn ident_continue(c: Option<char>) -> bool {
    matches!(c, Some(c) if c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter_map(|t| t.ident().map(str::to_owned)).collect()
    }

    #[test]
    fn identifiers_and_lines() {
        let toks = lex("use std::collections::HashMap;\nlet x = 1;");
        let hm = toks.iter().find(|t| t.ident() == Some("HashMap")).unwrap();
        assert_eq!(hm.line, 1);
        let x = toks.iter().find(|t| t.ident() == Some("x")).unwrap();
        assert_eq!(x.line, 2);
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let s = "HashMap inside a string";"#), vec!["let", "s"]);
        assert_eq!(idents(r##"let s = r#"raw HashMap "quoted" inside"#;"##), vec!["let", "s"]);
        assert_eq!(idents(r#"let s = "escaped \" HashMap";"#), vec!["let", "s"]);
        assert_eq!(idents(r#"let s = b"HashMap bytes";"#), vec!["let", "s"]);
    }

    #[test]
    fn comments_hide_identifiers_but_keep_text() {
        let toks = lex("// HashMap in a comment\nfn f() {}");
        assert!(toks.iter().all(|t| t.ident() != Some("HashMap")));
        assert!(toks[0].comment_text().unwrap().contains("HashMap"));
        let toks = lex("/* outer /* nested HashMap */ still comment */ fn g() {}");
        assert_eq!(
            toks.iter().filter_map(|t| t.ident()).collect::<Vec<_>>(),
            vec!["fn", "g"],
            "nested block comments must be fully consumed"
        );
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let toks = lex("/// outer doc\n//! inner doc\n// plain\nfn f() {}");
        assert!(matches!(&toks[0].kind, TokenKind::DocComment { inner: false, .. }));
        assert!(matches!(&toks[1].kind, TokenKind::DocComment { inner: true, .. }));
        assert!(matches!(&toks[2].kind, TokenKind::LineComment(_)));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("let c: char = 'a'; fn f<'a>(x: &'a str) {} let n = '\\n';");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Lifetime(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::CharLit).count(), 2);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = lex("for i in 0..10 { let x = 1.max(2); }");
        assert!(toks.iter().any(|t| t.ident() == Some("max")));
        assert_eq!(toks.iter().filter(|t| t.is_punct('.')).count(), 3); // `..` + method dot
    }

    fn strings(src: &str) -> Vec<String> {
        lex(src).into_iter().filter_map(|t| t.str_text().map(str::to_owned)).collect()
    }

    #[test]
    fn string_contents_are_retained() {
        assert_eq!(strings(r#"m.set(&format!("{prefix}.doorbells"), v);"#), vec!["{prefix}.doorbells"]);
        assert_eq!(strings(r#"let s = "escaped \" quote";"#), vec![r#"escaped " quote"#]);
        assert_eq!(strings(r#"let s = "back\\slash";"#), vec![r"back\slash"]);
    }

    #[test]
    fn raw_strings_with_multiple_hashes() {
        // A `"#` inside an `r##"..."##` body is content, not a terminator,
        // and nothing after it may leak out as code tokens.
        assert_eq!(strings(r###"let s = r##"quote "# inside"##;"###), vec![r##"quote "# inside"##]);
        assert_eq!(idents(r###"let s = r##"HashMap "# fake"##;"###), vec!["let", "s"]);
        // Zero-hash raw strings terminate at the first quote.
        assert_eq!(strings(r#"let s = r"plain \ raw";"#), vec![r"plain \ raw"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(strings(r#"let b = b"bytes";"#), vec!["bytes"]);
        assert_eq!(strings(r##"let b = br#"raw "quoted" bytes"#;"##), vec![r#"raw "quoted" bytes"#]);
        // `br`/`cr` prefixes only fire on actual raw strings: `break` and a
        // plain `cr` identifier lex as identifiers.
        assert_eq!(idents("break; let cr = 1;"), vec!["break", "let", "cr"]);
        // A byte char with a quote inside does not open a string.
        assert_eq!(idents(r#"let q = b'"'; fn after() {}"#), vec!["let", "q", "fn", "after"]);
    }

    #[test]
    fn deeply_nested_block_comments() {
        let toks = lex("/* 1 /* 2 /* 3 HashMap */ 2 */ 1 */ fn f() {}");
        assert_eq!(toks.iter().filter_map(|t| t.ident()).collect::<Vec<_>>(), vec!["fn", "f"]);
        // Unterminated nesting is tolerated and swallows the rest.
        let toks = lex("/* open /* still open */ fn g() {}");
        assert!(toks.iter().all(|t| t.ident().is_none()));
    }

    #[test]
    fn multiline_strings_track_end_lines() {
        let toks = lex("let s = \"line one\nline two\";\nfn f() {}");
        let lit = toks.iter().find(|t| t.str_text().is_some()).unwrap();
        assert_eq!((lit.line, lit.end_line), (1, 2));
        assert_eq!(toks.iter().find(|t| t.ident() == Some("fn")).unwrap().line, 3);
    }

    #[test]
    fn safety_comment_text_is_preserved() {
        let toks = lex("// SAFETY: exclusive access\nunsafe { work() }");
        assert!(toks[0].comment_text().unwrap().contains("SAFETY:"));
        assert!(toks.iter().any(|t| t.ident() == Some("unsafe")));
    }
}
