//! A deterministic periodic sampling clock.
//!
//! Time-series observability (queue depths, link utilization, outstanding
//! requests) needs samples on a grid that is a pure function of simulated
//! time — never of host wall-clock or event arrival jitter — so repeated
//! seeded runs produce byte-identical traces. [`SampleClock`] anchors that
//! grid at the epoch: the `k`-th tick falls exactly at `k * interval`.

use crate::time::{SimTime, Span};

/// Fires at most once per `interval`, on instants that are exact multiples
/// of the interval.
///
/// The clock is driven by the (non-decreasing) event times a simulation
/// already visits: call [`SampleClock::due`] with the current time and
/// sample when it returns a tick. If the simulation skips several grid
/// points between events, only the latest one fires — flight-recorder
/// semantics; missed ticks are not backfilled.
///
/// ```
/// use rambda_des::{SampleClock, SimTime, Span};
/// let mut clock = SampleClock::new(Span::from_us(10));
/// assert_eq!(clock.due(SimTime::from_us(3)), None);
/// assert_eq!(clock.due(SimTime::from_us(12)), Some(SimTime::from_us(10)));
/// assert_eq!(clock.due(SimTime::from_us(14)), None);
/// // A long gap fires once, at the latest elapsed grid point.
/// assert_eq!(clock.due(SimTime::from_us(57)), Some(SimTime::from_us(50)));
/// ```
#[derive(Debug, Clone)]
pub struct SampleClock {
    interval: Span,
    next: SimTime,
}

impl SampleClock {
    /// Creates a clock ticking every `interval`, first due at `interval`
    /// (the epoch itself is skipped: every cumulative counter is zero there).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: Span) -> Self {
        assert!(interval > Span::ZERO, "sample interval must be positive");
        SampleClock { interval, next: SimTime::ZERO + interval }
    }

    /// The sampling interval.
    pub fn interval(&self) -> Span {
        self.interval
    }

    /// If at least one grid point has elapsed by `now`, returns the latest
    /// one and arms the clock for the following interval.
    pub fn due(&mut self, now: SimTime) -> Option<SimTime> {
        if now < self.next {
            return None;
        }
        let step = self.interval.as_ps();
        let tick = SimTime::from_ps(now.as_ps() / step * step);
        self.next = tick + self.interval;
        Some(tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_never_fires() {
        let mut c = SampleClock::new(Span::from_us(5));
        assert_eq!(c.due(SimTime::ZERO), None);
    }

    #[test]
    fn ticks_land_on_the_grid() {
        let mut c = SampleClock::new(Span::from_us(5));
        let mut ticks = Vec::new();
        for us in 0..40 {
            if let Some(t) = c.due(SimTime::from_us(us)) {
                ticks.push(t.as_ps());
            }
        }
        let expect: Vec<u64> = (1..8).map(|k| SimTime::from_us(5 * k).as_ps()).collect();
        assert_eq!(ticks, expect);
    }

    #[test]
    fn gaps_fire_once_at_the_latest_grid_point() {
        let mut c = SampleClock::new(Span::from_us(10));
        assert_eq!(c.due(SimTime::from_us(95)), Some(SimTime::from_us(90)));
        assert_eq!(c.due(SimTime::from_us(99)), None);
        assert_eq!(c.due(SimTime::from_us(100)), Some(SimTime::from_us(100)));
    }

    #[test]
    fn exact_boundary_fires() {
        let mut c = SampleClock::new(Span::from_us(10));
        assert_eq!(c.due(SimTime::from_us(10)), Some(SimTime::from_us(10)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        SampleClock::new(Span::ZERO);
    }

    #[test]
    fn zero_duration_run_never_fires() {
        // A run whose makespan is the epoch visits only t = 0: the clock
        // must stay silent no matter how often it is polled there.
        let mut c = SampleClock::new(Span::from_us(10));
        for _ in 0..3 {
            assert_eq!(c.due(SimTime::ZERO), None);
        }
    }

    #[test]
    fn tick_exactly_on_makespan_fires_once_and_only_once() {
        // The last event of a run landing exactly on a grid point must
        // yield that grid point — and re-polling the same instant (e.g. a
        // final flush at the makespan) must not double-fire.
        let mut c = SampleClock::new(Span::from_us(10));
        let makespan = SimTime::from_us(30);
        assert_eq!(c.due(SimTime::from_us(12)), Some(SimTime::from_us(10)));
        assert_eq!(c.due(makespan), Some(makespan));
        assert_eq!(c.due(makespan), None);
    }

    #[test]
    fn interval_longer_than_the_whole_run_never_fires() {
        // Short runs with a coarse grid produce zero ticks; windowed
        // consumers must cope with an empty sample series (the timeline
        // then attributes all activity to its single window).
        let mut c = SampleClock::new(Span::from_ms(1));
        for us in [0u64, 3, 250, 999] {
            assert_eq!(c.due(SimTime::from_us(us)), None, "at {us} µs");
        }
        // At the next grid point it would have fired — showing the silence
        // above was the grid, not a stuck clock.
        assert_eq!(c.due(SimTime::from_us(1_000)), Some(SimTime::from_us(1_000)));
    }
}
