//! The analyzer's rule engine.
//!
//! Six rules, each enforcing one repo invariant (DESIGN.md §8):
//!
//! * **R1** — no `HashMap`/`HashSet` in simulation crates: their iteration
//!   order is randomized per process and can leak into event ordering and
//!   run reports. Use `BTreeMap`/`BTreeSet` or the sorted-iteration
//!   `rambda_des::DetHashMap` wrapper (xtask doesn't link the simulation
//!   crates, so no intra-doc link here).
//! * **R2** — no wall-clock (`std::time::Instant` / `SystemTime`), no
//!   `thread::spawn`, no `std::env` / `std::fs` access in simulation crates:
//!   a simulation is a pure function of its config and seed.
//! * **R3** — `unsafe` is confined to the ring crate; every `unsafe` there
//!   is preceded by a `// SAFETY:` comment; every other crate's `lib.rs`
//!   carries `#![forbid(unsafe_code)]`; the ring crate's `lib.rs` carries
//!   `#![deny(unsafe_op_in_unsafe_fn)]`.
//! * **R4** — every `pub` item in the foundation crates (`des`, `metrics`,
//!   `trace`) has a doc comment.
//! * **R5** — no `println!` / `eprintln!` (nor `print!` / `eprint!`)
//!   outside driver binaries: a simulation reports through `RunReport` and
//!   the flight recorder, never by writing to the terminal mid-run.
//! * **R6** — every `#[deprecated]` runner shim carries a
//!   `note = "use SimBuilder ..."` pointing callers at the replacement,
//!   and no in-tree code outside the shim's own file still calls a
//!   deprecated runner: the old `run_*_report` entry points exist only for
//!   downstream compatibility, never for new call sites.
//!
//! R1, R2, R4 and R5 skip `#[cfg(test)]` modules: a test may model against
//! a `HashMap`, spawn threads, or print diagnostics without affecting
//! simulation output. R1, R2 and R5 also skip `src/bin/` targets — a
//! driver binary is ordinary host code that may read flags and write
//! files. R3 is enforced everywhere — undocumented `unsafe` in a test is
//! still a bug. R6 skips test modules and `use` statements (re-exporting a
//! shim keeps it reachable without endorsing it) and allows calls within
//! the defining file.
//!
//! Violations can be allowlisted in `xtask/analyze.allow`; stale entries
//! (matching nothing) are themselves errors so the file stays honest.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};

/// What the analyzer looks at and which crates each rule applies to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory containing `crates/`).
    pub root: PathBuf,
    /// Crate directory names (under `crates/`) holding simulation state;
    /// R1 and R2 apply here.
    pub sim_crates: Vec<String>,
    /// The single crate directory allowed to contain `unsafe` (R3).
    pub unsafe_crate: String,
    /// Crate directory names whose whole `pub` surface must be documented
    /// (R4).
    pub doc_crates: Vec<String>,
    /// Crate directory names allowed to print outside `src/bin/` targets
    /// (R5) — the table-rendering bench crate.
    pub print_crates: Vec<String>,
    /// Path to the allowlist file, relative to `root`.
    pub allowlist: PathBuf,
}

impl Config {
    /// The Rambda workspace configuration: every crate is a simulation
    /// crate except `ring` (real atomics, verified by the interleaving
    /// model in `crates/ring/src/model.rs` instead).
    pub fn rambda(root: PathBuf) -> Self {
        let sim = [
            "accel",
            "bench",
            "coherence",
            "core",
            "des",
            "dlrm",
            "fabric",
            "kvs",
            "mem",
            "metrics",
            "power",
            "rnic",
            "smartnic",
            "trace",
            "txn",
            "workloads",
        ];
        Config {
            root,
            sim_crates: sim.iter().map(|s| s.to_string()).collect(),
            unsafe_crate: "ring".to_string(),
            doc_crates: vec!["des".to_string(), "metrics".to_string(), "trace".to_string()],
            print_crates: vec!["bench".to_string()],
            allowlist: PathBuf::from("xtask/analyze.allow"),
        }
    }
}

/// One rule violation, pointing at `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`R1`..`R5`).
    pub rule: &'static str,
    /// Path relative to the workspace root, with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The offending token or construct (what allowlist entries match on).
    pub token: String,
    /// How to fix it.
    pub hint: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {} — {}", self.path, self.line, self.rule, self.token, self.hint)
    }
}

/// The outcome of one analyzer run.
#[derive(Debug)]
pub struct Analysis {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Violations covered by the allowlist (reported for transparency).
    pub allowed: Vec<Violation>,
    /// Allowlist entries that matched nothing (errors: delete them).
    pub stale_allows: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Whether the workspace is clean (no violations, no stale entries).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty()
    }
}

/// One parsed allowlist line: `rule path token-substring`.
#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path: String,
    token: String,
    raw: String,
    used: bool,
}

fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(token), None) => entries.push(AllowEntry {
                rule: rule.to_string(),
                path: path.to_string(),
                token: token.to_string(),
                raw: raw_line.trim().to_string(),
                used: false,
            }),
            _ => {
                return Err(format!(
                    "allowlist line {}: expected `RULE path token  # reason`, got `{raw_line}`",
                    lineno + 1
                ))
            }
        }
    }
    Ok(entries)
}

/// Runs every rule over `crates/*/src/**/*.rs` under `cfg.root` and applies
/// the allowlist.
///
/// # Errors
///
/// Returns an error if the workspace layout or the allowlist cannot be read.
pub fn analyze(cfg: &Config) -> io::Result<Analysis> {
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    let mut scanned: Vec<ScannedFile> = Vec::new();

    let crates_dir = cfg.root.join("crates");
    let mut crate_dirs: Vec<PathBuf> =
        fs::read_dir(&crates_dir)?.filter_map(|e| e.ok()).map(|e| e.path()).filter(|p| p.is_dir()).collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let crate_name = crate_dir.file_name().unwrap().to_string_lossy().to_string();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        let mut saw_lib_rs = false;
        for file in &files {
            files_scanned += 1;
            let rel = rel_path(&cfg.root, file);
            let source = fs::read_to_string(file)?;
            let tokens = lex(&source);
            let test_mask = mask_test_mods(&tokens);
            let is_lib_rs =
                file.file_name().is_some_and(|n| n == "lib.rs") && file.parent().is_some_and(|p| p == src);
            saw_lib_rs |= is_lib_rs;

            let is_bin = rel.contains("/src/bin/");
            if cfg.sim_crates.contains(&crate_name) && !is_bin {
                rule_r1(&rel, &tokens, &test_mask, &mut violations);
                rule_r2(&rel, &tokens, &test_mask, &mut violations);
            }
            rule_r3_file(cfg, &crate_name, &rel, is_lib_rs, &tokens, &mut violations);
            if cfg.doc_crates.contains(&crate_name) {
                rule_r4(&rel, &tokens, &test_mask, &mut violations);
            }
            if !cfg.print_crates.contains(&crate_name) && !is_bin {
                rule_r5(&rel, &tokens, &test_mask, &mut violations);
            }
            scanned.push(ScannedFile { rel, source, tokens, test_mask });
        }
        if !saw_lib_rs && !files.is_empty() {
            violations.push(Violation {
                rule: "R3",
                path: rel_path(&cfg.root, &src.join("lib.rs")),
                line: 1,
                token: "lib.rs".to_string(),
                hint: "crate has no src/lib.rs to carry its unsafe-code lint attribute".to_string(),
            });
        }
    }

    rule_r6(&scanned, &mut violations);

    // Apply the allowlist.
    let allow_path = cfg.root.join(&cfg.allowlist);
    let mut entries = match fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text).map_err(io::Error::other)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut kept = Vec::new();
    let mut allowed = Vec::new();
    for v in violations {
        let entry =
            entries.iter_mut().find(|a| a.rule == v.rule && a.path == v.path && v.token.contains(&a.token));
        match entry {
            Some(a) => {
                a.used = true;
                allowed.push(v);
            }
            None => kept.push(v),
        }
    }
    let stale_allows = entries.iter().filter(|a| !a.used).map(|a| a.raw.clone()).collect();
    Ok(Analysis { violations: kept, allowed, stale_allows, files_scanned })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Marks every token inside an item annotated `#[cfg(test)]` (almost always
/// a `mod tests { ... }` block).
fn mask_test_mods(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = cfg_test_attr_end(tokens, i) {
            // Mask the attribute and the item that follows: through the
            // matching close brace of its body, or a top-level `;`.
            let mut j = attr_end + 1;
            let mut depth = 0i32;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => {
                        depth -= 1;
                        if depth <= 0 {
                            break;
                        }
                    }
                    TokenKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let end = j.min(tokens.len().saturating_sub(1));
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If `tokens[i]` starts a `#[cfg(test)]`-containing attribute, returns the
/// index of its closing `]`.
fn cfg_test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens[i].is_punct('#') {
        return None;
    }
    let open = next_significant(tokens, i + 1)?;
    if !tokens[open].is_punct('[') {
        return None;
    }
    let mut depth = 0i32;
    let mut saw_cfg = false;
    let mut saw_test = false;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match &t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (saw_cfg && saw_test).then_some(j);
                }
            }
            TokenKind::Ident(s) if s == "cfg" => saw_cfg = true,
            TokenKind::Ident(s) if s == "test" => saw_test = true,
            _ => {}
        }
    }
    None
}

fn next_significant(tokens: &[Token], mut i: usize) -> Option<usize> {
    while i < tokens.len() {
        if !tokens[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// R1: banned hash collections in simulation crates.
fn rule_r1(path: &str, tokens: &[Token], test_mask: &[bool], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if test_mask[i] {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = t.ident() {
            out.push(Violation {
                rule: "R1",
                path: path.to_string(),
                line: t.line,
                token: name.to_string(),
                hint: format!(
                    "iteration order can leak into simulation state; use {} or rambda_des::{}",
                    if name == "HashMap" { "BTreeMap" } else { "BTreeSet" },
                    if name == "HashMap" { "DetHashMap" } else { "DetHashSet" },
                ),
            });
        }
    }
}

/// R2: wall-clock, threads and environment-dependent I/O in sim crates.
fn rule_r2(path: &str, tokens: &[Token], test_mask: &[bool], out: &mut Vec<Violation>) {
    // Single banned identifiers.
    for (i, t) in tokens.iter().enumerate() {
        if test_mask[i] {
            continue;
        }
        if let Some(name @ ("Instant" | "SystemTime")) = t.ident() {
            out.push(Violation {
                rule: "R2",
                path: path.to_string(),
                line: t.line,
                token: name.to_string(),
                hint: "wall-clock breaks seeded reproducibility; model time with rambda_des::SimTime"
                    .to_string(),
            });
        }
    }
    // Banned `a::b` paths (matched on significant tokens so whitespace and
    // comments between segments cannot hide them).
    let sig: Vec<(usize, &Token)> = tokens.iter().enumerate().filter(|(_, t)| !t.is_comment()).collect();
    let banned_paths: [(&str, &str, &str); 3] = [
        ("thread", "spawn", "real threads have no place inside a deterministic simulation"),
        ("std", "env", "environment access makes runs machine-dependent; pass configuration explicitly"),
        ("std", "fs", "filesystem access inside a simulation breaks reproducibility; do I/O in the driver"),
    ];
    for w in sig.windows(4) {
        let [(i0, a), (_, c1), (_, c2), (_, b)] = w else { continue };
        if test_mask[*i0] || !c1.is_punct(':') || !c2.is_punct(':') {
            continue;
        }
        for (first, second, why) in &banned_paths {
            if a.ident() == Some(first) && b.ident() == Some(second) {
                out.push(Violation {
                    rule: "R2",
                    path: path.to_string(),
                    line: a.line,
                    token: format!("{first}::{second}"),
                    hint: (*why).to_string(),
                });
            }
        }
    }
}

/// R5: print-family macros outside driver binaries and the bench crate.
fn rule_r5(path: &str, tokens: &[Token], test_mask: &[bool], out: &mut Vec<Violation>) {
    let sig: Vec<(usize, &Token)> = tokens.iter().enumerate().filter(|(_, t)| !t.is_comment()).collect();
    for w in sig.windows(2) {
        let [(i0, mac), (_, bang)] = w else { continue };
        if test_mask[*i0] || !bang.is_punct('!') {
            continue;
        }
        if let Some(name @ ("println" | "eprintln" | "print" | "eprint")) = mac.ident() {
            out.push(Violation {
                rule: "R5",
                path: path.to_string(),
                line: mac.line,
                token: format!("{name}!"),
                hint: "simulation crates stay silent; print from a src/bin driver or the bench tables"
                    .to_string(),
            });
        }
    }
}

/// One scanned source file, retained for the cross-file R6 pass.
struct ScannedFile {
    rel: String,
    source: String,
    tokens: Vec<Token>,
    test_mask: Vec<bool>,
}

/// Marks every token belonging to a `use ...;` item (including `pub use`):
/// re-exporting a deprecated shim keeps it reachable without endorsing it.
fn mask_use_statements(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() == Some("use") {
            while i < tokens.len() {
                mask[i] = true;
                if tokens[i].is_punct(';') {
                    break;
                }
                i += 1;
            }
        }
        i += 1;
    }
    mask
}

/// R6: deprecated runner shims point at `SimBuilder`, and nothing in-tree
/// outside a shim's own file still calls one.
///
/// Two passes. The first collects every `#[deprecated] pub fn` and checks
/// that the attribute's raw text contains `use SimBuilder` (the lexer
/// discards string-literal contents, so the note is checked against the
/// source lines of the attribute). The second flags any identifier use of a
/// collected name outside its defining file(s), skipping test modules and
/// `use` statements.
fn rule_r6(files: &[ScannedFile], out: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    // name -> files defining a deprecated fn of that name.
    let mut deprecated: BTreeMap<&str, Vec<&str>> = BTreeMap::new();

    for f in files {
        let sig: Vec<(usize, &Token)> =
            f.tokens.iter().enumerate().filter(|(_, t)| !t.is_comment()).collect();
        for (si, &(ti, t)) in sig.iter().enumerate() {
            if f.test_mask[ti] || !t.is_punct('#') {
                continue;
            }
            let (Some(&(_, open)), Some(&(_, kw))) = (sig.get(si + 1), sig.get(si + 2)) else { continue };
            if !open.is_punct('[') || kw.ident() != Some("deprecated") {
                continue;
            }
            // The attribute's closing `]`.
            let mut depth = 0i32;
            let mut close = None;
            for (sj, &(_, u)) in sig.iter().enumerate().skip(si + 1) {
                match u.kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            close = Some(sj);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let Some(close) = close else { continue };
            // Skip any further attributes, then expect `pub fn <name>`.
            let mut sj = close + 1;
            while sig.get(sj).is_some_and(|&(_, u)| u.is_punct('#')) {
                let mut depth = 0i32;
                sj += 1;
                while let Some(&(_, u)) = sig.get(sj) {
                    sj += 1;
                    match u.kind {
                        TokenKind::Punct('[') => depth += 1,
                        TokenKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
            let name = match (sig.get(sj), sig.get(sj + 1), sig.get(sj + 2)) {
                (Some(&(_, p)), Some(&(_, kw_fn)), Some(&(_, n)))
                    if p.ident() == Some("pub") && kw_fn.ident() == Some("fn") =>
                {
                    match n.ident() {
                        Some(name) => name,
                        None => continue,
                    }
                }
                _ => continue,
            };
            // The note must route callers to the replacement. Check the raw
            // source lines of the attribute (string contents are not in the
            // token stream).
            let first = t.line as usize;
            let last = sig[close].1.end_line as usize;
            let attr_text =
                f.source.lines().skip(first - 1).take(last - first + 1).collect::<Vec<_>>().join("\n");
            if !attr_text.contains("use SimBuilder") {
                out.push(Violation {
                    rule: "R6",
                    path: f.rel.clone(),
                    line: t.line,
                    token: name.to_string(),
                    hint: "deprecated runner shims must carry note = \"use SimBuilder ...\" so every \
                           caller is routed to the replacement"
                        .to_string(),
                });
            }
            deprecated.entry(name).or_default().push(&f.rel);
        }
    }

    for f in files {
        let use_mask = mask_use_statements(&f.tokens);
        for (i, t) in f.tokens.iter().enumerate() {
            if f.test_mask[i] || use_mask[i] {
                continue;
            }
            let Some(name) = t.ident() else { continue };
            let Some(defs) = deprecated.get(name) else { continue };
            if defs.iter().any(|d| *d == f.rel) {
                continue;
            }
            out.push(Violation {
                rule: "R6",
                path: f.rel.clone(),
                line: t.line,
                token: name.to_string(),
                hint: "this runner is deprecated; build the run with SimBuilder::new(Design::...).run()"
                    .to_string(),
            });
        }
    }
}

/// R3, per file: unsafe confinement, SAFETY comments, lint attributes.
fn rule_r3_file(
    cfg: &Config,
    crate_name: &str,
    path: &str,
    is_lib_rs: bool,
    tokens: &[Token],
    out: &mut Vec<Violation>,
) {
    let is_unsafe_crate = crate_name == cfg.unsafe_crate;

    if !is_unsafe_crate {
        for t in tokens {
            if t.ident() == Some("unsafe") {
                out.push(Violation {
                    rule: "R3",
                    path: path.to_string(),
                    line: t.line,
                    token: "unsafe".to_string(),
                    hint: format!(
                        "unsafe is confined to crates/{}; move the code there or find a safe formulation",
                        cfg.unsafe_crate
                    ),
                });
            }
        }
        if is_lib_rs && !has_ident_pair(tokens, "forbid", "unsafe_code") {
            out.push(Violation {
                rule: "R3",
                path: path.to_string(),
                line: 1,
                token: "forbid(unsafe_code)".to_string(),
                hint: "add #![forbid(unsafe_code)] at the top of lib.rs".to_string(),
            });
        }
    } else {
        if is_lib_rs && !has_ident_pair(tokens, "deny", "unsafe_op_in_unsafe_fn") {
            out.push(Violation {
                rule: "R3",
                path: path.to_string(),
                line: 1,
                token: "deny(unsafe_op_in_unsafe_fn)".to_string(),
                hint: "add #![deny(unsafe_op_in_unsafe_fn)] at the top of lib.rs".to_string(),
            });
        }
        // Every `unsafe` needs a `// SAFETY:` comment directly above it.
        for (i, t) in tokens.iter().enumerate() {
            if t.ident() != Some("unsafe") {
                continue;
            }
            // Walk back through the comment block above the `unsafe`: each
            // comment must sit within 5 lines of the code below it, but a
            // contiguous run of comment lines counts as one block, so a long
            // multi-line SAFETY justification is credited in full.
            let mut window_line = t.line;
            let mut documented = false;
            for p in tokens[..i].iter().rev() {
                // Stop at the previous `unsafe`: one comment cannot cover two.
                if p.ident() == Some("unsafe") {
                    break;
                }
                if !p.is_comment() {
                    continue;
                }
                if window_line.saturating_sub(p.end_line) > 5 {
                    break;
                }
                if p.comment_text().is_some_and(|c| c.contains("SAFETY:")) {
                    documented = true;
                    break;
                }
                window_line = p.line;
            }
            if !documented {
                out.push(Violation {
                    rule: "R3",
                    path: path.to_string(),
                    line: t.line,
                    token: "unsafe".to_string(),
                    hint: "precede every unsafe with a // SAFETY: comment justifying it".to_string(),
                });
            }
        }
    }
}

/// `first` followed (within the next few significant tokens) by `second` —
/// matches `#![forbid(unsafe_code)]` without caring about exact punctuation.
fn has_ident_pair(tokens: &[Token], first: &str, second: &str) -> bool {
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    sig.iter().enumerate().any(|(i, t)| {
        t.ident() == Some(first) && sig[i + 1..].iter().take(4).any(|u| u.ident() == Some(second))
    })
}

const ITEM_KEYWORDS: [&str; 9] = ["fn", "struct", "enum", "trait", "union", "const", "static", "type", "mod"];

/// R4: every `pub` item carries a doc comment.
fn rule_r4(path: &str, tokens: &[Token], test_mask: &[bool], out: &mut Vec<Violation>) {
    let mut has_doc = false;
    let mut i = 0;
    while i < tokens.len() {
        if test_mask[i] {
            has_doc = false;
            i += 1;
            continue;
        }
        let t = &tokens[i];
        match &t.kind {
            TokenKind::DocComment { inner: false, .. } => {
                has_doc = true;
                i += 1;
            }
            TokenKind::LineComment(_) | TokenKind::BlockComment(_) | TokenKind::DocComment { .. } => {
                i += 1;
            }
            TokenKind::Punct('#') => {
                // Skip an attribute without clearing pending doc state;
                // `#[doc = "..."]` counts as documentation.
                let Some(open) = next_significant(tokens, i + 1) else { break };
                if tokens[open].is_punct('[') {
                    let mut depth = 0i32;
                    let mut j = open;
                    let mut saw_doc_attr = false;
                    while j < tokens.len() {
                        match &tokens[j].kind {
                            TokenKind::Punct('[') => depth += 1,
                            TokenKind::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            TokenKind::Ident(s) if s == "doc" => saw_doc_attr = true,
                            _ => {}
                        }
                        j += 1;
                    }
                    has_doc |= saw_doc_attr;
                    i = j + 1;
                } else {
                    has_doc = false;
                    i += 1;
                }
            }
            TokenKind::Ident(kw) if kw == "pub" => {
                if let Some((line, item)) = pub_item(tokens, i) {
                    if !has_doc {
                        out.push(Violation {
                            rule: "R4",
                            path: path.to_string(),
                            line,
                            token: item,
                            hint: "document every public item in the foundation crates (/// ...)".to_string(),
                        });
                    }
                }
                has_doc = false;
                i += 1;
            }
            _ => {
                has_doc = false;
                i += 1;
            }
        }
    }
}

/// If `tokens[i]` (known to be `pub`) heads a documentable public item,
/// returns its line and a `pub <kind> <name>` description. `pub(crate)`,
/// `pub use` and struct fields return `None`.
fn pub_item(tokens: &[Token], i: usize) -> Option<(u32, String)> {
    let mut j = next_significant(tokens, i + 1)?;
    if tokens[j].is_punct('(') {
        return None; // pub(crate) / pub(super): not public API
    }
    // Skip qualifiers (`const fn`, `unsafe fn`, `async fn`, `extern "C" fn`).
    let mut kind: Option<&str> = None;
    for _ in 0..4 {
        match tokens[j].ident() {
            Some("use") => return None,
            Some(w @ ("const" | "static")) => {
                kind = Some(w);
                j = next_significant(tokens, j + 1)?;
                // `pub const fn` / `pub const unsafe fn`: keep scanning.
                if !matches!(tokens[j].ident(), Some("fn" | "unsafe" | "async" | "extern")) {
                    break;
                }
            }
            Some(w) if ITEM_KEYWORDS.contains(&w) => {
                kind = Some(w);
                j = next_significant(tokens, j + 1)?;
                break;
            }
            Some("unsafe" | "async" | "extern") => {
                j = next_significant(tokens, j + 1)?;
            }
            _ => break,
        }
    }
    let kind = kind?;
    if kind == "mod" {
        return None; // module docs live as //! inside the module file
    }
    // The item's name: the next identifier (skip `extern "C"` strings).
    let name = tokens[j..].iter().take(4).find_map(|t| t.ident()).unwrap_or("?");
    Some((tokens[i].line, format!("pub {kind} {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rule<F>(src: &str, f: F) -> Vec<Violation>
    where
        F: Fn(&str, &[Token], &[bool], &mut Vec<Violation>),
    {
        let tokens = lex(src);
        let mask = mask_test_mods(&tokens);
        let mut out = Vec::new();
        f("test.rs", &tokens, &mask, &mut out);
        out
    }

    #[test]
    fn r1_flags_hash_collections_but_not_in_tests_or_strings() {
        let v = run_rule("use std::collections::HashMap;\nlet s: HashSet<u8>;", rule_r1);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].token, "HashMap");
        assert_eq!(v[1].line, 2);
        assert!(run_rule("let s = \"HashMap\"; // HashMap", rule_r1).is_empty());
        assert!(run_rule("#[cfg(test)]\nmod tests { use std::collections::HashMap; }", rule_r1).is_empty());
    }

    #[test]
    fn r2_flags_wallclock_threads_and_env() {
        let v = run_rule(
            "use std::time::Instant;\nstd::thread::spawn(f);\nlet h = std::env::var(\"HOME\");",
            rule_r2,
        );
        let tokens: Vec<&str> = v.iter().map(|v| v.token.as_str()).collect();
        assert!(tokens.contains(&"Instant"));
        assert!(tokens.contains(&"thread::spawn"));
        assert!(tokens.contains(&"std::env"));
        assert!(run_rule("#[cfg(test)]\nmod tests { fn f() { std::thread::spawn(g); } }", rule_r2).is_empty());
    }

    fn run_r3(src: &str, crate_name: &str, is_lib: bool) -> Vec<Violation> {
        let cfg = Config::rambda(PathBuf::from("."));
        let tokens = lex(src);
        let mut out = Vec::new();
        rule_r3_file(&cfg, crate_name, "test.rs", is_lib, &tokens, &mut out);
        out
    }

    #[test]
    fn r3_unsafe_outside_ring_is_flagged() {
        let v = run_r3("fn f() { unsafe { g() } }", "kvs", false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].token, "unsafe");
    }

    #[test]
    fn r3_lib_rs_lint_attributes() {
        assert_eq!(run_r3("#![forbid(unsafe_code)]", "kvs", true).len(), 0);
        assert_eq!(run_r3("//! docs only", "kvs", true).len(), 1);
        assert_eq!(run_r3("#![deny(unsafe_op_in_unsafe_fn)]", "ring", true).len(), 0);
        assert_eq!(run_r3("//! docs only", "ring", true).len(), 1);
    }

    #[test]
    fn r3_safety_comments_in_ring() {
        let ok = "// SAFETY: exclusive owner.\nunsafe { g() }";
        assert!(run_r3(ok, "ring", false).is_empty());
        let missing = "unsafe { g() }";
        assert_eq!(run_r3(missing, "ring", false).len(), 1);
        // One comment cannot cover two unsafe sites.
        let shared =
            "// SAFETY: covers only the first.\nunsafe impl Send for X {}\nunsafe impl Sync for X {}";
        assert_eq!(run_r3(shared, "ring", false).len(), 1);
        // A comment more than five lines up does not count.
        let far = "// SAFETY: too far away.\n\n\n\n\n\n\nunsafe { g() }";
        assert_eq!(run_r3(far, "ring", false).len(), 1);
    }

    #[test]
    fn r4_requires_docs_on_pub_items() {
        let v = run_rule("pub fn f() {}\n/// documented\npub struct S;", rule_r4);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].token, "pub fn f");
        // Attributes between the doc comment and the item are fine.
        assert!(run_rule("/// doc\n#[derive(Debug)]\npub struct S;", rule_r4).is_empty());
        // pub(crate), pub use and #[doc] attributes are exempt/satisfied.
        assert!(run_rule("pub(crate) fn f() {}\npub use foo::Bar;", rule_r4).is_empty());
        assert!(run_rule("#[doc = \"x\"]\npub fn f() {}", rule_r4).is_empty());
        // `pub const NAME` is an item; `pub const fn` reports as fn.
        let v = run_rule("pub const X: u8 = 0;\npub const fn f() {}", rule_r4);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].token, "pub const X");
        assert_eq!(v[1].token, "pub fn f");
    }

    #[test]
    fn r5_flags_print_macros_outside_tests() {
        let v = run_rule("fn f() { println!(\"x\"); eprint!(\"y\"); }", rule_r5);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].token, "println!");
        assert_eq!(v[1].token, "eprint!");
        // Test modules, strings and comments are exempt.
        assert!(run_rule("#[cfg(test)]\nmod tests { fn f() { println!(\"x\"); } }", rule_r5).is_empty());
        assert!(run_rule("let s = \"println!\"; // println!(no)", rule_r5).is_empty());
        // A bare `print` identifier without `!` is not a macro call.
        assert!(run_rule("fn print() {} fn g() { print(); }", rule_r5).is_empty());
    }

    fn scanned(rel: &str, src: &str) -> ScannedFile {
        let tokens = lex(src);
        let test_mask = mask_test_mods(&tokens);
        ScannedFile { rel: rel.to_string(), source: src.to_string(), tokens, test_mask }
    }

    #[test]
    fn r6_requires_a_simbuilder_note_on_deprecated_shims() {
        let good = scanned(
            "crates/kvs/src/designs.rs",
            "#[deprecated(note = \"use SimBuilder with Design::kvs_rambda\")]\npub fn run_old() {}",
        );
        let mut out = Vec::new();
        rule_r6(&[good], &mut out);
        assert!(out.is_empty(), "a routed note must pass: {out:?}");

        let bad = scanned(
            "crates/kvs/src/designs.rs",
            "#[deprecated(note = \"old entry point\")]\npub fn run_old() {}",
        );
        let mut out = Vec::new();
        rule_r6(&[bad], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "R6");
        assert_eq!(out[0].token, "run_old");
    }

    #[test]
    fn r6_flags_external_callers_but_not_reexports_tests_or_the_shim_itself() {
        let def = scanned(
            "crates/kvs/src/designs.rs",
            "#[deprecated(note = \"use SimBuilder\")]\npub fn run_old() {}\nfn helper() { run_old(); }",
        );
        let reexport = scanned(
            "crates/kvs/src/lib.rs",
            "#[allow(deprecated)]\npub use designs::run_old;\n#[cfg(test)]\nmod t { fn f() { run_old(); } }",
        );
        let caller = scanned("crates/bench/src/harness.rs", "fn sweep() { let r = run_old(); }");
        let mut out = Vec::new();
        rule_r6(&[def, reexport, caller], &mut out);
        assert_eq!(out.len(), 1, "only the live external caller may trip: {out:?}");
        assert_eq!(out[0].path, "crates/bench/src/harness.rs");
        assert_eq!(out[0].token, "run_old");
    }

    #[test]
    fn allowlist_parses_and_rejects_garbage() {
        let entries =
            parse_allowlist("# comment\n\nR1 crates/des/src/detmap.rs HashMap  # backing store\n").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "R1");
        assert!(parse_allowlist("R1 only-two").is_err());
    }
}
