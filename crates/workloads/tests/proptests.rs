//! Property-based tests for the workload generators.

use proptest::prelude::*;
use rambda_des::SimRng;
use rambda_workloads::{KeyDist, KvMix, TxnSpec, Zipf};

proptest! {
    /// Zipf samples always land in range and hot_mass is monotone in c for
    /// any (n, theta).
    #[test]
    fn zipf_range_and_monotone_mass(n in 1u64..1_000_000, theta in 0.0f64..1.2, seed in any::<u64>()) {
        let zipf = Zipf::new(n, theta);
        let mut rng = SimRng::seed(seed);
        for _ in 0..200 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
        let mut last = 0.0;
        for c in [0, n / 7 + 1, n / 3 + 1, n] {
            let m = zipf.hot_mass(c);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m));
            prop_assert!(m + 1e-9 >= last, "hot_mass not monotone at c={c}");
            last = m;
        }
    }

    /// Higher skew concentrates more mass on the same hot set.
    #[test]
    fn skew_orders_hot_mass(n in 100u64..1_000_000) {
        let mild = Zipf::new(n, 0.3);
        let heavy = Zipf::new(n, 0.99);
        let c = n / 10 + 1;
        prop_assert!(heavy.hot_mass(c) >= mild.hot_mass(c) - 1e-9);
    }

    /// KvMix respects its GET fraction within statistical tolerance and
    /// only emits in-range keys.
    #[test]
    fn kv_mix_fraction_holds(frac in 0.0f64..=1.0, seed in any::<u64>()) {
        let mix = KvMix::new(KeyDist::uniform(1000), frac, 64);
        let mut rng = SimRng::seed(seed);
        let n = 4000;
        let mut gets = 0;
        for _ in 0..n {
            let op = mix.next_op(&mut rng);
            prop_assert!(op.key() < 1000);
            if !op.is_put() {
                gets += 1;
            }
        }
        let measured = gets as f64 / n as f64;
        prop_assert!((measured - frac).abs() < 0.05, "frac={frac} measured={measured}");
    }

    /// Transaction key sets are always distinct and exactly sized.
    #[test]
    fn txn_keys_distinct(reads in 0usize..5, writes in 1usize..5, seed in any::<u64>()) {
        let spec = TxnSpec { reads, writes, value_bytes: 64 };
        let dist = KeyDist::zipfian(50, 0.9); // tiny space forces collisions
        let mut rng = SimRng::seed(seed);
        let keys = spec.sample_keys(&dist, &mut rng);
        prop_assert_eq!(keys.len(), reads + writes);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), keys.len());
    }
}
