//! Deterministic fault injection for the fabric.
//!
//! A [`FaultPlan`] is a seeded schedule of adverse network conditions:
//! random packet drops and corruptions (Bernoulli per data-path frame),
//! bandwidth degradation of a port for a sim-time window, and link flaps
//! (a port is simply down for a window). The plan draws from its **own**
//! RNG stream, derived via [`SimRng::stream`] from `(seed, salt)` rather
//! than forked off the workload generator — so the fault schedule for a
//! given config is byte-reproducible and completely orthogonal to workload
//! randomness: changing a key distribution never moves a packet drop, and
//! vice versa.
//!
//! The fault plan judges only the *data path* ([`Network::transmit`]);
//! 0-byte control frames (ACKs, NACKs) keep using the infallible
//! [`Network::send`]. This mirrors how RoCEv2 deployments protect control
//! traffic with strict priority and keeps the recovery state machine free
//! of NACK-loss recursion.
//!
//! [`Network::transmit`]: crate::Network::transmit
//! [`Network::send`]: crate::Network::send

use rambda_des::{SimRng, SimTime, Span};
use serde::{Deserialize, Serialize};

use crate::NodeId;

/// Stream salt separating the fault RNG from every workload stream.
const FAULT_STREAM_SALT: u64 = 0xFA01_7FA0_17FA_017F;

/// A sim-time window during which a port's effective bandwidth is reduced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradeWindow {
    /// The node whose egress port is degraded.
    pub node: NodeId,
    /// Window start (offset from sim start).
    pub from: Span,
    /// Window end, exclusive (offset from sim start).
    pub until: Span,
    /// Serialization-time multiplier while the window is active (`2.0`
    /// halves the port's bandwidth). Must be `>= 1.0`.
    pub factor: f64,
}

/// A sim-time window during which a node's port is down (link flap):
/// every data-path frame entering or leaving the node is lost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlapWindow {
    /// The flapping node.
    pub node: NodeId,
    /// Window start (offset from sim start).
    pub from: Span,
    /// Window end, exclusive (offset from sim start).
    pub until: Span,
}

fn window_active(at: SimTime, from: Span, until: Span) -> bool {
    let ps = at.as_ps();
    ps >= from.as_ps() && ps < until.as_ps()
}

/// The full, declarative description of a fault schedule.
///
/// `FaultConfig::disabled()` (also `Default`) injects nothing and leaves
/// every byte of a run's output identical to a faultless build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for the plan's private RNG stream.
    pub seed: u64,
    /// Probability that a data-path frame is silently dropped.
    pub loss_rate: f64,
    /// Probability that a data-path frame arrives corrupted (detected by
    /// the receiver's ICRC check, answered with a NACK).
    pub corrupt_rate: f64,
    /// Bandwidth-degradation windows.
    pub degrade: Vec<DegradeWindow>,
    /// Link-flap windows.
    pub flaps: Vec<FlapWindow>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

impl FaultConfig {
    /// A plan that injects nothing.
    pub fn disabled() -> Self {
        FaultConfig { seed: 0, loss_rate: 0.0, corrupt_rate: 0.0, degrade: Vec::new(), flaps: Vec::new() }
    }

    /// A plan that only drops frames, at `loss_rate`.
    pub fn lossy(seed: u64, loss_rate: f64) -> Self {
        FaultConfig { seed, loss_rate, ..FaultConfig::disabled() }
    }

    /// Whether this config can ever inject a fault. An inactive config is
    /// never installed, so it is byte-for-byte equivalent to no config.
    pub fn is_active(&self) -> bool {
        self.loss_rate > 0.0 || self.corrupt_rate > 0.0 || !self.degrade.is_empty() || !self.flaps.is_empty()
    }
}

/// What the plan decided to do to one data-path frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The frame was silently dropped (sender will time out).
    Dropped,
    /// The frame arrived but fails the receiver's integrity check.
    Corrupted,
    /// The frame was lost to a link-flap window.
    Flapped,
}

impl FaultKind {
    /// Stable lowercase name, used for trace events.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Dropped => "dropped",
            FaultKind::Corrupted => "corrupted",
            FaultKind::Flapped => "flapped",
        }
    }
}

/// One injected fault, recorded for the trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault took effect (end of egress serialization).
    pub at: SimTime,
    /// What happened to the frame.
    pub kind: FaultKind,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
}

/// Injection counters, published as `{prefix}.faults.*` when nonzero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames silently dropped by the loss process.
    pub dropped: u64,
    /// Frames delivered corrupted.
    pub corrupted: u64,
    /// Frames lost to link-flap windows.
    pub flapped: u64,
}

/// The live fault injector: a [`FaultConfig`] plus its private RNG stream,
/// counters, and the event log drained into the tracer after a run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: SimRng,
    stats: FaultStats,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Instantiates the plan; the RNG stream depends only on `cfg.seed`.
    pub fn new(cfg: FaultConfig) -> Self {
        let rng = SimRng::stream(cfg.seed, FAULT_STREAM_SALT);
        FaultPlan { cfg, rng, stats: FaultStats::default(), events: Vec::new() }
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Judges one data-path frame leaving `from` at `at` (end of egress
    /// serialization). Draw order is the deterministic transmit order, so
    /// the verdict sequence is reproducible run-to-run.
    pub fn judge(&mut self, at: SimTime, from: NodeId, to: NodeId) -> Option<FaultKind> {
        let kind = self.verdict(at, from, to)?;
        match kind {
            FaultKind::Dropped => self.stats.dropped += 1,
            FaultKind::Corrupted => self.stats.corrupted += 1,
            FaultKind::Flapped => self.stats.flapped += 1,
        }
        self.events.push(FaultEvent { at, kind, from, to });
        Some(kind)
    }

    fn verdict(&mut self, at: SimTime, from: NodeId, to: NodeId) -> Option<FaultKind> {
        // Flaps are schedule-driven (no RNG draw): a down port loses the
        // frame whether it is the sender's or the receiver's.
        let down =
            |n: NodeId| self.cfg.flaps.iter().any(|w| w.node == n && window_active(at, w.from, w.until));
        if down(from) || down(to) {
            return Some(FaultKind::Flapped);
        }
        if self.cfg.loss_rate > 0.0 && self.rng.chance(self.cfg.loss_rate) {
            return Some(FaultKind::Dropped);
        }
        if self.cfg.corrupt_rate > 0.0 && self.rng.chance(self.cfg.corrupt_rate) {
            return Some(FaultKind::Corrupted);
        }
        None
    }

    /// Serialization-time multiplier for `node`'s egress port at `at`
    /// (`1.0` when no degrade window is active; overlapping windows
    /// multiply).
    pub fn degrade_factor(&self, at: SimTime, node: NodeId) -> f64 {
        self.cfg
            .degrade
            .iter()
            .filter(|w| w.node == node && window_active(at, w.from, w.until))
            .map(|w| w.factor)
            .product()
    }

    /// Injection counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Takes the accumulated fault events (the log is left empty).
    pub fn drain_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_inactive() {
        assert!(!FaultConfig::disabled().is_active());
        assert!(!FaultConfig::default().is_active());
        assert!(FaultConfig::lossy(1, 1e-3).is_active());
    }

    #[test]
    fn fault_schedule_is_byte_reproducible() {
        let mk = || FaultPlan::new(FaultConfig { corrupt_rate: 0.05, ..FaultConfig::lossy(42, 0.1) });
        let (mut a, mut b) = (mk(), mk());
        for i in 0..10_000u16 {
            let at = SimTime::ZERO + Span::from_ns(i as u64);
            assert_eq!(a.judge(at, NodeId(0), NodeId(1)), b.judge(at, NodeId(0), NodeId(1)));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().dropped > 0, "loss process never fired");
        assert!(a.stats().corrupted > 0, "corruption process never fired");
        assert_eq!(a.drain_events(), b.drain_events());
        assert!(a.drain_events().is_empty(), "drain must empty the log");
    }

    #[test]
    fn loss_rate_frequency_is_close() {
        let mut plan = FaultPlan::new(FaultConfig::lossy(7, 0.25));
        let n = 20_000;
        for _ in 0..n {
            plan.judge(SimTime::ZERO, NodeId(0), NodeId(1));
        }
        let rate = plan.stats().dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn flap_window_drops_without_consuming_rng() {
        let flap = FlapWindow { node: NodeId(1), from: Span::from_us(1), until: Span::from_us(2) };
        let cfg = FaultConfig { flaps: vec![flap], ..FaultConfig::lossy(3, 0.5) };
        let mut a = FaultPlan::new(cfg.clone());
        let mut b = FaultPlan::new(cfg);
        let inside = SimTime::ZERO + Span::from_ns(1_500);
        // `a` sees a flapped frame first; `b` does not. Because flap
        // verdicts draw no randomness, both plans stay in lockstep on the
        // frames the loss process actually judges.
        assert_eq!(a.judge(inside, NodeId(0), NodeId(1)), Some(FaultKind::Flapped));
        assert_eq!(a.judge(inside, NodeId(1), NodeId(2)), Some(FaultKind::Flapped));
        let outside = SimTime::ZERO + Span::from_us(5);
        for _ in 0..100 {
            assert_eq!(a.judge(outside, NodeId(0), NodeId(1)), b.judge(outside, NodeId(0), NodeId(1)));
        }
        assert_eq!(a.stats().flapped, 2);
        assert_eq!(b.stats().flapped, 0);
    }

    #[test]
    fn degrade_factor_windows() {
        let w = |from, until, factor| DegradeWindow { node: NodeId(0), from, until, factor };
        let cfg = FaultConfig {
            degrade: vec![
                w(Span::from_us(1), Span::from_us(3), 2.0),
                w(Span::from_us(2), Span::from_us(4), 3.0),
            ],
            ..FaultConfig::disabled()
        };
        let plan = FaultPlan::new(cfg);
        let at = |us| SimTime::ZERO + Span::from_us(us);
        assert_eq!(plan.degrade_factor(at(0), NodeId(0)), 1.0);
        assert_eq!(plan.degrade_factor(at(1), NodeId(0)), 2.0);
        assert_eq!(plan.degrade_factor(at(2), NodeId(0)), 6.0);
        assert_eq!(plan.degrade_factor(at(3), NodeId(0)), 3.0);
        assert_eq!(plan.degrade_factor(at(4), NodeId(0)), 1.0);
        assert_eq!(plan.degrade_factor(at(2), NodeId(1)), 1.0);
    }
}
