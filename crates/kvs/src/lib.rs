//! In-memory key-value store on Rambda (Sec. IV-A / VI-B).
//!
//! * [`store`] — the functional MICA-style store: set-associative hash
//!   buckets with pointer-linked overflow buckets and a slab-allocated value
//!   pool. Every operation reports the memory locations it touched, which
//!   drives the timing models (the paper's "three accesses per GET, four
//!   per PUT" emerges from the structure rather than being assumed).
//! * [`KvApu`] — the Rambda APU: pipelined hash unit + data-structure
//!   walker over the store.
//! * [`designs`] — end-to-end serving experiments for the three designs of
//!   Fig. 8–10 (CPU two-sided RDMA-RPC, Smart NIC, Rambda and its LD/LH
//!   variants), returning throughput and latency statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod designs;
pub mod store;

mod apu;

pub use apu::{KvApu, KvRequest, KvResponse};
pub use designs::{KvsDesigns, KvsParams, KvsWorkload};
pub use store::{KvConfig, KvStore, OpTrace};
