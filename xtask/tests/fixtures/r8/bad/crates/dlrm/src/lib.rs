//! Negative fixture for rule R8 (RNG provenance): literal seed, unsalted
//! seed, ambient entropy, an RNG clone, and one RNG owned beside multiple
//! machines. Never compiled — scanned by xtask/tests.

#![forbid(unsafe_code)]

pub struct Machine {
    pub cycles: u64,
}

pub struct World {
    pub client: Machine,
    pub server: Machine,
    pub rng: SimRng,
}

pub fn build(epoch: u64) -> World {
    let rng = SimRng::seed(0xDEAD_BEEF);
    let other = SimRng::seed(epoch);
    let copy = rng.clone();
    let hasher = thread_rng();
    let _ = (other, copy, hasher);
    World { client: Machine { cycles: 0 }, server: Machine { cycles: 0 }, rng }
}

pub fn build_ok(params: &Params) -> SimRng {
    // Flows from the workload seed: must NOT be flagged.
    SimRng::seed(params.seed)
}
