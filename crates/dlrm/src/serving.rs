//! The Fig. 13 serving experiments: CPU (1–16 cores) vs Rambda / Rambda-LD /
//! Rambda-LH on the six dataset profiles.
//!
//! Rambda-DLRM is the CPU-accelerator *collaboration* example (Sec. IV-C):
//! the accelerator terminates the RPC and hands the raw request to a host
//! core for parsing/transformation through the intra-machine ring, gets the
//! model-ready input back, performs the bandwidth-bound embedding reduction
//! (with MERCI memoization) and the lightweight FC layers, and responds
//! through the RNIC.

use rambda::{cpu::CpuServer, run_closed_loop_exec, Design, DriverConfig, RunStats, SimCtx, Testbed};
use rambda_accel::{AccelEngine, DataLocation};
use rambda_des::Link;
use rambda_des::{Server, SimRng, SimTime, Span};
use rambda_fabric::{Network, NodeId};
use rambda_mem::{AccessKind, MemKind, MemReq, MemorySystem};
use rambda_rnic::{rdma_write, two_sided_send, MrInfo, PostFlags, PostPath, RdmaError, WriteOpts};
use rambda_trace::{ReqObs, Tracer};
use rambda_workloads::{DlrmProfile, Zipf};

use crate::merci::{sample_correlated_query, MemoTable, ReductionPlan};
use crate::model::DlrmModel;

const CLIENT: NodeId = NodeId(0);
const SERVER: NodeId = NodeId(1);

/// DLRM-specific cost constants (documented calibration, Sec. VI-D).
#[derive(Debug, Clone)]
pub struct DlrmCosts {
    /// Effective per-core random-gather bandwidth of a Xeon core running
    /// MERCI reduction (bytes/s).
    pub core_gather_bw: f64,
    /// Aggregate random-gather roofline of the socket (bytes/s): ~30 % of
    /// the 120 GB/s peak for random 256 B bursts — what the paper means by
    /// "bounded by the host memory bandwidth" at 8 cores.
    pub socket_gather_bw: f64,
    /// Request parsing/transformation on a host core (the irregular,
    /// branch-rich pre-processing that stays on the CPU).
    pub preprocess: Span,
    /// Host cores dedicated to pre-processing in the Rambda designs.
    pub preprocess_cores: usize,
    /// FC layers on a CPU core.
    pub mlp_cpu: Span,
    /// FC layers on the APU's dedicated ALU pipeline.
    pub mlp_apu: Span,
    /// Per-query APU scheduler/(de)serializer occupancy (serial).
    pub apu_dispatch: Span,
    /// Row-activation overhead factor for random 256 B bursts on the
    /// accelerator-local DRAM.
    pub local_gather_overhead: f64,
}

impl Default for DlrmCosts {
    fn default() -> Self {
        DlrmCosts {
            core_gather_bw: 6.5e9,
            socket_gather_bw: 36.0e9,
            preprocess: Span::from_ns(250),
            preprocess_cores: 2,
            mlp_cpu: Span::from_ns(600),
            mlp_apu: Span::from_ns(100),
            apu_dispatch: Span::from_ns(120),
            local_gather_overhead: 1.2,
        }
    }
}

/// DLRM experiment parameters.
#[derive(Debug, Clone)]
pub struct DlrmParams {
    /// Dataset profile.
    pub profile: DlrmProfile,
    /// Embedding dimension (64 in Sec. VI-D).
    pub dim: usize,
    /// Rows in the functional scaled-down model (timing uses real reduction
    /// plans over these rows; footprints use the profile's full scale).
    pub functional_rows: u32,
    /// Whether MERCI memoization is enabled (the paper reports MERCI; the
    /// native reduction "shows the same trend").
    pub merci: bool,
    /// Queries per run.
    pub queries: u64,
    /// Client instances.
    pub clients: usize,
    /// Cost constants.
    pub costs: DlrmCosts,
    /// RNG seed.
    pub seed: u64,
}

impl DlrmParams {
    /// A fast configuration for tests.
    pub fn quick(profile: DlrmProfile) -> Self {
        DlrmParams {
            profile,
            dim: 64,
            functional_rows: 32_768,
            merci: true,
            queries: 8_000,
            clients: 10,
            costs: DlrmCosts::default(),
            seed: 21,
        }
    }

    /// Paper-scale run.
    pub fn paper(profile: DlrmProfile) -> Self {
        DlrmParams { functional_rows: 262_144, queries: 100_000, ..DlrmParams::quick(profile) }
    }

    fn driver(&self) -> DriverConfig {
        DriverConfig::new(self.clients, self.queries).with_window(16)
    }

    fn row_bytes(&self) -> u64 {
        self.dim as u64 * 4
    }

    /// Scoped runs attribute each query to the embedding-table partition
    /// (`table/{t}`) holding its first looked-up row: the functional rows
    /// split into [`SCOPE_TABLES`] equal ranges.
    fn scope_names(&self) -> Vec<String> {
        (0..SCOPE_TABLES).map(|t| format!("table/{t}")).collect()
    }

    fn scope_of(&self, plan: &ReductionPlan) -> usize {
        let row =
            plan.singles.first().copied().unwrap_or_else(|| plan.memo_pairs.first().map_or(0, |p| p * 2));
        let t = row as u64 * SCOPE_TABLES as u64 / self.functional_rows.max(1) as u64;
        t.min(SCOPE_TABLES as u64 - 1) as usize
    }
}

/// Embedding-table partitions a scoped run attributes queries to.
const SCOPE_TABLES: u32 = 4;

/// Feeds every row the reduction plan touches into the hot-key sketch
/// (memoized pairs count as their even row).
fn observe_plan(scopes: &mut rambda_metrics::ScopedMetrics, plan: &ReductionPlan) {
    for &p in &plan.memo_pairs {
        scopes.observe_key(2 * p as u64);
    }
    for &r in &plan.singles {
        scopes.observe_key(r as u64);
    }
}

/// Shared functional state for one run.
struct DlrmWorld {
    model: DlrmModel,
    memo: MemoTable,
    pair_zipf: Zipf,
    rng: SimRng,
    checked: u64,
}

impl DlrmWorld {
    fn new(params: &DlrmParams) -> Self {
        let model = DlrmModel::synthetic(params.functional_rows as usize, params.dim);
        let memo = MemoTable::build(&model.embedding);
        DlrmWorld {
            memo,
            pair_zipf: Zipf::new(params.functional_rows as u64 / 2, params.profile.zipf_theta),
            model,
            rng: SimRng::seed(params.seed),
            checked: 0,
        }
    }

    /// Samples a query and computes its reduction plan + inference result.
    fn next_query(&mut self, params: &DlrmParams) -> (ReductionPlan, u64, f32) {
        let q =
            sample_correlated_query(&params.profile, params.functional_rows, &self.pair_zipf, &mut self.rng);
        let plan = if params.merci {
            ReductionPlan::build(&q, &self.memo)
        } else {
            ReductionPlan { memo_pairs: Vec::new(), singles: q.features.clone() }
        };
        // Functional inference (and an occasional cross-check against the
        // naive reduction).
        let reduced = plan.reduce(&self.model.embedding, &self.memo);
        let score = self.model.mlp.forward(&reduced)[0];
        if self.checked < 8 {
            let naive = self.model.infer(&q.features);
            debug_assert!(
                (score - naive).abs() < 1e-3 * naive.abs().max(1.0),
                "memoized inference diverged: {score} vs {naive}"
            );
            self.checked += 1;
        }
        (plan, q.wire_bytes(), score)
    }
}

/// Degraded-mode completion: the RDMA layer exhausted its retransmission
/// budget, so the design sheds the query — the client observes a timeout
/// at the error-completion time — instead of asserting.
fn shed(mut tr: ReqObs<'_>, err: &RdmaError) -> SimTime {
    let at = err.at();
    tr.leg("shed", at);
    tr.finish(at);
    at
}

/// Forwards the run's injected-fault log from the network to the flight
/// recorder as instants on the fabric track.
fn drain_faults(net: &mut Network, tracer: &mut Tracer) {
    for ev in net.drain_fault_events() {
        tracer.fault(ev.kind.name(), ev.at, ev.from.0, ev.to.0);
    }
}

/// [`Design`] constructors for the DLRM serving experiments, so
/// [`SimBuilder`](rambda::SimBuilder) can run them.
pub trait DlrmDesigns {
    /// The CPU-only MERCI baseline on `cores` cores (`dlrm.cpu`).
    fn dlrm_cpu(params: DlrmParams, cores: usize) -> Design;
    /// Rambda-DLRM and its LD/LH variants (`dlrm.rambda`).
    fn dlrm_rambda(params: DlrmParams, location: DataLocation) -> Design;
}

impl DlrmDesigns for Design {
    fn dlrm_cpu(params: DlrmParams, cores: usize) -> Design {
        Design::from_runner("dlrm.cpu", params.seed, move |tb, ctx| run_cpu_inner(tb, &params, cores, ctx))
    }

    fn dlrm_rambda(params: DlrmParams, location: DataLocation) -> Design {
        Design::from_runner("dlrm.rambda", params.seed, move |tb, ctx| {
            run_rambda_inner(tb, &params, location, ctx)
        })
    }
}

/// The CPU-only MERCI baseline on `cores` cores.
pub fn run_cpu(testbed: &Testbed, params: &DlrmParams, cores: usize) -> RunStats {
    rambda::rambda_stats_only_ctx!(ctx);
    run_cpu_inner(testbed, params, cores, ctx)
}

fn run_cpu_inner(testbed: &Testbed, params: &DlrmParams, cores: usize, ctx: SimCtx<'_>) -> RunStats {
    let SimCtx { rec, resources, tracer, faults, profile, scopes, exec } = ctx;
    let mut net = Network::new(testbed.net.clone());
    net.install_faults(faults);
    if profile {
        net.enable_lookahead();
    }
    let mut client = rambda::Machine::new(CLIENT, testbed, true);
    let mut server = rambda::Machine::new(SERVER, testbed, true);
    let mut world = DlrmWorld::new(params);
    let mut core_pool = Server::new(cores);
    // The socket-level random-gather roofline (shared by all cores).
    let mut gather = Link::new(params.costs.socket_gather_bw, Span::ZERO);
    let rq_mr = server.rnic.register_region(MrInfo::adaptive(MemKind::Dram));
    let client_mr = client.rnic.register_region(MrInfo::adaptive(MemKind::Dram));
    let opts = WriteOpts { post: PostPath::HostMmio, batch: 16, flags: PostFlags::NONE };
    let row = params.row_bytes();
    let costs = params.costs.clone();
    let scope_names = params.scope_names();

    let lookahead = net.min_lookahead();
    let stats = run_closed_loop_exec(&params.driver(), exec, lookahead, |_c, at| {
        let mut tr = tracer.observe(rec, at);
        let (plan, wire, _score) = world.next_query(params);
        observe_plan(scopes, &plan);
        let table = params.scope_of(&plan);
        let fin = 'query: {
            let delivered = match two_sided_send(
                at,
                &mut client.rnic,
                &mut server.rnic,
                &mut net,
                &mut server.mem,
                rq_mr,
                wire,
                opts,
            ) {
                Ok(t) => t,
                Err(e) => break 'query shed(tr, &e),
            };
            tr.leg("fabric_request", delivered);
            let bytes = plan.lookups() as u64 * row;
            let hold =
                costs.preprocess + costs.mlp_cpu + Span::from_secs_f64(bytes as f64 / costs.core_gather_bw);
            let start = core_pool.acquire(delivered, hold);
            tr.leg("core_queue", start);
            // Socket roofline: the gather bytes queue on the shared link.
            let roofline_done = gather.transfer(start, bytes).depart;
            let done = (start + hold).max(roofline_done);
            tr.leg("gather_compute", done);
            let fin = match two_sided_send(
                done,
                &mut server.rnic,
                &mut client.rnic,
                &mut net,
                &mut client.mem,
                client_mr,
                16,
                opts,
            ) {
                Ok(t) => t,
                Err(e) => break 'query shed(tr, &e),
            };
            tr.leg("fabric_response", fin);
            tr.finish(fin);
            tracer.sample_with(rec, at, |s| {
                client.publish_metrics(s, "client");
                server.publish_metrics(s, "server");
                s.observe_server("cores", &core_pool);
                s.observe_link("gather", &gather);
                net.publish_metrics(s, "net");
            });
            fin
        };
        // Scope attribution covers shed queries too: every traced query
        // lands in exactly one embedding-table partition.
        scopes.record(&scope_names[table], at, fin);
        fin
    });
    drain_faults(&mut net, tracer);
    if rec.is_active() {
        client.publish_metrics(resources, "client");
        server.publish_metrics(resources, "server");
        resources.observe_server("cores", &core_pool);
        resources.observe_link("gather", &gather);
        net.publish_metrics(resources, "net");
        net.publish_lookahead(resources, "net");
        net.publish_scoped(scopes, "net");
        tracer.final_sample(SimTime::ZERO + stats.makespan, resources);
    }
    stats
}

/// Rambda-DLRM: accelerator-terminated RPC, CPU pre-processing hand-off,
/// APU embedding reduction + FC. `location` selects prototype (HostDram) or
/// the local-memory variants.
pub fn run_rambda(testbed: &Testbed, params: &DlrmParams, location: DataLocation) -> RunStats {
    rambda::rambda_stats_only_ctx!(ctx);
    run_rambda_inner(testbed, params, location, ctx)
}

fn run_rambda_inner(
    testbed: &Testbed,
    params: &DlrmParams,
    location: DataLocation,
    ctx: SimCtx<'_>,
) -> RunStats {
    let SimCtx { rec, resources, tracer, faults, profile, scopes, exec } = ctx;
    let mut net = Network::new(testbed.net.clone());
    net.install_faults(faults);
    if profile {
        net.enable_lookahead();
    }
    let mut client = rambda::Machine::new(CLIENT, testbed, false);
    let mut server = rambda::Machine::new(SERVER, testbed, false);
    let mut engine = AccelEngine::new(testbed.accel_config(location, true));
    let mut world = DlrmWorld::new(params);
    let mut preprocess_cores = CpuServer::new(testbed.cpu.clone(), params.costs.preprocess_cores, 16);
    let mut dispatch = Server::new(1);
    let ring_kind = match location {
        DataLocation::LocalDdr => MemKind::AccelDdr,
        DataLocation::LocalHbm => MemKind::AccelHbm,
        _ => MemKind::Dram,
    };
    let ring_mr = server.rnic.register_region(MrInfo::adaptive(ring_kind));
    let client_mr = client.rnic.register_region(MrInfo::adaptive(MemKind::Dram));
    let req_opts = WriteOpts { post: PostPath::HostMmio, batch: 16, flags: PostFlags::NONE };
    let resp_opts = WriteOpts { post: PostPath::AccelMmio, batch: 16, flags: PostFlags::NONE };
    let row = params.row_bytes();
    let costs = params.costs.clone();
    let clients = params.clients;
    let local_row = (row as f64 * costs.local_gather_overhead) as u64;
    let scope_names = params.scope_names();

    let lookahead = net.min_lookahead();
    let stats = run_closed_loop_exec(&params.driver(), exec, lookahead, |_c, at| {
        let mut tr = tracer.observe(rec, at);
        let (plan, wire, _score) = world.next_query(params);
        observe_plan(scopes, &plan);
        let table = params.scope_of(&plan);
        let fin = 'query: {
            // Request into the accelerator's ring.
            let out = match rdma_write(
                at,
                &mut client.rnic,
                &mut server.rnic,
                &mut net,
                &mut server.mem,
                &mut client.mem,
                ring_mr,
                wire,
                req_opts,
            ) {
                Ok(out) => out,
                Err(e) => break 'query shed(tr, &e),
            };
            tr.leg("fabric_request", out.delivered_at);
            let discovered = engine.discover(out.delivered_at, clients, &mut world.rng);
            tr.leg("coherence", discovered);
            let start = engine.claim_slot(discovered);
            tr.leg("dispatch", start);
            // Hand the raw request to a host core for pre-processing through
            // the intra-machine ring, and get the model-ready input back.
            let sent = engine.ring_write(start, wire, &mut server.mem);
            tr.leg("ring_write", sent);
            let preprocessed = preprocess_cores.occupy(sent, costs.preprocess);
            tr.leg("cpu_preprocess", preprocessed);
            let input_back = engine.ring_read(preprocessed, wire, &mut server.mem);
            tr.leg("ring_read", input_back);
            // Scheduler/(de)serializer occupancy (serial per query).
            let disp = dispatch.acquire(input_back, costs.apu_dispatch) + costs.apu_dispatch;
            tr.leg("apu_dispatch", disp);
            // The embedding reduction: 64 outstanding gathers per query
            // (Sec. IV-C), bandwidth-bound on the chosen memory.
            let rows = plan.lookups();
            let gathered = if location.is_host() {
                engine.gather(disp, rows, row, &mut server.mem)
            } else {
                engine.gather(disp, rows, local_row, &mut server.mem)
            };
            tr.leg("gather", gathered);
            // FC layers on the APU, then respond through the RNIC.
            let fc_done = gathered + costs.mlp_apu;
            tr.leg("apu_compute", fc_done);
            let wqe = engine.sq_write_wqe(fc_done);
            tr.leg("doorbell", wqe);
            engine.release_slot(discovered, wqe);
            let resp = match rdma_write(
                wqe,
                &mut server.rnic,
                &mut client.rnic,
                &mut net,
                &mut client.mem,
                &mut server.mem,
                client_mr,
                16,
                resp_opts,
            ) {
                Ok(resp) => resp,
                Err(e) => break 'query shed(tr, &e),
            };
            tr.leg("fabric_response", resp.delivered_at);
            tr.finish(resp.delivered_at);
            tracer.sample_with(rec, at, |s| {
                client.publish_metrics(s, "client");
                server.publish_metrics(s, "server");
                engine.publish_metrics(s, "accel");
                preprocess_cores.publish_metrics(s, "preprocess");
                s.observe_server("apu_dispatch", &dispatch);
                net.publish_metrics(s, "net");
            });
            resp.delivered_at
        };
        // Scope attribution covers shed queries too: every traced query
        // lands in exactly one embedding-table partition.
        scopes.record(&scope_names[table], at, fin);
        fin
    });
    drain_faults(&mut net, tracer);
    if rec.is_active() {
        client.publish_metrics(resources, "client");
        server.publish_metrics(resources, "server");
        engine.publish_metrics(resources, "accel");
        preprocess_cores.publish_metrics(resources, "preprocess");
        resources.observe_server("apu_dispatch", &dispatch);
        net.publish_metrics(resources, "net");
        net.publish_lookahead(resources, "net");
        net.publish_scoped(scopes, "net");
        tracer.final_sample(SimTime::ZERO + stats.makespan, resources);
    }
    stats
}

/// Charges a memory write without advancing time (placeholder for response
/// bookkeeping; kept for symmetry and bandwidth accounting in ablations).
#[allow(dead_code)]
fn charge_write(mem: &mut MemorySystem, at: rambda_des::SimTime, kind: MemKind, bytes: u64) {
    mem.access(at, MemReq { kind, access: AccessKind::Write, bytes });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb() -> Testbed {
        Testbed::default()
    }

    fn books() -> DlrmParams {
        DlrmParams::quick(DlrmProfile::by_name("Books").unwrap())
    }

    #[test]
    fn fig13_books_matches_paper_bands() {
        let p = books();
        let c1 = run_cpu(&tb(), &p, 1).throughput_mops();
        let c8 = run_cpu(&tb(), &p, 8).throughput_mops();
        let r = run_rambda(&tb(), &p, DataLocation::HostDram).throughput_mops();
        let ld = run_rambda(&tb(), &p, DataLocation::LocalDdr).throughput_mops();
        let lh = run_rambda(&tb(), &p, DataLocation::LocalHbm).throughput_mops();

        // CPU scales ~linearly to 8 cores.
        let scale = c8 / c1;
        assert!((6.0..8.5).contains(&scale), "8-core scaling {scale}");
        // Rambda: 19.7%-31.3% of a single core.
        let r_ratio = r / c1;
        assert!((0.15..0.40).contains(&r_ratio), "rambda/c1 = {r_ratio}");
        // LD: 52.8%-95.3% of eight cores.
        let ld_ratio = ld / c8;
        assert!((0.45..1.05).contains(&ld_ratio), "ld/c8 = {ld_ratio}");
        // LH: 1.6x-3.1x the CPU (network becomes the limit).
        let lh_ratio = lh / c8;
        assert!((1.3..3.5).contains(&lh_ratio), "lh/c8 = {lh_ratio}");
        assert!(lh > ld);
    }

    #[test]
    fn fig13_sixteen_cores_saturate() {
        // "scales linearly until eight cores, bounded by memory bandwidth".
        let p = books();
        let c8 = run_cpu(&tb(), &p, 8).throughput_mops();
        let c16 = run_cpu(&tb(), &p, 16).throughput_mops();
        let gain = c16 / c8;
        assert!((1.0..1.9).contains(&gain), "16/8 = {gain}");
    }

    #[test]
    fn fig13_ordering_holds_for_every_dataset() {
        for profile in DlrmProfile::all() {
            let mut p = DlrmParams::quick(profile);
            p.queries = 3_000;
            let c1 = run_cpu(&tb(), &p, 1).throughput_mops();
            let c8 = run_cpu(&tb(), &p, 8).throughput_mops();
            let r = run_rambda(&tb(), &p, DataLocation::HostDram).throughput_mops();
            let lh = run_rambda(&tb(), &p, DataLocation::LocalHbm).throughput_mops();
            let name = p.profile.name;
            assert!(r < 0.7 * c1, "{name}: rambda {r} vs c1 {c1}");
            assert!(lh > c8, "{name}: lh {lh} vs c8 {c8}");
            assert!(c8 > c1 * 5.0, "{name}: c8 {c8} vs c1 {c1}");
        }
    }

    #[test]
    fn merci_beats_native_reduction() {
        let p = books();
        let native = DlrmParams { merci: false, ..p.clone() };
        let with = run_cpu(&tb(), &p, 8).throughput_mops();
        let without = run_cpu(&tb(), &native, 8).throughput_mops();
        assert!(with > 1.15 * without, "merci {with} vs native {without}");
    }

    #[test]
    fn functional_scores_are_deterministic() {
        let p = books();
        let mut a = DlrmWorld::new(&p);
        let mut b = DlrmWorld::new(&p);
        for _ in 0..50 {
            let (pa, wa, sa) = a.next_query(&p);
            let (pb, wb, sb) = b.next_query(&p);
            assert_eq!(pa, pb);
            assert_eq!(wa, wb);
            assert_eq!(sa, sb);
        }
    }
}
