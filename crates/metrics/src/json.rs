//! A tiny deterministic JSON value + encoder.
//!
//! The golden-report tests gate on byte-identical output across runs and
//! machines, so the encoder makes every choice explicitly: object keys keep
//! their insertion order (producers insert from `BTreeMap`s, so keys arrive
//! sorted), floats render with Rust's shortest-round-trip formatting, and
//! non-finite floats become `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every counter in a report).
    U64(u64),
    /// A float (throughput, utilization). Non-finite renders as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in the order they were inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Renders the value as pretty-printed JSON with two-space indentation
    /// and a trailing newline (the canonical golden-file format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a ".0" on integral floats and is the
                    // shortest representation that round-trips.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => Self::write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    Self::pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                Self::pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    Self::pad(out, indent + 1);
                    Self::write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                Self::pad(out, indent);
                out.push('}');
            }
        }
    }

    fn pad(out: &mut String, indent: usize) {
        for _ in 0..indent {
            out.push_str("  ");
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::U64(42).render(), "42\n");
        assert_eq!(Json::F64(1.0).render(), "1.0\n");
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
        assert_eq!(Json::Str("hi".into()).render(), "\"hi\"\n");
    }

    #[test]
    fn strings_escape_controls() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let mut o = Json::obj();
        o.push("z", Json::U64(1)).push("a", Json::U64(2));
        assert_eq!(o.render(), "{\n  \"z\": 1,\n  \"a\": 2\n}\n");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::obj().render(), "{}\n");
        assert_eq!(Json::Arr(Vec::new()).render(), "[]\n");
    }

    #[test]
    fn nested_structure_indents() {
        let mut inner = Json::obj();
        inner.push("k", Json::U64(1));
        let mut outer = Json::obj();
        outer.push("arr", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        outer.push("obj", inner);
        let expect = "{\n  \"arr\": [\n    1,\n    2\n  ],\n  \"obj\": {\n    \"k\": 1\n  }\n}\n";
        assert_eq!(outer.render(), expect);
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_on_scalar_panics() {
        Json::U64(1).push("k", Json::Null);
    }
}
