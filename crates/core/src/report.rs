//! Glue between [`RunStats`] and [`rambda_metrics::RunReport`].

use rambda_metrics::{HistSummary, MetricSet, RunReport, StageRecorder};

use crate::driver::RunStats;

/// Assembles a [`RunReport`] from a finished run: the driver's measured
/// stats become the headline summary, the recorder supplies the per-stage
/// breakdown and its windowed timeline (finalized here against the run
/// makespan and the final resource counters, closing the busy-time
/// identity exactly), and `resources` carries whatever the runner's
/// components published.
pub fn build_report(
    name: &str,
    seed: u64,
    stats: &RunStats,
    rec: &mut StageRecorder,
    resources: MetricSet,
) -> RunReport {
    rec.finalize_timeline(stats.makespan, &resources);
    RunReport::new(
        name,
        seed,
        stats.completed,
        stats.throughput_ops,
        stats.makespan,
        HistSummary::of(&stats.latency),
        rec,
        resources,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_closed_loop, DriverConfig};
    use rambda_des::{Server, Span};

    #[test]
    fn report_from_driver_stats_validates() {
        let mut server = Server::new(2);
        let mut rec = StageRecorder::active();
        let cfg = DriverConfig::new(2, 5_000);
        let stats = run_closed_loop(&cfg, |_c, at| {
            let mut tr = rec.trace(at);
            let start = server.acquire(at, Span::from_ns(100));
            tr.leg("queue", start);
            let done = start + Span::from_ns(100);
            tr.leg("service", done);
            tr.finish(done);
            done
        });
        let mut resources = MetricSet::new();
        resources.observe_server("server", &server);
        let report = build_report("driver.test", 0, &stats, &mut rec, resources);
        report.validate().expect("consistent report");
        let tl = report.timeline.as_ref().expect("active recorder carries a timeline");
        assert_eq!(tl.merged, report.total);
        let busy: u64 = tl.resources.iter().find(|r| r.name == "server").unwrap().busy_delta_ps.iter().sum();
        assert_eq!(busy, report.resources.counter("server.busy_ps").unwrap());
        assert_eq!(report.completed, stats.completed);
        assert!(report.resources.counter("server.acquisitions").unwrap() >= 5_000);
        let util = report.resources.gauge_value("server.utilization").unwrap();
        assert!(util > 0.0 && util <= 1.0, "utilization {util}");
    }
}
