//! Negative fixture for rule R10: the scoped-metrics mirrors are published
//! under the `scope.` and `hot.` prefixes, and a *generic* conservation
//! identity (`validate_totals`) mentions every one of them — which is enough
//! to satisfy R9, but R10 requires the dedicated `validate_scopes` fn to
//! guard them. Only `scope.count` made it there, so `scope.latency_ps` and
//! `hot.top_hits` must both be flagged — by R10 alone, never R9.
//! Never compiled — scanned by xtask/tests.

#![forbid(unsafe_code)]

/// Per-scope rollup totals.
pub struct ScopesSummary;

impl ScopesSummary {
    /// Mirrors the scoped registry into the flat MetricSet.
    pub fn publish_metrics(&self, m: &mut MetricSet) {
        m.set("scope.count", self.scopes);
        m.set("scope.latency_ps", self.latency_ps);
        m.set("hot.top_hits", self.top_hits);
    }
}

/// Generic identity: names every mirror, so R9 is satisfied — but this is
/// not `validate_scopes`, so it buys no R10 coverage.
pub fn validate_totals(totals: &Totals) -> Result<(), String> {
    let _ = (totals.sum("scope.count"), totals.sum("scope.latency_ps"));
    let _ = totals.sum("hot.top_hits");
    Ok(())
}

/// The dedicated scope identity covers only one of the three mirrors.
pub fn validate_scopes(totals: &Totals) -> Result<(), String> {
    if totals.sum("scope.count") == 0 {
        return Err("scoped run recorded nothing".into());
    }
    Ok(())
}
