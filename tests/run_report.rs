//! Golden run-report tests: quick-mode observability reports must be
//! byte-identical across runs and across commits.
//!
//! Each test renders a [`RunReport`] to its canonical JSON and compares it
//! against a snapshot under `tests/goldens/`. A drift means either a
//! behavioural change in a simulator (expected: regenerate with
//! `RAMBDA_UPDATE_GOLDENS=1 cargo test -p rambda-integration-tests`) or a
//! nondeterminism bug (never acceptable).

use std::fs;
use std::path::PathBuf;

use rambda::micro::MicroParams;
use rambda::{Design, SimBuilder, Testbed};
use rambda_accel::DataLocation;
use rambda_dlrm::{DlrmDesigns, DlrmParams};
use rambda_kvs::{KvsDesigns, KvsParams};
use rambda_metrics::RunReport;
use rambda_txn::{TxnDesigns, TxnParams};
use rambda_workloads::{DlrmProfile, TxnSpec};

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens")
}

/// Validates `report` and compares its JSON against `tests/goldens/{name}.json`.
fn check_golden(name: &str, report: &RunReport) {
    report.validate().unwrap_or_else(|e| panic!("{name}: inconsistent report: {e}"));
    let rendered = report.to_json_string();
    let path = goldens_dir().join(format!("{name}.json"));
    if std::env::var_os("RAMBDA_UPDATE_GOLDENS").is_some() {
        fs::create_dir_all(goldens_dir()).unwrap();
        fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); generate it with RAMBDA_UPDATE_GOLDENS=1", path.display())
    });
    assert_eq!(
        rendered, golden,
        "{name}: run report drifted from its golden snapshot; if the simulator \
         change is intentional, regenerate with RAMBDA_UPDATE_GOLDENS=1"
    );
}

fn micro_report() -> RunReport {
    SimBuilder::new(Design::micro_rambda(MicroParams::quick(), DataLocation::HostDram, true, 1))
        .config(&Testbed::default())
        .run()
}

fn kvs_report() -> RunReport {
    SimBuilder::new(Design::kvs_rambda(KvsParams::quick(), DataLocation::HostDram))
        .config(&Testbed::default())
        .run()
}

fn txn_report() -> RunReport {
    SimBuilder::new(Design::txn_rambda_tx(TxnParams::quick(TxnSpec::read_write(64))))
        .config(&Testbed::default())
        .run()
}

#[test]
fn golden_micro_rambda_report() {
    check_golden("micro_rambda", &micro_report());
}

#[test]
fn golden_kvs_rambda_report() {
    check_golden("kvs_rambda", &kvs_report());
}

#[test]
fn golden_txn_rambda_report() {
    check_golden("txn_rambda", &txn_report());
}

#[test]
fn reports_are_deterministic_across_runs() {
    // Two fresh worlds, same seed: byte-identical JSON. This is the
    // invariant the golden files rely on.
    assert_eq!(micro_report().to_json_string(), micro_report().to_json_string());
    assert_eq!(kvs_report().to_json_string(), kvs_report().to_json_string());
    assert_eq!(txn_report().to_json_string(), txn_report().to_json_string());
}

#[test]
fn every_runner_emits_a_consistent_report() {
    // The acceptance bar: each design's per-stage breakdown must partition
    // its traced critical path and agree with the measured RunStats
    // histogram (RunReport::validate checks both).
    let tb = Testbed::default();

    let mp = MicroParams { requests: 4_000, ..MicroParams::quick() };
    let kp = KvsParams { requests: 4_000, ..KvsParams::quick() };
    let xp = TxnParams { txns: 1_000, ..TxnParams::quick(TxnSpec::read_write(64)) };
    let dp = DlrmParams { queries: 2_000, ..DlrmParams::quick(DlrmProfile::by_name("Books").unwrap()) };
    let designs = vec![
        Design::micro_cpu(mp, 8, 16),
        Design::micro_rambda(mp, DataLocation::HostDram, true, 1),
        Design::kvs_cpu(kp.clone()),
        Design::kvs_rambda(kp.clone(), DataLocation::HostDram),
        Design::kvs_smartnic(kp),
        Design::txn_hyperloop(xp.clone()),
        Design::txn_rambda_tx(xp),
        Design::dlrm_cpu(dp.clone(), 8),
        Design::dlrm_rambda(dp, DataLocation::HostDram),
    ];
    let reports: Vec<RunReport> = designs.into_iter().map(|d| SimBuilder::new(d).config(&tb).run()).collect();

    let expected_names = [
        "micro.cpu",
        "micro.rambda",
        "kvs.cpu",
        "kvs.rambda",
        "kvs.smartnic",
        "txn.hyperloop",
        "txn.rambda_tx",
        "dlrm.cpu",
        "dlrm.rambda",
    ];
    assert_eq!(reports.len(), expected_names.len());
    for (report, expected) in reports.iter().zip(expected_names) {
        assert_eq!(report.name, expected);
        report.validate().unwrap_or_else(|e| panic!("{expected}: {e}"));
        assert!(report.completed > 0, "{expected}: no completions");
        assert!(!report.stages.is_empty(), "{expected}: no stage breakdown");
        assert!(!report.resources.is_empty(), "{expected}: no resource counters");
        // Every report carries at least one derived utilization gauge.
        assert!(
            report.resources.gauges().any(|(k, _)| k.ends_with(".utilization")),
            "{expected}: no utilization gauges"
        );
    }
}
