//! Deterministic space-saving top-K sketch for hot-key detection.
//!
//! The Metwally–Agrawal–Abbadi *space-saving* algorithm keeps at most `k`
//! monitored keys. A hit on a monitored key increments its counter; a miss
//! when the sketch is full evicts the minimum-count entry and the new key
//! inherits that count (recorded as the entry's overestimation error). Two
//! guarantees follow for a stream of `N` observations:
//!
//! - every key whose true frequency exceeds `N / k` is monitored, and
//! - each monitored count overestimates the true count by at most the
//!   entry's recorded `err` (itself bounded by `N / k`).
//!
//! An entry with `err == 0` was never evicted, so its count is *exact* —
//! the property the scoped-observability tests verify against brute-force
//! counts (DESIGN.md §15).
//!
//! Determinism is structural: storage is a `BTreeMap` keyed by the observed
//! key (rule R1), eviction picks the minimum count with the smallest key
//! breaking ties (`BTreeMap` iteration order), and ranking sorts by count
//! descending then key ascending. Same observation sequence, same sketch —
//! byte for byte.

use std::collections::BTreeMap;

use crate::json::Json;

/// One monitored entry: the estimated count and its overestimation bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    count: u64,
    err: u64,
}

/// A ranked row returned by [`TopKSketch::top`]: key, estimated count, and
/// the count's overestimation bound (`0` means the count is exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchEntry {
    /// The observed key.
    pub key: u64,
    /// Estimated observation count (true count ≤ `count` ≤ true + `err`).
    pub count: u64,
    /// Overestimation bound inherited from the evicted predecessor.
    pub err: u64,
}

/// Deterministic space-saving sketch over `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKSketch {
    capacity: usize,
    entries: BTreeMap<u64, Entry>,
    observed: u64,
}

impl TopKSketch {
    /// Creates a sketch monitoring at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a sketch needs at least one slot");
        TopKSketch { capacity, entries: BTreeMap::new(), observed: 0 }
    }

    /// Records one observation of `key`.
    pub fn observe(&mut self, key: u64) {
        self.observe_n(key, 1);
    }

    /// Records `weight` observations of `key` at once.
    pub fn observe_n(&mut self, key: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.observed = self.observed.saturating_add(weight);
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.count = entry.count.saturating_add(weight);
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(key, Entry { count: weight, err: 0 });
            return;
        }
        // Space-saving eviction: replace the minimum-count entry; the
        // newcomer inherits its count as the overestimation bound.
        // `min_by_key` returns the first minimum, and `BTreeMap` iterates
        // keys ascending, so ties break on the smallest key: deterministic.
        let (&victim, &entry) =
            self.entries.iter().min_by_key(|(_, e)| e.count).expect("sketch is full, hence non-empty");
        self.entries.remove(&victim);
        self.entries.insert(key, Entry { count: entry.count.saturating_add(weight), err: entry.count });
    }

    /// Total observations fed into the sketch.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of keys currently monitored (≤ capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sketch has seen nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Monitored-key capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The estimated count of `key`, if monitored.
    pub fn count(&self, key: u64) -> Option<u64> {
        self.entries.get(&key).map(|e| e.count)
    }

    /// Every monitored key ranked by count descending, key ascending on
    /// ties — a total, deterministic order.
    pub fn top(&self) -> Vec<SketchEntry> {
        let mut rows: Vec<SketchEntry> =
            self.entries.iter().map(|(&key, e)| SketchEntry { key, count: e.count, err: e.err }).collect();
        rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        rows
    }

    /// Renders the ranking as a deterministic JSON array of
    /// `{"key", "count", "err"}` rows.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.top()
                .into_iter()
                .map(|row| {
                    let mut o = Json::obj();
                    o.push("key", Json::U64(row.key));
                    o.push("count", Json::U64(row.count));
                    o.push("err", Json::U64(row.err));
                    o
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts_below_capacity() {
        let mut s = TopKSketch::new(8);
        for _ in 0..5 {
            s.observe(3);
        }
        for _ in 0..2 {
            s.observe(9);
        }
        assert_eq!(s.count(3), Some(5));
        assert_eq!(s.count(9), Some(2));
        assert_eq!(s.observed(), 7);
        let top = s.top();
        assert_eq!(top[0], SketchEntry { key: 3, count: 5, err: 0 });
        assert_eq!(top[1], SketchEntry { key: 9, count: 2, err: 0 });
    }

    #[test]
    fn eviction_tracks_error_and_never_underestimates() {
        let mut s = TopKSketch::new(2);
        s.observe(1);
        s.observe(1);
        s.observe(2);
        // Sketch full: key 3 evicts the minimum (key 2, count 1) and
        // inherits its count as error.
        s.observe(3);
        assert_eq!(s.count(2), None);
        assert_eq!(s.count(3), Some(2));
        let row = s.top().into_iter().find(|r| r.key == 3).unwrap();
        assert_eq!(row.err, 1, "inherited count is the overestimation bound");
        // True count of 3 is 1; estimate 2; estimate - err == 1 == truth.
        assert_eq!(row.count - row.err, 1);
    }

    #[test]
    fn eviction_tie_breaks_on_smallest_key() {
        let mut s = TopKSketch::new(2);
        s.observe(10);
        s.observe(20); // both count 1
        s.observe(30); // evicts key 10 (smallest among the minimum counts)
        assert_eq!(s.count(10), None);
        assert_eq!(s.count(20), Some(1));
        assert_eq!(s.count(30), Some(2));
    }

    #[test]
    fn hot_keys_survive_a_skewed_stream_with_exact_counts() {
        // A Zipf-like stream: key 0 dominates. The hot key enters first and
        // is never the minimum, so its count stays exact (err == 0).
        let mut s = TopKSketch::new(4);
        let mut exact = std::collections::BTreeMap::new();
        for i in 0..1000u64 {
            let key = if i % 2 == 0 { 0 } else { 1 + (i % 97) };
            s.observe(key);
            *exact.entry(key).or_insert(0u64) += 1;
        }
        let top = s.top();
        assert_eq!(top[0].key, 0);
        assert_eq!(top[0].err, 0, "the dominant key is never evicted");
        assert_eq!(top[0].count, exact[&0]);
        // Space-saving bound: every estimate is within err of the truth.
        for row in &top {
            let truth = exact.get(&row.key).copied().unwrap_or(0);
            assert!(row.count >= truth, "never underestimates: {row:?} truth {truth}");
            assert!(row.count - row.err <= truth, "err bounds the overshoot: {row:?} truth {truth}");
        }
    }

    #[test]
    fn same_stream_same_sketch() {
        let run = || {
            let mut s = TopKSketch::new(3);
            for i in 0..500u64 {
                s.observe((i * i) % 17);
            }
            s.to_json().render()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn weighted_observations_accumulate() {
        let mut s = TopKSketch::new(2);
        s.observe_n(5, 10);
        s.observe_n(5, 0); // no-op
        assert_eq!(s.count(5), Some(10));
        assert_eq!(s.observed(), 10);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        TopKSketch::new(0);
    }

    #[test]
    fn json_rows_are_ranked() {
        let mut s = TopKSketch::new(4);
        s.observe_n(7, 3);
        s.observe_n(2, 5);
        let text = s.to_json().render();
        let two = text.find("\"key\": 2").unwrap();
        let seven = text.find("\"key\": 7").unwrap();
        assert!(two < seven, "higher count ranks first: {text}");
    }
}
