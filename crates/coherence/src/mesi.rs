//! A functional MESI directory.
//!
//! Tracks, per 64 B line, which agents hold the line and in what state, and
//! reports the coherence events each access generates. The accelerator's
//! cpoll checker subscribes to the invalidation events (a remote write to a
//! line the accelerator holds Modified/Exclusive produces exactly the
//! "Modified → Invalid" signal Sec. III-B describes).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A coherence agent: a CPU socket, the cc-accelerator, or an I/O bridge
/// performing DMA into the coherent domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AgentId(pub u8);

impl AgentId {
    /// Conventional id for the host CPU.
    pub const CPU: AgentId = AgentId(0);
    /// Conventional id for the cc-accelerator.
    pub const ACCEL: AgentId = AgentId(1);
    /// Conventional id for the I/O bridge (RNIC DMA enters here).
    pub const IO: AgentId = AgentId(2);
}

/// A 64 B-aligned line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The line containing byte address `byte`.
    pub fn containing(byte: u64) -> Self {
        LineAddr(byte & !63)
    }
}

/// MESI state of a line in one agent's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LineState {
    /// Dirty, exclusive to one agent.
    Modified,
    /// Clean, exclusive to one agent.
    Exclusive,
    /// Clean, possibly in several agents.
    Shared,
    /// Not present.
    Invalid,
}

/// A coherence event produced by an access, delivered to the affected agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoherenceEvent {
    /// `agent`'s copy of `line` was invalidated by a write elsewhere.
    /// This is the signal the cpoll checker snoops.
    Invalidated {
        /// The agent that lost its copy.
        agent: AgentId,
        /// The line that was invalidated.
        line: LineAddr,
        /// Whether the lost copy was dirty (M → I, forcing a writeback).
        was_dirty: bool,
    },
    /// `agent`'s exclusive/modified copy was downgraded to Shared by a read
    /// elsewhere.
    Downgraded {
        /// The agent whose copy was downgraded.
        agent: AgentId,
        /// The affected line.
        line: LineAddr,
    },
}

/// A MESI directory over all lines touched so far.
///
/// ```
/// use rambda_coherence::{AgentId, Directory, LineAddr, LineState};
///
/// let mut dir = Directory::new();
/// dir.write(AgentId::ACCEL, LineAddr(0)); // accelerator owns the ring slot
/// let events = dir.write(AgentId::IO, LineAddr(0)); // RNIC writes a request
/// assert_eq!(events.len(), 1); // the accelerator sees M -> I: a cpoll signal
/// assert_eq!(dir.state(AgentId::ACCEL, LineAddr(0)), LineState::Invalid);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Directory {
    // Ordered map so any whole-directory walk is address-ordered and the
    // event streams it produces are reproducible across runs.
    lines: BTreeMap<LineAddr, Vec<(AgentId, LineState)>>,
    invalidations: u64,
    downgrades: u64,
}

impl Directory {
    /// Creates an empty directory (all lines Invalid everywhere).
    pub fn new() -> Self {
        Directory::default()
    }

    /// The state of `line` in `agent`'s cache.
    pub fn state(&self, agent: AgentId, line: LineAddr) -> LineState {
        self.lines
            .get(&line)
            .and_then(|holders| holders.iter().find(|(a, _)| *a == agent))
            .map(|(_, s)| *s)
            .unwrap_or(LineState::Invalid)
    }

    /// All agents currently holding `line` in a non-Invalid state.
    pub fn holders(&self, line: LineAddr) -> Vec<(AgentId, LineState)> {
        self.lines
            .get(&line)
            .map(|h| h.iter().filter(|(_, s)| *s != LineState::Invalid).copied().collect())
            .unwrap_or_default()
    }

    /// Total invalidation events emitted.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Total downgrade events emitted.
    pub fn downgrades(&self) -> u64 {
        self.downgrades
    }

    fn set(&mut self, agent: AgentId, line: LineAddr, state: LineState) {
        let holders = self.lines.entry(line).or_default();
        if let Some(entry) = holders.iter_mut().find(|(a, _)| *a == agent) {
            entry.1 = state;
        } else if state != LineState::Invalid {
            holders.push((agent, state));
        }
    }

    /// `agent` reads `line`; returns the coherence events other agents see.
    pub fn read(&mut self, agent: AgentId, line: LineAddr) -> Vec<CoherenceEvent> {
        let mut events = Vec::new();
        let holders = self.lines.entry(line).or_default().clone();
        let mut any_other = false;
        for (other, state) in holders {
            if other == agent {
                continue;
            }
            match state {
                LineState::Modified | LineState::Exclusive => {
                    // Downgrade the owner to Shared (dirty data forwarded).
                    self.set(other, line, LineState::Shared);
                    events.push(CoherenceEvent::Downgraded { agent: other, line });
                    self.downgrades += 1;
                    any_other = true;
                }
                LineState::Shared => any_other = true,
                LineState::Invalid => {}
            }
        }
        let new_state = if any_other { LineState::Shared } else { LineState::Exclusive };
        // A reader that already held the line keeps its (possibly dirty) copy.
        match self.state(agent, line) {
            LineState::Modified | LineState::Exclusive => {}
            _ => self.set(agent, line, new_state),
        }
        events
    }

    /// `agent` writes `line`; returns the coherence events other agents see
    /// (these are what cpoll snoops).
    pub fn write(&mut self, agent: AgentId, line: LineAddr) -> Vec<CoherenceEvent> {
        let mut events = Vec::new();
        let holders = self.lines.entry(line).or_default().clone();
        for (other, state) in holders {
            if other == agent || state == LineState::Invalid {
                continue;
            }
            let was_dirty = state == LineState::Modified;
            self.set(other, line, LineState::Invalid);
            events.push(CoherenceEvent::Invalidated { agent: other, line, was_dirty });
            self.invalidations += 1;
        }
        self.set(agent, line, LineState::Modified);
        events
    }

    /// `agent` evicts (or writes back) `line` from its cache.
    pub fn evict(&mut self, agent: AgentId, line: LineAddr) {
        self.set(agent, line, LineState::Invalid);
    }

    /// Checks the single-writer/multi-reader invariant for `line`.
    ///
    /// Returns an error message describing the violation, if any.
    pub fn check_invariants(&self, line: LineAddr) -> Result<(), String> {
        let holders = self.holders(line);
        let exclusive =
            holders.iter().filter(|(_, s)| matches!(s, LineState::Modified | LineState::Exclusive)).count();
        if exclusive > 1 {
            return Err(format!("line {line:?} has {exclusive} exclusive owners: {holders:?}"));
        }
        if exclusive == 1 && holders.len() > 1 {
            return Err(format!("line {line:?} mixes exclusive and shared holders: {holders:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_alignment() {
        assert_eq!(LineAddr::containing(0), LineAddr(0));
        assert_eq!(LineAddr::containing(63), LineAddr(0));
        assert_eq!(LineAddr::containing(64), LineAddr(64));
        assert_eq!(LineAddr::containing(130), LineAddr(128));
    }

    #[test]
    fn first_read_is_exclusive() {
        let mut dir = Directory::new();
        let events = dir.read(AgentId::CPU, LineAddr(0));
        assert!(events.is_empty());
        assert_eq!(dir.state(AgentId::CPU, LineAddr(0)), LineState::Exclusive);
    }

    #[test]
    fn second_reader_shares_and_downgrades_owner() {
        let mut dir = Directory::new();
        dir.write(AgentId::CPU, LineAddr(0));
        let events = dir.read(AgentId::ACCEL, LineAddr(0));
        assert_eq!(events, vec![CoherenceEvent::Downgraded { agent: AgentId::CPU, line: LineAddr(0) }]);
        assert_eq!(dir.state(AgentId::CPU, LineAddr(0)), LineState::Shared);
        assert_eq!(dir.state(AgentId::ACCEL, LineAddr(0)), LineState::Shared);
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut dir = Directory::new();
        dir.read(AgentId::CPU, LineAddr(64));
        dir.read(AgentId::ACCEL, LineAddr(64));
        let events = dir.write(AgentId::IO, LineAddr(64));
        assert_eq!(events.len(), 2);
        assert_eq!(dir.state(AgentId::CPU, LineAddr(64)), LineState::Invalid);
        assert_eq!(dir.state(AgentId::ACCEL, LineAddr(64)), LineState::Invalid);
        assert_eq!(dir.state(AgentId::IO, LineAddr(64)), LineState::Modified);
        assert_eq!(dir.invalidations(), 2);
    }

    #[test]
    fn m_to_i_signal_carries_dirty_flag() {
        // This is the exact cpoll trigger: the accelerator owns the ring
        // line Modified; a remote write invalidates it.
        let mut dir = Directory::new();
        dir.write(AgentId::ACCEL, LineAddr(0));
        let events = dir.write(AgentId::IO, LineAddr(0));
        assert_eq!(
            events,
            vec![CoherenceEvent::Invalidated { agent: AgentId::ACCEL, line: LineAddr(0), was_dirty: true }]
        );
    }

    #[test]
    fn clean_invalidation_is_not_dirty() {
        let mut dir = Directory::new();
        dir.read(AgentId::ACCEL, LineAddr(0));
        let events = dir.write(AgentId::IO, LineAddr(0));
        assert_eq!(
            events,
            vec![CoherenceEvent::Invalidated { agent: AgentId::ACCEL, line: LineAddr(0), was_dirty: false }]
        );
    }

    #[test]
    fn rewriting_own_modified_line_is_silent() {
        let mut dir = Directory::new();
        dir.write(AgentId::ACCEL, LineAddr(0));
        let events = dir.write(AgentId::ACCEL, LineAddr(0));
        assert!(events.is_empty());
        assert_eq!(dir.state(AgentId::ACCEL, LineAddr(0)), LineState::Modified);
    }

    #[test]
    fn owner_keeps_dirty_copy_on_own_read() {
        let mut dir = Directory::new();
        dir.write(AgentId::CPU, LineAddr(0));
        dir.read(AgentId::CPU, LineAddr(0));
        assert_eq!(dir.state(AgentId::CPU, LineAddr(0)), LineState::Modified);
    }

    #[test]
    fn evict_clears_state() {
        let mut dir = Directory::new();
        dir.write(AgentId::CPU, LineAddr(0));
        dir.evict(AgentId::CPU, LineAddr(0));
        assert_eq!(dir.state(AgentId::CPU, LineAddr(0)), LineState::Invalid);
        assert!(dir.holders(LineAddr(0)).is_empty());
    }

    #[test]
    fn invariants_hold_after_mixed_traffic() {
        let mut dir = Directory::new();
        let agents = [AgentId::CPU, AgentId::ACCEL, AgentId::IO];
        for i in 0..100u64 {
            let line = LineAddr((i % 7) * 64);
            let agent = agents[(i % 3) as usize];
            if i % 2 == 0 {
                dir.write(agent, line);
            } else {
                dir.read(agent, line);
            }
            dir.check_invariants(line).unwrap();
        }
    }
}
