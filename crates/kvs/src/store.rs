//! The functional MICA-style key-value store (Sec. IV-A).
//!
//! Layout follows the paper's description: a set-associative hash table
//! whose bucket entries hold a key tag and a pointer into a slab-allocated
//! value pool; full buckets chain to freshly allocated overflow buckets.
//! Every operation returns an [`OpTrace`] counting the distinct memory
//! locations it touched (bucket lines, chained bucket lines, the value
//! slab), which the serving designs translate into timed memory accesses.

use serde::{Deserialize, Serialize};

/// Bucket associativity (entries per bucket line).
const WAYS: usize = 8;

/// Store geometry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KvConfig {
    /// Number of primary buckets (rounded up to a power of two).
    pub buckets: usize,
    /// Value bytes per pair (64 B in the evaluation).
    pub value_bytes: usize,
}

impl KvConfig {
    /// Geometry sized for `pairs` pairs at ~50 % primary-bucket load.
    pub fn for_pairs(pairs: usize, value_bytes: usize) -> Self {
        let buckets = (pairs * 2 / WAYS).next_power_of_two().max(16);
        KvConfig { buckets, value_bytes }
    }
}

/// The memory touches of one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpTrace {
    /// Bucket lines read (primary + chained).
    pub bucket_reads: usize,
    /// Value-slab lines read.
    pub value_reads: usize,
    /// Lines written (bucket update and/or value store).
    pub writes: usize,
    /// Whether the key was found (GET) / replaced (PUT).
    pub hit: bool,
}

impl OpTrace {
    /// Total memory accesses of the operation.
    pub fn accesses(&self) -> usize {
        self.bucket_reads + self.value_reads + self.writes
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    key: u64,
    value_idx: u32,
}

#[derive(Debug, Clone)]
struct Bucket {
    slots: [Option<Slot>; WAYS],
    /// Chained overflow bucket (index into `overflow`), per Sec. IV-A:
    /// "another bucket with the same format will be allocated and linked to
    /// the existing bucket by a pointer".
    next: Option<u32>,
}

impl Bucket {
    fn empty() -> Self {
        Bucket { slots: [None; WAYS], next: None }
    }
}

/// The store.
#[derive(Debug, Clone)]
pub struct KvStore {
    cfg: KvConfig,
    mask: u64,
    buckets: Vec<Bucket>,
    overflow: Vec<Bucket>,
    /// The slab-allocated value pool: one flat byte arena instead of one
    /// heap allocation per value, so bulk loads and serving-path PUTs do
    /// not touch the allocator.
    pool: Vec<u8>,
    /// Per value-index `(offset, len)` span into `pool`. A removed index
    /// keeps `len == 0` until the slot is reused.
    spans: Vec<(usize, u32)>,
    free_values: Vec<u32>,
    len: usize,
}

/// A 64-bit mix (splitmix64 finalizer) standing in for the APU's pipelined
/// hash unit.
pub(crate) fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl KvStore {
    /// Creates an empty store.
    pub fn new(cfg: KvConfig) -> Self {
        let buckets = cfg.buckets.next_power_of_two();
        KvStore {
            mask: buckets as u64 - 1,
            buckets: vec![Bucket::empty(); buckets],
            overflow: Vec::new(),
            pool: Vec::new(),
            spans: Vec::new(),
            free_values: Vec::new(),
            cfg: KvConfig { buckets, ..cfg },
            len: 0,
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured geometry.
    pub fn config(&self) -> &KvConfig {
        &self.cfg
    }

    /// Approximate resident bytes (hash lines + values): the footprint used
    /// for cache-hit modelling.
    pub fn footprint_bytes(&self) -> u64 {
        let bucket_lines = (self.buckets.len() + self.overflow.len()) as u64 * 64;
        let value_bytes = self.spans.iter().map(|&(_, len)| (len as u64).max(64)).sum::<u64>();
        bucket_lines + value_bytes
    }

    /// The bytes of value index `idx`.
    fn value(&self, idx: u32) -> &[u8] {
        let (off, len) = self.spans[idx as usize];
        &self.pool[off..off + len as usize]
    }

    fn bucket_index(&self, key: u64) -> usize {
        (hash64(key) & self.mask) as usize
    }

    /// Reads the value for `key`.
    pub fn get(&self, key: u64) -> (Option<&[u8]>, OpTrace) {
        let mut trace = OpTrace { bucket_reads: 1, ..OpTrace::default() };
        let mut bucket = &self.buckets[self.bucket_index(key)];
        loop {
            for slot in bucket.slots.iter().flatten() {
                if slot.key == key {
                    trace.value_reads = 1;
                    trace.hit = true;
                    return (Some(self.value(slot.value_idx)), trace);
                }
            }
            match bucket.next {
                Some(n) => {
                    trace.bucket_reads += 1;
                    bucket = &self.overflow[n as usize];
                }
                None => return (None, trace),
            }
        }
    }

    /// Inserts or updates `key`.
    pub fn put(&mut self, key: u64, value: Vec<u8>) -> OpTrace {
        self.put_slice(key, &value)
    }

    /// Stores `value` into the pool at `idx`'s span, reusing the existing
    /// region when it fits and appending to the pool end otherwise (the
    /// stale region stays leaked in the arena — invisible to the modelled
    /// footprint, which reads spans only).
    fn store_value(&mut self, idx: u32, value: &[u8]) {
        let (off, len) = self.spans[idx as usize];
        if value.len() <= len as usize {
            self.pool[off..off + value.len()].copy_from_slice(value);
            self.spans[idx as usize] = (off, value.len() as u32);
        } else {
            let off = self.pool.len();
            self.pool.extend_from_slice(value);
            self.spans[idx as usize] = (off, value.len() as u32);
        }
    }

    /// Inserts or updates `key` from a borrowed value — the allocation-free
    /// hot path used by bulk preloads and the serving designs.
    pub fn put_slice(&mut self, key: u64, value: &[u8]) -> OpTrace {
        let mut trace = OpTrace { bucket_reads: 1, ..OpTrace::default() };
        let bi = self.bucket_index(key);

        // Pass 1: update in place if present.
        {
            let mut cursor = BucketRef::Primary(bi);
            loop {
                let bucket = self.bucket(cursor);
                if let Some(slot) = bucket.slots.iter().flatten().find(|s| s.key == key) {
                    let idx = slot.value_idx;
                    trace.writes = 1; // value store
                    trace.hit = true;
                    self.store_value(idx, value);
                    return trace;
                }
                match bucket.next {
                    Some(n) => {
                        trace.bucket_reads += 1;
                        cursor = BucketRef::Overflow(n as usize);
                    }
                    None => break,
                }
            }
        }

        // Pass 2: allocate from the slab pool and take the first empty slot
        // (allocating a chained bucket on a full chain — hash collision).
        let value_idx = match self.free_values.pop() {
            Some(i) => {
                self.store_value(i, value);
                i
            }
            None => {
                let off = self.pool.len();
                self.pool.extend_from_slice(value);
                self.spans.push((off, value.len() as u32));
                (self.spans.len() - 1) as u32
            }
        };
        let mut cursor = BucketRef::Primary(bi);
        loop {
            let bucket = self.bucket_mut(cursor);
            if let Some(empty) = bucket.slots.iter_mut().find(|s| s.none()) {
                *empty = Some(Slot { key, value_idx });
                trace.writes = 2; // bucket entry + value store
                self.len += 1;
                return trace;
            }
            match bucket.next {
                Some(n) => cursor = BucketRef::Overflow(n as usize),
                None => {
                    let n = self.overflow.len() as u32;
                    self.overflow.push(Bucket::empty());
                    self.bucket_mut(cursor).next = Some(n);
                    trace.writes += 1; // link pointer
                    cursor = BucketRef::Overflow(n as usize);
                }
            }
        }
    }

    /// Removes `key`; returns the old value if present.
    pub fn remove(&mut self, key: u64) -> (Option<Vec<u8>>, OpTrace) {
        let mut trace = OpTrace { bucket_reads: 1, ..OpTrace::default() };
        let bi = self.bucket_index(key);
        let mut cursor = BucketRef::Primary(bi);
        loop {
            let bucket = self.bucket_mut(cursor);
            for slot in bucket.slots.iter_mut() {
                if let Some(s) = slot {
                    if s.key == key {
                        let idx = s.value_idx;
                        *slot = None;
                        trace.writes = 1;
                        trace.hit = true;
                        self.len -= 1;
                        self.free_values.push(idx);
                        let (off, len) = self.spans[idx as usize];
                        let value = self.pool[off..off + len as usize].to_vec();
                        // Zero the span (the freed region stays leaked, as
                        // an owner-less arena hole) so the footprint model
                        // sees an empty slot, like the old per-value slab.
                        self.spans[idx as usize] = (off, 0);
                        return (Some(value), trace);
                    }
                }
            }
            match self.bucket(cursor).next {
                Some(n) => {
                    trace.bucket_reads += 1;
                    cursor = BucketRef::Overflow(n as usize);
                }
                None => return (None, trace),
            }
        }
    }

    fn bucket(&self, r: BucketRef) -> &Bucket {
        match r {
            BucketRef::Primary(i) => &self.buckets[i],
            BucketRef::Overflow(i) => &self.overflow[i],
        }
    }

    fn bucket_mut(&mut self, r: BucketRef) -> &mut Bucket {
        match r {
            BucketRef::Primary(i) => &mut self.buckets[i],
            BucketRef::Overflow(i) => &mut self.overflow[i],
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum BucketRef {
    Primary(usize),
    Overflow(usize),
}

trait SlotExt {
    fn none(&self) -> bool;
}
impl SlotExt for Option<Slot> {
    fn none(&self) -> bool {
        self.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> KvStore {
        KvStore::new(KvConfig::for_pairs(10_000, 64))
    }

    #[test]
    fn put_get_round_trip() {
        let mut s = store();
        let t = s.put(42, vec![7u8; 64]);
        assert_eq!(t.writes, 2);
        assert!(!t.hit);
        let (v, t) = s.get(42);
        assert_eq!(v.unwrap(), &[7u8; 64][..]);
        assert!(t.hit);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn get_missing_reports_miss() {
        let s = store();
        let (v, t) = s.get(999);
        assert!(v.is_none());
        assert!(!t.hit);
        assert_eq!(t.accesses(), 1);
    }

    #[test]
    fn update_in_place_reuses_slab() {
        let mut s = store();
        s.put(1, vec![1; 64]);
        let t = s.put(1, vec![2; 64]);
        assert!(t.hit);
        assert_eq!(t.writes, 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(1).0.unwrap()[0], 2);
    }

    #[test]
    fn get_trace_matches_paper_average() {
        // "on average, each GET request requires three memory accesses and
        // each PUT requires four" — bucket + value (+ entry/value writes) at
        // moderate load, plus occasional chain walks.
        let mut s = KvStore::new(KvConfig::for_pairs(100_000, 64));
        for k in 0..100_000u64 {
            s.put(k, vec![0; 64]);
        }
        let mut get_total = 0usize;
        for k in 0..100_000u64 {
            let (v, t) = s.get(k);
            assert!(v.is_some());
            // +1: the request itself is read from the ring in the serving
            // path, giving the paper's 3 total for in-structure accesses.
            get_total += t.accesses();
        }
        let avg = get_total as f64 / 100_000.0;
        assert!((2.0..2.5).contains(&avg), "avg={avg}");
    }

    #[test]
    fn collisions_chain_and_remain_reachable() {
        // Tiny table to force chains.
        let mut s = KvStore::new(KvConfig { buckets: 16, value_bytes: 8 });
        for k in 0..2_000u64 {
            s.put(k, k.to_le_bytes().to_vec());
        }
        assert_eq!(s.len(), 2000);
        let mut chained = false;
        for k in 0..2_000u64 {
            let (v, t) = s.get(k);
            assert_eq!(v.unwrap(), &k.to_le_bytes()[..]);
            chained |= t.bucket_reads > 1;
        }
        assert!(chained, "expected some chain walks in an overloaded table");
    }

    #[test]
    fn remove_frees_and_reuses_slab_slots() {
        let mut s = store();
        s.put(1, vec![1; 64]);
        s.put(2, vec![2; 64]);
        let (v, t) = s.remove(1);
        assert_eq!(v.unwrap(), vec![1; 64]);
        assert!(t.hit);
        assert_eq!(s.len(), 1);
        assert!(s.get(1).0.is_none());
        // Slab slot is recycled.
        s.put(3, vec![3; 64]);
        assert_eq!(s.get(3).0.unwrap(), &[3u8; 64][..]);
        let (gone, _) = s.remove(99);
        assert!(gone.is_none());
    }

    #[test]
    fn footprint_grows_with_content() {
        let mut s = store();
        let before = s.footprint_bytes();
        for k in 0..1000 {
            s.put(k, vec![0; 64]);
        }
        assert!(s.footprint_bytes() > before);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(hash64(123), hash64(123));
        let mut low = 0;
        for k in 0..1000u64 {
            if hash64(k) & 1 == 0 {
                low += 1;
            }
        }
        assert!((400..600).contains(&low), "low={low}");
    }
}
