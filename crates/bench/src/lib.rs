//! Shared helpers for the figure/table benchmark harness.
//!
//! Every `benches/figNN_*.rs` target regenerates one table or figure of the
//! paper's evaluation and prints it in a paper-like textual form; the
//! `report` binary runs them all. Absolute values come from the calibrated
//! models; the *shapes* (orderings, ratios, crossovers) are the
//! reproduction targets recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::quick_registry;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a Mops value.
pub fn mops(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats microseconds.
pub fn us(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as `x.xx×`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats GB/s.
pub fn gbps(v: f64) -> String {
    format!("{:.2}", v / 1.0e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_row_panics() {
        Table::new("t", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(mops(1.234), "1.23");
        assert_eq!(us(10.5), "10.50");
        assert_eq!(ratio(2.0), "2.00x");
        assert_eq!(gbps(3.5e9), "3.50");
    }
}
