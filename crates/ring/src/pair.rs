//! Request/response buffer pairs with credit-based flow control (Sec. III-A).
//!
//! For each client–server connection, Rambda establishes one request ring
//! (living in server memory, written by one-sided RDMA write) and one
//! response ring (living in client memory). The client tracks the request
//! ring's tail and the response ring's head; it may issue a request only
//! while the in-flight window has room — "only if the request buffer's tail
//! is behind the response buffer's head can the client issue a request".
//! With that rule, every message needs exactly one network trip and no
//! head/tail exchange.

use crate::spsc::{channel, Consumer, Producer};

/// Why a request could not be issued.
#[derive(Debug, PartialEq, Eq)]
pub enum IssueError<R> {
    /// The credit window is exhausted: `capacity` requests are in flight.
    /// The request is handed back.
    NoCredit(R),
}

impl<R> IssueError<R> {
    /// Recovers the request that failed to issue.
    pub fn into_inner(self) -> R {
        match self {
            IssueError::NoCredit(r) => r,
        }
    }
}

impl<R> std::fmt::Display for IssueError<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "credit window exhausted; poll responses before issuing")
    }
}

impl<R: std::fmt::Debug> std::error::Error for IssueError<R> {}

/// Factory for connected client/server ring-buffer ends.
#[derive(Debug, Clone, Copy)]
pub struct BufferPair;

impl BufferPair {
    /// Creates a connected request/response pair with `capacity` entries in
    /// each ring (1024 in the prototype, Sec. V).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or not a power of two.
    pub fn with_capacity<Req, Resp>(capacity: usize) -> (ClientEnd<Req, Resp>, ServerEnd<Req, Resp>) {
        let (req_tx, req_rx) = channel::<Req>(capacity);
        let (resp_tx, resp_rx) = channel::<Resp>(capacity);
        (
            ClientEnd { req_tx, resp_rx, issued: 0, completed: 0 },
            ServerEnd { req_rx, resp_tx, drained: 0, responded: 0 },
        )
    }
}

/// The client side of a connection: issues requests under credit control and
/// polls responses.
#[derive(Debug)]
pub struct ClientEnd<Req, Resp> {
    req_tx: Producer<Req>,
    resp_rx: Consumer<Resp>,
    issued: u64,
    completed: u64,
}

impl<Req, Resp> ClientEnd<Req, Resp> {
    /// The credit window size (= ring capacity).
    pub fn capacity(&self) -> usize {
        self.req_tx.capacity()
    }

    /// Requests currently in flight (issued but not yet completed).
    pub fn in_flight(&self) -> u64 {
        self.issued - self.completed
    }

    /// Whether the credit window currently has room.
    pub fn can_issue(&self) -> bool {
        self.in_flight() < self.capacity() as u64
    }

    /// Issues a request if the credit window has room.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError::NoCredit`] (handing the request back) if
    /// `capacity` requests are already in flight.
    pub fn issue(&mut self, req: Req) -> Result<(), IssueError<Req>> {
        if !self.can_issue() {
            return Err(IssueError::NoCredit(req));
        }
        match self.req_tx.push(req) {
            Ok(()) => {
                self.issued += 1;
                Ok(())
            }
            // Unreachable while credits are respected: the request ring can
            // hold `capacity` entries and at most `capacity` are in flight.
            Err(req) => Err(IssueError::NoCredit(req)),
        }
    }

    /// Polls for one response; updates the local record of the response
    /// ring's head ("whenever it receives a message ... it will update its
    /// local record and reset the buffer entry").
    pub fn poll(&mut self) -> Option<Resp> {
        let resp = self.resp_rx.pop()?;
        self.completed += 1;
        Some(resp)
    }

    /// Total requests ever issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total responses ever received.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

/// The server side of a connection: drains requests, pushes responses.
#[derive(Debug)]
pub struct ServerEnd<Req, Resp> {
    req_rx: Consumer<Req>,
    resp_tx: Producer<Resp>,
    drained: u64,
    responded: u64,
}

impl<Req, Resp> ServerEnd<Req, Resp> {
    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.resp_tx.capacity()
    }

    /// Takes the next pending request, if any.
    pub fn next_request(&mut self) -> Option<Req> {
        let req = self.req_rx.pop()?;
        self.drained += 1;
        Some(req)
    }

    /// Number of requests visible but not yet drained.
    pub fn pending(&self) -> usize {
        self.req_rx.len()
    }

    /// Sends a response back to the client.
    ///
    /// # Errors
    ///
    /// Returns the response back if the response ring is full — impossible
    /// while the client respects its credit window, so callers may treat
    /// this as a protocol violation.
    pub fn respond(&mut self, resp: Resp) -> Result<(), Resp> {
        self.resp_tx.push(resp)?;
        self.responded += 1;
        Ok(())
    }

    /// Total requests ever drained.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Total responses ever sent.
    pub fn responded(&self) -> u64 {
        self.responded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_round_trip() {
        let (mut client, mut server) = BufferPair::with_capacity::<u32, u32>(8);
        client.issue(5).unwrap();
        let req = server.next_request().unwrap();
        server.respond(req * 2).unwrap();
        assert_eq!(client.poll(), Some(10));
        assert_eq!(client.in_flight(), 0);
    }

    #[test]
    fn credit_window_blocks_at_capacity() {
        let (mut client, mut server) = BufferPair::with_capacity::<u32, u32>(4);
        for i in 0..4 {
            client.issue(i).unwrap();
        }
        assert!(!client.can_issue());
        assert_eq!(client.issue(99), Err(IssueError::NoCredit(99)));
        // Draining requests alone does NOT restore credit: the client only
        // learns from responses.
        assert_eq!(server.next_request(), Some(0));
        assert!(!client.can_issue());
        server.respond(100).unwrap();
        assert_eq!(client.poll(), Some(100));
        assert!(client.can_issue());
        client.issue(4).unwrap();
        assert_eq!(client.in_flight(), 4);
    }

    #[test]
    fn respond_never_overflows_under_credits() {
        // With credits respected, the response ring cannot fill.
        let (mut client, mut server) = BufferPair::with_capacity::<u32, u32>(4);
        for round in 0..100u32 {
            while client.can_issue() {
                client.issue(round).unwrap();
            }
            while let Some(r) = server.next_request() {
                server.respond(r).unwrap();
            }
            while client.poll().is_some() {}
        }
        assert_eq!(client.issued(), client.completed());
        assert_eq!(server.drained(), server.responded());
    }

    #[test]
    fn poll_on_empty_returns_none() {
        let (mut client, _server) = BufferPair::with_capacity::<u32, u32>(4);
        assert_eq!(client.poll(), None);
    }

    #[test]
    fn error_display_and_into_inner() {
        let e = IssueError::NoCredit(7u8);
        assert!(!format!("{e}").is_empty());
        assert_eq!(e.into_inner(), 7);
    }

    #[test]
    fn pending_reflects_undrained_requests() {
        let (mut client, mut server) = BufferPair::with_capacity::<u32, u32>(8);
        client.issue(1).unwrap();
        client.issue(2).unwrap();
        assert_eq!(server.pending(), 2);
        server.next_request();
        assert_eq!(server.pending(), 1);
    }

    #[test]
    fn cross_thread_closed_loop() {
        let (mut client, mut server) = BufferPair::with_capacity::<u64, u64>(16);
        const N: u64 = 50_000;
        let server_thread = std::thread::spawn(move || {
            let mut served = 0;
            while served < N {
                if let Some(r) = server.next_request() {
                    server.respond(r + 1).unwrap();
                    served += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
        let mut next = 0u64;
        let mut got = 0u64;
        while got < N {
            while next < N && client.can_issue() {
                client.issue(next).unwrap();
                next += 1;
            }
            while let Some(resp) = client.poll() {
                assert_eq!(resp, got + 1);
                got += 1;
            }
        }
        server_thread.join().unwrap();
    }
}
