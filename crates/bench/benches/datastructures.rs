//! Criterion micro-benchmarks of the real (non-simulated) data structures:
//! the lock-free SPSC ring, the pointer buffer, the MICA-style store, the
//! Zipfian sampler, and the MERCI reduction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rambda_des::SimRng;
use rambda_dlrm::{MemoTable, ReductionPlan};
use rambda_kvs::{KvConfig, KvStore};
use rambda_ring::{BufferPair, PointerBuffer};
use rambda_workloads::{DlrmProfile, Zipf};

fn bench_spsc(c: &mut Criterion) {
    c.bench_function("spsc_push_pop", |b| {
        let (mut tx, mut rx) = rambda_ring::channel::<u64>(1024);
        let mut i = 0u64;
        b.iter(|| {
            tx.push(i).unwrap();
            i += 1;
            std::hint::black_box(rx.pop().unwrap());
        });
    });

    c.bench_function("buffer_pair_round_trip", |b| {
        let (mut client, mut server) = BufferPair::with_capacity::<u64, u64>(1024);
        let mut i = 0u64;
        b.iter(|| {
            client.issue(i).unwrap();
            i += 1;
            let r = server.next_request().unwrap();
            server.respond(r).unwrap();
            std::hint::black_box(client.poll().unwrap());
        });
    });

    c.bench_function("pointer_buffer_bump", |b| {
        let pb = PointerBuffer::new(1024);
        let mut i = 0usize;
        b.iter(|| {
            std::hint::black_box(pb.bump(i & 1023));
            i += 1;
        });
    });
}

fn bench_kv(c: &mut Criterion) {
    let mut store = KvStore::new(KvConfig::for_pairs(100_000, 64));
    for k in 0..100_000u64 {
        store.put(k, vec![0u8; 64]);
    }
    let mut rng = SimRng::seed(1);
    c.bench_function("kv_get_hit", |b| {
        b.iter(|| {
            let k = rng.gen_range(0..100_000u64);
            std::hint::black_box(store.get(k).0.is_some());
        })
    });
    c.bench_function("kv_put_update", |b| {
        b.iter_batched(
            || (rng.gen_range(0..100_000u64), vec![1u8; 64]),
            |(k, v)| std::hint::black_box(store.put(k, v)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_workloads(c: &mut Criterion) {
    let zipf = Zipf::new(100_000_000, 0.9);
    let mut rng = SimRng::seed(2);
    c.bench_function("zipf_sample_100m", |b| b.iter(|| std::hint::black_box(zipf.sample(&mut rng))));
}

fn bench_merci(c: &mut Criterion) {
    let profile = DlrmProfile::by_name("Books").unwrap();
    let model = rambda_dlrm::DlrmModel::synthetic(32_768, 64);
    let memo = MemoTable::build(&model.embedding);
    let pair_zipf = Zipf::new(32_768 / 2, profile.zipf_theta);
    let mut rng = SimRng::seed(3);
    c.bench_function("merci_plan_and_reduce", |b| {
        b.iter_batched(
            || rambda_dlrm::merci::sample_correlated_query(&profile, 32_768, &pair_zipf, &mut rng),
            |q| {
                let plan = ReductionPlan::build(&q, &memo);
                std::hint::black_box(plan.reduce(&model.embedding, &memo))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_spsc, bench_kv, bench_workloads, bench_merci);
criterion_main!(benches);
