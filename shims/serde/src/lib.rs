//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so this shim keeps the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compiling
//! without pulling the real crate. The derives are no-ops and the traits are
//! empty markers: nothing in the workspace serializes through serde today.
//! Deterministic JSON for run reports is produced by `rambda_metrics::json`
//! instead. If the environment ever gains registry access, deleting the
//! `shims/` entries from the workspace `Cargo.toml` restores the real serde
//! with no source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
