//! The closed-loop measurement driver.
//!
//! Every experiment in the paper drives the server with closed-loop client
//! instances: each keeps a window of outstanding requests and issues a new
//! one the moment a response lands. Throughput is measured in steady state
//! (after a warm-up) and latency as the full issue→response span, so
//! queueing at every modelled resource shows up in the tail.

use rambda_des::{EventCoreStats, EventQueue, Histogram, SimTime, Span};
use serde::{Deserialize, Serialize};

/// Driver parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Closed-loop client instances.
    pub clients: usize,
    /// Outstanding requests per client.
    pub window: usize,
    /// Total requests to run.
    pub requests: u64,
    /// Fraction of requests treated as warm-up (excluded from stats).
    pub warmup: f64,
}

impl DriverConfig {
    /// A conventional configuration: `clients` clients, window 16, `n`
    /// requests, 10 % warm-up.
    pub fn new(clients: usize, n: u64) -> Self {
        DriverConfig { clients, window: 16, requests: n, warmup: 0.1 }
    }

    /// Sets the per-client window.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }
}

/// Results of a closed-loop run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Requests measured (post-warm-up).
    pub completed: u64,
    /// Steady-state throughput in operations per second.
    pub throughput_ops: f64,
    /// Issue→response latency histogram (post-warm-up).
    pub latency: Histogram,
    /// Simulated time of the last completion (the run's makespan) — the
    /// denominator for resource-utilization figures in run reports.
    pub makespan: Span,
    /// Event-core telemetry captured from the driver's event queue after the
    /// run drains (dispatch counts, wheel-tier hits, sim-time dwell).
    pub event_core: EventCoreStats,
}

impl RunStats {
    /// Throughput in Mops.
    pub fn throughput_mops(&self) -> f64 {
        self.throughput_ops / 1.0e6
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.latency.mean().as_us_f64()
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.latency.percentile(0.99).as_us_f64()
    }
}

/// Runs a closed loop: `serve(client, issue_time) -> completion_time`.
///
/// `serve` is called with non-decreasing times per client; resources inside
/// it (links, servers) provide the queueing.
///
/// # Panics
///
/// Panics if the configuration has zero clients, window, or requests.
pub fn run_closed_loop<F>(cfg: &DriverConfig, mut serve: F) -> RunStats
where
    F: FnMut(usize, SimTime) -> SimTime,
{
    assert!(cfg.clients > 0 && cfg.window > 0 && cfg.requests > 0, "empty driver config");
    let mut queue: EventQueue<(usize, SimTime)> = EventQueue::new();
    let prime_kind = queue.kind("prime");
    let serve_kind = queue.kind("serve");
    let mut issued = 0u64;

    // Prime every client's window.
    'prime: for c in 0..cfg.clients {
        for _ in 0..cfg.window {
            if issued >= cfg.requests {
                break 'prime;
            }
            // Tiny stagger keeps initial issues deterministic but ordered.
            let t0 = SimTime::from_ps(issued);
            let done = serve(c, t0);
            queue.push_kind(done, prime_kind, (c, t0));
            issued += 1;
        }
    }

    let warmup_count = ((cfg.requests as f64) * cfg.warmup) as u64;
    let mut completed = 0u64;
    let mut measured = 0u64;
    let mut window_start = SimTime::ZERO;
    let mut window_end = SimTime::ZERO;
    let mut latency = Histogram::new();

    while let Some((done, (client, issued_at))) = queue.pop() {
        completed += 1;
        if completed == warmup_count.max(1) {
            window_start = done;
        }
        if completed > warmup_count.max(1) {
            latency.record(done - issued_at);
            measured += 1;
            window_end = done;
        }
        if issued < cfg.requests {
            let next = serve(client, done);
            queue.push_kind(next, serve_kind, (client, done));
            issued += 1;
        }
    }

    let span = window_end.saturating_since(window_start);
    let throughput = if span.is_zero() { 0.0 } else { measured as f64 / span.as_secs_f64() };
    RunStats {
        completed: measured,
        throughput_ops: throughput,
        latency,
        makespan: window_end.saturating_since(SimTime::ZERO),
        event_core: queue.stats().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_des::{Server, Span};

    #[test]
    fn fixed_service_time_throughput() {
        // One server unit, 100ns service: throughput must be 10 Mops
        // regardless of client count.
        let mut server = Server::new(1);
        let cfg = DriverConfig::new(4, 50_000);
        let stats = run_closed_loop(&cfg, |_c, at| {
            let start = server.acquire(at, Span::from_ns(100));
            start + Span::from_ns(100)
        });
        assert!((stats.throughput_mops() - 10.0).abs() < 0.1, "{}", stats.throughput_mops());
        assert!(stats.completed > 40_000);
    }

    #[test]
    fn latency_includes_queueing() {
        // 4 clients x window 16 = 64 outstanding on one 100ns unit:
        // latency ≈ 64 x 100ns.
        let mut server = Server::new(1);
        let cfg = DriverConfig::new(4, 20_000);
        let stats = run_closed_loop(&cfg, |_c, at| {
            let start = server.acquire(at, Span::from_ns(100));
            start + Span::from_ns(100)
        });
        let mean = stats.mean_us();
        assert!((5.0..7.5).contains(&mean), "mean={mean}");
    }

    #[test]
    fn parallel_units_scale_throughput() {
        let mut server = Server::new(4);
        let cfg = DriverConfig::new(8, 50_000);
        let stats = run_closed_loop(&cfg, |_c, at| {
            let start = server.acquire(at, Span::from_ns(100));
            start + Span::from_ns(100)
        });
        assert!((stats.throughput_mops() - 40.0).abs() < 1.0, "{}", stats.throughput_mops());
    }

    #[test]
    fn zero_latency_service_does_not_panic() {
        let cfg = DriverConfig::new(1, 100);
        let stats = run_closed_loop(&cfg, |_c, at| at + Span::from_ns(1));
        assert!(stats.completed > 0);
    }

    #[test]
    #[should_panic(expected = "empty driver config")]
    fn bad_config_panics() {
        run_closed_loop(&DriverConfig { clients: 0, window: 1, requests: 1, warmup: 0.0 }, |_c, at| at);
    }
}
