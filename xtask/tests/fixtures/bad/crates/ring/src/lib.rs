//! Negative fixture for `cargo xtask analyze`: the unsafe-permitted crate
//! breaking R3 — an `unsafe` block with no `// SAFETY:` comment, and no
//! `#![deny(unsafe_op_in_unsafe_fn)]` attribute. Never compiled.

/// A documented wrapper so R4 stays quiet if this crate is ever doc-checked.
pub fn read_first(bytes: &[u8]) -> u8 {
    // SAFETY: caller-visible bounds check above guarantees len >= 1.
    let ok = if bytes.is_empty() { 0 } else { unsafe { *bytes.as_ptr() } };
    let bad = unsafe { *bytes.as_ptr().add(0) };
    ok.wrapping_add(bad)
}
