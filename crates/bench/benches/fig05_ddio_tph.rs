//! Fig. 5: host memory-bandwidth consumption while a device DMAs random
//! writes at 3.5 GB/s, under the four DDIO × TPH configurations.
//!
//! Expectation (measured on real hardware in the paper): only DDIO-off +
//! TPH-off consumes memory bandwidth — ~3.5 GB/s in *both* read and write
//! directions; any other combination steers the data into the LLC.

use rambda_bench::{gbps, Table};
use rambda_des::SimTime;
use rambda_mem::{MemConfig, MemKind, MemorySystem};

fn main() {
    let mut table = Table::new(
        "Fig. 5 — memory bandwidth consumed by 3.5 GB/s DMA writes (GB/s)",
        &["DDIO", "TPH", "mem read", "mem write"],
    );
    let chunk: u64 = 3_500 * 1024; // 3.5 MB per simulated ms
    let steps = 1_000u64; // one simulated second
    for (ddio, tph) in [(true, true), (true, false), (false, true), (false, false)] {
        let mut mem = MemorySystem::new(MemConfig::default(), ddio);
        for i in 0..steps {
            // Consumers keep up with the DDIO ways (the paper's benchmark
            // reads the buffer on the host side).
            let drained = mem.llc().resident_bytes();
            mem.llc_mut().consume(drained);
            mem.dma_write(SimTime::from_us(i * 1_000), chunk, tph, MemKind::Dram);
        }
        let now = SimTime::from_us(steps * 1_000);
        let secs = now.as_secs_f64();
        table.row(vec![
            if ddio { "on" } else { "off" }.into(),
            if tph { "on" } else { "off" }.into(),
            gbps(mem.stats().dram_read_bytes as f64 / secs),
            gbps(mem.stats().dram_write_bytes as f64 / secs),
        ]);
    }
    table.print();
    println!("shape check: only DDIO-off+TPH-off shows ~3.5 GB/s on both directions.");
}
