//! The full notification pipeline across crates: RDMA delivery → coherence
//! invalidation → cpoll dispatch → ring drain, including the pointer-buffer
//! mode with signal coalescing.

use rambda_coherence::{AgentId, CpollChecker, Directory, LineAddr};
use rambda_ring::{BufferPair, PointerBuffer, TailTracker};

/// A miniature server: 4 connections, each with a ring and a pointer-buffer
/// entry registered as the cpoll region.
struct MiniServer {
    dir: Directory,
    checker: CpollChecker,
    pointer: PointerBuffer,
    trackers: Vec<TailTracker>,
}

const PTR_BASE: u64 = 0x8000;
const RINGS: usize = 4;

impl MiniServer {
    fn new() -> Self {
        let mut checker = CpollChecker::new(64 * 1024);
        // Pointer buffer: one 64 B line per ring (padded 4 B entries).
        checker.register(PTR_BASE, (RINGS * 64) as u64, 64).unwrap();
        let mut dir = Directory::new();
        // The accelerator owns (pins) the pointer-buffer lines.
        for r in 0..RINGS {
            dir.write(AgentId::ACCEL, LineAddr(PTR_BASE + (r as u64) * 64));
        }
        MiniServer {
            dir,
            checker,
            pointer: PointerBuffer::new(RINGS),
            trackers: vec![TailTracker::new(); RINGS],
        }
    }

    /// A remote write lands in `ring`: bump the pointer entry (the second
    /// WQE of the batched-doorbell pair) and produce any cpoll notification.
    fn deliver(&mut self, ring: usize) -> Option<usize> {
        self.pointer.bump(ring);
        let line = LineAddr(PTR_BASE + (ring as u64) * 64);
        let events = self.dir.write(AgentId::IO, line);
        let note = events.iter().find_map(|e| self.checker.observe(e));
        // The accelerator re-reads (and re-owns) the line afterwards.
        self.dir.write(AgentId::ACCEL, line);
        note.map(|n| n.ring)
    }

    /// The scheduler consumes a notification for `ring`: how many new
    /// requests since last time?
    fn harvest(&mut self, ring: usize) -> u32 {
        self.trackers[ring].advance_to(self.pointer.load(ring))
    }
}

#[test]
fn every_delivery_notifies_the_right_ring() {
    let mut s = MiniServer::new();
    for ring in 0..RINGS {
        let got = s.deliver(ring).expect("delivery must notify");
        assert_eq!(got, ring);
        assert_eq!(s.harvest(ring), 1);
    }
}

#[test]
fn coalesced_signals_recover_every_request() {
    let mut s = MiniServer::new();
    // Three writes land back-to-back; only the *first* invalidation fires
    // (the line is already Invalid for the accelerator afterwards if it has
    // not re-read it) — emulate by bumping without re-owning.
    for _ in 0..3 {
        s.pointer.bump(2);
    }
    let line = LineAddr(PTR_BASE + 2 * 64);
    let events = s.dir.write(AgentId::IO, line);
    let notes: Vec<_> = events.iter().filter_map(|e| s.checker.observe(e)).collect();
    assert!(notes.len() <= 1, "coalesced to at most one signal");
    // The tail tracker still recovers all three requests.
    assert_eq!(s.harvest(2), 3);
    assert_eq!(s.harvest(2), 0);
}

#[test]
fn pointer_buffer_scales_where_pinning_cannot() {
    // 1K connections with 1 MB rings: pinning needs 1 GB of cache (fails);
    // the pointer buffer needs 4 KB (fits) — Sec. III-B's scalability fix.
    let mut pinned = CpollChecker::new(64 * 1024);
    assert!(pinned.register(0, 1024 * (1 << 20), 1 << 20).is_err());
    let mut ptr = CpollChecker::new(64 * 1024);
    assert!(ptr.register(0, 1024 * 64, 64).is_ok());
}

#[test]
fn ring_and_notification_stay_in_sync_under_load() {
    let mut s = MiniServer::new();
    let (mut client, mut server) = BufferPair::with_capacity::<u32, u32>(64);
    let mut delivered = 0u32;
    let mut harvested = 0u32;
    for i in 0..1000u32 {
        if client.can_issue() {
            client.issue(i).unwrap();
            s.deliver(0);
            delivered += 1;
        }
        if i % 7 == 0 {
            // Scheduler wakes up: harvest notifications, drain the ring.
            harvested += s.harvest(0);
            while let Some(req) = server.next_request() {
                server.respond(req).unwrap();
            }
            while client.poll().is_some() {}
        }
    }
    harvested += s.harvest(0);
    assert_eq!(delivered, harvested, "notifications must match deliveries");
}
