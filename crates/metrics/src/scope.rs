//! Per-entity metric scopes: attribution of work to shards, replicas,
//! tables, links, and tenants.
//!
//! The flat [`MetricSet`] in a [`RunReport`](crate::RunReport) answers "how
//! much work happened"; this module answers "*whose* work was it". A
//! [`ScopedMetrics`] registry keeps one child [`MetricSet`], latency
//! [`Histogram`], and windowed [`Timeline`] per named scope (`shard/3`,
//! `replica/0`, `table/7`, `link/net.egress.2`), plus two deterministic
//! space-saving sketches ([`TopKSketch`]) tracking the hottest keys and the
//! hottest scopes.
//!
//! Three exact identities tie the scoped view back to the global report
//! (checked by `RunReport::validate` → `validate_scopes`):
//!
//! 1. **counter conservation** — per-scope counters sum to the scoped
//!    rollup, and any rollup counter sharing a name with a global resource
//!    counter equals it exactly;
//! 2. **histogram conservation** — merging the per-scope latency histograms
//!    reproduces the global traced histogram bucket-for-bucket, and the
//!    per-scope timeline windows (regrouped onto the global window grid)
//!    telescope to the global per-window counts and sums; and
//! 3. **mirror consistency** — the `scope.*`, `hot.*`, and `slo.*` counters
//!    published into the report's resources mirror the structured section
//!    value for value (analyzer rule R10 keeps the list in sync).
//!
//! The per-scope timelines share the global timeline's coalescing rule, so
//! a scope's base window always divides the global finalized window: the
//! global width is `50 µs · 2^a · group` and a scope — seeing a subset of
//! the completions, hence an earlier last completion — has width
//! `50 µs · 2^b` with `b ≤ a`. Regrouping is therefore exact, never split.
//!
//! An [`SloSummary`] derives windowed burn-rate from the global timeline: a
//! window *violates* when it completed at least one request and its p99
//! exceeds the configured target; the burn rate is the violating fraction
//! of windows (DESIGN.md §15).
//!
//! Recording is passive — no RNG, no simulated time, no event scheduling —
//! and every structure is a `BTreeMap` or insertion-ordered vector, so
//! scoped runs are deterministic and unscoped runs are byte-identical to
//! runs built before this layer existed.

use std::collections::BTreeMap;

use rambda_des::{Histogram, SimTime};

use crate::json::Json;
use crate::report::HistSummary;
use crate::set::MetricSet;
use crate::sketch::{SketchEntry, TopKSketch};
use crate::timeline::{Timeline, TimelineSummary};

/// Configuration for a scoped run: sketch capacity and the SLO target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeConfig {
    /// Capacity of the hot-key and hot-scope sketches.
    pub top_k: usize,
    /// Per-window p99 latency target, picoseconds; a window with at least
    /// one completion and a p99 above this counts as an SLO violation.
    pub slo_p99_ps: u64,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        // 8 monitored keys and a 100 µs p99 target: generous for the
        // quick-mode runs the goldens pin, tight enough to trip under load.
        ScopeConfig { top_k: 8, slo_p99_ps: 100_000_000 }
    }
}

/// One live scope: its counters, latency histogram, and windowed timeline.
#[derive(Debug, Clone)]
struct ScopeState {
    /// Creation-order ordinal; the hot-scope sketch keys on this.
    ordinal: u64,
    set: MetricSet,
    hist: Histogram,
    timeline: Timeline,
}

impl ScopeState {
    fn new(ordinal: u64) -> Self {
        ScopeState { ordinal, set: MetricSet::new(), hist: Histogram::new(), timeline: Timeline::default() }
    }
}

/// Registry of named child metric scopes, threaded through `SimCtx` the way
/// the stage recorder and tracer are.
///
/// A disabled registry ([`ScopedMetrics::disabled`]) turns every call into
/// a cheap branch, so instrumented serve loops run unchanged — and produce
/// byte-identical reports — when scoping is off.
#[derive(Debug, Clone)]
pub struct ScopedMetrics {
    active: bool,
    config: ScopeConfig,
    scopes: BTreeMap<String, ScopeState>,
    /// Ordinal → scope name, in creation order (resolves sketch keys).
    names: Vec<String>,
    hot_keys: TopKSketch,
    hot_scopes: TopKSketch,
}

impl ScopedMetrics {
    /// A no-op registry for unscoped runs.
    pub fn disabled() -> Self {
        ScopedMetrics {
            active: false,
            config: ScopeConfig::default(),
            scopes: BTreeMap::new(),
            names: Vec::new(),
            hot_keys: TopKSketch::new(1),
            hot_scopes: TopKSketch::new(1),
        }
    }

    /// A recording registry with the given configuration.
    pub fn active(config: ScopeConfig) -> Self {
        ScopedMetrics {
            active: true,
            config,
            scopes: BTreeMap::new(),
            names: Vec::new(),
            hot_keys: TopKSketch::new(config.top_k.max(1)),
            hot_scopes: TopKSketch::new(config.top_k.max(1)),
        }
    }

    /// Whether this registry records.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The configuration this registry was built with.
    pub fn config(&self) -> ScopeConfig {
        self.config
    }

    fn ensure(&mut self, scope: &str) -> &mut ScopeState {
        if !self.scopes.contains_key(scope) {
            let ordinal = self.names.len() as u64;
            self.names.push(scope.to_string());
            self.scopes.insert(scope.to_string(), ScopeState::new(ordinal));
        }
        self.scopes.get_mut(scope).expect("scope was just ensured")
    }

    /// Creates `scope` if needed and returns its child [`MetricSet`] for
    /// direct publication (the fabric publishes per-link counters this
    /// way). `None` when disabled.
    pub fn child(&mut self, scope: &str) -> Option<&mut MetricSet> {
        if !self.active {
            return None;
        }
        Some(&mut self.ensure(scope).set)
    }

    /// Records one completed request under `scope`: its latency lands in
    /// the scope's histogram and timeline, the scope's `requests` /
    /// `latency_ps` counters advance, and the hot-scope sketch observes it.
    pub fn record(&mut self, scope: &str, issued: SimTime, done: SimTime) {
        if !self.active {
            return;
        }
        let latency = done.saturating_since(issued);
        let state = self.ensure(scope);
        state.hist.record(latency);
        state.timeline.record(issued, done);
        state.set.add("requests", 1);
        state.set.add("latency_ps", latency.as_ps());
        let ordinal = state.ordinal;
        self.hot_scopes.observe(ordinal);
    }

    /// Feeds one key into the hot-key sketch (KVS keys, TXN keys, DLRM
    /// embedding rows).
    pub fn observe_key(&mut self, key: u64) {
        if !self.active {
            return;
        }
        self.hot_keys.observe(key);
    }

    /// Adds `delta` to a counter of `scope`'s child set.
    pub fn add(&mut self, scope: &str, name: &str, delta: u64) {
        if !self.active {
            return;
        }
        self.ensure(scope).set.add(name, delta);
    }

    /// Number of live scopes.
    pub fn len(&self) -> usize {
        self.scopes.len()
    }

    /// Whether no scope was created.
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// Folds the registry into its serializable summary.
    ///
    /// `global` is the run's finalized timeline: per-scope windows are
    /// regrouped onto its grid (exact — see the module docs) and the SLO
    /// burn-rate is derived from its per-window p99s. Without a timeline
    /// the per-scope window lists are empty and the SLO covers no windows.
    ///
    /// # Panics
    ///
    /// Panics if `global`'s window grid is not a multiple of a scope's base
    /// window — impossible when both fed from the same run, see module docs.
    pub fn finalize(&self, global: Option<&TimelineSummary>) -> ScopesSummary {
        let mut scopes = Vec::with_capacity(self.scopes.len());
        let mut rollup = MetricSet::new();
        let mut merged = Histogram::new();
        for (name, state) in &self.scopes {
            merged.merge(&state.hist);
            rollup.merge(&state.set);
            let windows = match global {
                Some(tl) => state
                    .timeline
                    .windows_on_grid(tl.window_ps, tl.windows.len())
                    .expect("scope window grid divides the global grid"),
                None => Vec::new(),
            };
            scopes.push(ScopeSummary {
                name: name.clone(),
                set: state.set.clone(),
                latency: HistSummary::of(&state.hist),
                windows,
            });
        }
        let hot_scopes = self
            .hot_scopes
            .top()
            .into_iter()
            .map(|row| HotScope {
                scope: self.names[row.key as usize].clone(),
                count: row.count,
                err: row.err,
            })
            .collect();
        ScopesSummary {
            top_k: self.config.top_k,
            scopes,
            rollup,
            merged: HistSummary::of(&merged),
            hot_keys: self.hot_keys.top(),
            keys_observed: self.hot_keys.observed(),
            hot_scopes,
            slo: SloSummary::derive(self.config.slo_p99_ps, global),
        }
    }
}

/// One scope's serialized slice of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeSummary {
    /// Scope name, e.g. `"shard/3"`.
    pub name: String,
    /// The scope's child counters and gauges.
    pub set: MetricSet,
    /// Latency over the requests recorded under this scope.
    pub latency: HistSummary,
    /// The scope's completions regrouped onto the global timeline grid;
    /// summing across scopes reproduces each global window exactly.
    pub windows: Vec<HistSummary>,
}

/// A hot scope resolved from the scope sketch: name, estimated request
/// count, and overestimation bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotScope {
    /// Scope name.
    pub scope: String,
    /// Estimated requests recorded under the scope.
    pub count: u64,
    /// Overestimation bound (`0` means exact).
    pub err: u64,
}

/// Windowed SLO digest derived from the global timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSummary {
    /// The per-window p99 target, picoseconds.
    pub target_p99_ps: u64,
    /// Number of timeline windows inspected.
    pub windows: u64,
    /// Windows that completed at least one request with p99 over target.
    pub violations: u64,
    /// `violations / windows` (0 when no windows).
    pub burn_rate: f64,
}

impl SloSummary {
    /// Derives the digest from a finalized timeline (all-zero without one).
    pub fn derive(target_p99_ps: u64, global: Option<&TimelineSummary>) -> Self {
        let windows: &[HistSummary] = global.map(|tl| tl.windows.as_slice()).unwrap_or(&[]);
        let violations = windows.iter().filter(|w| w.count > 0 && w.p99_ps > target_p99_ps).count() as u64;
        let n = windows.len() as u64;
        SloSummary {
            target_p99_ps,
            windows: n,
            violations,
            burn_rate: if n == 0 { 0.0 } else { violations as f64 / n as f64 },
        }
    }

    fn to_json(self) -> Json {
        let mut o = Json::obj();
        o.push("target_p99_ps", Json::U64(self.target_p99_ps));
        o.push("windows", Json::U64(self.windows));
        o.push("violations", Json::U64(self.violations));
        o.push("burn_rate", Json::F64(self.burn_rate));
        o
    }
}

/// The serializable `"scopes"` report section.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopesSummary {
    /// Sketch capacity the run was configured with.
    pub top_k: usize,
    /// Per-scope slices, name-sorted.
    pub scopes: Vec<ScopeSummary>,
    /// Sum of every child counter across scopes (gauges merge keep-max).
    pub rollup: MetricSet,
    /// All per-scope latency histograms merged — equals the global traced
    /// total bucket-for-bucket when every request was scoped.
    pub merged: HistSummary,
    /// Hot keys, ranked by estimated count.
    pub hot_keys: Vec<SketchEntry>,
    /// Total keys fed into the hot-key sketch.
    pub keys_observed: u64,
    /// Hot scopes, ranked by estimated request count.
    pub hot_scopes: Vec<HotScope>,
    /// Windowed SLO digest.
    pub slo: SloSummary,
}

impl ScopesSummary {
    /// Fraction of scoped requests landing in the busiest scope (0 when
    /// nothing was recorded) — the bench harness's hot-fraction column.
    pub fn hot_fraction(&self) -> f64 {
        if self.merged.count == 0 {
            return 0.0;
        }
        let peak = self.scopes.iter().map(|s| s.set.counter("requests").unwrap_or(0)).max().unwrap_or(0);
        peak as f64 / self.merged.count as f64
    }

    /// Sum of the monitored hot-key counts.
    pub fn top_hits(&self) -> u64 {
        self.hot_keys.iter().map(|row| row.count).sum()
    }

    /// Publishes the section's mirror counters into the report resources.
    ///
    /// Analyzer rule R10 holds every `scope.*` / `hot.*` counter set here
    /// to appear in the `validate_scopes` identity; none may end in
    /// `.busy_ps`, which would desynchronize the timeline's resource-series
    /// count (`validate_timeline`) after the timeline was finalized.
    pub fn publish_metrics(&self, m: &mut MetricSet) {
        m.set("scope.count", self.scopes.len() as u64);
        m.set("scope.requests", self.merged.count);
        m.set("scope.latency_ps", u64::try_from(self.merged.sum_ps).unwrap_or(u64::MAX));
        m.set("hot.keys_tracked", self.hot_keys.len() as u64);
        m.set("hot.observed", self.keys_observed);
        m.set("hot.top_hits", self.top_hits());
        m.set("slo.violations", self.slo.violations);
        m.set("slo.windows", self.slo.windows);
        m.gauge("slo.burn_rate", self.slo.burn_rate);
    }

    /// Renders the section as a deterministic JSON value.
    pub fn to_json(&self) -> Json {
        let mut scopes = Json::obj();
        for s in &self.scopes {
            let mut o = Json::obj();
            o.push("latency", s.latency.to_json());
            o.push("windows", Json::Arr(s.windows.iter().map(|w| w.to_json()).collect()));
            o.push("set", s.set.to_json());
            scopes.push(&s.name, o);
        }
        let hot_keys = Json::Arr(
            self.hot_keys
                .iter()
                .map(|row| {
                    let mut o = Json::obj();
                    o.push("key", Json::U64(row.key));
                    o.push("count", Json::U64(row.count));
                    o.push("err", Json::U64(row.err));
                    o
                })
                .collect(),
        );
        let hot_scopes = Json::Arr(
            self.hot_scopes
                .iter()
                .map(|row| {
                    let mut o = Json::obj();
                    o.push("scope", Json::Str(row.scope.clone()));
                    o.push("count", Json::U64(row.count));
                    o.push("err", Json::U64(row.err));
                    o
                })
                .collect(),
        );
        let mut out = Json::obj();
        out.push("top_k", Json::U64(self.top_k as u64));
        out.push("scopes", scopes);
        out.push("rollup", self.rollup.to_json());
        out.push("merged", self.merged.to_json());
        out.push("hot_keys", hot_keys);
        out.push("keys_observed", Json::U64(self.keys_observed));
        out.push("hot_scopes", hot_scopes);
        out.push("slo", self.slo.to_json());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_des::Span;

    fn us(n: u64) -> SimTime {
        SimTime::from_us(n)
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut sm = ScopedMetrics::disabled();
        sm.record("shard/0", SimTime::ZERO, us(5));
        sm.observe_key(7);
        sm.add("shard/0", "misses", 1);
        assert!(!sm.is_active());
        assert!(sm.is_empty());
        assert!(sm.child("shard/0").is_none());
        let summary = sm.finalize(None);
        assert!(summary.scopes.is_empty());
        assert_eq!(summary.merged.count, 0);
        assert_eq!(summary.hot_fraction(), 0.0);
    }

    #[test]
    fn scoped_histograms_merge_to_the_union() {
        let mut sm = ScopedMetrics::active(ScopeConfig::default());
        let mut direct = Histogram::new();
        for i in 0..100u64 {
            let issued = SimTime::from_ns(i * 500);
            let done = issued + Span::from_ns(1_000 + i * 13);
            let scope = if i % 3 == 0 { "shard/0" } else { "shard/1" };
            sm.record(scope, issued, done);
            direct.record(done.saturating_since(issued));
        }
        let summary = sm.finalize(None);
        assert_eq!(summary.scopes.len(), 2);
        assert_eq!(summary.merged, HistSummary::of(&direct));
        let per_scope: u64 = summary.scopes.iter().map(|s| s.latency.count).sum();
        assert_eq!(per_scope, 100);
        assert_eq!(summary.rollup.counter("requests"), Some(100));
        let sums: u128 = summary.scopes.iter().map(|s| s.latency.sum_ps).sum();
        assert_eq!(sums, direct.sum_ps());
    }

    #[test]
    fn hot_fraction_tracks_the_busiest_scope() {
        let mut sm = ScopedMetrics::active(ScopeConfig::default());
        for i in 0..10u64 {
            let scope = if i < 8 { "shard/0" } else { "shard/1" };
            sm.record(scope, SimTime::ZERO, us(1));
        }
        let summary = sm.finalize(None);
        assert!((summary.hot_fraction() - 0.8).abs() < 1e-12);
        // The hot-scope sketch agrees, exactly (both scopes fit).
        assert_eq!(summary.hot_scopes[0].scope, "shard/0");
        assert_eq!(summary.hot_scopes[0].count, 8);
        assert_eq!(summary.hot_scopes[0].err, 0);
    }

    #[test]
    fn slo_burn_rate_counts_violating_windows() {
        let windows = vec![
            HistSummary {
                count: 5,
                sum_ps: 0,
                min_ps: 0,
                max_ps: 0,
                mean_ps: 0,
                p50_ps: 0,
                p99_ps: 90,
                p999_ps: 0,
            },
            HistSummary {
                count: 5,
                sum_ps: 0,
                min_ps: 0,
                max_ps: 0,
                mean_ps: 0,
                p50_ps: 0,
                p99_ps: 150,
                p999_ps: 0,
            },
            HistSummary {
                count: 0,
                sum_ps: 0,
                min_ps: 0,
                max_ps: 0,
                mean_ps: 0,
                p50_ps: 0,
                p99_ps: 500,
                p999_ps: 0,
            },
            HistSummary {
                count: 2,
                sum_ps: 0,
                min_ps: 0,
                max_ps: 0,
                mean_ps: 0,
                p50_ps: 0,
                p99_ps: 101,
                p999_ps: 0,
            },
        ];
        let tl = TimelineSummary {
            window_ps: 100,
            elapsed_ps: 400,
            merged: windows[0],
            windows,
            resources: Vec::new(),
        };
        let slo = SloSummary::derive(100, Some(&tl));
        // Window 1 (p99 150) and window 3 (p99 101) violate; the empty
        // window 2 does not, despite its stale p99.
        assert_eq!(slo.windows, 4);
        assert_eq!(slo.violations, 2);
        assert!((slo.burn_rate - 0.5).abs() < 1e-12);
        let idle = SloSummary::derive(100, None);
        assert_eq!(idle.windows, 0);
        assert_eq!(idle.burn_rate, 0.0);
    }

    #[test]
    fn mirrors_publish_and_json_is_deterministic() {
        let mut sm = ScopedMetrics::active(ScopeConfig { top_k: 2, slo_p99_ps: 1_000 });
        sm.record("a", SimTime::ZERO, us(1));
        sm.record("b", SimTime::ZERO, us(2));
        sm.observe_key(1);
        sm.observe_key(1);
        sm.observe_key(2);
        let summary = sm.finalize(None);
        let mut m = MetricSet::new();
        summary.publish_metrics(&mut m);
        assert_eq!(m.counter("scope.count"), Some(2));
        assert_eq!(m.counter("scope.requests"), Some(2));
        assert_eq!(m.counter("hot.observed"), Some(3));
        assert_eq!(m.counter("hot.top_hits"), Some(3));
        assert_eq!(m.counter("hot.keys_tracked"), Some(2));
        assert_eq!(m.counter("slo.windows"), Some(0));
        assert_eq!(m.gauge_value("slo.burn_rate"), Some(0.0));
        let a = summary.to_json().render();
        let b = sm.finalize(None).to_json().render();
        assert_eq!(a, b);
        assert!(a.contains("\"hot_keys\""));
        assert!(a.contains("\"slo\""));
    }

    #[test]
    fn child_sets_feed_the_rollup() {
        let mut sm = ScopedMetrics::active(ScopeConfig::default());
        sm.child("link/egress.0").unwrap().set("net.egress.0.bytes", 100);
        sm.child("link/egress.1").unwrap().set("net.egress.1.bytes", 50);
        sm.add("link/egress.0", "drops", 2);
        let summary = sm.finalize(None);
        assert_eq!(summary.rollup.counter("net.egress.0.bytes"), Some(100));
        assert_eq!(summary.rollup.counter("net.egress.1.bytes"), Some(50));
        assert_eq!(summary.rollup.counter("drops"), Some(2));
        // Zero-request scopes still appear, with empty latency summaries.
        assert_eq!(summary.scopes.len(), 2);
        assert_eq!(summary.scopes[0].latency.count, 0);
    }

    #[test]
    fn scope_windows_regroup_onto_the_global_grid() {
        // The global run coalesced to a 100 µs finalized grid; the scope
        // recorded on the default 50 µs base. Regrouping must land each
        // scope completion in the right global window.
        let mut sm = ScopedMetrics::active(ScopeConfig::default());
        sm.record("s", SimTime::ZERO, us(40)); // global window 0 (0–100 µs]
        sm.record("s", SimTime::ZERO, us(160)); // global window 1 (100–200 µs]
        let tl = TimelineSummary {
            window_ps: us(100).as_ps(),
            elapsed_ps: us(160).as_ps(),
            merged: HistSummary::of(&Histogram::new()),
            windows: vec![HistSummary::of(&Histogram::new()); 2],
            resources: Vec::new(),
        };
        let summary = sm.finalize(Some(&tl));
        let windows = &summary.scopes[0].windows;
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].count, 1);
        assert_eq!(windows[1].count, 1);
    }

    /// Drives both the global timeline and the per-scope timelines past the
    /// 32-window coalescing bound: the run is long enough that every
    /// collector doubles its base window repeatedly, and the finalized grid
    /// sits at the bound. The regrouped scope windows must still tile the
    /// global grid exactly — coalescing moves whole windows, never splits.
    #[test]
    fn scope_windows_align_at_the_coalescing_bound() {
        let mut sm = ScopedMetrics::active(ScopeConfig::default());
        let mut global = Timeline::default();
        // 128 completions at 100 µs spacing: a 12.8 ms run against the
        // default 50 µs × 32-window collector forces three doublings
        // (50 → 400 µs) in the global and in each busy scope.
        let last = 128u64;
        for i in 1..=last {
            let done = us(100 * i);
            let scope = if i % 2 == 0 { "even" } else { "odd" };
            sm.record(scope, SimTime::ZERO, done);
            global.record(SimTime::ZERO, done);
        }
        assert!(global.window() > Span::from_us(50), "global must have coalesced");
        let tl = global.finalize(Span::from_us(100 * last), &MetricSet::new());
        assert!(tl.windows.len() <= 32);

        let summary = sm.finalize(Some(&tl));
        for s in &summary.scopes {
            assert_eq!(s.windows.len(), tl.windows.len(), "{}", s.name);
        }
        for (i, w) in tl.windows.iter().enumerate() {
            let count: u64 = summary.scopes.iter().map(|s| s.windows[i].count).sum();
            let sum: u128 = summary.scopes.iter().map(|s| s.windows[i].sum_ps).sum();
            assert_eq!(count, w.count, "window {i} count");
            assert_eq!(sum, w.sum_ps, "window {i} sum");
        }
    }

    /// A scope created but never recorded into (a counter-only link scope,
    /// a shard that saw no traffic) pads empty windows on whatever grid the
    /// global run finalized to, and never perturbs the busy scopes.
    #[test]
    fn zero_request_scopes_pad_the_global_grid() {
        let mut sm = ScopedMetrics::active(ScopeConfig::default());
        let mut global = Timeline::default();
        for i in 1..=10u64 {
            sm.record("busy", SimTime::ZERO, us(40 * i));
            global.record(SimTime::ZERO, us(40 * i));
        }
        sm.child("idle").unwrap().set("drops", 0);
        let tl = global.finalize(Span::from_us(400), &MetricSet::new());

        let summary = sm.finalize(Some(&tl));
        assert_eq!(summary.scopes.len(), 2);
        let idle = summary.scopes.iter().find(|s| s.name == "idle").unwrap();
        assert_eq!(idle.windows.len(), tl.windows.len());
        assert!(idle.windows.iter().all(|w| w.count == 0), "idle scope must stay empty");
        assert_eq!(idle.latency.count, 0);
        // The idle scope never enters the hot-scope sketch.
        assert!(summary.hot_scopes.iter().all(|h| h.scope != "idle"));
        let busy = summary.scopes.iter().find(|s| s.name == "busy").unwrap();
        let busy_total: u64 = busy.windows.iter().map(|w| w.count).sum();
        assert_eq!(busy_total, 10);
    }

    /// Proptest-style sweep: across many seeded request patterns (varying
    /// scope counts, latencies, spacings, and run lengths — some past the
    /// coalescing bound), the per-scope window merges telescope to the
    /// global [`TimelineSummary`] window-for-window and in total.
    #[test]
    fn scope_window_merges_telescope_to_the_global_summary() {
        for case in 0u64..40 {
            // Deterministic LCG so every case is reproducible by index.
            let mut state = case.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = move |bound: u64| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) % bound.max(1)
            };
            let scopes = 1 + next(5) as usize;
            let requests = 1 + next(300);
            let spacing_ns = 1 + next(80_000); // up to 80 µs between completions

            let mut sm = ScopedMetrics::active(ScopeConfig::default());
            let mut global = Timeline::default();
            let mut direct = Histogram::new();
            let mut makespan = SimTime::ZERO;
            for i in 0..requests {
                let done = SimTime::from_ns((i + 1) * spacing_ns);
                let issued = SimTime::from_ns(next(done.as_ps() / 1_000 + 1));
                let scope = format!("s/{}", next(scopes as u64));
                sm.record(&scope, issued, done);
                global.record(issued, done);
                direct.record(done.saturating_since(issued));
                makespan = done;
            }
            let tl = global.finalize(Span::from_ps(makespan.as_ps()), &MetricSet::new());
            assert_eq!(tl.merged, HistSummary::of(&direct), "case {case}: global merge drifted");

            let summary = sm.finalize(Some(&tl));
            assert_eq!(summary.merged, tl.merged, "case {case}: scope union != global");
            for s in &summary.scopes {
                assert_eq!(s.windows.len(), tl.windows.len(), "case {case} scope {}", s.name);
                let scope_total: u64 = s.windows.iter().map(|w| w.count).sum();
                assert_eq!(scope_total, s.latency.count, "case {case} scope {}", s.name);
            }
            for (i, w) in tl.windows.iter().enumerate() {
                let count: u64 = summary.scopes.iter().map(|s| s.windows[i].count).sum();
                let sum: u128 = summary.scopes.iter().map(|s| s.windows[i].sum_ps).sum();
                assert_eq!(count, w.count, "case {case} window {i} count");
                assert_eq!(sum, w.sum_ps, "case {case} window {i} sum");
            }
        }
    }
}
