//! Memory-system configuration, defaulting to the paper's testbed (Tab. II)
//! plus published Optane DC PMM and U280 DDR4/HBM2 characteristics.

use rambda_des::Span;
use serde::{Deserialize, Serialize};

const GB: f64 = 1.0e9;

/// Latency/bandwidth/capacity parameters for every memory medium in the
/// modelled system.
///
/// All bandwidths are bytes/second; all latencies are loaded single-access
/// latencies for a 64 B cache line (NVM accesses are charged at 256 B
/// granularity on top of this).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemConfig {
    /// Loaded DRAM access latency (64 B line).
    pub dram_latency: Span,
    /// Aggregate DRAM bandwidth across the six DDR4-2666 channels.
    pub dram_bw: f64,
    /// LLC hit latency.
    pub llc_latency: Span,
    /// LLC capacity in bytes (27.5 MB on the 6138P).
    pub llc_capacity: u64,
    /// Fraction of the LLC usable by DDIO injection (2 of 11 ways).
    pub ddio_way_fraction: f64,

    /// NVM (Optane-like) read latency (256 B granule).
    pub nvm_read_latency: Span,
    /// NVM write latency into the ADR write buffer.
    pub nvm_write_latency: Span,
    /// NVM read bandwidth (per socket, all DIMMs).
    pub nvm_read_bw: f64,
    /// NVM write bandwidth (per socket, all DIMMs).
    pub nvm_write_bw: f64,
    /// NVM internal access granularity in bytes (256 B on Optane).
    pub nvm_granularity: u64,
    /// Effective physical-write multiplier when 64 B lines are evicted from
    /// the LLC to NVM in cache-replacement (i.e. partially random) order,
    /// relative to sequential granule-aligned direct writes. Calibrated to
    /// the ~20 % NVM-bandwidth loss prior Optane studies report and the
    /// ~20 % adaptive-DDIO gain of Sec. VI-A.
    pub nvm_ddio_write_amp: f64,

    /// Accelerator-local DDR4 latency (Rambda-LD, U280).
    pub accel_ddr_latency: Span,
    /// Accelerator-local DDR4 bandwidth (~36 GB/s on the U280).
    pub accel_ddr_bw: f64,
    /// Accelerator-local HBM2 latency (higher than DDR4 per Sec. VI-B).
    pub accel_hbm_latency: Span,
    /// Accelerator-local HBM2 bandwidth (~425 GB/s on the U280).
    pub accel_hbm_bw: f64,

    /// Smart-NIC on-board DRAM latency.
    pub nic_dram_latency: Span,
    /// Smart-NIC on-board DRAM bandwidth (single DDR4-1600 channel pair).
    pub nic_dram_bw: f64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            dram_latency: Span::from_ns(90),
            dram_bw: 120.0 * GB,
            llc_latency: Span::from_ns(20),
            llc_capacity: 27_500_000,
            ddio_way_fraction: 2.0 / 11.0,

            nvm_read_latency: Span::from_ns(305),
            nvm_write_latency: Span::from_ns(94),
            nvm_read_bw: 39.0 * GB,
            nvm_write_bw: 13.0 * GB,
            nvm_granularity: 256,
            nvm_ddio_write_amp: 1.2,

            accel_ddr_latency: Span::from_ns(120),
            accel_ddr_bw: 36.0 * GB,
            accel_hbm_latency: Span::from_ns(180),
            accel_hbm_bw: 425.0 * GB,

            nic_dram_latency: Span::from_ns(110),
            nic_dram_bw: 25.6 * GB,
        }
    }
}

impl MemConfig {
    /// Bytes of LLC usable by DDIO injection.
    pub fn ddio_capacity(&self) -> u64 {
        (self.llc_capacity as f64 * self.ddio_way_fraction) as u64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let bws = [
            ("dram_bw", self.dram_bw),
            ("nvm_read_bw", self.nvm_read_bw),
            ("nvm_write_bw", self.nvm_write_bw),
            ("accel_ddr_bw", self.accel_ddr_bw),
            ("accel_hbm_bw", self.accel_hbm_bw),
            ("nic_dram_bw", self.nic_dram_bw),
        ];
        for (name, bw) in bws {
            if !(bw.is_finite() && bw > 0.0) {
                return Err(format!("{name} must be positive, got {bw}"));
            }
        }
        if self.nvm_granularity == 0 || !self.nvm_granularity.is_power_of_two() {
            return Err(format!("nvm_granularity must be a power of two, got {}", self.nvm_granularity));
        }
        if !(0.0..=1.0).contains(&self.ddio_way_fraction) {
            return Err(format!("ddio_way_fraction must be in [0,1], got {}", self.ddio_way_fraction));
        }
        if self.nvm_ddio_write_amp < 1.0 {
            return Err(format!("nvm_ddio_write_amp must be >= 1, got {}", self.nvm_ddio_write_amp));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        MemConfig::default().validate().unwrap();
    }

    #[test]
    fn ddio_capacity_is_fraction_of_llc() {
        let cfg = MemConfig::default();
        assert_eq!(cfg.ddio_capacity(), (27_500_000.0 * 2.0 / 11.0) as u64);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let cfg = MemConfig { dram_bw: 0.0, ..MemConfig::default() };
        assert!(cfg.validate().is_err());

        let cfg = MemConfig { nvm_granularity: 100, ..MemConfig::default() };
        assert!(cfg.validate().is_err());

        let cfg = MemConfig { ddio_way_fraction: 1.5, ..MemConfig::default() };
        assert!(cfg.validate().is_err());

        let cfg = MemConfig { nvm_ddio_write_amp: 0.5, ..MemConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn hbm_is_faster_bw_but_slower_latency_than_ddr() {
        // Matches Sec. VI-B's observation that Rambda-LH has higher average
        // latency but far higher bandwidth than Rambda-LD.
        let cfg = MemConfig::default();
        assert!(cfg.accel_hbm_bw > cfg.accel_ddr_bw);
        assert!(cfg.accel_hbm_latency > cfg.accel_ddr_latency);
    }
}
