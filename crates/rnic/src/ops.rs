//! End-to-end verb operations composing PCIe, network, and memory models.
//!
//! Every verb drives its data-bearing frames through the fault-aware
//! [`Network::transmit`] path and runs the sender-side recovery state
//! machine of [`RetryPolicy`]: a dropped or flapped frame is detected by
//! retransmission timeout, a corrupted frame by the receiver's NACK (sent
//! on the fault-exempt control path), and either way the frame is re-emitted
//! from the NIC's retry buffer with exponential backoff until the retry cap,
//! after which the verb returns [`RdmaError::RetriesExhausted`] — the error
//! completion a real RC QP would surface — instead of panicking.

use rambda_des::SimTime;
use rambda_fabric::{Network, TxOutcome};
use rambda_mem::{DmaRoute, MemorySystem};

use crate::endpoint::{MrKey, PostPath, RnicEndpoint};

/// Bit-set of per-WQE posting flags.
///
/// Combine flags with `|` (or [`PostFlags::with`]); test with
/// [`PostFlags::contains`]. The struct is `#[non_exhaustive]` so new flags
/// can be added without breaking call sites — construct values from the
/// named constants and [`Default`] (no flags), never from a literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub struct PostFlags {
    bits: u8,
}

impl PostFlags {
    /// No flags: unsignaled, with the transport's default retry behavior.
    pub const NONE: PostFlags = PostFlags { bits: 0 };
    /// The WQE is signaled: a CQE is generated at the sender on completion.
    pub const SIGNALED: PostFlags = PostFlags { bits: 1 };
    /// Fail fast: the first detected loss returns the error outcome instead
    /// of retransmitting. Callers use this to implement their own failover
    /// (e.g. falling back to a two-sided path or shedding the request).
    pub const NO_RETRY: PostFlags = PostFlags { bits: 1 << 1 };

    /// This set plus `other`.
    #[must_use]
    pub fn with(self, other: PostFlags) -> PostFlags {
        PostFlags { bits: self.bits | other.bits }
    }

    /// This set minus `other`.
    #[must_use]
    pub fn without(self, other: PostFlags) -> PostFlags {
        PostFlags { bits: self.bits & !other.bits }
    }

    /// Whether every flag in `other` is set.
    pub fn contains(self, other: PostFlags) -> bool {
        self.bits & other.bits == other.bits
    }
}

impl core::ops::BitOr for PostFlags {
    type Output = PostFlags;
    fn bitor(self, rhs: PostFlags) -> PostFlags {
        self.with(rhs)
    }
}

/// Options for a one-sided write.
#[derive(Debug, Clone, Copy)]
pub struct WriteOpts {
    /// How the WQE is posted at the sender.
    pub post: PostPath,
    /// WQEs covered by the same doorbell as this one (1 = unbatched). The
    /// amortized doorbell/fetch cost is `1/batch` of the full cost.
    pub batch: usize,
    /// Posting flags (signaling, retry behavior).
    pub flags: PostFlags,
}

impl WriteOpts {
    /// Unbatched, unsignaled, host-posted write.
    pub fn host_unsignaled() -> Self {
        WriteOpts { post: PostPath::HostMmio, batch: 1, flags: PostFlags::NONE }
    }
}

impl Default for WriteOpts {
    fn default() -> Self {
        WriteOpts::host_unsignaled()
    }
}

/// Why a verb completed in error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaError {
    /// The transport abandoned the operation: every transmission attempt
    /// was lost or corrupted and the retry cap ran out (or the WQE carried
    /// [`PostFlags::NO_RETRY`]).
    RetriesExhausted {
        /// When the sender gave up (after its final timeout or backoff).
        at: SimTime,
        /// Transmission attempts made, including the initial one.
        attempts: u32,
    },
}

impl RdmaError {
    /// When the error completion surfaced at the sender.
    pub fn at(&self) -> SimTime {
        match *self {
            RdmaError::RetriesExhausted { at, .. } => at,
        }
    }
}

impl core::fmt::Display for RdmaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RdmaError::RetriesExhausted { at, attempts } => {
                write!(f, "retries exhausted after {attempts} attempts at {at:?}")
            }
        }
    }
}

impl std::error::Error for RdmaError {}

/// The outcome of a one-sided write.
#[derive(Debug, Clone, Copy)]
pub struct WriteOutcome {
    /// When the payload is visible in destination memory/LLC.
    pub delivered_at: SimTime,
    /// Where the inbound DMA landed on the destination host.
    pub route: DmaRoute,
    /// When the sender's CQE landed (if signaled).
    pub completed_at: Option<SimTime>,
}

/// The outcome of a one-sided read.
#[derive(Debug, Clone, Copy)]
pub struct ReadOutcome {
    /// When the data is available at the requester.
    pub data_at: SimTime,
}

/// Drives one data-path frame from `src` to `to`, running the sender-side
/// recovery loop: timeouts for lost frames, NACK + backoff for corrupted
/// ones, exponential backoff per consecutive loss. Retransmits re-emit from
/// the NIC's retry buffer (no WQE re-fetch). Returns the arrival time.
fn transmit_reliable(
    at: SimTime,
    src: &mut RnicEndpoint,
    to: rambda_fabric::NodeId,
    net: &mut Network,
    bytes: u64,
    flags: PostFlags,
) -> Result<SimTime, RdmaError> {
    let policy = src.config().retry.clone();
    let mut attempt: u32 = 0;
    let mut at = at;
    loop {
        let resume = match net.transmit(at, src.node(), to, bytes) {
            TxOutcome::Delivered { at } => return Ok(at),
            TxOutcome::Dropped { at: sent } => {
                let rto = policy.timeout(attempt);
                src.note_timeout(rto);
                sent + rto
            }
            TxOutcome::Corrupted { at: arrived } => {
                let nacked = net.send(arrived, to, src.node(), 0);
                src.note_nack(policy.nack_backoff);
                nacked + policy.nack_backoff
            }
        };
        if flags.contains(PostFlags::NO_RETRY) || attempt >= policy.max_retries {
            src.note_exhausted();
            return Err(RdmaError::RetriesExhausted { at: resume, attempts: attempt + 1 });
        }
        src.note_retransmit();
        at = resume;
        attempt += 1;
    }
}

/// Executes a one-sided RDMA write of `bytes` from `src`'s machine into
/// region `mr` on `dst`'s machine.
///
/// The full pipeline: post (doorbell + WQE fetch, amortized over
/// `opts.batch`), sender NIC pipeline, wire (with loss recovery), receiver
/// NIC pipeline, DMA into host memory with the region's TPH policy,
/// optional CQE at the sender.
///
/// # Errors
///
/// [`RdmaError::RetriesExhausted`] when the transport gives up on the
/// payload frame.
#[allow(clippy::too_many_arguments)]
pub fn rdma_write(
    at: SimTime,
    src: &mut RnicEndpoint,
    dst: &mut RnicEndpoint,
    net: &mut Network,
    dst_mem: &mut MemorySystem,
    src_mem: &mut MemorySystem,
    mr: MrKey,
    bytes: u64,
    opts: WriteOpts,
) -> Result<WriteOutcome, RdmaError> {
    let (delivered_at, route) = write_path(at, src, dst, net, dst_mem, mr, bytes, opts)?;
    let completed_at = opts.flags.contains(PostFlags::SIGNALED).then(|| {
        // The ACK travels back before the CQE is generated.
        let acked = net.send(delivered_at, dst.node(), src.node(), 0);
        src.complete(acked, src_mem)
    });
    Ok(WriteOutcome { delivered_at, route, completed_at })
}

/// The unsignaled write pipeline shared by [`rdma_write`] and
/// [`two_sided_send`].
#[allow(clippy::too_many_arguments)]
fn write_path(
    at: SimTime,
    src: &mut RnicEndpoint,
    dst: &mut RnicEndpoint,
    net: &mut Network,
    dst_mem: &mut MemorySystem,
    mr: MrKey,
    bytes: u64,
    opts: WriteOpts,
) -> Result<(SimTime, DmaRoute), RdmaError> {
    assert!(opts.batch > 0, "batch must be at least 1");
    let on_nic = if opts.batch == 1 {
        src.post(at, opts.post, 1)
    } else {
        // Amortized: this WQE pays its pipeline slot; the doorbell+fetch
        // cost is paid once per chain by the first WQE.
        src.next_in_pipeline(at + src.config().wqe_gap.mul_f64(1.0 / opts.batch as f64))
    };
    let on_wire = transmit_reliable(on_nic, src, dst.node(), net, bytes, opts.flags)?;
    Ok(dst.deliver_write(on_wire, mr, bytes, dst_mem))
}

/// Executes a one-sided RDMA read of `bytes` from region `mr` on `dst`'s
/// machine back to `src`'s machine.
///
/// Recovery is requester-driven, as on a real RC QP: losing either the
/// request frame or the data response burns one of the requester's retry
/// attempts, and a retry re-issues the whole round trip (the responder
/// serves the read again).
///
/// # Errors
///
/// [`RdmaError::RetriesExhausted`] when the requester gives up.
#[allow(clippy::too_many_arguments)]
pub fn rdma_read(
    at: SimTime,
    src: &mut RnicEndpoint,
    dst: &mut RnicEndpoint,
    net: &mut Network,
    dst_mem: &mut MemorySystem,
    mr: MrKey,
    bytes: u64,
    opts: WriteOpts,
) -> Result<ReadOutcome, RdmaError> {
    assert!(opts.batch > 0, "batch must be at least 1");
    let on_nic = if opts.batch == 1 {
        src.post(at, opts.post, 1)
    } else {
        src.next_in_pipeline(at + src.config().wqe_gap.mul_f64(1.0 / opts.batch as f64))
    };
    let policy = src.config().retry.clone();
    let mut attempt: u32 = 0;
    let mut at = on_nic;
    loop {
        // Request message carries no payload.
        let resume = match net.transmit(at, src.node(), dst.node(), 0) {
            TxOutcome::Delivered { at: req_at } => {
                let data_on_nic = dst.serve_read(req_at, mr, bytes, dst_mem);
                match net.transmit(data_on_nic, dst.node(), src.node(), bytes) {
                    TxOutcome::Delivered { at: data_at } => return Ok(ReadOutcome { data_at }),
                    TxOutcome::Dropped { at: sent } => {
                        // The requester's RTO covers the whole round trip.
                        let rto = policy.timeout(attempt);
                        src.note_timeout(rto);
                        sent + rto
                    }
                    TxOutcome::Corrupted { at: arrived } => {
                        // The requester sees the bad payload on arrival and
                        // NACKs the responder before re-issuing.
                        let nacked = net.send(arrived, src.node(), dst.node(), 0);
                        src.note_nack(policy.nack_backoff);
                        nacked + policy.nack_backoff
                    }
                }
            }
            TxOutcome::Dropped { at: sent } => {
                let rto = policy.timeout(attempt);
                src.note_timeout(rto);
                sent + rto
            }
            TxOutcome::Corrupted { at: arrived } => {
                let nacked = net.send(arrived, dst.node(), src.node(), 0);
                src.note_nack(policy.nack_backoff);
                nacked + policy.nack_backoff
            }
        };
        if opts.flags.contains(PostFlags::NO_RETRY) || attempt >= policy.max_retries {
            src.note_exhausted();
            return Err(RdmaError::RetriesExhausted { at: resume, attempts: attempt + 1 });
        }
        src.note_retransmit();
        at = resume;
        attempt += 1;
    }
}

/// A two-sided send/recv: like a write into the receiver's posted RQ buffer,
/// plus receiver CPU involvement (charged by the caller's CPU model). The
/// returned time is when the payload and the receive completion are visible
/// to the receiving host.
///
/// # Errors
///
/// [`RdmaError::RetriesExhausted`] when the transport gives up on the
/// payload frame.
#[allow(clippy::too_many_arguments)]
pub fn two_sided_send(
    at: SimTime,
    src: &mut RnicEndpoint,
    dst: &mut RnicEndpoint,
    net: &mut Network,
    dst_mem: &mut MemorySystem,
    rq_region: MrKey,
    bytes: u64,
    opts: WriteOpts,
) -> Result<SimTime, RdmaError> {
    // SEND carries extra transport state on the wire (immediate data, RQ
    // credit updates) relative to a one-sided WRITE — the small edge
    // Sec. VI-B measures for Rambda's one-sided path.
    let framed = bytes + 16;
    let unsignaled = WriteOpts { flags: opts.flags.without(PostFlags::SIGNALED), ..opts };
    let (delivered_at, _route) = write_path(at, src, dst, net, dst_mem, rq_region, framed, unsignaled)?;
    // The receiver learns via a CQE on its own CQ.
    Ok(dst.complete(delivered_at, dst_mem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{MrInfo, RnicConfig};
    use rambda_des::Span;
    use rambda_fabric::{FaultConfig, NetConfig, NodeId, PcieConfig};
    use rambda_mem::{MemConfig, MemKind};

    struct World {
        client: RnicEndpoint,
        server: RnicEndpoint,
        net: Network,
        client_mem: MemorySystem,
        server_mem: MemorySystem,
    }

    fn world() -> World {
        World {
            client: RnicEndpoint::new(NodeId(0), RnicConfig::default(), PcieConfig::default()),
            server: RnicEndpoint::new(NodeId(1), RnicConfig::default(), PcieConfig::default()),
            net: Network::new(NetConfig::default()),
            client_mem: MemorySystem::new(MemConfig::default(), false),
            server_mem: MemorySystem::new(MemConfig::default(), false),
        }
    }

    #[test]
    fn post_flags_compose() {
        let flags = PostFlags::SIGNALED | PostFlags::NO_RETRY;
        assert!(flags.contains(PostFlags::SIGNALED));
        assert!(flags.contains(PostFlags::NO_RETRY));
        assert!(!PostFlags::default().contains(PostFlags::SIGNALED));
        assert_eq!(flags.without(PostFlags::SIGNALED), PostFlags::NO_RETRY);
        assert_eq!(PostFlags::NONE, PostFlags::default());
    }

    #[test]
    fn one_sided_write_single_trip_latency() {
        let mut w = world();
        let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let out = rdma_write(
            SimTime::ZERO,
            &mut w.client,
            &mut w.server,
            &mut w.net,
            &mut w.server_mem,
            &mut w.client_mem,
            mr,
            64,
            WriteOpts::default(),
        )
        .expect("healthy fabric");
        // doorbell w/ inline WQE (~0.6us) + wire (~1us) + rx DMA (~0.7us).
        let us = out.delivered_at.as_us_f64();
        assert!((2.0..4.5).contains(&us), "{us}");
        assert_eq!(out.route, DmaRoute::Llc);
        assert!(out.completed_at.is_none());
    }

    #[test]
    fn signaled_write_generates_cqe_after_ack() {
        let mut w = world();
        let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let out = rdma_write(
            SimTime::ZERO,
            &mut w.client,
            &mut w.server,
            &mut w.net,
            &mut w.server_mem,
            &mut w.client_mem,
            mr,
            64,
            WriteOpts { flags: PostFlags::SIGNALED, ..WriteOpts::default() },
        )
        .expect("healthy fabric");
        let cqe = out.completed_at.unwrap();
        assert!(cqe > out.delivered_at);
        assert_eq!(w.client.stats().cqes, 1);
    }

    #[test]
    fn read_round_trip_is_slower_than_write() {
        let mut w = world();
        let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let wr = rdma_write(
            SimTime::ZERO,
            &mut w.client,
            &mut w.server,
            &mut w.net,
            &mut w.server_mem,
            &mut w.client_mem,
            mr,
            64,
            WriteOpts::default(),
        )
        .expect("healthy fabric");
        let mut w2 = world();
        let mr2 = w2.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let rd = rdma_read(
            SimTime::ZERO,
            &mut w2.client,
            &mut w2.server,
            &mut w2.net,
            &mut w2.server_mem,
            mr2,
            64,
            WriteOpts::default(),
        )
        .expect("healthy fabric");
        assert!(rd.data_at > wr.delivered_at);
    }

    #[test]
    fn batched_writes_have_higher_throughput() {
        let mut unbatched_done = SimTime::ZERO;
        {
            let mut w = world();
            let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
            let mut t = SimTime::ZERO;
            for _ in 0..32 {
                let out = rdma_write(
                    t,
                    &mut w.client,
                    &mut w.server,
                    &mut w.net,
                    &mut w.server_mem,
                    &mut w.client_mem,
                    mr,
                    64,
                    WriteOpts::default(),
                )
                .expect("healthy fabric");
                t = out.delivered_at - Span::from_ns(1500); // keep pipeline busy
                unbatched_done = out.delivered_at;
            }
        }
        let mut batched_done = SimTime::ZERO;
        {
            let mut w = world();
            let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
            for i in 0..32 {
                let opts = WriteOpts { batch: 32, ..WriteOpts::default() };
                let opts = if i == 0 { WriteOpts { batch: 1, ..opts } } else { opts };
                let out = rdma_write(
                    SimTime::ZERO,
                    &mut w.client,
                    &mut w.server,
                    &mut w.net,
                    &mut w.server_mem,
                    &mut w.client_mem,
                    mr,
                    64,
                    opts,
                )
                .expect("healthy fabric");
                batched_done = out.delivered_at;
            }
        }
        assert!(batched_done < unbatched_done, "batched {batched_done} vs {unbatched_done}");
    }

    #[test]
    fn two_sided_costs_receiver_cqe() {
        let mut w = world();
        let rq = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let done = two_sided_send(
            SimTime::ZERO,
            &mut w.client,
            &mut w.server,
            &mut w.net,
            &mut w.server_mem,
            rq,
            64,
            WriteOpts::default(),
        )
        .expect("healthy fabric");
        assert!(done.as_us_f64() > 3.0);
        assert_eq!(w.server.stats().cqes, 1);
    }

    #[test]
    fn lossy_write_retransmits_and_costs_latency() {
        let mut healthy = world();
        let mut lossy = world();
        lossy.net.install_faults(&FaultConfig::lossy(3, 0.2));
        let run = |w: &mut World| {
            let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
            let mut total = Span::ZERO;
            for i in 0..200u64 {
                let at = SimTime::from_us(i * 20);
                let out = rdma_write(
                    at,
                    &mut w.client,
                    &mut w.server,
                    &mut w.net,
                    &mut w.server_mem,
                    &mut w.client_mem,
                    mr,
                    64,
                    WriteOpts::default(),
                )
                .expect("retry cap is far above what 20% loss needs");
                total += out.delivered_at.saturating_since(at);
            }
            total
        };
        let healthy_total = run(&mut healthy);
        let lossy_total = run(&mut lossy);
        assert!(lossy_total > healthy_total, "loss must cost time");
        let s = lossy.client.stats();
        assert!(s.retransmits > 0 && s.timeouts > 0, "{s:?}");
        assert_eq!(s.retransmits + s.retries_exhausted, s.timeouts + s.nacks);
        assert!(s.backoff_ns > 0);
        assert_eq!(healthy.client.stats().retransmits, 0);
    }

    #[test]
    fn corruption_draws_nacks_not_timeouts() {
        let mut w = world();
        w.net.install_faults(&FaultConfig { corrupt_rate: 0.2, ..FaultConfig::lossy(9, 0.0) });
        let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        for i in 0..200u64 {
            rdma_write(
                SimTime::from_us(i * 20),
                &mut w.client,
                &mut w.server,
                &mut w.net,
                &mut w.server_mem,
                &mut w.client_mem,
                mr,
                64,
                WriteOpts::default(),
            )
            .expect("retry cap covers this");
        }
        let s = w.client.stats();
        assert!(s.nacks > 0, "{s:?}");
        assert_eq!(s.timeouts, 0);
        assert_eq!(s.retransmits, s.nacks);
    }

    #[test]
    fn total_loss_exhausts_retries_without_panicking() {
        let mut w = world();
        w.net.install_faults(&FaultConfig::lossy(1, 1.0));
        let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let err = rdma_write(
            SimTime::ZERO,
            &mut w.client,
            &mut w.server,
            &mut w.net,
            &mut w.server_mem,
            &mut w.client_mem,
            mr,
            64,
            WriteOpts::default(),
        )
        .unwrap_err();
        let max = w.client.config().retry.max_retries;
        let RdmaError::RetriesExhausted { at, attempts } = err;
        assert_eq!(attempts, max + 1);
        assert!(at > SimTime::ZERO);
        let s = w.client.stats();
        assert_eq!(s.retries_exhausted, 1);
        assert_eq!(s.retransmits, max as u64);
        assert_eq!(s.timeouts, (max + 1) as u64);
        assert!(err.to_string().contains("retries exhausted"));
    }

    #[test]
    fn no_retry_fails_on_first_loss() {
        let mut w = world();
        w.net.install_faults(&FaultConfig::lossy(1, 1.0));
        let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let err = rdma_read(
            SimTime::ZERO,
            &mut w.client,
            &mut w.server,
            &mut w.net,
            &mut w.server_mem,
            mr,
            64,
            WriteOpts { flags: PostFlags::NO_RETRY, ..WriteOpts::default() },
        )
        .unwrap_err();
        let RdmaError::RetriesExhausted { attempts, .. } = err;
        assert_eq!(attempts, 1);
        assert_eq!(w.client.stats().retransmits, 0);
        assert_eq!(w.client.stats().retries_exhausted, 1);
    }

    #[test]
    fn lossy_reads_recover_and_recharge_the_responder() {
        let mut w = world();
        w.net.install_faults(&FaultConfig::lossy(5, 0.3));
        let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        for i in 0..100u64 {
            rdma_read(
                SimTime::from_us(i * 50),
                &mut w.client,
                &mut w.server,
                &mut w.net,
                &mut w.server_mem,
                mr,
                64,
                WriteOpts::default(),
            )
            .expect("retry cap covers 30% loss");
        }
        let s = w.client.stats();
        assert!(s.retransmits > 0, "{s:?}");
        // A retried read re-issues the whole round trip, so the responder
        // serves strictly more reads than the requester completed.
        assert!(w.server.stats().inbound_reads > 100);
    }
}
