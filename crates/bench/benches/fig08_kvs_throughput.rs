//! Fig. 8: KVS peak throughput per design × key distribution × workload
//! (batch 32).
//!
//! Expectations: CPU and Rambda are network-bound and distribution-
//! insensitive, Rambda a few percent ahead; the Smart NIC collapses under
//! the uniform distribution; LD/LH match Rambda (the network is the limit);
//! the 50/50 PUT workload changes little (MICA-style partitioning).

use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_bench::{mops, Table};
use rambda_kvs::designs::{run_cpu, run_rambda, run_smartnic};
use rambda_kvs::{KvsParams, KvsWorkload};

fn main() {
    let tb = Testbed::default();
    let base = KvsParams { requests: 100_000, ..KvsParams::paper() };

    let mut table = Table::new(
        "Fig. 8 — KVS peak throughput (Mops), batch 32",
        &["workload", "dist", "CPU", "SmartNIC", "Rambda", "Rambda-LD", "Rambda-LH"],
    );
    for workload in [KvsWorkload::ReadIntensive, KvsWorkload::WriteIntensive] {
        for (dist_name, zipf) in [("uniform", None), ("zipf0.9", Some(0.9))] {
            let mut p = base.clone().with_workload(workload);
            p.zipf = zipf;
            let cpu = run_cpu(&tb, &p).throughput_mops();
            let snic = run_smartnic(&tb, &p).throughput_mops();
            let rambda = run_rambda(&tb, &p, DataLocation::HostDram).throughput_mops();
            let ld = run_rambda(&tb, &p, DataLocation::LocalDdr).throughput_mops();
            let lh = run_rambda(&tb, &p, DataLocation::LocalHbm).throughput_mops();
            let wl = match workload {
                KvsWorkload::ReadIntensive => "100% GET",
                KvsWorkload::WriteIntensive => "50/50",
            };
            table.row(vec![
                wl.into(),
                dist_name.into(),
                mops(cpu),
                mops(snic),
                mops(rambda),
                mops(ld),
                mops(lh),
            ]);
        }
    }
    table.print();
    println!(
        "shape check: Rambda ~2-8% over CPU; SmartNIC uniform << zipf; LD/LH == Rambda (network-bound)."
    );
}
