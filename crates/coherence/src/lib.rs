//! Cache-coherence domain model for the Rambda reproduction.
//!
//! Rambda's key architectural bet (Sec. III) is that a *cache-coherent*
//! accelerator can observe request arrival through ordinary coherence
//! traffic instead of spin-polling, and can exchange fine-grained data with
//! the CPU over the coherent interconnect instead of PCIe. This crate
//! provides:
//!
//! * [`Directory`] — a functional MESI directory tracking line states across
//!   agents (CPU, accelerator, I/O), emitting the invalidation signals cpoll
//!   snoops on;
//! * [`CpollChecker`] — the checker sitting in the accelerator coherence
//!   controller's datapath (Fig. 3): registered contiguous regions, address
//!   → ring dispatch, pinned-cache-region capacity accounting;
//! * [`CcInterconnect`] — the UPI/CXL link model (Tab. II: 20.8 GB/s, one
//!   hop to the CPU);
//! * [`Notifier`] — cpoll vs spin-polling notification cost model used by
//!   the Fig. 7 ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpoll;
mod interconnect;
mod mesi;
mod notify;

pub use cpoll::{CpollChecker, CpollError, Notification, RegionId};
pub use interconnect::{CcConfig, CcInterconnect};
pub use mesi::{AgentId, CoherenceEvent, Directory, LineAddr, LineState};
pub use notify::{Notifier, NotifyCost};
