//! KVS and transaction workload generators (Sec. VI-B / VI-C).

use rambda_des::SimRng;
use serde::{Deserialize, Serialize};

use crate::zipf::Zipf;

/// Key popularity distribution.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over `0..n`.
    Uniform {
        /// Number of keys.
        n: u64,
    },
    /// Zipfian with the given sampler.
    Zipfian(Zipf),
}

impl KeyDist {
    /// Uniform over `n` keys.
    pub fn uniform(n: u64) -> Self {
        KeyDist::Uniform { n }
    }

    /// Zipfian over `n` keys with exponent `theta` (the paper uses 0.9).
    pub fn zipfian(n: u64, theta: f64) -> Self {
        KeyDist::Zipfian(Zipf::new(n, theta))
    }

    /// Number of keys.
    pub fn n(&self) -> u64 {
        match self {
            KeyDist::Uniform { n } => *n,
            KeyDist::Zipfian(z) => z.n(),
        }
    }

    /// Draws a key.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.gen_range(0..*n),
            KeyDist::Zipfian(z) => z.sample(rng),
        }
    }

    /// Expected fraction of draws landing in the hottest `c` keys (cache
    /// hit-rate model).
    pub fn hot_mass(&self, c: u64) -> f64 {
        match self {
            KeyDist::Uniform { n } => Zipf::uniform_mass(*n, c),
            KeyDist::Zipfian(z) => z.hot_mass(c),
        }
    }
}

/// One key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvOp {
    /// Read the value for a key.
    Get {
        /// The key.
        key: u64,
    },
    /// Insert or update a key with a value of `value_bytes`.
    Put {
        /// The key.
        key: u64,
        /// Value size in bytes.
        value_bytes: u32,
    },
}

impl KvOp {
    /// The key this operation targets.
    pub fn key(&self) -> u64 {
        match self {
            KvOp::Get { key } | KvOp::Put { key, .. } => *key,
        }
    }

    /// Whether this is a write.
    pub fn is_put(&self) -> bool {
        matches!(self, KvOp::Put { .. })
    }
}

/// A GET/PUT mix over a key distribution.
///
/// The paper's two workloads: read-intensive (100 % GET) and write-intensive
/// (50 % GET, 50 % PUT), over 100 M pairs of 64 B.
#[derive(Debug, Clone)]
pub struct KvMix {
    dist: KeyDist,
    get_fraction: f64,
    value_bytes: u32,
}

impl KvMix {
    /// Creates a mix with the given GET fraction and value size.
    ///
    /// # Panics
    ///
    /// Panics if `get_fraction` is outside `[0, 1]`.
    pub fn new(dist: KeyDist, get_fraction: f64, value_bytes: u32) -> Self {
        assert!((0.0..=1.0).contains(&get_fraction), "bad GET fraction {get_fraction}");
        KvMix { dist, get_fraction, value_bytes }
    }

    /// The paper's read-intensive workload (100 % GET, 64 B values).
    pub fn read_intensive(dist: KeyDist) -> Self {
        KvMix::new(dist, 1.0, 64)
    }

    /// The paper's write-intensive workload (50 % GET / 50 % PUT, 64 B).
    pub fn write_intensive(dist: KeyDist) -> Self {
        KvMix::new(dist, 0.5, 64)
    }

    /// The key distribution.
    pub fn dist(&self) -> &KeyDist {
        &self.dist
    }

    /// Draws the next operation.
    pub fn next_op(&self, rng: &mut SimRng) -> KvOp {
        let key = self.dist.sample(rng);
        if rng.chance(self.get_fraction) {
            KvOp::Get { key }
        } else {
            KvOp::Put { key, value_bytes: self.value_bytes }
        }
    }
}

/// A multi-operation transaction shape for the chain-replication system.
///
/// Sec. VI-C evaluates (reads, writes) ∈ {(0,1), (4,2)} with 64 B and
/// 1024 B values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnSpec {
    /// Read operations per transaction.
    pub reads: usize,
    /// Write operations per transaction.
    pub writes: usize,
    /// Value size in bytes.
    pub value_bytes: u32,
}

impl TxnSpec {
    /// The paper's single-write transaction.
    pub fn single_write(value_bytes: u32) -> Self {
        TxnSpec { reads: 0, writes: 1, value_bytes }
    }

    /// The paper's (4 reads, 2 writes) transaction, "representative of
    /// real-world transactional systems".
    pub fn read_write(value_bytes: u32) -> Self {
        TxnSpec { reads: 4, writes: 2, value_bytes }
    }

    /// Total operations.
    pub fn ops(&self) -> usize {
        self.reads + self.writes
    }

    /// Draws the distinct keys this transaction touches.
    pub fn sample_keys(&self, dist: &KeyDist, rng: &mut SimRng) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.ops());
        while keys.len() < self.ops() {
            let k = dist.sample(rng);
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        keys
    }

    /// Redo-log entry size: a 1-byte tuple count plus `(data, len, offset)`
    /// tuples for each write (Sec. IV-B's log format).
    pub fn log_entry_bytes(&self) -> u64 {
        1 + self.writes as u64 * (self.value_bytes as u64 + 4 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_fractions() {
        let mix = KvMix::write_intensive(KeyDist::uniform(1000));
        let mut rng = SimRng::seed(1);
        let puts = (0..10_000).filter(|_| mix.next_op(&mut rng).is_put()).count();
        assert!((4_500..5_500).contains(&puts), "puts={puts}");
    }

    #[test]
    fn read_intensive_is_all_gets() {
        let mix = KvMix::read_intensive(KeyDist::zipfian(1000, 0.9));
        let mut rng = SimRng::seed(2);
        assert!((0..1000).all(|_| !mix.next_op(&mut rng).is_put()));
    }

    #[test]
    fn op_accessors() {
        let g = KvOp::Get { key: 5 };
        let p = KvOp::Put { key: 6, value_bytes: 64 };
        assert_eq!(g.key(), 5);
        assert_eq!(p.key(), 6);
        assert!(p.is_put() && !g.is_put());
    }

    #[test]
    fn txn_specs_match_paper() {
        let t = TxnSpec::read_write(64);
        assert_eq!((t.reads, t.writes), (4, 2));
        assert_eq!(t.ops(), 6);
        let s = TxnSpec::single_write(1024);
        assert_eq!(s.ops(), 1);
        // 1 count byte + 2x(1024+12) for the (4,2) @1024 shape.
        assert_eq!(TxnSpec::read_write(1024).log_entry_bytes(), 1 + 2 * 1036);
    }

    #[test]
    fn txn_keys_are_distinct() {
        let dist = KeyDist::zipfian(100, 0.9); // heavy collisions, must dedup
        let mut rng = SimRng::seed(3);
        for _ in 0..100 {
            let keys = TxnSpec::read_write(64).sample_keys(&dist, &mut rng);
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), keys.len());
        }
    }

    #[test]
    fn keydist_hot_mass_dispatch() {
        assert_eq!(KeyDist::uniform(100).hot_mass(50), 0.5);
        assert!(KeyDist::zipfian(1000, 0.9).hot_mass(100) > 0.5);
    }

    #[test]
    #[should_panic(expected = "bad GET fraction")]
    fn bad_fraction_panics() {
        KvMix::new(KeyDist::uniform(10), 1.5, 64);
    }
}
