//! Negative fixture for `cargo xtask analyze`: a documentation-mandatory
//! crate breaking R4 — an undocumented `pub` item. Never compiled.

#![forbid(unsafe_code)]

/// Documented: fine.
pub fn documented() -> u32 {
    1
}

pub fn frobnicate() -> u32 {
    2
}
