//! The flight recorder itself: a bounded, drop-oldest ring of events.

use std::collections::{BTreeMap, VecDeque};

use rambda_des::{SampleClock, SimTime, Span};
use rambda_metrics::{MetricSet, ReqTrace, StageRecorder};

use crate::critpath::{CritAcc, CriticalPathSummary};
use crate::event::{TraceEvent, Track};

/// Default ring capacity: one million events (~64 MB worst case), enough to
/// hold every event of a quick-mode run without dropping.
const DEFAULT_CAP: usize = 1 << 20;

/// Default sampler grid: 50 µs of simulated time between counter samples.
const DEFAULT_INTERVAL_US: u64 = 50;

/// Live recorder state, present only when tracing is enabled.
#[derive(Debug, Clone)]
struct Buf {
    events: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
    next_id: u64,
    next_req: u64,
    clock: SampleClock,
    final_counters: BTreeMap<String, u64>,
    final_at_ps: Option<u64>,
    crit: CritAcc,
}

impl Buf {
    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

/// A per-request span that has been opened but not yet finished.
#[derive(Debug, Clone, Copy)]
struct OpenReq {
    span_id: u64,
    req: u64,
    start_ps: u64,
    cursor_ps: u64,
}

/// The deterministic flight recorder.
///
/// Construct with [`Tracer::disabled`] for uninstrumented runs (every call
/// is a branch on a `None`) or [`Tracer::flight_recorder`] /
/// [`Tracer::bounded`] to record. See the crate docs for the event model.
#[derive(Debug, Clone)]
pub struct Tracer {
    buf: Option<Buf>,
}

impl Tracer {
    /// A recorder that records nothing; all observation calls are no-ops.
    pub fn disabled() -> Self {
        Tracer { buf: None }
    }

    /// A recorder with the default ring capacity (2^20 events) and sampler
    /// grid (50 µs of simulated time).
    pub fn flight_recorder() -> Self {
        Tracer::bounded(DEFAULT_CAP, Span::from_us(DEFAULT_INTERVAL_US))
    }

    /// A recorder holding at most `cap` events (oldest dropped first) and
    /// sampling counters every `interval` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero or `interval` is zero (via
    /// [`SampleClock::new`]).
    pub fn bounded(cap: usize, interval: Span) -> Self {
        assert!(cap > 0, "trace ring capacity must be positive");
        Tracer {
            buf: Some(Buf {
                events: VecDeque::new(),
                cap,
                dropped: 0,
                next_id: 0,
                next_req: 0,
                clock: SampleClock::new(interval),
                final_counters: BTreeMap::new(),
                final_at_ps: None,
                crit: CritAcc::default(),
            }),
        }
    }

    /// Whether this tracer records.
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Number of events currently held in the ring.
    pub fn len(&self) -> usize {
        self.buf.as_ref().map_or(0, |b| b.events.len())
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.buf.as_ref().map_or(0, |b| b.dropped)
    }

    /// Iterates the held events in recording order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter().flat_map(|b| b.events.iter())
    }

    /// The final counter snapshot recorded by [`Tracer::final_sample`], in
    /// name order.
    pub(crate) fn final_counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.buf.iter().flat_map(|b| b.final_counters.iter().map(|(k, v)| (k.as_str(), *v)))
    }

    /// The instant of the final counter snapshot, if one was taken.
    pub(crate) fn final_at_ps(&self) -> Option<u64> {
        self.buf.as_ref().and_then(|b| b.final_at_ps)
    }

    /// The whole-run critical-path analysis accumulated so far, or `None`
    /// when the tracer is disabled (disabled runs skip accumulation
    /// entirely). See [`CriticalPathSummary`] for the parallelism math.
    pub fn critical_path(&self) -> Option<CriticalPathSummary> {
        self.buf.as_ref().map(|b| b.crit.summarize())
    }

    /// Opens a traced request at `issued`: pairs a [`ReqTrace`] cursor from
    /// `rec` with a request span in this tracer. The returned [`ReqObs`]
    /// mirrors the `ReqTrace` API (`leg` / `now` / `finish`), so serve
    /// closures are written once and work for traced and untraced runs.
    pub fn observe<'a>(&'a mut self, rec: &'a mut StageRecorder, issued: SimTime) -> ReqObs<'a> {
        let open = self.buf.as_mut().map(|b| {
            let span_id = b.alloc_id();
            let req = b.next_req;
            b.next_req += 1;
            OpenReq { span_id, req, start_ps: issued.as_ps(), cursor_ps: issued.as_ps() }
        });
        ReqObs { tr: rec.trace(issued), tracer: self, open }
    }

    /// Samples cumulative counters if the deterministic grid is due at
    /// `now`. `fill` is only invoked when a sample is actually taken, so
    /// the cost of building the counter set is paid at the grid rate, not
    /// per request. One [`TraceEvent::Sample`] is recorded per counter,
    /// stamped at the grid instant (not at `now`).
    pub fn maybe_sample(&mut self, now: SimTime, fill: impl FnOnce(&mut MetricSet)) {
        let Some(buf) = self.buf.as_mut() else { return };
        let Some(tick) = buf.clock.due(now) else { return };
        let mut set = MetricSet::new();
        fill(&mut set);
        for (name, value) in set.counters() {
            buf.push(TraceEvent::Sample { name: name.to_string(), at_ps: tick.as_ps(), value });
        }
    }

    /// Feeds one periodic counter sample to both deterministic sinks: this
    /// tracer's ring (when its grid is due, as [`Tracer::maybe_sample`])
    /// and `rec`'s windowed timeline (when its snapshot grid is due).
    /// `fill` builds the cumulative counter set and runs at most once, only
    /// if at least one sink is due — so serve closures pay the sampling
    /// cost at the grid rate, not per request, and traced and untraced
    /// runs share one call site.
    pub fn sample_with(&mut self, rec: &mut StageRecorder, now: SimTime, fill: impl FnOnce(&mut MetricSet)) {
        let ring_tick = self.buf.as_mut().and_then(|b| b.clock.due(now));
        let timeline_tick = rec.timeline_due(now);
        if ring_tick.is_none() && timeline_tick.is_none() {
            return;
        }
        let mut set = MetricSet::new();
        fill(&mut set);
        if let (Some(tick), Some(buf)) = (ring_tick, self.buf.as_mut()) {
            for (name, value) in set.counters() {
                buf.push(TraceEvent::Sample { name: name.to_string(), at_ps: tick.as_ps(), value });
            }
        }
        if let Some(tick) = timeline_tick {
            rec.timeline_snapshot(tick, &set);
        }
    }

    /// Records one injected fabric fault as an instant event. Runners drain
    /// their network's fault-event log through this after the run (the ops
    /// layer has no tracer access), so `at` may lie in the past relative to
    /// the ring's newest event — consumers order by timestamp, not ring
    /// position.
    pub fn fault(&mut self, kind: &'static str, at: SimTime, from: u16, to: u16) {
        if let Some(buf) = self.buf.as_mut() {
            buf.push(TraceEvent::Fault { kind, at_ps: at.as_ps(), from, to });
        }
    }

    /// Records the run's final counter snapshot at `at` (normally the run
    /// makespan). Besides emitting one last [`TraceEvent::Sample`] per
    /// counter, the snapshot is retained so
    /// [`Tracer::cross_validate`](crate::Tracer::cross_validate) can check
    /// it against the report's resource counters.
    pub fn final_sample(&mut self, at: SimTime, set: &MetricSet) {
        let Some(buf) = self.buf.as_mut() else { return };
        for (name, value) in set.counters() {
            buf.push(TraceEvent::Sample { name: name.to_string(), at_ps: at.as_ps(), value });
        }
        buf.final_counters = set.counters().map(|(k, v)| (k.to_string(), v)).collect();
        buf.final_at_ps = Some(at.as_ps());
    }
}

/// A traced request in flight: a [`ReqTrace`] cursor plus the tracer-side
/// request span. Mirrors the [`ReqTrace`] API so serve closures need no
/// changes beyond construction via [`Tracer::observe`].
#[derive(Debug)]
pub struct ReqObs<'a> {
    tr: ReqTrace<'a>,
    tracer: &'a mut Tracer,
    open: Option<OpenReq>,
}

impl ReqObs<'_> {
    /// Ends the current leg at `now`, charging it to `stage`; records a
    /// [`TraceEvent::Span`] parented to this request.
    pub fn leg(&mut self, stage: &'static str, now: SimTime) {
        self.tr.leg(stage, now);
        if let (Some(open), Some(buf)) = (self.open.as_mut(), self.tracer.buf.as_mut()) {
            let end_ps = now.as_ps().max(open.cursor_ps);
            let track = Track::of_stage(stage);
            buf.crit.leg(track, end_ps - open.cursor_ps);
            let ev = TraceEvent::Span {
                id: buf.alloc_id(),
                parent: open.span_id,
                req: open.req,
                track,
                stage,
                start_ps: open.cursor_ps,
                end_ps,
            };
            buf.push(ev);
            open.cursor_ps = end_ps;
        }
    }

    /// The current cursor position.
    pub fn now(&self) -> SimTime {
        self.tr.now()
    }

    /// Closes the request at `done`: records the [`TraceEvent::Request`]
    /// span and forwards to [`ReqTrace::finish`].
    pub fn finish(self, done: SimTime) {
        let ReqObs { tr, tracer, open } = self;
        tr.finish(done);
        if let (Some(open), Some(buf)) = (open, tracer.buf.as_mut()) {
            let end_ps = done.as_ps().max(open.cursor_ps);
            buf.crit.finish(end_ps - open.start_ps);
            let ev = TraceEvent::Request { id: open.span_id, req: open.req, start_ps: open.start_ps, end_ps };
            buf.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_ns(n)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut rec = StageRecorder::active();
        let mut tracer = Tracer::disabled();
        let mut obs = tracer.observe(&mut rec, ns(0));
        obs.leg("fabric_request", ns(10));
        obs.finish(ns(10));
        tracer.maybe_sample(ns(1_000_000), |_| panic!("fill must not run when disabled"));
        assert!(!tracer.is_enabled());
        assert!(tracer.is_empty());
        // The underlying recorder still records.
        assert_eq!(rec.total().count(), 1);
    }

    #[test]
    fn spans_are_parented_and_partition_the_request() {
        let mut rec = StageRecorder::active();
        let mut tracer = Tracer::flight_recorder();
        let mut obs = tracer.observe(&mut rec, ns(100));
        obs.leg("fabric_request", ns(130));
        obs.leg("apu_compute", ns(180));
        assert_eq!(obs.now(), ns(180));
        obs.finish(ns(180));

        let events: Vec<_> = tracer.events().cloned().collect();
        assert_eq!(events.len(), 3);
        let TraceEvent::Span { parent: p0, start_ps: s0, end_ps: e0, track, .. } = events[0] else {
            panic!("expected a leg span first");
        };
        let TraceEvent::Span { parent: p1, start_ps: s1, end_ps: e1, .. } = events[1] else {
            panic!("expected a second leg span");
        };
        let TraceEvent::Request { id, start_ps, end_ps, req } = events[2] else {
            panic!("expected the request span last");
        };
        assert_eq!((p0, p1), (id, id), "legs must be parented to the request span");
        assert_eq!(track, Track::Fabric);
        assert_eq!((s0, e0), (100_000, 130_000));
        assert_eq!((s1, e1), (130_000, 180_000));
        assert_eq!((start_ps, end_ps, req), (100_000, 180_000, 0));
        // Legs partition the request interval exactly.
        assert_eq!((e0 - s0) + (e1 - s1), end_ps - start_ps);
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut rec = StageRecorder::active();
        let mut tracer = Tracer::bounded(4, Span::from_us(50));
        for i in 0..3u64 {
            let t0 = ns(i * 100);
            let mut obs = tracer.observe(&mut rec, t0);
            obs.leg("fabric_request", t0 + Span::from_ns(10));
            obs.finish(t0 + Span::from_ns(10));
        }
        // 3 requests × 2 events = 6 pushed into a 4-slot ring.
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.dropped(), 2);
    }

    #[test]
    fn sampler_fires_on_the_grid_and_records_counters() {
        let mut tracer = Tracer::bounded(64, Span::from_us(10));
        tracer.maybe_sample(SimTime::from_ns(500), |_| panic!("before the first grid point"));
        tracer.maybe_sample(SimTime::from_us(25), |s| {
            s.set("net.bytes", 4096);
            s.set("accel.busy_ps", 77);
        });
        let samples: Vec<_> = tracer.events().cloned().collect();
        assert_eq!(samples.len(), 2);
        let TraceEvent::Sample { ref name, at_ps, value } = samples[0] else { panic!("expected sample") };
        // Name-sorted, stamped at the 20 µs grid point, not at 25 µs.
        assert_eq!((name.as_str(), at_ps, value), ("accel.busy_ps", 20_000_000, 77));
        // Second call inside the same grid interval does not fire.
        tracer.maybe_sample(SimTime::from_us(26), |_| panic!("grid interval already sampled"));
    }

    #[test]
    fn sample_with_feeds_ring_and_timeline() {
        let mut rec = StageRecorder::active();
        let mut tracer = Tracer::bounded(64, Span::from_us(10));
        tracer.sample_with(&mut rec, SimTime::from_ns(500), |_| panic!("no sink due yet"));
        // At 60 µs both grids are due: the ring (10 µs grid) and the
        // recorder's timeline (50 µs default window).
        tracer.sample_with(&mut rec, SimTime::from_us(60), |s| s.set("net.busy_ps", 42));
        assert_eq!(tracer.len(), 1, "one ring sample recorded");
        // The timeline snapshot shows up as the interior busy attribution.
        rec.request(SimTime::ZERO, SimTime::from_us(100));
        let mut finals = MetricSet::new();
        finals.set("net.busy_ps", 100);
        rec.finalize_timeline(Span::from_us(100), &finals);
        let tl = rec.timeline_summary().expect("timeline finalized");
        assert_eq!(tl.resources[0].busy_delta_ps, vec![42, 58]);
    }

    #[test]
    fn sample_with_feeds_timeline_even_when_tracer_is_disabled() {
        let mut rec = StageRecorder::active();
        let mut tracer = Tracer::disabled();
        let mut filled = false;
        tracer.sample_with(&mut rec, SimTime::from_us(75), |s| {
            filled = true;
            s.set("cpu.busy_ps", 7);
        });
        assert!(filled, "timeline snapshot must still be taken");
        assert!(tracer.is_empty());
    }

    #[test]
    fn final_sample_snapshot_is_retained() {
        let mut tracer = Tracer::flight_recorder();
        let mut set = MetricSet::new();
        set.set("cpu.busy_ps", 123);
        set.gauge("cpu.utilization", 0.5); // gauges are not sampled
        tracer.final_sample(SimTime::from_us(7), &set);
        assert_eq!(tracer.len(), 1);
        assert_eq!(tracer.final_at_ps(), Some(7_000_000));
        let finals: Vec<_> = tracer.final_counters().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(finals, [("cpu.busy_ps".to_string(), 123)]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Tracer::bounded(0, Span::from_us(1));
    }
}
