//! `cargo xtask` — workspace automation.
//!
//! ```text
//! cargo xtask analyze [--root PATH] [--verbose] [--json] [--github]
//! cargo xtask bench [--quick] [--compare PATH] [...]
//! cargo xtask profile [--dir DIR] [--runner NAME]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations (or stale allowlist entries, or
//! bench regressions), 2 = usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::rules::{analyze, Config};

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  analyze [--root PATH] [--verbose] [--json] [--github]
      Enforce the workspace determinism & unsafety invariants (DESIGN.md §8
      and §13):
        R1  no HashMap/HashSet in simulation crates
        R2  no wall-clock / thread::spawn / env-dependent I/O in simulation crates
        R3  unsafe confined to crates/ring, each use documented with // SAFETY:
        R4  every pub item in rambda-des, rambda-metrics and rambda-trace documented
        R5  no println!/eprintln! outside src/bin drivers and the bench crate
        R6  no deprecated runner shim may exist (SimBuilder is the sole run
            entry point), and nothing in-tree still calls one
        R7  partition safety: no static mut / thread_local! / shared cells
            (Rc, RefCell, ...) reachable from a simulated machine
        R8  RNG provenance: every RNG flows from the workload seed via a
            salting call; no literal seeds, entropy sources, or clones
        R9  every counter published by publish_metrics appears in a
            validate_* conservation identity
        R10 every counter published under the `scope.` or `hot.` prefix
            appears in the validate_scopes identity specifically
      Violations can be allowlisted in xtask/analyze.allow (one per line:
      `RULE path token  # reason`; the reason is mandatory); stale entries
      are errors.

      --json emits the analysis as a JSON object on stdout (violations,
      allowed, stale_allows, files_scanned) instead of human-readable text.
      --github additionally emits GitHub Actions `::error file=..` workflow
      annotations so violations surface inline on pull requests.

  bench [--quick] [--sweep NAME]... [--out DIR] [--compare PATH]
        [--profile-compare PATH] [--profile] [--list]
      Build (release) and run the continuous-benchmark harness: seeded
      sweeps reproducing the paper's curves, byte-deterministic
      BENCH_<sweep>.json artifacts, and — with --compare — a regression
      gate against committed baselines (DESIGN.md §10). All flags except
      --profile-compare are forwarded to the rambda-bench `bench` binary.

      --profile-compare PATH is handled by xtask itself: after the harness
      exits cleanly, the fresh BENCH_PROFILE.json (from --out, default
      bench/out) is gated against PATH/BENCH_PROFILE.json — every gating
      sweep must keep requests_per_sec above the committed floor minus 40%
      tolerance (DESIGN.md §12.3). Exit 1 on any throughput regression.

  profile [--dir DIR] [--runner NAME]
      Run the deterministic profiler (`report --profile`) and print the
      parallel-DES readiness summary (DESIGN.md §14): per-design
      parallelism ratio and minimum cross-machine lookahead from the
      profile artifacts, plus the analyzer's R7 partition-safety status.
      DIR is the artifact directory (default bench/out/profile); NAME is
      a runner name or `all` (default all).
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {
            let mut root: Option<PathBuf> = None;
            let mut verbose = false;
            let mut json = false;
            let mut github = false;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => match args.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => return usage_error("--root requires a path"),
                    },
                    "--verbose" => verbose = true,
                    "--json" => json = true,
                    "--github" => github = true,
                    other => return usage_error(&format!("unknown flag `{other}`")),
                }
            }
            run_analyze(root, AnalyzeOutput { verbose, json, github })
        }
        Some("bench") => run_bench(args.collect()),
        Some("profile") => run_profile(args.collect()),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
        None => usage_error("missing command"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// The workspace root: `--root`, or the parent of this crate's manifest dir
/// (so `cargo xtask analyze` works from any cwd inside the workspace).
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    explicit.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().expect("xtask has a parent dir").to_path_buf()
    })
}

/// Runs the bench harness binary in release mode from the workspace root
/// (relative artifact/baseline paths like `bench/baselines` then resolve
/// the same way from any cwd inside the workspace), forwarding all flags
/// and the child's exit status.
///
/// `--profile-compare PATH` is intercepted here rather than forwarded: once
/// the harness exits cleanly, the fresh `BENCH_PROFILE.json` under `--out`
/// (default `bench/out`) is gated against `PATH/BENCH_PROFILE.json`.
fn run_bench(forward: Vec<String>) -> ExitCode {
    let mut child_args = Vec::with_capacity(forward.len());
    let mut profile_floor: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("bench/out");
    let mut it = forward.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile-compare" => match it.next() {
                Some(p) => profile_floor = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --profile-compare requires a path");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => {
                    out_dir = PathBuf::from(&p);
                    child_args.push(arg);
                    child_args.push(p);
                }
                None => {
                    eprintln!("error: --out requires a path");
                    return ExitCode::from(2);
                }
            },
            _ => child_args.push(arg),
        }
    }

    let root = workspace_root(None);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = std::process::Command::new(cargo)
        .current_dir(&root)
        .args(["run", "--release", "-q", "-p", "rambda-bench", "--bin", "bench", "--"])
        .args(child_args)
        .status();
    let code = match status {
        Ok(s) => s.code().unwrap_or(2).clamp(0, 255) as u8,
        Err(e) => {
            eprintln!("error: failed to launch the bench harness: {e}");
            return ExitCode::from(2);
        }
    };
    if code != 0 {
        return ExitCode::from(code);
    }
    match profile_floor {
        Some(floor) => run_profile_gate(&root.join(out_dir), &root.join(floor)),
        None => ExitCode::SUCCESS,
    }
}

/// Runs the deterministic profiler and prints the parallel-DES readiness
/// summary: per-design parallelism ratio and lookahead bound parsed back
/// out of the profile artifacts, plus the analyzer's R7 partition-safety
/// status (shared mutable state reachable from a simulated machine would
/// make partitioned execution unsound regardless of the measured
/// parallelism). Exit 2 on launch/IO errors, the profiler's own exit code
/// when it fails, 0 otherwise — readiness is a measurement, not a gate.
fn run_profile(forward: Vec<String>) -> ExitCode {
    let mut dir = PathBuf::from("bench/out/profile");
    let mut runner = String::from("all");
    let mut it = forward.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dir" => match it.next() {
                Some(p) => dir = PathBuf::from(p),
                None => return usage_error("--dir requires a path"),
            },
            "--runner" => match it.next() {
                Some(r) => runner = r,
                None => return usage_error("--runner requires a name"),
            },
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }

    let root = workspace_root(None);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = std::process::Command::new(cargo)
        .current_dir(&root)
        .args(["run", "--release", "-q", "-p", "rambda-bench", "--bin", "report", "--", "--profile"])
        .arg(&dir)
        .args(["--profile-runner", &runner])
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => return ExitCode::from(s.code().unwrap_or(2).clamp(0, 255) as u8),
        Err(e) => {
            eprintln!("error: failed to launch the profiler: {e}");
            return ExitCode::from(2);
        }
    }

    let analysis = match analyze(&Config::rambda(root.clone())) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };
    let r7: Vec<_> = analysis.violations.iter().filter(|v| v.rule == "R7").collect();

    let art_dir = root.join(&dir);
    let mut files: Vec<PathBuf> = match std::fs::read_dir(&art_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(".profile.json")))
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", art_dir.display());
            return ExitCode::from(2);
        }
    };
    files.sort();

    println!("\n=== parallel-DES readiness ===");
    let mut parallel = 0usize;
    for file in &files {
        let name = file.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        let name = name.trim_end_matches(".profile.json");
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        let ratio = scan_number(&text, "parallelism_ratio");
        if ratio.is_some_and(|r| r > 1.0) {
            parallel += 1;
        }
        let ratio = ratio.map_or_else(|| "-".to_string(), |r| format!("{r:.2}x"));
        let lookahead = min_lookahead_ps(&text)
            .map_or_else(|| "-".to_string(), |ps| format!("{:.2} us", ps as f64 / 1.0e6));
        println!("{name}: parallelism {ratio}, cross-machine lookahead >= {lookahead}");
    }
    for v in &r7 {
        println!("{v}");
    }
    println!(
        "{}/{} designs show exploitable parallelism; R7 partition safety: {}",
        parallel,
        files.len(),
        if r7.is_empty() { "clean".to_string() } else { format!("{} violation(s)", r7.len()) }
    );
    ExitCode::SUCCESS
}

/// Extracts the first `"key": <number>` value from a pretty-printed
/// profile JSON by string scan (xtask takes no dependencies).
fn scan_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = text.find(&pat)? + pat.len();
    let rest = &text[at..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The minimum `"<from>-><to>": <ps>` entry of the profile's `lookahead`
/// section, or `None` when the section is absent or empty.
fn min_lookahead_ps(text: &str) -> Option<u64> {
    let at = text.find("\"lookahead\": {")?;
    let mut min: Option<u64> = None;
    for line in text[at..].lines().skip(1) {
        let line = line.trim();
        if line.starts_with('}') {
            break;
        }
        let (key, value) = line.split_once(": ")?;
        if !key.contains("->") {
            break;
        }
        let value: u64 = value.trim_end_matches(',').parse().ok()?;
        min = Some(min.map_or(value, |m| m.min(value)));
    }
    min
}

/// Gates the fresh profile in `out_dir` against the committed floor in
/// `floor_dir` (both hold a `BENCH_PROFILE.json`). Exit 1 on regression,
/// 2 when either file is missing or malformed.
fn run_profile_gate(out_dir: &std::path::Path, floor_dir: &std::path::Path) -> ExitCode {
    let load = |dir: &std::path::Path| -> Result<xtask::profile::Profile, String> {
        let path = dir.join("BENCH_PROFILE.json");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        xtask::profile::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let (current, floor) = match (load(out_dir), load(floor_dir)) {
        (Ok(c), Ok(f)) => (c, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let regressions = xtask::profile::compare(&current, &floor);
    for r in &regressions {
        println!("{r}");
    }
    let gated = floor.sweep_names().filter(|s| xtask::profile::Profile::is_gating(s)).count();
    if regressions.is_empty() {
        println!("profile gate: {gated} sweeps above the committed throughput floor");
        ExitCode::SUCCESS
    } else {
        println!("profile gate: {} of {gated} sweeps regressed", regressions.len());
        ExitCode::FAILURE
    }
}

/// Output-shaping flags for `analyze`.
struct AnalyzeOutput {
    verbose: bool,
    json: bool,
    github: bool,
}

fn run_analyze(root: Option<PathBuf>, out: AnalyzeOutput) -> ExitCode {
    let cfg = Config::rambda(workspace_root(root));
    let analysis = match analyze(&cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if out.json {
        println!("{}", analysis_json(&analysis));
        return if analysis.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    if out.github {
        // GitHub Actions workflow commands: one `::error` per violation so
        // the annotation lands on the offending line of the PR diff.
        for v in &analysis.violations {
            println!(
                "::error file={},line={},title=analyze {}::{} — {}",
                v.path,
                v.line,
                v.rule,
                github_escape(&v.token),
                github_escape(&v.hint)
            );
        }
        for stale in &analysis.stale_allows {
            println!(
                "::error file={},title=analyze allowlist::stale entry matches nothing, delete it: {}",
                cfg.allowlist.display(),
                github_escape(stale)
            );
        }
    }
    if out.verbose {
        for v in &analysis.allowed {
            println!("allowed: {v}");
        }
    }
    for v in &analysis.violations {
        println!("{v}");
    }
    for stale in &analysis.stale_allows {
        println!("xtask/analyze.allow: stale entry matches nothing, delete it: `{stale}`");
    }

    let n = analysis.violations.len();
    let s = analysis.stale_allows.len();
    println!(
        "analyze: {} files scanned, {n} violation{}, {} allowlisted, {s} stale allowlist entr{}",
        analysis.files_scanned,
        if n == 1 { "" } else { "s" },
        analysis.allowed.len(),
        if s == 1 { "y" } else { "ies" },
    );
    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders the analysis as a JSON object (hand-rolled; xtask takes no
/// dependencies). Violations and allowed entries carry the same fields the
/// human-readable output shows; stale allowlist entries are raw strings.
fn analysis_json(analysis: &xtask::rules::Analysis) -> String {
    fn violation(v: &xtask::rules::Violation) -> String {
        format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"token\":{},\"hint\":{}}}",
            json_str(v.rule),
            json_str(&v.path),
            v.line,
            json_str(&v.token),
            json_str(&v.hint)
        )
    }
    let list = |vs: &[xtask::rules::Violation]| vs.iter().map(violation).collect::<Vec<_>>().join(",");
    let stale = analysis.stale_allows.iter().map(|s| json_str(s)).collect::<Vec<_>>().join(",");
    format!(
        "{{\"files_scanned\":{},\"violations\":[{}],\"allowed\":[{}],\"stale_allows\":[{}],\"clean\":{}}}",
        analysis.files_scanned,
        list(&analysis.violations),
        list(&analysis.allowed),
        stale,
        analysis.is_clean()
    )
}

/// Escapes a string as a JSON string literal (quotes, backslashes, control
/// characters; everything else passes through as UTF-8).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escapes the message part of a GitHub Actions workflow command (`%`, CR
/// and LF are the only characters the runner treats specially there).
fn github_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}
