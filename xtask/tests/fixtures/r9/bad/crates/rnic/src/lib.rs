//! Negative fixture for rule R9 (identity coverage): `publish_metrics`
//! publishes three counters but the metrics crate's validate fixture only
//! guards one of them. Never compiled — scanned by xtask/tests.

#![forbid(unsafe_code)]

pub fn publish_metrics(m: &mut MetricSet, prefix: &str) {
    m.set(&format!("{prefix}.doorbells"), 7);
    m.set(&format!("{prefix}.wqes"), 9);
    m.set(&format!("{prefix}.cqes"), 9);
}
