//! `report` — runs a reduced version of every experiment and prints the
//! paper's headline claims next to the measured values. The per-figure
//! benches (`cargo bench -p rambda-bench`) print the full tables.
//!
//! With `--trace <dir>` (or `RAMBDA_TRACE=<dir>`) it instead runs one
//! quick-mode runner (`--trace-runner <name|all>`, default `kvs.rambda`)
//! with the flight recorder attached and writes three artifacts per runner:
//! `<name>.trace.json` (Chrome trace-event JSON — open in
//! `ui.perfetto.dev`), `<name>.trace.bin` (compact deterministic binary),
//! and `<name>.tail.json` (tail-latency attribution for the `--worst <n>`
//! slowest requests, default 10).
//!
//! With `--profile <dir>` it runs one quick-mode runner (`--profile-runner
//! <name|all>`, default `kvs.rambda`) with both profiler sides attached and
//! writes `<name>.profile.json` (deterministic: event-core telemetry,
//! critical-path/parallelism analysis, lookahead bounds) plus a shared
//! `host.folded` (wall-clock flamegraph input, non-deterministic).
//!
//! With `--scopes <name|all>` it runs the selected quick-mode runner(s)
//! under the scoped-metrics registry (DESIGN.md §15) and prints each
//! runner's per-scope latency table, hot-key sketch, and SLO digest. With
//! `--scopes-out <dir>` it additionally writes `<name>.scopes.json` (the
//! full scoped run report, byte-identical across same-seed runs) and
//! `<name>.unscoped.json` (the same run without scopes — byte-identical
//! to the committed goldens for the golden-pinned runners).
//!
//! With `--loss <rate>` a seeded lossy fault plan is injected into the
//! fabric. In headline mode this prints a clean-vs-lossy comparison of the
//! KVS Rambda design (recovery counters, tail cost); in trace mode the
//! traced runner(s) execute under the lossy plan and the fault/retransmit
//! events land in the exported artifacts.

use std::fs;
use std::process::exit;

use rambda::designs::RUNNER_NAMES;
use rambda::micro::{run_rambda as micro_rambda, run_rambda_always_ddio, MicroParams};
use rambda::{Design, Execution, SimBuilder, Testbed};
use rambda_accel::DataLocation;
use rambda_bench::Table;
use rambda_dlrm::serving as dlrm;
use rambda_dlrm::DlrmParams;
use rambda_fabric::FaultConfig;
use rambda_kvs::designs as kvs;
use rambda_kvs::{KvsDesigns, KvsParams};
use rambda_metrics::{Json, RunReport, ScopeConfig};
use rambda_power::{kop_per_watt, Design as PowerDesign, PowerConfig};
use rambda_trace::{profile_json, HostProf, Tracer};
use rambda_txn::{run_hyperloop, run_rambda_tx, TxnDesigns, TxnParams};
use rambda_workloads::{DlrmProfile, TxnSpec};

/// Seed for the `--loss` fault plan — fixed so repeated invocations are
/// byte-reproducible.
const FAULT_SEED: u64 = 0xFA17;

fn usage() -> ! {
    eprintln!("usage: report [--trace <dir>] [--trace-runner <name|all>] [--worst <n>] [--loss <rate>]");
    eprintln!("              [--profile <dir>] [--profile-runner <name|all>]");
    eprintln!("              [--scopes <name|all>] [--scopes-out <dir>]");
    eprintln!("              [--report-out <dir>] [--report-runner <name|all>] [--workers <n>]");
    eprintln!("runners: {}", RUNNER_NAMES.join(", "));
    exit(2);
}

/// Fail-fast runner-name validation shared by `--trace-runner`,
/// `--profile-runner`, `--scopes`, and `--report-runner`: rejects an
/// unknown name with the valid-runner listing before any runner executes
/// or any output directory is created.
fn check_runner(flag: &str, name: &str) {
    if let Err(e) = rambda::designs::check_runner(name) {
        eprintln!("{e} (for {flag})");
        exit(2);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_dir = std::env::var("RAMBDA_TRACE").ok();
    let mut runner = "kvs.rambda".to_string();
    let mut trace_flags_seen = false;
    let mut profile_dir: Option<String> = None;
    let mut profile_runner = "kvs.rambda".to_string();
    let mut profile_flags_seen = false;
    let mut scopes_runner: Option<String> = None;
    let mut scopes_out: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut report_runner = "kvs.rambda".to_string();
    let mut report_flags_seen = false;
    let mut workers = 1usize;
    let mut worst = 10usize;
    let mut loss = 0.0f64;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--trace" => {
                trace_dir = Some(value(i));
                i += 2;
            }
            "--trace-runner" => {
                runner = value(i);
                trace_flags_seen = true;
                i += 2;
            }
            "--worst" => {
                worst = value(i).parse().unwrap_or_else(|_| usage());
                trace_flags_seen = true;
                i += 2;
            }
            "--profile" => {
                profile_dir = Some(value(i));
                i += 2;
            }
            "--profile-runner" => {
                profile_runner = value(i);
                profile_flags_seen = true;
                i += 2;
            }
            "--scopes" => {
                scopes_runner = Some(value(i));
                i += 2;
            }
            "--scopes-out" => {
                scopes_out = Some(value(i));
                i += 2;
            }
            "--report-out" => {
                report_out = Some(value(i));
                i += 2;
            }
            "--report-runner" => {
                report_runner = value(i);
                report_flags_seen = true;
                i += 2;
            }
            "--workers" => {
                workers = value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--loss" => {
                loss = value(i).parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&loss) {
                    eprintln!("--loss must be a probability in [0, 1]");
                    exit(2);
                }
                i += 2;
            }
            _ => usage(),
        }
    }
    // Fail fast on a bad or pointless selection, before any runner executes
    // or any output directory is created.
    check_runner("--trace-runner", &runner);
    check_runner("--profile-runner", &profile_runner);
    check_runner("--report-runner", &report_runner);
    if let Some(name) = &scopes_runner {
        check_runner("--scopes", name);
    }
    if trace_flags_seen && trace_dir.is_none() {
        eprintln!("--trace-runner/--worst have no effect without --trace <dir> (or RAMBDA_TRACE=<dir>)");
        exit(2);
    }
    if profile_flags_seen && profile_dir.is_none() {
        eprintln!("--profile-runner has no effect without --profile <dir>");
        exit(2);
    }
    if scopes_out.is_some() && scopes_runner.is_none() {
        eprintln!("--scopes-out has no effect without --scopes <name|all>");
        exit(2);
    }
    if report_flags_seen && report_out.is_none() {
        eprintln!("--report-runner has no effect without --report-out <dir>");
        exit(2);
    }
    let modes = [scopes_runner.is_some(), trace_dir.is_some(), profile_dir.is_some(), report_out.is_some()];
    if modes.iter().filter(|&&m| m).count() > 1 {
        eprintln!(
            "--trace, --profile, --scopes, and --report-out are mutually exclusive — pick one export mode"
        );
        exit(2);
    }

    // The execution mode every SimBuilder run in the export modes uses:
    // serial by default, the conservative parallel executor with
    // `--workers <n>` (n >= 2). RunReports are byte-identical either way —
    // that is exactly what the CI parallel-smoke job cross-checks.
    let execution = if workers >= 2 { Execution::Conservative { workers } } else { Execution::Serial };

    let tb = Testbed::default();
    let faults = FaultConfig::lossy(FAULT_SEED, loss);
    if let Some(dir) = trace_dir {
        trace_exports(&tb, &dir, &runner, worst, &faults, execution);
        return;
    }
    if let Some(dir) = profile_dir {
        profile_exports(&tb, &dir, &profile_runner, execution);
        return;
    }
    if let Some(name) = scopes_runner {
        scopes_exports(&tb, &name, scopes_out.as_deref(), execution);
        return;
    }
    if let Some(dir) = report_out {
        report_exports(&tb, &dir, &report_runner, execution);
        return;
    }
    if faults.is_active() {
        fault_quickstart(&tb, &faults, loss);
        return;
    }
    let mut t = Table::new(
        "Rambda reproduction — headline claims (paper vs measured)",
        &["claim", "paper", "measured"],
    );

    // Microbenchmark: cpoll gain, local-memory gain, adaptive DDIO.
    let mp = MicroParams { requests: 60_000, ..MicroParams::paper() };
    let polling = micro_rambda(&tb, mp, DataLocation::HostDram, false, 1).throughput_mops();
    let cpoll = micro_rambda(&tb, mp, DataLocation::HostDram, true, 1).throughput_mops();
    let lh = micro_rambda(&tb, mp, DataLocation::LocalHbm, true, 1).throughput_mops();
    t.row(vec![
        "cpoll over spin-polling".into(),
        "+21.6%".into(),
        format!("{:+.1}%", (cpoll / polling - 1.0) * 100.0),
    ]);
    t.row(vec!["Rambda-LH over Rambda (micro)".into(), "~2.66x".into(), format!("{:.2}x", lh / cpoll)]);
    let mn = mp.with_nvm();
    let adaptive = micro_rambda(&tb, mn, DataLocation::HostDram, true, 1).throughput_mops();
    let ddio = run_rambda_always_ddio(&tb, mn, true, 1).throughput_mops();
    t.row(vec![
        "adaptive DDIO on NVM".into(),
        "~+20%".into(),
        format!("{:+.1}%", (adaptive / ddio - 1.0) * 100.0),
    ]);

    // KVS: throughput edge, tail latency, power efficiency.
    let kp = KvsParams { requests: 60_000, ..KvsParams::quick() };
    let cpu = kvs::run_cpu(&tb, &kp);
    let rambda = kvs::run_rambda(&tb, &kp, DataLocation::HostDram);
    t.row(vec![
        "KVS throughput vs CPU".into(),
        "+2.3-8.3%".into(),
        format!("{:+.1}%", (rambda.throughput_mops() / cpu.throughput_mops() - 1.0) * 100.0),
    ]);
    let mut lat = kp.clone();
    lat.window = 2;
    let cpu_l = kvs::run_cpu(&tb, &lat);
    let rambda_l = kvs::run_rambda(&tb, &lat, DataLocation::HostDram);
    t.row(vec![
        "KVS p99 vs CPU".into(),
        "-30.1%".into(),
        format!("{:+.1}%", (rambda_l.p99_us() / cpu_l.p99_us() - 1.0) * 100.0),
    ]);
    let power = PowerConfig::default();
    let kopw_cpu = kop_per_watt(cpu.throughput_ops, power.design_watts(PowerDesign::Cpu { cores: 10 }));
    let kopw_rambda = kop_per_watt(rambda.throughput_ops, power.design_watts(PowerDesign::Rambda));
    t.row(vec![
        "power efficiency vs CPU".into(),
        "~1.45x (188.7/130.4)".into(),
        format!("{:.2}x", kopw_rambda / kopw_cpu),
    ]);

    // Transactions: (4,2) latency saving.
    let tp = TxnParams::quick(TxnSpec::read_write(64));
    let hl = run_hyperloop(&tb, &tp);
    let rt = run_rambda_tx(&tb, &tp);
    t.row(vec![
        "TX (4,2) avg latency saving".into(),
        "63.2-66.8%".into(),
        format!("{:.1}%", (1.0 - rt.mean_us() / hl.mean_us()) * 100.0),
    ]);

    // DLRM (Books): prototype penalty and LH gain.
    let dp = DlrmParams { queries: 10_000, ..DlrmParams::quick(DlrmProfile::by_name("Books").unwrap()) };
    let c1 = dlrm::run_cpu(&tb, &dp, 1).throughput_mops();
    let c8 = dlrm::run_cpu(&tb, &dp, 8).throughput_mops();
    let r = dlrm::run_rambda(&tb, &dp, DataLocation::HostDram).throughput_mops();
    let dlh = dlrm::run_rambda(&tb, &dp, DataLocation::LocalHbm).throughput_mops();
    t.row(vec!["DLRM Rambda vs 1 core".into(), "19.7-31.3%".into(), format!("{:.1}%", r / c1 * 100.0)]);
    t.row(vec!["DLRM Rambda-LH vs 8 cores".into(), "1.6-3.1x".into(), format!("{:.2}x", dlh / c8)]);

    t.print();

    // Per-stage latency breakdowns from the observability layer: where do
    // the microseconds go on each design's critical path?
    let micro_report =
        SimBuilder::new(Design::micro_rambda(MicroParams::quick(), DataLocation::HostDram, true, 1))
            .config(&tb)
            .run();
    let kvs_report =
        SimBuilder::new(Design::kvs_rambda(KvsParams::quick(), DataLocation::HostDram)).config(&tb).run();
    let txn_report =
        SimBuilder::new(Design::txn_rambda_tx(TxnParams::quick(TxnSpec::read_write(64)))).config(&tb).run();
    for report in [&micro_report, &kvs_report, &txn_report] {
        print_breakdown(report);
    }

    println!("\nFull tables: cargo bench -p rambda-bench");
    println!("Machine-readable run reports: RunReport::to_json_string() (see tests/goldens/)");
    println!("Flight-recorder traces: report --trace <dir> [--trace-runner <name|all>]");
    println!("Scoped metrics & SLOs: report --scopes <name|all> [--scopes-out <dir>]");
}

/// Builds the quick-mode [`Design`] for a named runner from the shared
/// registry ([`rambda_bench::quick_registry`]) — the same factories the
/// bench harness and the integration tests use.
fn design_for(name: &str) -> Design {
    rambda_bench::quick_registry().design(name).unwrap_or_else(|| {
        eprintln!("unknown runner {name}");
        usage()
    })
}

/// Runs the selected runner(s) under `execution`, validates each report,
/// and writes `<name>.report.json` — the full deterministic run report.
/// CI's parallel-smoke job byte-compares these exports across
/// `--workers 1` and `--workers 2` to prove the conservative executor
/// changes nothing observable.
fn report_exports(tb: &Testbed, dir: &str, runner: &str, execution: Execution) {
    fs::create_dir_all(dir).expect("create report output dir");
    let names: Vec<&str> = if runner == "all" { RUNNER_NAMES.to_vec() } else { vec![runner] };
    for name in names {
        let report = SimBuilder::new(design_for(name)).config(tb).execution(execution).run();
        report.validate().expect("inconsistent run report");
        assert_eq!(report.execution, execution.label(), "report must record its execution mode");
        fs::write(format!("{dir}/{name}.report.json"), report.to_json_string()).expect("write run report");
        println!(
            "{name}: {} completions under {} -> {dir}/{name}.report.json",
            report.completed, report.execution
        );
    }
}

/// Sums every counter whose name ends with `suffix` (the same reduction
/// the report's fault identities use).
fn counter_sum(report: &RunReport, suffix: &str) -> u64 {
    report.resources.counters().filter(|(name, _)| name.ends_with(suffix)).map(|(_, v)| v).sum()
}

/// The `--loss` quickstart: runs the KVS Rambda design clean and under the
/// seeded lossy plan, and prints the recovery counters next to the tail
/// cost. Both reports are validated, so the fault/recovery identities hold.
fn fault_quickstart(tb: &Testbed, faults: &FaultConfig, loss: f64) {
    let p = KvsParams::quick();
    let clean = SimBuilder::new(Design::kvs_rambda(p.clone(), DataLocation::HostDram)).config(tb).run();
    let lossy = SimBuilder::new(Design::kvs_rambda(p, DataLocation::HostDram))
        .config(tb)
        .faults(faults.clone())
        .run();
    clean.validate().expect("inconsistent clean run report");
    lossy.validate().expect("inconsistent lossy run report");
    let mut t = Table::new(
        &format!("kvs.rambda under injected loss (rate {loss:e}, seed {FAULT_SEED:#x})"),
        &["metric", "clean", "lossy"],
    );
    t.row(vec![
        "throughput Mops".into(),
        format!("{:.3}", clean.throughput_ops / 1e6),
        format!("{:.3}", lossy.throughput_ops / 1e6),
    ]);
    t.row(vec![
        "p50 us".into(),
        format!("{:.2}", clean.latency.p50_ps as f64 / 1e6),
        format!("{:.2}", lossy.latency.p50_ps as f64 / 1e6),
    ]);
    t.row(vec![
        "p99 us".into(),
        format!("{:.2}", clean.latency.p99_ps as f64 / 1e6),
        format!("{:.2}", lossy.latency.p99_ps as f64 / 1e6),
    ]);
    for suffix in [
        ".faults.dropped",
        ".faults.corrupted",
        ".faults.flapped",
        ".timeouts",
        ".nacks",
        ".retransmits",
        ".retries_exhausted",
    ] {
        let name = suffix.trim_start_matches('.');
        t.row(vec![
            name.into(),
            counter_sum(&clean, suffix).to_string(),
            counter_sum(&lossy, suffix).to_string(),
        ]);
    }
    t.print();
    println!("Fault/recovery identities validated on both reports (RunReport::validate).");
}

/// Runs the selected runner(s) with tracing, self-validates the trace
/// against the run report, writes the three artifacts per runner, and
/// prints each runner's tail attribution.
fn trace_exports(
    tb: &Testbed,
    dir: &str,
    runner: &str,
    worst: usize,
    faults: &FaultConfig,
    execution: Execution,
) {
    fs::create_dir_all(dir).expect("create trace output dir");
    let names: Vec<&str> = if runner == "all" { RUNNER_NAMES.to_vec() } else { vec![runner] };
    for name in names {
        let mut tracer = Tracer::flight_recorder();
        let report = SimBuilder::new(design_for(name))
            .config(tb)
            .execution(execution)
            .faults(faults.clone())
            .tracer(&mut tracer)
            .run();
        report.validate().expect("inconsistent run report");
        if let Err(e) = tracer.cross_validate(&report) {
            eprintln!("{name}: trace/report cross-validation failed: {e}");
            exit(1);
        }

        // Self-check the Chrome export before writing it: it must parse and
        // carry a non-empty traceEvents array.
        let chrome = tracer.export_chrome_json();
        let parsed = Json::parse(&chrome).expect("chrome trace export must be valid JSON");
        match parsed.get("traceEvents") {
            Some(Json::Arr(events)) if !events.is_empty() => {}
            _ => {
                eprintln!("{name}: chrome trace export has no events");
                exit(1);
            }
        }
        let tail = tracer.tail_report(worst);
        fs::write(format!("{dir}/{name}.trace.json"), &chrome).expect("write chrome trace");
        fs::write(format!("{dir}/{name}.trace.bin"), tracer.export_binary()).expect("write binary trace");
        fs::write(format!("{dir}/{name}.tail.json"), tail.to_json().render()).expect("write tail report");

        let mut t = Table::new(
            &format!(
                "{name} — tail attribution (exact p99 {:.2} us / p99.9 {:.2} us; tail dominated by {} on {})",
                tail.p99_ps as f64 / 1.0e6,
                tail.p999_ps as f64 / 1.0e6,
                tail.dominant_tail_stage,
                tail.dominant_tail_track
            ),
            &["worst req", "total us", "dominant stage", "track"],
        );
        for w in &tail.worst {
            t.row(vec![
                w.req.to_string(),
                format!("{:.2}", w.total_ps as f64 / 1.0e6),
                w.dominant_stage.clone(),
                w.dominant_track.clone(),
            ]);
        }
        t.print();
        println!("{name}: {} -> {dir}/{name}.trace.json (+ .trace.bin, .tail.json)", tracer.summary());
    }
}

/// Runs the selected runner(s) with both profiler sides attached and writes
/// two artifacts per runner plus one per invocation:
///
/// * `<name>.profile.json` — the deterministic profile (event-core
///   telemetry, critical-path/parallelism analysis, per-machine-pair
///   lookahead bounds); byte-identical across same-seed runs.
/// * `host.folded` — folded-stack wall-clock attribution across all
///   profiled runners (`<name>;<phase> <ns>` lines for `flamegraph.pl`);
///   non-deterministic by nature, git-ignored, never golden-tested.
fn profile_exports(tb: &Testbed, dir: &str, runner: &str, execution: Execution) {
    fs::create_dir_all(dir).expect("create profile output dir");
    // The wall-clock side: `Instant` is fine here (binaries are exempt from
    // the determinism rules); the sim crates only ever see the closure.
    let t0 = std::time::Instant::now();
    let mut prof = HostProf::new(move || t0.elapsed().as_nanos() as u64);
    let names: Vec<&str> = if runner == "all" { RUNNER_NAMES.to_vec() } else { vec![runner] };
    let mut t = Table::new(
        "parallel-DES readiness — deterministic profile",
        &["runner", "parallelism", "lookahead min us", "events dispatched"],
    );
    for name in names {
        let mut tracer = Tracer::flight_recorder();
        let report = prof.time(&format!("{name};run"), || {
            SimBuilder::new(design_for(name))
                .config(tb)
                .execution(execution)
                .tracer(&mut tracer)
                .profile()
                .run()
        });
        prof.time(&format!("{name};validate"), || {
            report.validate().expect("inconsistent run report");
            if let Err(e) = tracer.cross_validate(&report) {
                eprintln!("{name}: trace/report cross-validation failed: {e}");
                exit(1);
            }
        });
        let doc = prof.time(&format!("{name};render"), || profile_json(&report, &tracer));
        fs::write(format!("{dir}/{name}.profile.json"), &doc).expect("write profile json");

        let cp = tracer.critical_path().expect("flight recorder analyzes the critical path");
        let lookahead_min = report
            .resources
            .counters()
            .filter(|(n, _)| n.contains(".lookahead.") && n.ends_with(".min_ps"))
            .map(|(_, v)| v)
            .min();
        let dispatched = report.event_core.as_ref().map_or(0, |ec| ec.dispatched);
        t.row(vec![
            name.into(),
            format!("{:.2}x", cp.parallelism_ratio()),
            lookahead_min.map_or("-".into(), |ps| format!("{:.2}", ps as f64 / 1.0e6)),
            dispatched.to_string(),
        ]);
        println!("{name}: profile -> {dir}/{name}.profile.json");
    }
    fs::write(format!("{dir}/host.folded"), prof.export_folded()).expect("write folded stacks");
    t.print();
    println!("Wall-clock attribution (non-deterministic): {dir}/host.folded");
    println!("Readiness summary with partition-safety status: cargo xtask profile");
}

/// The scoped-run configuration for a named runner: the default sketch
/// capacity, with a per-design p99 SLO target sized to each workload's
/// quick-mode latency regime (the microbenchmark completes in a few µs,
/// the replicated transactions in tens).
fn scope_config_for(name: &str) -> ScopeConfig {
    let slo_p99_ps = match name.split('.').next() {
        Some("micro") => 10_000_000, // 10 us
        Some("kvs") => 25_000_000,   // 25 us
        Some("txn") => 100_000_000,  // 100 us
        _ => 150_000_000,            // 150 us (DLRM reductions are heavy)
    };
    ScopeConfig { slo_p99_ps, ..ScopeConfig::default() }
}

/// Runs the selected runner(s) under the scoped-metrics registry, checks
/// the scope conservation identities and same-seed byte-determinism, and
/// prints each runner's per-scope latency table, hot-key sketch, and SLO
/// digest. With an output directory it also writes `<name>.scopes.json`
/// (the scoped report) and `<name>.unscoped.json` (the same run without
/// scopes — byte-identical to the committed goldens for the golden-pinned
/// runners).
fn scopes_exports(tb: &Testbed, runner: &str, out: Option<&str>, execution: Execution) {
    if let Some(dir) = out {
        fs::create_dir_all(dir).expect("create scopes output dir");
    }
    let names: Vec<&str> = if runner == "all" { RUNNER_NAMES.to_vec() } else { vec![runner] };
    for name in names {
        let config = scope_config_for(name);
        let scoped = SimBuilder::new(design_for(name)).config(tb).execution(execution).scopes(config).run();
        scoped.validate().expect("inconsistent scoped run report");
        let again = SimBuilder::new(design_for(name)).config(tb).execution(execution).scopes(config).run();
        if scoped.to_json_string() != again.to_json_string() {
            eprintln!("{name}: same-seed scoped runs serialized differently");
            exit(1);
        }
        let sc = scoped.scopes.as_ref().expect("scoped run must carry a scopes section");

        let mut t = Table::new(
            &format!(
                "{name} — scoped metrics ({} scopes, hot fraction {:.3}, SLO p99 {:.0} us)",
                sc.scopes.len(),
                sc.hot_fraction(),
                config.slo_p99_ps as f64 / 1.0e6,
            ),
            &["scope", "requests", "mean us", "p99 us", "share"],
        );
        for s in sc.scopes.iter().filter(|s| s.latency.count > 0) {
            t.row(vec![
                s.name.clone(),
                s.latency.count.to_string(),
                format!("{:.2}", s.latency.mean_ps as f64 / 1.0e6),
                format!("{:.2}", s.latency.p99_ps as f64 / 1.0e6),
                format!("{:.3}", s.latency.count as f64 / sc.merged.count.max(1) as f64),
            ]);
        }
        t.print();

        let keys: Vec<String> = sc
            .hot_keys
            .iter()
            .map(|e| {
                if e.err == 0 {
                    format!("{}:{}", e.key, e.count)
                } else {
                    format!("{}:{}±{}", e.key, e.count, e.err)
                }
            })
            .collect();
        println!("{name}: hot keys (top-{}, {} observed): {}", sc.top_k, sc.keys_observed, keys.join(" "));
        println!(
            "{name}: slo windows={} violations={} burn_rate={:.3}",
            sc.slo.windows, sc.slo.violations, sc.slo.burn_rate
        );
        println!("{name}: scope conservation identities validated (RunReport::validate)");

        if let Some(dir) = out {
            let unscoped = SimBuilder::new(design_for(name)).config(tb).execution(execution).run();
            unscoped.validate().expect("inconsistent unscoped run report");
            fs::write(format!("{dir}/{name}.scopes.json"), scoped.to_json_string())
                .expect("write scoped report");
            fs::write(format!("{dir}/{name}.unscoped.json"), unscoped.to_json_string())
                .expect("write unscoped report");
            println!("{name}: reports -> {dir}/{name}.scopes.json (+ .unscoped.json)");
        }
    }
}

/// Renders a run report's critical-path stage breakdown as a table.
fn print_breakdown(report: &RunReport) {
    report.validate().expect("inconsistent run report");
    let mut t = Table::new(
        &format!(
            "{} — stage breakdown ({} reqs, mean {:.2} us)",
            report.name,
            report.completed,
            report.latency.mean_us()
        ),
        &["stage", "mean us", "share"],
    );
    for (stage, mean_us, share) in report.breakdown() {
        t.row(vec![stage, format!("{mean_us:.3}"), format!("{:.1}%", share * 100.0)]);
    }
    t.print();
}
