//! Power and energy model (Sec. VI-B, Tab. III).
//!
//! The paper measures: ~90 W for the fully-loaded Xeon (RAPL), ~15 W for
//! the Smart NIC's ARM complex (the full card draws considerably more),
//! 24–27 W for the FPGA at peak throughput, plus one host core Rambda keeps
//! for CQ polling. Tab. III reports overall Kop/W for the uniform-GET KVS
//! operating point; the per-design power functions here reproduce the
//! accounting that yields those numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Component power constants in watts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerConfig {
    /// One fully-loaded Xeon core (90 W across ten busy cores).
    pub xeon_core_w: f64,
    /// The FPGA chip at peak throughput (RAPL + firmware: 24–27 W).
    pub fpga_w: f64,
    /// The Smart NIC ARM complex when fully loaded.
    pub smartnic_arm_w: f64,
    /// The rest of the Smart NIC card (NIC ASIC, DRAM, board).
    pub smartnic_board_w: f64,
    /// A plain RNIC card.
    pub rnic_w: f64,
    /// The rest of the server box at load (fans, DIMMs, board, disks).
    pub server_base_w: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            xeon_core_w: 9.0,
            fpga_w: 26.0,
            smartnic_arm_w: 15.0,
            smartnic_board_w: 32.0,
            rnic_w: 25.0,
            server_base_w: 140.0,
        }
    }
}

/// Which serving design is drawing power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Design {
    /// CPU-based serving on `cores` busy cores (plus the RNIC).
    Cpu {
        /// Busy cores.
        cores: usize,
    },
    /// Smart NIC serving (ARM + card).
    SmartNic,
    /// Rambda: FPGA + one host core for CQ polling + the RNIC.
    Rambda,
}

impl PowerConfig {
    /// Power drawn by the *processing subsystem* of a design — what
    /// Tab. III divides throughput by. Matches the paper's measurement
    /// boundaries: RAPL cores for the CPU design, the whole Smart NIC card,
    /// and FPGA + CQ-polling core + RNIC for Rambda.
    pub fn design_watts(&self, design: Design) -> f64 {
        match design {
            Design::Cpu { cores } => self.xeon_core_w * cores as f64,
            Design::SmartNic => self.smartnic_arm_w + self.smartnic_board_w,
            Design::Rambda => self.fpga_w + self.xeon_core_w + self.rnic_w,
        }
    }

    /// Whole-server power at load for a design (for the "~38 % lower server
    /// box power" claim).
    pub fn server_watts(&self, design: Design) -> f64 {
        let idle_cores = match design {
            // Non-serving cores are near-idle but not free; fold them into
            // server_base_w.
            Design::Cpu { .. } | Design::SmartNic | Design::Rambda => 0.0,
        };
        self.server_base_w + idle_cores + self.design_watts(design)
    }
}

/// Kilo-operations per watt — Tab. III's metric.
///
/// ```
/// let kopw = rambda_power::kop_per_watt(11.7e6, 90.0);
/// assert!((kopw - 130.0).abs() < 1.0);
/// ```
pub fn kop_per_watt(ops_per_sec: f64, watts: f64) -> f64 {
    assert!(watts > 0.0, "watts must be positive");
    ops_per_sec / 1000.0 / watts
}

/// Energy in joules for `ops` operations at `ops_per_sec` under `watts`.
pub fn energy_joules(ops: u64, ops_per_sec: f64, watts: f64) -> f64 {
    assert!(ops_per_sec > 0.0, "throughput must be positive");
    ops as f64 / ops_per_sec * watts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_design_is_ninety_watts_of_cores() {
        // The paper's ~90W RAPL reading for ten fully-loaded cores.
        let cfg = PowerConfig::default();
        assert_eq!(cfg.design_watts(Design::Cpu { cores: 10 }), 90.0);
    }

    #[test]
    fn rambda_design_power_matches_paper_accounting() {
        let cfg = PowerConfig::default();
        // FPGA (26) + CQ-polling core (9) + RNIC (25) = 60W.
        assert_eq!(cfg.design_watts(Design::Rambda), 60.0);
        // The paper: Rambda's FPGA draws ~2x the Smart NIC ARM complex...
        assert!(cfg.fpga_w < 2.0 * cfg.smartnic_arm_w);
        // ...but still wins on op/W (checked end-to-end in the bench).
    }

    #[test]
    fn server_power_ordering_favours_rambda_over_cpu() {
        let cfg = PowerConfig::default();
        let cpu = cfg.server_watts(Design::Cpu { cores: 10 });
        let rambda = cfg.server_watts(Design::Rambda);
        assert!(rambda < cpu);
        // Roughly the ~38% box-level reduction at similar throughput is
        // checked in the Tab. III bench; here just the ordering.
    }

    #[test]
    fn kop_per_watt_math() {
        assert!((kop_per_watt(1_000_000.0, 10.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn energy_math() {
        // 1M ops at 1Mops/s under 50W = 50 J.
        assert!((energy_joules(1_000_000, 1.0e6, 50.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "watts must be positive")]
    fn zero_watts_panics() {
        kop_per_watt(1.0, 0.0);
    }
}
