//! Clean fixture for rule R8: seeds flow from the workload seed, the RNG's
//! own `impl` may use raw constants (it IS the primitive), each machine gets
//! a forked stream, and literal seeds inside `#[cfg(test)]` are masked.
//! Never compiled — scanned by xtask/tests.

#![forbid(unsafe_code)]

pub struct Machine {
    pub cycles: u64,
}

pub struct SimRng {
    state: u64,
}

impl SimRng {
    pub fn stream(seed: u64, salt: u64) -> Self {
        // Inside the RNG's own impl the primitive may use raw constants:
        // a bare-literal seed() here is exempt (it IS the provenance root).
        let golden = SimRng::seed(0x9E37_79B9_7F4A_7C15);
        let _ = (seed, salt);
        golden
    }
}

/// One machine beside one forked stream: fine.
pub struct Port {
    pub machine: Machine,
    pub rng: SimRng,
}

pub fn build(params: &Params) -> Port {
    Port { machine: Machine { cycles: 0 }, rng: SimRng::seed(params.seed) }
}

#[cfg(test)]
mod tests {
    // Literal seeds in test oracles are masked: R8 skips test modules.
    #[test]
    fn fixed_stream() {
        let _ = super::SimRng::seed(42);
    }
}
