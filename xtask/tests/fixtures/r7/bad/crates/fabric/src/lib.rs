//! Negative fixture for rule R7 (partition safety): process-global mutable
//! state and a shared cell reachable from the machine type. Never compiled —
//! scanned by xtask/tests.

#![forbid(unsafe_code)]

static mut EPOCH: u64 = 0;

thread_local! {
    static TICKS: u64 = 0;
}

pub struct Machine {
    pub state: SharedState,
    pub cycles: u64,
}

pub struct SharedState {
    pub cache: Rc<RefCell<Vec<u8>>>,
}

pub fn advance(m: &mut Machine) {
    m.cycles += 1;
    let _ = &m.state;
}
