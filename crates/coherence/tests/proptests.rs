//! Property-based tests for the coherence layer.

use proptest::prelude::*;
use rambda_coherence::{AgentId, CpollChecker, Directory, LineAddr};

proptest! {
    /// Arbitrary interleavings of reads/writes/evictions by three agents
    /// never violate the MESI single-writer invariant.
    #[test]
    fn mesi_invariants_hold(ops in proptest::collection::vec((0u8..3, 0u8..3, 0u64..16), 1..400)) {
        let mut dir = Directory::new();
        for (op, agent, line) in ops {
            let agent = AgentId(agent);
            let line = LineAddr(line * 64);
            match op {
                0 => { dir.read(agent, line); }
                1 => { dir.write(agent, line); }
                _ => dir.evict(agent, line),
            }
            dir.check_invariants(line).unwrap();
        }
    }

    /// After any traffic, a write by one agent invalidates every other
    /// holder and leaves exactly one Modified owner.
    #[test]
    fn write_leaves_single_modified_owner(
        setup in proptest::collection::vec((0u8..3, 0u64..8), 0..100),
        writer in 0u8..3,
        line in 0u64..8,
    ) {
        let mut dir = Directory::new();
        for (agent, l) in setup {
            dir.read(AgentId(agent), LineAddr(l * 64));
        }
        let line = LineAddr(line * 64);
        dir.write(AgentId(writer), line);
        let holders = dir.holders(line);
        prop_assert_eq!(holders.len(), 1);
        prop_assert_eq!(holders[0].0, AgentId(writer));
    }

    /// The cpoll checker's address arithmetic dispatches every line of a
    /// region to the correct ring and nothing outside it.
    #[test]
    fn cpoll_dispatch_exact(base_kb in 0u64..64, rings in 1usize..32, ring_kb in 1u64..4) {
        let base = base_kb * 1024;
        let ring_bytes = ring_kb * 1024;
        let bytes = rings as u64 * ring_bytes;
        let mut c = CpollChecker::new(u64::MAX);
        c.register(base, bytes, ring_bytes).unwrap();
        for ring in 0..rings {
            let addr = base + ring as u64 * ring_bytes; // first line of ring
            let n = c.dispatch_line(LineAddr::containing(addr)).unwrap();
            prop_assert_eq!(n.ring, ring);
            let last = base + (ring as u64 + 1) * ring_bytes - 64; // last line
            let n = c.dispatch_line(LineAddr::containing(last)).unwrap();
            prop_assert_eq!(n.ring, ring);
        }
        prop_assert!(c.dispatch_line(LineAddr::containing(base + bytes)).is_none());
        if base >= 64 {
            prop_assert!(c.dispatch_line(LineAddr::containing(base - 64)).is_none());
        }
    }
}
