//! Fixture for `cargo xtask analyze`: a clean simulation crate paired with
//! an allowlist entry that carries no `# reason` — the analyzer must refuse
//! to run. Never compiled — scanned by xtask/tests.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// Deterministic state: B-tree iteration is key-sorted.
pub struct Shard {
    entries: BTreeMap<u64, Vec<u8>>,
}

/// Number of live entries.
pub fn live(shard: &Shard) -> usize {
    shard.entries.len()
}
