//! Clean twin of the r10 fixture: the same three scoped-metrics mirrors are
//! published, and the dedicated `validate_scopes` identity names every one
//! of them, so both R9 and R10 are satisfied.
//! Never compiled — scanned by xtask/tests.

#![forbid(unsafe_code)]

/// Per-scope rollup totals.
pub struct ScopesSummary;

impl ScopesSummary {
    /// Mirrors the scoped registry into the flat MetricSet.
    pub fn publish_metrics(&self, m: &mut MetricSet) {
        m.set("scope.count", self.scopes);
        m.set("scope.latency_ps", self.latency_ps);
        m.set("hot.top_hits", self.top_hits);
    }
}

/// The dedicated scope identity guards all three mirrors.
pub fn validate_scopes(totals: &Totals) -> Result<(), String> {
    if totals.sum("scope.count") == 0 {
        return Err("scoped run recorded nothing".into());
    }
    let _ = (totals.sum("scope.latency_ps"), totals.sum("hot.top_hits"));
    Ok(())
}
