//! A HERD-style RPC wire format (Sec. V adopts HERD's protocol; Sec. III-C
//! notes the APU's optional (de)serializer for RPC-framed requests).
//!
//! Frames are what one-sided writes deposit into request-ring entries:
//!
//! ```text
//! magic(2) | opcode(1) | flags(1) | request_id(4) | payload_len(4)
//! | payload(len) | checksum(4)
//! ```
//!
//! The checksum lets the consumer detect a torn entry (the producer's RDMA
//! write is not atomic beyond 64 B), standing in for the "poll on the last
//! byte" trick real implementations use.

/// Frame magic.
pub const MAGIC: u16 = 0x7A4D; // "zM"
/// Fixed header bytes before the payload.
pub const HEADER_BYTES: usize = 12;
/// Trailing checksum bytes.
pub const TRAILER_BYTES: usize = 4;

/// Operation codes carried in frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpCode {
    /// KVS read.
    Get = 1,
    /// KVS write.
    Put = 2,
    /// Combined multi-tuple transaction.
    Txn = 3,
    /// DLRM inference query.
    Infer = 4,
    /// Response frame.
    Response = 5,
}

impl OpCode {
    fn from_u8(v: u8) -> Option<OpCode> {
        Some(match v {
            1 => OpCode::Get,
            2 => OpCode::Put,
            3 => OpCode::Txn,
            4 => OpCode::Infer,
            5 => OpCode::Response,
            _ => return None,
        })
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Operation.
    pub op: OpCode,
    /// Flag bits (application-defined).
    pub flags: u8,
    /// Request id (echoed in the response).
    pub request_id: u32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Creates a frame.
    pub fn new(op: OpCode, request_id: u32, payload: Vec<u8>) -> Self {
        Frame { op, flags: 0, request_id, payload }
    }

    /// Encoded size.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.payload.len() + TRAILER_BYTES
    }

    /// Encodes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.op as u8);
        out.push(self.flags);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&checksum(&out).to_le_bytes());
        out
    }

    /// Decodes a frame.
    ///
    /// # Errors
    ///
    /// Reports exactly what is malformed — truncation, bad magic, unknown
    /// opcode, length mismatch, or checksum failure (torn write).
    pub fn decode(bytes: &[u8]) -> Result<Frame, DecodeError> {
        if bytes.len() < HEADER_BYTES + TRAILER_BYTES {
            return Err(DecodeError::Truncated { have: bytes.len() });
        }
        let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let op = OpCode::from_u8(bytes[2]).ok_or(DecodeError::UnknownOpcode(bytes[2]))?;
        let flags = bytes[3];
        let request_id = u32::from_le_bytes(bytes[4..8].try_into().expect("sliced"));
        let len = u32::from_le_bytes(bytes[8..12].try_into().expect("sliced")) as usize;
        let total = HEADER_BYTES + len + TRAILER_BYTES;
        if bytes.len() < total {
            return Err(DecodeError::Truncated { have: bytes.len() });
        }
        let payload = bytes[HEADER_BYTES..HEADER_BYTES + len].to_vec();
        let want = u32::from_le_bytes(bytes[HEADER_BYTES + len..total].try_into().expect("sliced"));
        let got = checksum(&bytes[..HEADER_BYTES + len]);
        if want != got {
            return Err(DecodeError::Checksum { want, got });
        }
        Ok(Frame { op, flags, request_id, payload })
    }
}

/// FNV-1a over the frame prefix.
fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough bytes for the declared frame.
    Truncated {
        /// Bytes available.
        have: usize,
    },
    /// Wrong magic.
    BadMagic(u16),
    /// Unrecognized opcode byte.
    UnknownOpcode(u8),
    /// Checksum mismatch — a torn or corrupted entry.
    Checksum {
        /// Expected checksum.
        want: u32,
        /// Computed checksum.
        got: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { have } => write!(f, "frame truncated at {have} bytes"),
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            DecodeError::UnknownOpcode(o) => write!(f, "unknown opcode {o}"),
            DecodeError::Checksum { want, got } => {
                write!(f, "checksum mismatch (want {want:#010x}, got {got:#010x}) — torn entry")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let f = Frame::new(OpCode::Get, 77, b"key-123".to_vec());
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.wire_bytes());
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn empty_payload_round_trip() {
        let f = Frame::new(OpCode::Response, 0, Vec::new());
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn torn_write_detected() {
        let mut bytes = Frame::new(OpCode::Put, 5, vec![9; 100]).encode();
        bytes[40] ^= 0xFF; // flip a payload byte
        assert!(matches!(Frame::decode(&bytes), Err(DecodeError::Checksum { .. })));
    }

    #[test]
    fn truncation_detected() {
        let bytes = Frame::new(OpCode::Txn, 5, vec![1; 32]).encode();
        for cut in [0, 5, HEADER_BYTES, bytes.len() - 1] {
            assert!(matches!(Frame::decode(&bytes[..cut]), Err(DecodeError::Truncated { .. })), "cut={cut}");
        }
    }

    #[test]
    fn bad_magic_and_opcode_detected() {
        let mut bytes = Frame::new(OpCode::Infer, 1, vec![]).encode();
        bytes[0] = 0;
        assert!(matches!(Frame::decode(&bytes), Err(DecodeError::BadMagic(_))));

        let mut bytes = Frame::new(OpCode::Infer, 1, vec![]).encode();
        bytes[2] = 99;
        assert_eq!(Frame::decode(&bytes), Err(DecodeError::UnknownOpcode(99)));
    }

    #[test]
    fn errors_display() {
        for e in [
            DecodeError::Truncated { have: 3 },
            DecodeError::BadMagic(1),
            DecodeError::UnknownOpcode(9),
            DecodeError::Checksum { want: 1, got: 2 },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn header_sizes_are_stable() {
        // Wire-format stability: downstream FPGAs parse these offsets.
        let f = Frame::new(OpCode::Get, 0x0403_0201, vec![0xAA]);
        let b = f.encode();
        assert_eq!(&b[0..2], &MAGIC.to_le_bytes());
        assert_eq!(b[2], OpCode::Get as u8);
        assert_eq!(&b[4..8], &[0x01, 0x02, 0x03, 0x04]);
        assert_eq!(&b[8..12], &1u32.to_le_bytes());
        assert_eq!(b[12], 0xAA);
    }
}
