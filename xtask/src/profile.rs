//! Simulator-throughput profile gate (`cargo xtask bench --profile-compare`).
//!
//! The bench harness writes a `BENCH_PROFILE.json` sidecar per run: for each
//! sweep, the wall-clock duration, the simulated-events-per-wall-second proxy
//! (`requests_per_sec`), and the simulated-time speedup. This module parses
//! that sidecar (dependency-free, like the rest of xtask) and compares a
//! fresh run against a committed floor, failing when throughput regresses
//! past the tolerance (DESIGN.md §12.3).
//!
//! Wall-clock numbers are machine- and load-dependent, so the gate is
//! deliberately loose: a sweep only fails when it drops below
//! `floor × (1 − TOLERANCE)`. The committed floors are conservative numbers
//! from the CI runner class; the gate exists to catch order-of-magnitude
//! event-core regressions (an accidental O(n) scan in the scheduler hot
//! path), not single-digit-percent noise.

use std::fmt;

/// Fractional slack below the committed floor before a sweep fails the gate.
///
/// 0.40 means a sweep passes while its throughput stays above 60% of the
/// committed floor — wide enough to absorb runner variance, tight enough to
/// catch a scheduler that got algorithmically slower.
pub const TOLERANCE: f64 = 0.40;

/// The metric gated per sweep: completed requests per wall-clock second,
/// the harness's proxy for simulated events per wall second.
pub const GATED_METRIC: &str = "requests_per_sec";

/// Sweeps excluded from the gate (fault-injection runs have intentionally
/// irregular event mixes and are tracked but not gated).
pub const NON_GATING: &[&str] = &["faults_sweep"];

/// A parsed `BENCH_PROFILE.json`: per-sweep named scalar metrics, in file
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    sweeps: Vec<(String, Vec<(String, f64)>)>,
}

impl Profile {
    /// Sweep names in file order.
    pub fn sweep_names(&self) -> impl Iterator<Item = &str> {
        self.sweeps.iter().map(|(name, _)| name.as_str())
    }

    /// Looks up one metric of one sweep.
    pub fn metric(&self, sweep: &str, metric: &str) -> Option<f64> {
        let (_, metrics) = self.sweeps.iter().find(|(name, _)| name == sweep)?;
        metrics.iter().find(|(name, _)| name == metric).map(|&(_, v)| v)
    }

    /// Whether `sweep` participates in the throughput gate.
    pub fn is_gating(sweep: &str) -> bool {
        !NON_GATING.contains(&sweep)
    }
}

/// One sweep's gate failure: throughput fell below the tolerated floor.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The failing sweep.
    pub sweep: String,
    /// Fresh-run throughput (requests per wall-second).
    pub current: f64,
    /// Committed floor throughput.
    pub floor: f64,
    /// `floor × (1 − TOLERANCE)`: the pass threshold actually applied.
    pub threshold: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile gate: {}: {} = {:.0}/s, below {:.0}/s (floor {:.0}/s - {:.0}% tolerance)",
            self.sweep,
            GATED_METRIC,
            self.current,
            self.threshold,
            self.floor,
            TOLERANCE * 100.0,
        )
    }
}

/// Compares a fresh profile against the committed floor.
///
/// Every gating sweep present in the floor must appear in `current` with
/// `requests_per_sec >= floor × (1 − TOLERANCE)`. A sweep missing from the
/// fresh run entirely (harness didn't produce it) is reported as a
/// zero-throughput regression rather than silently skipped. Extra sweeps in
/// the fresh run (not yet in the floor) pass — the floor file is the gate's
/// scope.
pub fn compare(current: &Profile, floor: &Profile) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for (sweep, _) in &floor.sweeps {
        if !Profile::is_gating(sweep) {
            continue;
        }
        let Some(base) = floor.metric(sweep, GATED_METRIC) else { continue };
        let threshold = base * (1.0 - TOLERANCE);
        let got = current.metric(sweep, GATED_METRIC).unwrap_or(0.0);
        if got < threshold {
            regressions.push(Regression { sweep: sweep.clone(), current: got, floor: base, threshold });
        }
    }
    regressions
}

/// Parses a `BENCH_PROFILE.json` document.
///
/// The accepted grammar is the subset the harness emits: a top-level object
/// whose values are objects of number-valued metrics. Scalar or string
/// top-level entries (schema markers, comments) are skipped. This is not a
/// general JSON parser; anything outside the subset is an error naming the
/// offending byte offset.
pub fn parse(text: &str) -> Result<Profile, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut sweeps = Vec::new();
    p.skip_ws();
    if !p.eat(b'}') {
        loop {
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            if p.peek() == Some(b'{') {
                sweeps.push((key, p.metrics()?));
            } else {
                p.skip_scalar()?;
            }
            p.skip_ws();
            if p.eat(b',') {
                p.skip_ws();
                continue;
            }
            p.expect(b'}')?;
            break;
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(Profile { sweeps })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\\' {
                return Err(format!("escape sequences unsupported at byte {}", self.pos));
            }
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(format!("unterminated string starting at byte {start}"))
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("expected a number at byte {start}"))
    }

    /// Parses one `{ "name": number, ... }` metrics object.
    fn metrics(&mut self) -> Result<Vec<(String, f64)>, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(out);
        }
        loop {
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            out.push((key, self.number()?));
            self.skip_ws();
            if self.eat(b',') {
                self.skip_ws();
                continue;
            }
            self.expect(b'}')?;
            return Ok(out);
        }
    }

    /// Skips a scalar value (number, string, `true`/`false`/`null`).
    fn skip_scalar(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b'0'..=b'9' | b'-') => {
                self.number()?;
                Ok(())
            }
            _ => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'a'..=b'z')) {
                    self.pos += 1;
                }
                match &self.bytes[start..self.pos] {
                    b"true" | b"false" | b"null" => Ok(()),
                    _ => Err(format!("unsupported value at byte {start}")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "micro_designs": { "wall_ms": 10.5, "requests_per_sec": 3000000.0 },
  "faults_sweep": { "wall_ms": 400.0, "requests_per_sec": 90000.0 }
}"#;

    #[test]
    fn parses_harness_output_shape() {
        let p = parse(SAMPLE).unwrap();
        assert_eq!(p.sweep_names().collect::<Vec<_>>(), ["micro_designs", "faults_sweep"]);
        assert_eq!(p.metric("micro_designs", "requests_per_sec"), Some(3000000.0));
        assert_eq!(p.metric("micro_designs", "missing"), None);
        assert_eq!(p.metric("absent", "wall_ms"), None);
    }

    #[test]
    fn skips_scalar_top_level_entries() {
        let p = parse(r#"{ "schema": "v1", "n": 3, "s": { "requests_per_sec": 1.0 } }"#).unwrap();
        assert_eq!(p.sweep_names().collect::<Vec<_>>(), ["s"]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{ "a": [1] }"#).is_err());
    }

    #[test]
    fn equal_profiles_pass() {
        let p = parse(SAMPLE).unwrap();
        assert!(compare(&p, &p).is_empty());
    }

    #[test]
    fn within_tolerance_passes() {
        let floor = parse(r#"{ "s": { "requests_per_sec": 100.0 } }"#).unwrap();
        let current = parse(r#"{ "s": { "requests_per_sec": 61.0 } }"#).unwrap();
        assert!(compare(&current, &floor).is_empty());
    }

    #[test]
    fn below_tolerance_fails() {
        let floor = parse(r#"{ "s": { "requests_per_sec": 100.0 } }"#).unwrap();
        let current = parse(r#"{ "s": { "requests_per_sec": 59.0 } }"#).unwrap();
        let regs = compare(&current, &floor);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].sweep, "s");
        assert!(regs[0].to_string().contains("requests_per_sec"));
    }

    #[test]
    fn missing_sweep_in_fresh_run_fails() {
        let floor = parse(r#"{ "s": { "requests_per_sec": 100.0 } }"#).unwrap();
        let current = parse("{}").unwrap();
        assert_eq!(compare(&current, &floor).len(), 1);
    }

    #[test]
    fn non_gating_sweeps_are_skipped() {
        let floor = parse(r#"{ "faults_sweep": { "requests_per_sec": 100.0 } }"#).unwrap();
        let current = parse(r#"{ "faults_sweep": { "requests_per_sec": 1.0 } }"#).unwrap();
        assert!(compare(&current, &floor).is_empty());
    }

    #[test]
    fn extra_sweeps_in_fresh_run_pass() {
        let floor = parse("{}").unwrap();
        let current = parse(r#"{ "new_sweep": { "requests_per_sec": 1.0 } }"#).unwrap();
        assert!(compare(&current, &floor).is_empty());
    }
}
