//! Deterministic discrete-event simulation core for the Rambda reproduction.
//!
//! This crate provides the timing substrate every hardware model in the
//! workspace is built on:
//!
//! * [`SimTime`] / [`Span`] — picosecond-resolution instants and durations.
//! * [`Server`] — a `k`-way FIFO resource with busy-until semantics
//!   (CPU cores, APU slots, ARM cores, NVM DIMM write buffers, ...).
//! * [`Link`] — a serializing bandwidth + propagation-latency resource
//!   (Ethernet ports, PCIe links, the cc-interconnect, DRAM channels, ...).
//! * [`Throttle`] — a fixed per-operation issue-rate limiter (e.g. the
//!   soft-logic coherence controller that can only issue one memory request
//!   every few cycles).
//! * [`Histogram`] — log-binned latency histogram producing mean/p50/p99.
//! * [`EventQueue`] — a time-ordered queue used by closed-loop drivers.
//! * [`SampleClock`] — a deterministic periodic grid for time-series
//!   sampling (the flight recorder's counter samplers tick on it).
//! * [`SimRng`] — a seeded RNG so every experiment is reproducible.
//! * [`DetHashMap`] / [`DetHashSet`] — hash containers whose iteration is
//!   always key-sorted (rule R1's escape hatch for O(1)-lookup hot paths).
//!
//! Queueing delay — and therefore tail latency — *emerges* from contention on
//! `Server`/`Link` resources rather than being assumed.
//!
//! # Example
//!
//! ```
//! use rambda_des::{Link, Server, SimTime, Span};
//!
//! // A 25 Gb/s network port and a single-core server.
//! let mut port = Link::new(25.0e9 / 8.0, Span::from_ns(850));
//! let mut core = Server::new(1);
//!
//! let t0 = SimTime::ZERO;
//! let arrival = port.transfer(t0, 64).arrive;
//! let done = core.acquire(arrival, Span::from_ns(500)) + Span::from_ns(500);
//! assert!(done > arrival);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detmap;
mod hist;
mod queue;
mod resource;
mod rng;
mod sampler;
mod time;

pub use detmap::{DetHashMap, DetHashSet};
pub use hist::Histogram;
pub use queue::{EventCoreStats, EventKind, EventQueue, KindStats};
pub use resource::{Link, Server, Throttle, Transfer};
pub use rng::SimRng;
pub use sampler::SampleClock;
pub use time::{SimTime, Span};
