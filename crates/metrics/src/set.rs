//! The counter/gauge registry components publish into.
//!
//! Names are dotted paths (`"accel.slots.busy_ps"`); storage is a
//! `BTreeMap`, so iteration — and therefore JSON output — is always sorted
//! and deterministic. Counters are `u64` and merge by saturating addition;
//! gauges are `f64` snapshots and merge by keep-max (see
//! [`MetricSet::merge`] for why).

use std::collections::BTreeMap;

use rambda_des::{Link, Server, Throttle};

use crate::json::Json;

/// A named, ordered registry of counters and gauges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl MetricSet {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Number of metrics (counters + gauges).
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        let slot = self.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Sets the named counter to an absolute value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Sets the named gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads a gauge, if present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another registry in: counters add (saturating), colliding
    /// gauges keep the maximum.
    ///
    /// Keep-max is the only order-independent choice that makes sense for
    /// every gauge this workspace publishes (utilizations, burn rates —
    /// all "pressure" readings where the worst observation is the one
    /// worth keeping). The previous last-write-wins silently made
    /// `a.merge(&b)` and `b.merge(&a)` disagree; keep-max is commutative,
    /// so merge order — e.g. scope iteration order in a rollup — can never
    /// change the result. NaN never wins a collision (any comparison with
    /// it is `false`), so a poisoned gauge cannot overwrite a real one.
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, value) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        for (name, value) in &other.gauges {
            self.gauges
                .entry(name.clone())
                .and_modify(|existing| {
                    if *value > *existing {
                        *existing = *value;
                    }
                })
                .or_insert(*value);
        }
    }

    /// Publishes a [`Server`]'s counters under `prefix`: unit count,
    /// acquisitions, aggregate busy time, and aggregate queue wait.
    pub fn observe_server(&mut self, prefix: &str, server: &Server) {
        self.set(&format!("{prefix}.units"), server.units() as u64);
        self.set(&format!("{prefix}.acquisitions"), server.acquisitions());
        self.set(&format!("{prefix}.busy_ps"), server.busy_time().as_ps());
        self.set(&format!("{prefix}.wait_ps"), server.queue_wait().as_ps());
    }

    /// Publishes a [`Link`]'s counters under `prefix`: bytes moved,
    /// transfer count, serialization (busy) time, and queueing delay.
    pub fn observe_link(&mut self, prefix: &str, link: &Link) {
        self.set(&format!("{prefix}.bytes"), link.bytes_moved());
        self.set(&format!("{prefix}.transfers"), link.transfers());
        self.set(&format!("{prefix}.busy_ps"), link.busy_time().as_ps());
        self.set(&format!("{prefix}.queue_ps"), link.queue_delay_total().as_ps());
    }

    /// Publishes a [`Throttle`]'s counters under `prefix`: admissions and
    /// aggregate admission delay.
    pub fn observe_throttle(&mut self, prefix: &str, throttle: &Throttle) {
        self.set(&format!("{prefix}.admitted"), throttle.admitted());
        self.set(&format!("{prefix}.delay_ps"), throttle.admit_delay_total().as_ps());
    }

    /// Renders the registry as `{"counters": {...}, "gauges": {...}}`.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, value) in self.counters() {
            counters.push(name, Json::U64(value));
        }
        let mut gauges = Json::obj();
        for (name, value) in self.gauges() {
            gauges.push(name, Json::F64(value));
        }
        let mut out = Json::obj();
        out.push("counters", counters);
        out.push("gauges", gauges);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_des::{SimTime, Span};

    #[test]
    fn counters_accumulate() {
        let mut m = MetricSet::new();
        m.add("a.ops", 2);
        m.add("a.ops", 3);
        assert_eq!(m.counter("a.ops"), Some(5));
        assert_eq!(m.counter("missing"), None);
        m.set("a.ops", 1);
        assert_eq!(m.counter("a.ops"), Some(1));
    }

    #[test]
    fn merge_adds_counters_and_keeps_max_gauges() {
        let mut a = MetricSet::new();
        a.add("x", 1);
        a.gauge("u", 0.25);
        let mut b = MetricSet::new();
        b.add("x", 2);
        b.add("y", 7);
        b.gauge("u", 0.75);
        a.merge(&b);
        assert_eq!(a.counter("x"), Some(3));
        assert_eq!(a.counter("y"), Some(7));
        assert_eq!(a.gauge_value("u"), Some(0.75));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn gauge_merge_is_keep_max_hence_commutative() {
        // The collision case: the incoming gauge is *smaller*. Under the
        // old last-write-wins it would have clobbered the larger reading;
        // keep-max retains it, and merge order no longer matters.
        let mut hi = MetricSet::new();
        hi.gauge("util", 0.9);
        let mut lo = MetricSet::new();
        lo.gauge("util", 0.1);
        lo.gauge("only_lo", 0.5);

        let mut a = hi.clone();
        a.merge(&lo);
        assert_eq!(a.gauge_value("util"), Some(0.9), "smaller incoming gauge must not clobber");
        assert_eq!(a.gauge_value("only_lo"), Some(0.5));

        let mut b = lo.clone();
        b.merge(&hi);
        assert_eq!(b.gauge_value("util"), Some(0.9));
        assert_eq!(a, b, "gauge merge commutes");
    }

    #[test]
    fn nan_gauge_never_wins_a_merge_collision() {
        let mut a = MetricSet::new();
        a.gauge("g", 0.5);
        let mut poisoned = MetricSet::new();
        poisoned.gauge("g", f64::NAN);
        a.merge(&poisoned);
        assert_eq!(a.gauge_value("g"), Some(0.5));
    }

    #[test]
    fn iteration_is_name_sorted() {
        let mut m = MetricSet::new();
        m.add("z.last", 1);
        m.add("a.first", 2);
        m.add("m.mid", 3);
        let names: Vec<_> = m.counters().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn observers_capture_resource_counters() {
        let mut server = Server::new(2);
        server.acquire(SimTime::ZERO, Span::from_ns(10));
        let mut link = Link::new(1.0e9, Span::ZERO);
        link.transfer(SimTime::ZERO, 1000);
        let mut throttle = Throttle::new(Span::from_ns(10));
        throttle.admit(SimTime::ZERO);
        throttle.admit(SimTime::ZERO);

        let mut m = MetricSet::new();
        m.observe_server("srv", &server);
        m.observe_link("lnk", &link);
        m.observe_throttle("thr", &throttle);
        assert_eq!(m.counter("srv.units"), Some(2));
        assert_eq!(m.counter("srv.acquisitions"), Some(1));
        assert_eq!(m.counter("srv.busy_ps"), Some(10_000));
        assert_eq!(m.counter("lnk.bytes"), Some(1000));
        assert_eq!(m.counter("lnk.busy_ps"), Some(1_000_000));
        assert_eq!(m.counter("thr.admitted"), Some(2));
        assert_eq!(m.counter("thr.delay_ps"), Some(10_000));
    }

    #[test]
    fn saturating_add_never_wraps() {
        let mut m = MetricSet::new();
        m.add("big", u64::MAX - 1);
        m.add("big", 10);
        assert_eq!(m.counter("big"), Some(u64::MAX));
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut m = MetricSet::new();
        m.add("b", 2);
        m.add("a", 1);
        m.gauge("util", 0.5);
        let first = m.to_json().render();
        let second = m.to_json().render();
        assert_eq!(first, second);
        let a_pos = first.find("\"a\"").unwrap();
        let b_pos = first.find("\"b\"").unwrap();
        assert!(a_pos < b_pos);
    }
}
