//! Clean fixture for rule R7: every machine owns its state exclusively, and
//! the one shared cell in the crate is NOT reachable from the machine type
//! (reachability gating must keep it silent). Never compiled — scanned by
//! xtask/tests.

#![forbid(unsafe_code)]

pub struct Machine {
    pub state: OwnedState,
    pub cycles: u64,
}

pub struct OwnedState {
    pub cache: Vec<u8>,
}

/// Host-side bookkeeping, never owned by a simulated machine: a Cell here
/// must not trip R7 because no machine can reach it.
pub struct HostTelemetry {
    pub polls: Cell<u64>,
}

pub fn advance(m: &mut Machine) {
    m.cycles += 1;
    let _ = &m.state.cache;
}
