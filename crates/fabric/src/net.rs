//! The 25 GbE RoCEv2 fabric between machines.

use std::collections::BTreeMap;

use rambda_des::{Link, SimTime, Span};
use serde::{Deserialize, Serialize};

use crate::faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultStats};

/// Identifies a machine (or a Smart-NIC port acting as a replica, as in the
/// Fig. 11 topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u16);

/// Network parameters (defaults: Tab. II's 25 Gb/s ConnectX-6 ports).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    /// Per-port bandwidth in bytes/second (25 Gb/s ⇒ 3.125 GB/s).
    pub port_bandwidth: f64,
    /// One-way wire + switch latency between any two nodes.
    pub wire_latency: Span,
    /// Effective per-message wire overhead in bytes: Ethernet + IP + UDP +
    /// IB BTH/RETH headers, FCS, preamble/IFG, plus the amortized ACK
    /// traffic of reliable-connection RoCEv2. Calibrated so one 25 Gb/s
    /// port sustains ~12 M 64 B messages/s, matching the network-bound KVS
    /// regime of Sec. VI-B.
    pub header_bytes: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { port_bandwidth: 25.0e9 / 8.0, wire_latency: Span::from_ns(850), header_bytes: 200 }
    }
}

/// A switched network of nodes, each with one full-duplex port.
///
/// ```
/// use rambda_des::SimTime;
/// use rambda_fabric::{NetConfig, Network, NodeId};
///
/// let mut net = Network::new(NetConfig::default());
/// let (client, server) = (NodeId(0), NodeId(1));
/// let arrive = net.send(SimTime::ZERO, client, server, 64);
/// assert!(arrive.as_ns_f64() > 850.0);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetConfig,
    egress: BTreeMap<NodeId, Link>,
    ingress: BTreeMap<NodeId, Link>,
    messages: u64,
    faults: Option<FaultPlan>,
    /// Per-(from, to) minimum observed one-way delivery latency, recorded
    /// only when profiling enabled it — the empirical lookahead bound a
    /// conservative parallel DES could exploit between the two machines.
    lookahead: Option<BTreeMap<(NodeId, NodeId), Span>>,
}

/// The verdict of one fault-aware data-path transmission
/// ([`Network::transmit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The frame arrived intact; `at` is when its last byte is available at
    /// the receiver.
    Delivered {
        /// Arrival time at the receiver.
        at: SimTime,
    },
    /// The frame was lost in the fabric (random drop or link flap); `at` is
    /// when the sender's egress finished serializing it — the earliest the
    /// sender's retransmission timer can be armed.
    Dropped {
        /// End of egress serialization at the sender.
        at: SimTime,
    },
    /// The frame arrived but fails the receiver's integrity check; `at` is
    /// the arrival time, from which the receiver issues its NACK.
    Corrupted {
        /// Arrival time of the mangled frame at the receiver.
        at: SimTime,
    },
}

impl Network {
    /// Creates an empty network; ports materialize on first use.
    pub fn new(cfg: NetConfig) -> Self {
        Network {
            cfg,
            egress: BTreeMap::new(),
            ingress: BTreeMap::new(),
            messages: 0,
            faults: None,
            lookahead: None,
        }
    }

    /// Starts recording per-machine-pair minimum delivery latencies
    /// (profiling only — disabled networks skip the bookkeeping entirely,
    /// keeping unprofiled runs byte-identical).
    pub fn enable_lookahead(&mut self) {
        self.lookahead = Some(BTreeMap::new());
    }

    /// Folds one delivered frame's latency into the pair's minimum.
    fn note_lookahead(&mut self, from: NodeId, to: NodeId, latency: Span) {
        if let Some(map) = self.lookahead.as_mut() {
            map.entry((from, to)).and_modify(|m| *m = (*m).min(latency)).or_insert(latency);
        }
    }

    /// Publishes the recorded lookahead bounds as
    /// `{prefix}.lookahead.<from>.<to>.min_ps` counters; publishes nothing
    /// when [`Network::enable_lookahead`] was never called.
    pub fn publish_lookahead(&self, m: &mut rambda_metrics::MetricSet, prefix: &str) {
        let Some(map) = self.lookahead.as_ref() else { return };
        for ((from, to), latency) in map {
            m.set(&format!("{prefix}.lookahead.{}.{}.min_ps", from.0, to.0), latency.as_ps());
        }
    }

    /// The conservative a-priori lookahead bound for parallel execution:
    /// the configured wire latency. Every delivery through this network
    /// takes at least one wire traversal (serialization, queueing, and
    /// fault retries only add to it), so a cross-partition event scheduled
    /// now cannot land sooner than this — the safe-horizon bound the
    /// conservative executor synchronizes on. The measured per-pair map
    /// ([`Network::publish_lookahead`], profiling only) empirically
    /// validates it: every recorded minimum is at least this span.
    pub fn min_lookahead(&self) -> Span {
        self.cfg.wire_latency
    }

    /// The active configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Installs a fault plan. An inactive config installs nothing, which
    /// keeps a zero-loss run byte-identical to a faultless one.
    pub fn install_faults(&mut self, cfg: &FaultConfig) {
        self.faults = cfg.is_active().then(|| FaultPlan::new(cfg.clone()));
    }

    /// Fault-injection counters, if a plan is installed.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(FaultPlan::stats)
    }

    /// Takes the fault events accumulated so far (for the trace ring).
    pub fn drain_fault_events(&mut self) -> Vec<FaultEvent> {
        self.faults.as_mut().map(FaultPlan::drain_events).unwrap_or_default()
    }

    fn port<'a>(map: &'a mut BTreeMap<NodeId, Link>, cfg: &NetConfig, node: NodeId) -> &'a mut Link {
        map.entry(node).or_insert_with(|| Link::new(cfg.port_bandwidth, Span::ZERO))
    }

    /// Frame size as serialized on `from`'s egress port at `at`: payload
    /// plus headers, inflated by any active bandwidth-degradation window.
    fn effective_framed(&self, at: SimTime, from: NodeId, bytes: u64) -> u64 {
        let framed = bytes + self.cfg.header_bytes;
        match &self.faults {
            Some(p) => {
                let factor = p.degrade_factor(at, from);
                if factor > 1.0 {
                    (framed as f64 * factor).ceil() as u64
                } else {
                    framed
                }
            }
            None => framed,
        }
    }

    /// Sends `bytes` of payload from `from` to `to`; returns when the last
    /// byte is available at the receiver (after egress serialization, the
    /// wire, and ingress serialization).
    ///
    /// This is the *control path*: it is exempt from drop/corrupt/flap
    /// injection (only bandwidth degradation applies), so ACKs and NACKs
    /// always get through — mirroring strict-priority control traffic and
    /// keeping the recovery machinery free of NACK-loss recursion. Data
    /// transfers that should face faults go through [`Network::transmit`].
    pub fn send(&mut self, at: SimTime, from: NodeId, to: NodeId, bytes: u64) -> SimTime {
        assert_ne!(from, to, "loopback messages do not cross the network");
        let framed = self.effective_framed(at, from, bytes);
        let out = Self::port(&mut self.egress, &self.cfg, from).transfer(at, framed).depart;
        let on_wire = out + self.cfg.wire_latency;
        let arrived = Self::port(&mut self.ingress, &self.cfg, to).transfer(on_wire, framed).depart;
        self.messages += 1;
        self.note_lookahead(from, to, arrived - at);
        arrived
    }

    /// Sends one *data-path* frame from `from` to `to`, subject to the
    /// installed [`FaultPlan`]. Without a plan this is exactly [`send`]
    /// wrapped in [`TxOutcome::Delivered`].
    ///
    /// A dropped or flapped frame still consumes egress serialization time
    /// (the sender's port did the work) but never reaches the receiver's
    /// ingress port. A corrupted frame consumes both, like any delivered
    /// frame — only its payload is garbage.
    ///
    /// [`send`]: Network::send
    pub fn transmit(&mut self, at: SimTime, from: NodeId, to: NodeId, bytes: u64) -> TxOutcome {
        assert_ne!(from, to, "loopback messages do not cross the network");
        let framed = self.effective_framed(at, from, bytes);
        let out = Self::port(&mut self.egress, &self.cfg, from).transfer(at, framed).depart;
        self.messages += 1;
        let verdict = self.faults.as_mut().and_then(|p| p.judge(out, from, to));
        match verdict {
            Some(FaultKind::Dropped) | Some(FaultKind::Flapped) => TxOutcome::Dropped { at: out },
            Some(FaultKind::Corrupted) => {
                let on_wire = out + self.cfg.wire_latency;
                let arrived = Self::port(&mut self.ingress, &self.cfg, to).transfer(on_wire, framed).depart;
                self.note_lookahead(from, to, arrived - at);
                TxOutcome::Corrupted { at: arrived }
            }
            None => {
                let on_wire = out + self.cfg.wire_latency;
                let arrived = Self::port(&mut self.ingress, &self.cfg, to).transfer(on_wire, framed).depart;
                self.note_lookahead(from, to, arrived - at);
                TxOutcome::Delivered { at: arrived }
            }
        }
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Bytes (framed) that left `node`'s egress port so far.
    pub fn egress_bytes(&self, node: NodeId) -> u64 {
        self.egress.get(&node).map(|l| l.bytes_moved()).unwrap_or(0)
    }

    /// Average egress bandwidth of `node` over `[0, now]`.
    pub fn egress_bandwidth(&self, node: NodeId, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.egress_bytes(node) as f64 / secs
        }
    }

    /// Publishes the network's counters under `prefix`: the message count
    /// and each active port's link counters, keyed by node id (the port
    /// maps are ordered, so the output order is deterministic).
    pub fn publish_metrics(&self, m: &mut rambda_metrics::MetricSet, prefix: &str) {
        m.set(&format!("{prefix}.messages"), self.messages);
        for (node, link) in &self.egress {
            m.observe_link(&format!("{prefix}.egress.{}", node.0), link);
        }
        for (node, link) in &self.ingress {
            m.observe_link(&format!("{prefix}.ingress.{}", node.0), link);
        }
        // Fault counters are published only when nonzero, so a run with a
        // plan installed but no injections keeps byte-identical reports.
        if let Some(s) = self.fault_stats() {
            if s.dropped > 0 {
                m.set(&format!("{prefix}.faults.dropped"), s.dropped);
            }
            if s.corrupted > 0 {
                m.set(&format!("{prefix}.faults.corrupted"), s.corrupted);
            }
            if s.flapped > 0 {
                m.set(&format!("{prefix}.faults.flapped"), s.flapped);
            }
        }
    }

    /// Publishes each active port's link counters into its own metric scope
    /// (`link/{prefix}.egress.{n}`, `link/{prefix}.ingress.{n}`), under the
    /// *same* counter names the global report carries — so the scoped
    /// rollup's per-link counters provably equal the run's resource
    /// counters. A disabled registry makes this a no-op.
    pub fn publish_scoped(&self, scopes: &mut rambda_metrics::ScopedMetrics, prefix: &str) {
        for (node, link) in &self.egress {
            let name = format!("{prefix}.egress.{}", node.0);
            if let Some(set) = scopes.child(&format!("link/{name}")) {
                set.observe_link(&name, link);
            }
        }
        for (node, link) in &self.ingress {
            let name = format!("{prefix}.ingress.{}", node.0);
            if let Some(set) = scopes.child(&format!("link/{name}")) {
                set.observe_link(&name, link);
            }
        }
    }

    /// Resets all port occupancy and counters; an installed fault plan is
    /// re-created from its config, so its RNG stream restarts.
    pub fn reset(&mut self) {
        self.egress.clear();
        self.ingress.clear();
        self.messages = 0;
        if let Some(map) = self.lookahead.as_mut() {
            map.clear();
        }
        if let Some(p) = &self.faults {
            self.faults = Some(FaultPlan::new(p.config().clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_latency_is_wire_dominated() {
        let mut net = Network::new(NetConfig::default());
        let t = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        let ns = t.as_ns_f64();
        // 264 framed bytes at 3.125 GB/s ≈ 85ns x2 + 850ns wire.
        assert!((950.0..1100.0).contains(&ns), "{ns}");
    }

    #[test]
    fn port_bandwidth_limits_throughput() {
        let mut net = Network::new(NetConfig::default());
        let mut last = SimTime::ZERO;
        let n = 10_000u64;
        for _ in 0..n {
            last = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 1000);
        }
        let achieved = (n as f64 * 1200.0) / last.as_secs_f64();
        let port = 25.0e9 / 8.0;
        assert!((achieved - port).abs() / port < 0.01, "achieved={achieved}");
    }

    #[test]
    fn distinct_senders_use_distinct_ports() {
        let mut net = Network::new(NetConfig::default());
        // Two senders to two receivers do not serialize on each other.
        let a = net.send(SimTime::ZERO, NodeId(0), NodeId(2), 1_000_000);
        let b = net.send(SimTime::ZERO, NodeId(1), NodeId(3), 1_000_000);
        assert_eq!(a, b);
    }

    #[test]
    fn receiver_port_is_shared() {
        let mut net = Network::new(NetConfig::default());
        // Two senders into one receiver serialize at the receiver's port.
        let a = net.send(SimTime::ZERO, NodeId(0), NodeId(9), 1_000_000);
        let b = net.send(SimTime::ZERO, NodeId(1), NodeId(9), 1_000_000);
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_panics() {
        Network::new(NetConfig::default()).send(SimTime::ZERO, NodeId(1), NodeId(1), 1);
    }

    #[test]
    fn transmit_without_plan_matches_send() {
        let mut a = Network::new(NetConfig::default());
        let mut b = Network::new(NetConfig::default());
        let sent = a.send(SimTime::ZERO, NodeId(0), NodeId(1), 4096);
        match b.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 4096) {
            TxOutcome::Delivered { at } => assert_eq!(at, sent),
            other => panic!("expected delivery, got {other:?}"),
        }
        assert!(b.fault_stats().is_none());
        assert!(b.drain_fault_events().is_empty());
    }

    #[test]
    fn inactive_fault_config_installs_nothing() {
        let mut net = Network::new(NetConfig::default());
        net.install_faults(&FaultConfig::disabled());
        assert!(net.fault_stats().is_none());
    }

    #[test]
    fn lossy_transmits_drop_and_count() {
        let mut net = Network::new(NetConfig::default());
        net.install_faults(&FaultConfig::lossy(11, 0.2));
        let mut dropped = 0u64;
        for _ in 0..2_000 {
            if let TxOutcome::Dropped { .. } = net.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 64) {
                dropped += 1;
            }
        }
        assert!(dropped > 0);
        assert_eq!(net.fault_stats().unwrap().dropped, dropped);
        let events = net.drain_fault_events();
        assert_eq!(events.len() as u64, dropped);
        assert!(events.iter().all(|e| e.kind == FaultKind::Dropped));
        // Control path stays loss-exempt even with a plan installed.
        net.send(SimTime::ZERO, NodeId(0), NodeId(1), 0);
        assert_eq!(net.fault_stats().unwrap().dropped, dropped);
    }

    #[test]
    fn degrade_window_slows_the_port() {
        let window = crate::faults::DegradeWindow {
            node: NodeId(0),
            from: Span::ZERO,
            until: Span::from_us(1_000),
            factor: 4.0,
        };
        let mut slow = Network::new(NetConfig::default());
        slow.install_faults(&FaultConfig { degrade: vec![window], ..FaultConfig::disabled() });
        let mut fast = Network::new(NetConfig::default());
        let t_slow = slow.send(SimTime::ZERO, NodeId(0), NodeId(1), 100_000);
        let t_fast = fast.send(SimTime::ZERO, NodeId(0), NodeId(1), 100_000);
        assert!(t_slow > t_fast, "degraded {t_slow:?} !> healthy {t_fast:?}");
    }

    #[test]
    fn reset_restarts_the_fault_stream() {
        let run = |net: &mut Network| {
            (0..512).map(|_| net.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 64)).collect::<Vec<_>>()
        };
        let mut net = Network::new(NetConfig::default());
        net.install_faults(&FaultConfig::lossy(5, 0.1));
        let first = run(&mut net);
        net.reset();
        let second = run(&mut net);
        assert_eq!(first, second);
    }

    #[test]
    fn lookahead_records_the_pair_minimum_only_when_enabled() {
        let mut off = Network::new(NetConfig::default());
        off.send(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        let mut m = rambda_metrics::MetricSet::new();
        off.publish_lookahead(&mut m, "net");
        assert_eq!(m.counters().count(), 0, "disabled recorder publishes nothing");

        let mut net = Network::new(NetConfig::default());
        net.enable_lookahead();
        // A large frame, then a minimal one: the minimum must win.
        net.send(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        let small = net.send(SimTime::from_us(500), NodeId(0), NodeId(1), 0);
        let expect = (small - SimTime::from_us(500)).as_ps();
        net.publish_lookahead(&mut m, "net");
        assert_eq!(m.counter("net.lookahead.0.1.min_ps"), Some(expect));
        assert!(expect >= NetConfig::default().wire_latency.as_ps());
        // transmit() feeds the same recorder.
        net.transmit(SimTime::ZERO, NodeId(1), NodeId(0), 64);
        let mut m2 = rambda_metrics::MetricSet::new();
        net.publish_lookahead(&mut m2, "net");
        assert!(m2.counter("net.lookahead.1.0.min_ps").is_some());
    }

    #[test]
    fn min_lookahead_bounds_every_measured_delivery() {
        // The a-priori executor bound must hold against the empirical
        // per-pair minima: no delivery beats one wire traversal.
        let mut net = Network::new(NetConfig::default());
        net.enable_lookahead();
        assert_eq!(net.min_lookahead(), NetConfig::default().wire_latency);
        for i in 0..8u64 {
            let at = SimTime::from_us(i);
            net.send(at, NodeId(0), NodeId(1), i * 512);
            net.send(at, NodeId(1), NodeId(2), 0);
            net.transmit(at, NodeId(2), NodeId(0), 64);
        }
        let mut m = rambda_metrics::MetricSet::new();
        net.publish_lookahead(&mut m, "net");
        let floor = net.min_lookahead().as_ps();
        let mut pairs = 0;
        for (name, min_ps) in m.counters() {
            if name.ends_with(".min_ps") {
                pairs += 1;
                assert!(min_ps >= floor, "{name} = {min_ps} beats the wire latency {floor}");
            }
        }
        assert_eq!(pairs, 3);
    }

    #[test]
    fn counters() {
        let mut net = Network::new(NetConfig::default());
        net.send(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        assert_eq!(net.messages(), 1);
        assert_eq!(net.egress_bytes(NodeId(0)), 300);
        assert!(net.egress_bandwidth(NodeId(0), SimTime::from_us(1)) > 0.0);
        net.reset();
        assert_eq!(net.messages(), 0);
    }
}
