//! The unified memory system: media links, LLC routing, NVM amplification.

use rambda_des::{Link, SimTime, Span};
use rambda_metrics::MetricSet;
use serde::{Deserialize, Serialize};

use crate::config::MemConfig;
use crate::llc::{DmaRoute, Llc};

/// A physical memory medium in the modelled system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemKind {
    /// Host six-channel DDR4.
    Dram,
    /// Host Optane-like persistent memory.
    Nvm,
    /// Accelerator-local DDR4 (Rambda-LD).
    AccelDdr,
    /// Accelerator-local HBM2 (Rambda-LH).
    AccelHbm,
    /// Smart-NIC on-board DRAM.
    NicDram,
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

/// One memory access to be charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Target medium.
    pub kind: MemKind,
    /// Read or write.
    pub access: AccessKind,
    /// Payload size in bytes.
    pub bytes: u64,
}

impl MemReq {
    /// A 64 B cache-line read.
    pub fn line_read(kind: MemKind) -> Self {
        MemReq { kind, access: AccessKind::Read, bytes: 64 }
    }

    /// A 64 B cache-line write.
    pub fn line_write(kind: MemKind) -> Self {
        MemReq { kind, access: AccessKind::Write, bytes: 64 }
    }
}

/// Byte counters exposing consumed memory bandwidth (what Fig. 5 measures).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Bytes read from the DRAM channels.
    pub dram_read_bytes: u64,
    /// Bytes written to the DRAM channels.
    pub dram_write_bytes: u64,
    /// Bytes read from NVM.
    pub nvm_read_bytes: u64,
    /// Logical bytes written to NVM (what the application asked for).
    pub nvm_logical_write_bytes: u64,
    /// Physical bytes written to NVM media (after granularity rounding and
    /// DDIO-eviction write amplification).
    pub nvm_physical_write_bytes: u64,
    /// Inbound DMA bytes routed into the LLC (DDIO/TPH path).
    pub dma_to_llc_bytes: u64,
    /// Inbound DMA bytes routed to memory.
    pub dma_to_mem_bytes: u64,
}

impl MemStats {
    /// Total DRAM channel traffic (read + write).
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// NVM write amplification factor observed so far.
    pub fn nvm_write_amplification(&self) -> f64 {
        if self.nvm_logical_write_bytes == 0 {
            1.0
        } else {
            self.nvm_physical_write_bytes as f64 / self.nvm_logical_write_bytes as f64
        }
    }
}

/// The full memory system of one simulated machine.
///
/// ```
/// use rambda_des::SimTime;
/// use rambda_mem::{MemConfig, MemKind, MemReq, MemorySystem};
///
/// let mut mem = MemorySystem::new(MemConfig::default(), true);
/// let done = mem.access(SimTime::ZERO, MemReq::line_read(MemKind::Dram));
/// assert_eq!(done.as_ns_f64().round(), 91.0); // 90ns latency + 64B serialization
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemConfig,
    llc: Llc,
    dram: Link,
    nvm_read: Link,
    nvm_write: Link,
    accel_ddr: Link,
    accel_hbm: Link,
    nic_dram: Link,
    stats: MemStats,
}

impl MemorySystem {
    /// Creates a memory system with the given configuration and global DDIO
    /// setting.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MemConfig::validate`].
    pub fn new(cfg: MemConfig, ddio_enabled: bool) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid MemConfig: {e}");
        }
        let llc = Llc::new(ddio_enabled, cfg.ddio_capacity());
        MemorySystem {
            dram: Link::new(cfg.dram_bw, cfg.dram_latency),
            nvm_read: Link::new(cfg.nvm_read_bw, cfg.nvm_read_latency),
            nvm_write: Link::new(cfg.nvm_write_bw, cfg.nvm_write_latency),
            accel_ddr: Link::new(cfg.accel_ddr_bw, cfg.accel_ddr_latency),
            accel_hbm: Link::new(cfg.accel_hbm_bw, cfg.accel_hbm_latency),
            nic_dram: Link::new(cfg.nic_dram_bw, cfg.nic_dram_latency),
            llc,
            cfg,
            stats: MemStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// The LLC model (for DDIO toggling and occupancy queries).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// Mutable access to the LLC model.
    pub fn llc_mut(&mut self) -> &mut Llc {
        &mut self.llc
    }

    /// Accumulated byte counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Publishes the memory system's counters under `prefix`: the byte
    /// stats, each media channel's link counters, and the LLC's DDIO
    /// occupancy.
    pub fn publish_metrics(&self, m: &mut MetricSet, prefix: &str) {
        m.set(&format!("{prefix}.dram_read_bytes"), self.stats.dram_read_bytes);
        m.set(&format!("{prefix}.dram_write_bytes"), self.stats.dram_write_bytes);
        m.set(&format!("{prefix}.nvm_read_bytes"), self.stats.nvm_read_bytes);
        m.set(&format!("{prefix}.nvm_logical_write_bytes"), self.stats.nvm_logical_write_bytes);
        m.set(&format!("{prefix}.nvm_physical_write_bytes"), self.stats.nvm_physical_write_bytes);
        m.set(&format!("{prefix}.dma_to_llc_bytes"), self.stats.dma_to_llc_bytes);
        m.set(&format!("{prefix}.dma_to_mem_bytes"), self.stats.dma_to_mem_bytes);
        m.observe_link(&format!("{prefix}.dram"), &self.dram);
        m.observe_link(&format!("{prefix}.nvm_read"), &self.nvm_read);
        m.observe_link(&format!("{prefix}.nvm_write"), &self.nvm_write);
        m.observe_link(&format!("{prefix}.accel_ddr"), &self.accel_ddr);
        m.observe_link(&format!("{prefix}.accel_hbm"), &self.accel_hbm);
        m.observe_link(&format!("{prefix}.nic_dram"), &self.nic_dram);
        m.set(&format!("{prefix}.llc.injected_bytes"), self.llc.injected_bytes());
        m.set(&format!("{prefix}.llc.resident_bytes"), self.llc.resident_bytes());
    }

    /// LLC hit latency (charged by callers that model a known-resident line,
    /// e.g. the pinned cpoll region).
    pub fn llc_latency(&self) -> Span {
        self.cfg.llc_latency
    }

    fn round_to_granule(&self, bytes: u64) -> u64 {
        let g = self.cfg.nvm_granularity;
        bytes.div_ceil(g) * g
    }

    /// Charges one memory access starting at or after `at`; returns the
    /// completion time (bandwidth serialization + loaded latency).
    pub fn access(&mut self, at: SimTime, req: MemReq) -> SimTime {
        match (req.kind, req.access) {
            (MemKind::Dram, AccessKind::Read) => {
                self.stats.dram_read_bytes += req.bytes;
                self.dram.transfer(at, req.bytes).arrive
            }
            (MemKind::Dram, AccessKind::Write) => {
                self.stats.dram_write_bytes += req.bytes;
                self.dram.transfer(at, req.bytes).arrive
            }
            (MemKind::Nvm, AccessKind::Read) => {
                let physical = self.round_to_granule(req.bytes);
                self.stats.nvm_read_bytes += physical;
                self.nvm_read.transfer(at, physical).arrive
            }
            (MemKind::Nvm, AccessKind::Write) => {
                // Direct (store + clwb) writes: sequential, so only
                // granularity rounding applies.
                let physical = self.round_to_granule(req.bytes);
                self.stats.nvm_logical_write_bytes += req.bytes;
                self.stats.nvm_physical_write_bytes += physical;
                self.nvm_write.transfer(at, physical).arrive
            }
            (MemKind::AccelDdr, _) => self.accel_ddr.transfer(at, req.bytes).arrive,
            (MemKind::AccelHbm, _) => self.accel_hbm.transfer(at, req.bytes).arrive,
            (MemKind::NicDram, _) => self.nic_dram.transfer(at, req.bytes).arrive,
        }
    }

    /// Charges an inbound device DMA write (PCIe) of `bytes` destined for a
    /// buffer living in `dest`, with the packet's TPH bit set to `tph`.
    ///
    /// Returns the completion time and where the data landed. This is the
    /// Fig. 5 / Fig. 6 path:
    ///
    /// * routed to the **LLC**: no memory-channel traffic now; if the DDIO
    ///   working set overflows, evicted lines are written back — to DRAM at
    ///   line granularity, or to NVM with
    ///   [`nvm_ddio_write_amp`](MemConfig::nvm_ddio_write_amp) amplification
    ///   because replacement-order evictions defeat the 256 B granule.
    /// * routed to **memory**: a DMA write costs a read-for-ownership plus
    ///   the write on the DRAM channels, or a granule-rounded write on NVM.
    pub fn dma_write(&mut self, at: SimTime, bytes: u64, tph: bool, dest: MemKind) -> (SimTime, DmaRoute) {
        debug_assert!(
            matches!(dest, MemKind::Dram | MemKind::Nvm),
            "inbound host DMA must target host memory, got {dest:?}"
        );
        let route = self.llc.route(tph);
        match route {
            DmaRoute::Llc => {
                self.stats.dma_to_llc_bytes += bytes;
                let spill = self.llc.inject(bytes);
                if spill > 0 {
                    match dest {
                        MemKind::Nvm => {
                            let physical = (spill as f64 * self.cfg.nvm_ddio_write_amp).round() as u64;
                            self.stats.nvm_logical_write_bytes += spill;
                            self.stats.nvm_physical_write_bytes += physical;
                            self.nvm_write.transfer(at, physical);
                        }
                        _ => {
                            self.stats.dram_write_bytes += spill;
                            self.dram.transfer(at, spill);
                        }
                    }
                }
                (at + self.cfg.llc_latency, route)
            }
            DmaRoute::Memory => {
                self.stats.dma_to_mem_bytes += bytes;
                match dest {
                    MemKind::Nvm => {
                        let physical = self.round_to_granule(bytes);
                        self.stats.nvm_logical_write_bytes += bytes;
                        self.stats.nvm_physical_write_bytes += physical;
                        (self.nvm_write.transfer(at, physical).arrive, route)
                    }
                    _ => {
                        // Write-allocate: the iMC reads the line before
                        // merging the DMA write (both directions show ~the
                        // DMA rate in Fig. 5).
                        self.stats.dram_read_bytes += bytes;
                        self.stats.dram_write_bytes += bytes;
                        self.dram.transfer(at, bytes);
                        (self.dram.transfer(at, bytes).arrive, route)
                    }
                }
            }
        }
    }

    /// Charges a persistence flush (`clwb`-style) of `bytes` of
    /// DDIO-resident data to NVM.
    ///
    /// Flushing cache-resident lines evicts them in replacement order, so
    /// the configured write amplification applies — this is why the adaptive
    /// scheme routes NVM-destined DMA around the cache.
    pub fn flush_llc_to_nvm(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let physical = (bytes as f64 * self.cfg.nvm_ddio_write_amp).round() as u64;
        self.stats.nvm_logical_write_bytes += bytes;
        self.stats.nvm_physical_write_bytes += physical;
        self.llc.consume(bytes);
        self.nvm_write.transfer(at, physical).arrive
    }

    /// Average consumed DRAM bandwidth over `[0, now]` in bytes/second.
    pub fn dram_consumed_bw(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.stats.dram_total_bytes() as f64 / secs
        }
    }

    /// Resets link occupancy and statistics (configuration is kept).
    pub fn reset(&mut self) {
        self.dram.reset();
        self.nvm_read.reset();
        self.nvm_write.reset();
        self.accel_ddr.reset();
        self.accel_hbm.reset();
        self.nic_dram.reset();
        self.stats = MemStats::default();
        let ddio = self.llc.ddio_enabled();
        self.llc = Llc::new(ddio, self.cfg.ddio_capacity());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(ddio: bool) -> MemorySystem {
        MemorySystem::new(MemConfig::default(), ddio)
    }

    #[test]
    fn dram_read_latency_dominates_single_access() {
        let mut m = sys(true);
        let done = m.access(SimTime::ZERO, MemReq::line_read(MemKind::Dram));
        let ns = done.as_ns_f64();
        assert!((90.0..92.0).contains(&ns), "got {ns}");
        assert_eq!(m.stats().dram_read_bytes, 64);
    }

    #[test]
    fn dram_bandwidth_serializes() {
        let mut m = sys(true);
        // Push 120 GB through a 120 GB/s channel set: ~1s of serialization.
        let done = m.access(
            SimTime::ZERO,
            MemReq { kind: MemKind::Dram, access: AccessKind::Read, bytes: 120_000_000_000 },
        );
        assert!((done.as_secs_f64() - 1.0).abs() < 0.01, "{}", done.as_secs_f64());
    }

    #[test]
    fn nvm_reads_are_granule_rounded() {
        let mut m = sys(true);
        m.access(SimTime::ZERO, MemReq { kind: MemKind::Nvm, access: AccessKind::Read, bytes: 64 });
        assert_eq!(m.stats().nvm_read_bytes, 256);
    }

    #[test]
    fn nvm_direct_write_rounds_but_does_not_amplify() {
        let mut m = sys(false);
        m.access(SimTime::ZERO, MemReq { kind: MemKind::Nvm, access: AccessKind::Write, bytes: 1024 });
        assert_eq!(m.stats().nvm_physical_write_bytes, 1024);
        assert_eq!(m.stats().nvm_write_amplification(), 1.0);
    }

    #[test]
    fn dma_write_ddio_off_tph_off_hits_memory_both_ways() {
        // Fig. 5: only DDIO-off + TPH-off consumes memory bandwidth, in both
        // read and write directions.
        let mut m = sys(false);
        let (_, route) = m.dma_write(SimTime::ZERO, 4096, false, MemKind::Dram);
        assert_eq!(route, DmaRoute::Memory);
        assert_eq!(m.stats().dram_read_bytes, 4096);
        assert_eq!(m.stats().dram_write_bytes, 4096);
    }

    #[test]
    fn dma_write_with_tph_bypasses_memory() {
        let mut m = sys(false);
        let (_, route) = m.dma_write(SimTime::ZERO, 4096, true, MemKind::Dram);
        assert_eq!(route, DmaRoute::Llc);
        assert_eq!(m.stats().dram_total_bytes(), 0);
        assert_eq!(m.stats().dma_to_llc_bytes, 4096);
    }

    #[test]
    fn dma_write_with_ddio_bypasses_memory() {
        let mut m = sys(true);
        let (_, route) = m.dma_write(SimTime::ZERO, 4096, false, MemKind::Dram);
        assert_eq!(route, DmaRoute::Llc);
        assert_eq!(m.stats().dram_total_bytes(), 0);
    }

    #[test]
    fn ddio_overflow_spills_to_dram() {
        let mut m = sys(true);
        let cap = m.config().ddio_capacity();
        m.dma_write(SimTime::ZERO, cap + 1000, false, MemKind::Dram);
        assert_eq!(m.stats().dram_write_bytes, 1000);
        assert_eq!(m.stats().dram_read_bytes, 0);
    }

    #[test]
    fn nvm_ddio_spill_amplifies() {
        let mut m = sys(true);
        let cap = m.config().ddio_capacity();
        m.dma_write(SimTime::ZERO, cap + 1000, false, MemKind::Nvm);
        assert_eq!(m.stats().nvm_logical_write_bytes, 1000);
        assert_eq!(m.stats().nvm_physical_write_bytes, 1200);
        assert!((m.stats().nvm_write_amplification() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn nvm_dma_direct_is_granule_rounded_only() {
        let mut m = sys(false);
        m.dma_write(SimTime::ZERO, 100, false, MemKind::Nvm);
        assert_eq!(m.stats().nvm_physical_write_bytes, 256);
    }

    #[test]
    fn flush_llc_to_nvm_amplifies() {
        let mut m = sys(true);
        m.dma_write(SimTime::ZERO, 1024, false, MemKind::Nvm);
        let done = m.flush_llc_to_nvm(SimTime::from_ns(100), 1024);
        assert!(done > SimTime::from_ns(100));
        assert_eq!(m.stats().nvm_physical_write_bytes, 1229);
    }

    #[test]
    fn accel_local_memories_have_distinct_costs() {
        let mut m = sys(true);
        let big = 1_000_000_000u64;
        let ddr =
            m.access(SimTime::ZERO, MemReq { kind: MemKind::AccelDdr, access: AccessKind::Read, bytes: big });
        let mut m2 = sys(true);
        let hbm = m2
            .access(SimTime::ZERO, MemReq { kind: MemKind::AccelHbm, access: AccessKind::Read, bytes: big });
        // HBM is ~12x the bandwidth: 1 GB takes far less serialization time.
        assert!(ddr.as_secs_f64() > 10.0 * hbm.as_secs_f64());
    }

    #[test]
    fn reset_clears_stats_and_occupancy() {
        let mut m = sys(true);
        m.access(SimTime::ZERO, MemReq::line_write(MemKind::Dram));
        m.reset();
        assert_eq!(*m.stats(), MemStats::default());
        let done = m.access(SimTime::ZERO, MemReq::line_read(MemKind::Dram));
        assert!(done.as_ns_f64() < 92.0);
    }

    #[test]
    fn consumed_bw_matches_fig5_setup() {
        // The Fig. 5 generator: 3.5 GB/s DMA for 1 simulated second with
        // DDIO and TPH off -> ~3.5 GB/s read and ~3.5 GB/s write.
        let mut m = sys(false);
        let chunk = 3500u64 * 1024; // ~3.5 MB per ms
        for i in 0..1000u64 {
            m.dma_write(SimTime::from_us(i * 1000), chunk, false, MemKind::Dram);
        }
        let bw = m.dram_consumed_bw(SimTime::from_us(1_000_000));
        let expect = 2.0 * 3500.0 * 1024.0 * 1000.0;
        assert!((bw - expect).abs() / expect < 0.01, "bw={bw}");
    }
}
