//! The PCIe link between a device and its host.
//!
//! This is the cost the paper's whole design works around: Smart-NIC cores
//! reaching host memory (Fig. 1), doorbell MMIO writes, and inbound DMA
//! whose destination the TPH bit steers (Fig. 5).

use rambda_des::{Link, SimTime, Span};
use serde::{Deserialize, Serialize};

/// PCIe parameters (defaults: a Gen4 x16 device link with the one-sided
/// RDMA round-trip costs measured on BlueField-2-class hardware).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcieConfig {
    /// Link bandwidth per direction, bytes/second.
    pub bandwidth: f64,
    /// One-way TLP latency through the physical link, MMU/IOMMU, DMA
    /// engine, and I/O controller.
    pub one_way_latency: Span,
    /// Extra per-operation device-side processing for a one-sided RDMA
    /// read/write issued by on-NIC cores via direct verbs.
    pub verbs_overhead: Span,
    /// Cost of an MMIO register write (doorbell) from the host CPU,
    /// including the surrounding `sfence`.
    pub mmio_write_cost: Span,
    /// One-way latency of a posted MMIO write (shorter than a full DMA
    /// transaction: no IOMMU walk or DMA-engine turnaround).
    pub mmio_latency: Span,
}

impl Default for PcieConfig {
    fn default() -> Self {
        PcieConfig {
            bandwidth: 16.0e9,
            one_way_latency: Span::from_ns(700),
            verbs_overhead: Span::from_ns(250),
            mmio_write_cost: Span::from_ns(250),
            mmio_latency: Span::from_ns(300),
        }
    }
}

/// A full-duplex PCIe link with FIFO queueing per direction.
///
/// ```
/// use rambda_des::SimTime;
/// use rambda_fabric::{PcieConfig, PcieLink};
///
/// let mut pcie = PcieLink::new(PcieConfig::default());
/// // A 64 B one-sided read from the device to host memory: ~1.7us.
/// let done = pcie.device_read(SimTime::ZERO, 64);
/// assert!(done.as_us_f64() > 1.5);
/// ```
#[derive(Debug, Clone)]
pub struct PcieLink {
    cfg: PcieConfig,
    upstream: Link,   // device -> host
    downstream: Link, // host -> device
}

impl PcieLink {
    /// Creates a link from a configuration.
    pub fn new(cfg: PcieConfig) -> Self {
        PcieLink {
            upstream: Link::new(cfg.bandwidth, cfg.one_way_latency),
            downstream: Link::new(cfg.bandwidth, cfg.one_way_latency),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PcieConfig {
        &self.cfg
    }

    /// A device-initiated read of `bytes` from host memory (one-sided RDMA
    /// read over direct verbs): request TLP up, completion with data down.
    /// Returns when the data is at the device. Host media time is charged
    /// separately by the caller's memory model.
    pub fn device_read(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let issued = at + self.cfg.verbs_overhead;
        let req_at_host = self.upstream.transfer(issued, 32).arrive;
        self.downstream.transfer(req_at_host, bytes).arrive
    }

    /// A device-initiated posted write of `bytes` to host memory. Returns
    /// when the TLP has been delivered to the host's I/O controller (the
    /// write is posted; the device does not wait for media).
    pub fn device_write(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let issued = at + self.cfg.verbs_overhead;
        self.upstream.transfer(issued, bytes).arrive
    }

    /// A host MMIO write to a device register (doorbell). Returns when the
    /// device observes it; the CPU itself is stalled for
    /// [`mmio_write_cost`](PcieConfig::mmio_write_cost).
    pub fn mmio_write(&mut self, at: SimTime) -> SimTime {
        let t = self.downstream.transfer(at + self.cfg.mmio_write_cost, 8);
        t.depart + self.cfg.mmio_latency
    }

    /// A device DMA delivering `bytes` toward host memory/LLC, without verbs
    /// overhead (the RNIC's own datapath). Returns TLP delivery time.
    pub fn dma_to_host(&mut self, at: SimTime, bytes: u64) -> SimTime {
        self.upstream.transfer(at, bytes).arrive
    }

    /// A host-to-device DMA (e.g. the RNIC fetching a WQE by DMA).
    pub fn dma_to_device(&mut self, at: SimTime, bytes: u64) -> SimTime {
        self.downstream.transfer(at, bytes).arrive
    }

    /// Upstream (device→host) bytes moved.
    pub fn upstream_bytes(&self) -> u64 {
        self.upstream.bytes_moved()
    }

    /// Downstream (host→device) bytes moved.
    pub fn downstream_bytes(&self) -> u64 {
        self.downstream.bytes_moved()
    }

    /// Publishes both directions' link counters under `prefix`.
    pub fn publish_metrics(&self, m: &mut rambda_metrics::MetricSet, prefix: &str) {
        m.observe_link(&format!("{prefix}.upstream"), &self.upstream);
        m.observe_link(&format!("{prefix}.downstream"), &self.downstream);
    }

    /// Resets occupancy and counters.
    pub fn reset(&mut self) {
        self.upstream.reset();
        self.downstream.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_read_round_trip_cost() {
        let mut p = PcieLink::new(PcieConfig::default());
        let t = p.device_read(SimTime::ZERO, 64);
        // 250ns verbs + 700ns up + 700ns down + serialization ≈ 1.66us.
        let us = t.as_us_f64();
        assert!((1.6..1.8).contains(&us), "{us}");
    }

    #[test]
    fn device_write_is_posted_one_way() {
        let mut p = PcieLink::new(PcieConfig::default());
        let w = p.device_write(SimTime::ZERO, 64);
        let mut p2 = PcieLink::new(PcieConfig::default());
        let r = p2.device_read(SimTime::ZERO, 64);
        assert!(w < r, "posted write {w} should beat round-trip read {r}");
    }

    #[test]
    fn mmio_write_cost() {
        let mut p = PcieLink::new(PcieConfig::default());
        let t = p.mmio_write(SimTime::ZERO);
        let ns = t.as_ns_f64();
        // 250ns CPU-side + ~300ns posted-write latency.
        assert!((540.0..600.0).contains(&ns), "{ns}");
    }

    #[test]
    fn directions_do_not_contend() {
        let mut p = PcieLink::new(PcieConfig::default());
        p.dma_to_host(SimTime::ZERO, 1_000_000);
        let t = p.dma_to_device(SimTime::ZERO, 64);
        // Downstream unaffected by the big upstream transfer.
        assert!(t.as_ns_f64() < 710.0, "{}", t.as_ns_f64());
    }

    #[test]
    fn same_direction_serializes() {
        let mut p = PcieLink::new(PcieConfig::default());
        let a = p.dma_to_host(SimTime::ZERO, 1_000_000);
        let b = p.dma_to_host(SimTime::ZERO, 1_000_000);
        assert!(b > a);
        assert_eq!(p.upstream_bytes(), 2_000_000);
    }

    #[test]
    fn reset_clears() {
        let mut p = PcieLink::new(PcieConfig::default());
        p.dma_to_host(SimTime::ZERO, 100);
        p.dma_to_device(SimTime::ZERO, 100);
        p.reset();
        assert_eq!(p.upstream_bytes(), 0);
        assert_eq!(p.downstream_bytes(), 0);
    }
}
