//! Smart NIC baseline model (BlueField-2-class).
//!
//! Models the comparison system of Sec. II-B / Sec. VI: eight wimpy ARM
//! cores with 16 GB of on-board DRAM, of which 512 MB serves as a cache for
//! host-resident application data; misses go to the host over PCIe using
//! one-sided RDMA through direct verbs — the cost Fig. 1 measures growing
//! linearly with the host-access fraction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rambda_des::{Server, SimRng, SimTime, Span};
use rambda_fabric::{PcieConfig, PcieLink};
use rambda_mem::{AccessKind, MemKind, MemReq, MemorySystem};
use serde::{Deserialize, Serialize};

/// Smart NIC parameters (defaults = Tab. II's BlueField-2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmartNicConfig {
    /// Number of ARM cores.
    pub cores: usize,
    /// Per-request software overhead on an ARM core (RPC parse + dispatch;
    /// wimpier than a Xeon core).
    pub request_overhead: Span,
    /// Per-memory-access instruction overhead on the ARM core.
    pub access_overhead: Span,
    /// On-board DRAM bytes reserved as a cache of host data (512 MB in
    /// Sec. VI-B).
    pub cache_bytes: u64,
    /// PCIe link to the host.
    pub pcie: PcieConfig,
    /// Relative jitter of a host access (DMA engine / IOMMU variance);
    /// exponential with this mean fraction. Produces the Fig. 1 tail.
    pub host_jitter: f64,
}

impl Default for SmartNicConfig {
    fn default() -> Self {
        SmartNicConfig {
            cores: 8,
            request_overhead: Span::from_ns(400),
            access_overhead: Span::from_ns(15),
            cache_bytes: 512 << 20,
            pcie: PcieConfig::default(),
            host_jitter: 0.10,
        }
    }
}

/// Counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmartNicStats {
    /// Requests processed.
    pub requests: u64,
    /// Accesses served from on-board DRAM.
    pub local_accesses: u64,
    /// Accesses that crossed PCIe to the host.
    pub host_accesses: u64,
}

/// The Smart NIC: cores + on-board memory + PCIe to the host.
#[derive(Debug, Clone)]
pub struct SmartNic {
    cfg: SmartNicConfig,
    cores: Server,
    pcie: PcieLink,
    stats: SmartNicStats,
}

impl SmartNic {
    /// Creates a Smart NIC.
    pub fn new(cfg: SmartNicConfig) -> Self {
        SmartNic {
            cores: Server::new(cfg.cores),
            pcie: PcieLink::new(cfg.pcie.clone()),
            cfg,
            stats: SmartNicStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SmartNicConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &SmartNicStats {
        &self.stats
    }

    /// Publishes the Smart NIC's counters under `prefix`: request/access
    /// counts, the ARM-core pool, and the PCIe link to the host.
    pub fn publish_metrics(&self, m: &mut rambda_metrics::MetricSet, prefix: &str) {
        m.set(&format!("{prefix}.requests"), self.stats.requests);
        m.set(&format!("{prefix}.local_accesses"), self.stats.local_accesses);
        m.set(&format!("{prefix}.host_accesses"), self.stats.host_accesses);
        m.observe_server(&format!("{prefix}.cores"), &self.cores);
        self.pcie.publish_metrics(m, &format!("{prefix}.pcie"));
    }

    /// Claims an ARM core for a request arriving at `arrival`, expected to
    /// hold it for `hold` of compute (memory time computed separately).
    pub fn claim_core(&mut self, arrival: SimTime, hold: Span) -> SimTime {
        self.cores.acquire(arrival, hold)
    }

    /// Start of service for a request arriving at `arrival` whose duration
    /// is only known after processing; pair with
    /// [`end_request`](Self::end_request).
    pub fn begin_request(&mut self, arrival: SimTime) -> SimTime {
        self.cores.earliest_free().max(arrival) + self.cfg.request_overhead
    }

    /// Completes the two-phase claim started by
    /// [`begin_request`](Self::begin_request).
    pub fn end_request(&mut self, arrival: SimTime, end: SimTime) {
        let start = self.cores.earliest_free().max(arrival);
        let hold = end.saturating_since(start);
        let _ = self.cores.acquire(arrival, hold);
        self.stats.requests += 1;
    }

    /// One 64 B-line memory access from an ARM core.
    ///
    /// `local` accesses hit the on-board DRAM; host accesses issue a
    /// one-sided RDMA read/write over PCIe (direct verbs) and touch the
    /// host's memory system.
    #[allow(clippy::too_many_arguments)]
    pub fn mem_access(
        &mut self,
        at: SimTime,
        bytes: u64,
        write: bool,
        local: bool,
        nic_mem: &mut MemorySystem,
        host_mem: &mut MemorySystem,
        host_kind: MemKind,
        rng: &mut SimRng,
    ) -> SimTime {
        let at = at + self.cfg.access_overhead;
        if local {
            self.stats.local_accesses += 1;
            let access = if write { AccessKind::Write } else { AccessKind::Read };
            nic_mem.access(at, MemReq { kind: MemKind::NicDram, access, bytes })
        } else {
            self.stats.host_accesses += 1;
            let jitter =
                Span::from_ns_f64(self.cfg.pcie.one_way_latency.as_ns_f64() * rng.exp(self.cfg.host_jitter));
            if write {
                let posted = self.pcie.device_write(at, bytes);
                host_mem.access(posted + jitter, MemReq { kind: host_kind, access: AccessKind::Write, bytes })
            } else {
                let req_up = self.pcie.device_write(at, 32); // read request TLP
                let media =
                    host_mem.access(req_up, MemReq { kind: host_kind, access: AccessKind::Read, bytes });
                self.pcie.dma_to_device(media, bytes) + jitter
            }
        }
    }

    /// The Fig. 1 microbenchmark request: `accesses` back-to-back 64 B
    /// accesses, each going to the host with probability `host_fraction`.
    /// Returns the request's service time.
    #[allow(clippy::too_many_arguments)]
    pub fn random_access_request(
        &mut self,
        at: SimTime,
        accesses: usize,
        host_fraction: f64,
        nic_mem: &mut MemorySystem,
        host_mem: &mut MemorySystem,
        rng: &mut SimRng,
    ) -> Span {
        let start = self.claim_core(at, Span::ZERO);
        let mut t = start;
        for _ in 0..accesses {
            let local = !rng.chance(host_fraction);
            t = self.mem_access(t, 64, false, local, nic_mem, host_mem, MemKind::Dram, rng);
        }
        self.stats.requests += 1;
        t - at
    }

    /// Resets dynamic state.
    pub fn reset(&mut self) {
        self.cores.reset();
        self.pcie.reset();
        self.stats = SmartNicStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_mem::MemConfig;

    fn world() -> (SmartNic, MemorySystem, MemorySystem, SimRng) {
        (
            SmartNic::new(SmartNicConfig::default()),
            MemorySystem::new(MemConfig::default(), true), // NIC-side
            MemorySystem::new(MemConfig::default(), true), // host-side
            SimRng::seed(42),
        )
    }

    #[test]
    fn local_access_is_fast() {
        let (mut nic, mut nmem, mut hmem, mut rng) = world();
        let t = nic.mem_access(SimTime::ZERO, 64, false, true, &mut nmem, &mut hmem, MemKind::Dram, &mut rng);
        assert!(t.as_ns_f64() < 200.0, "{}", t.as_ns_f64());
        assert_eq!(nic.stats().local_accesses, 1);
    }

    #[test]
    fn host_access_pays_pcie() {
        let (mut nic, mut nmem, mut hmem, mut rng) = world();
        let t =
            nic.mem_access(SimTime::ZERO, 64, false, false, &mut nmem, &mut hmem, MemKind::Dram, &mut rng);
        assert!(t.as_us_f64() > 1.4, "{}", t.as_us_f64());
        assert_eq!(nic.stats().host_accesses, 1);
        assert_eq!(hmem.stats().dram_read_bytes, 64);
    }

    #[test]
    fn fig1_latency_grows_linearly_with_host_fraction() {
        // The headline behaviour of Fig. 1.
        let mut means = Vec::new();
        for pct in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let (mut nic, mut nmem, mut hmem, mut rng) = world();
            let mut total = Span::ZERO;
            let n = 200;
            for i in 0..n {
                let at = SimTime::from_us(1000 * (i + 1));
                total += nic.random_access_request(at, 100, pct, &mut nmem, &mut hmem, &mut rng);
            }
            means.push(total.as_us_f64() / n as f64);
        }
        // Strictly increasing, and roughly linear: the midpoint should be
        // near the average of the endpoints.
        for w in means.windows(2) {
            assert!(w[1] > w[0], "{means:?}");
        }
        let linear_mid = (means[0] + means[5]) / 2.0;
        let rel = (means[2] + means[3]) / 2.0 / linear_mid;
        assert!((0.85..1.15).contains(&rel), "means={means:?}");
        // 100% host is dramatically slower than 0%.
        assert!(means[5] > 10.0 * means[0], "{means:?}");
    }

    #[test]
    fn cores_limit_concurrency() {
        let (mut nic, _, _, _) = world();
        let hold = Span::from_us(10);
        for _ in 0..8 {
            assert_eq!(nic.claim_core(SimTime::ZERO, hold), SimTime::ZERO);
        }
        assert_eq!(nic.claim_core(SimTime::ZERO, hold), SimTime::from_us(10));
    }

    #[test]
    fn writes_are_posted() {
        let (mut nic, mut nmem, mut hmem, mut rng) = world();
        let w = nic.mem_access(SimTime::ZERO, 64, true, false, &mut nmem, &mut hmem, MemKind::Dram, &mut rng);
        let mut nic2 = SmartNic::new(SmartNicConfig::default());
        let r =
            nic2.mem_access(SimTime::ZERO, 64, false, false, &mut nmem, &mut hmem, MemKind::Dram, &mut rng);
        assert!(w < r, "posted write {w} vs read {r}");
    }

    #[test]
    fn reset_clears() {
        let (mut nic, mut nmem, mut hmem, mut rng) = world();
        nic.random_access_request(SimTime::ZERO, 10, 0.5, &mut nmem, &mut hmem, &mut rng);
        nic.reset();
        assert_eq!(*nic.stats(), SmartNicStats::default());
    }
}
