//! Property-based tests: the MICA-style store against a model (HashMap).

use std::collections::HashMap;

use proptest::prelude::*;
use rambda_kvs::store::{KvConfig, KvStore};

#[derive(Debug, Clone)]
enum Op {
    Get(u64),
    Put(u64, u8),
    Remove(u64),
}

fn op_strategy(keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..keys).prop_map(Op::Get),
        (0..keys, any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        (0..keys).prop_map(Op::Remove),
    ]
}

proptest! {
    /// The store behaves exactly like a HashMap under any operation
    /// sequence, including heavy collisions (tiny bucket table).
    #[test]
    fn store_matches_model(ops in proptest::collection::vec(op_strategy(64), 1..400)) {
        let mut store = KvStore::new(KvConfig { buckets: 4, value_bytes: 8 });
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Get(k) => {
                    let (got, trace) = store.get(k);
                    prop_assert_eq!(got.map(<[u8]>::to_vec), model.get(&k).cloned());
                    prop_assert_eq!(trace.hit, model.contains_key(&k));
                }
                Op::Put(k, b) => {
                    let v = vec![b; 8];
                    let trace = store.put(k, v.clone());
                    prop_assert_eq!(trace.hit, model.contains_key(&k));
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    let (old, _) = store.remove(k);
                    prop_assert_eq!(old, model.remove(&k));
                }
            }
            prop_assert_eq!(store.len(), model.len());
        }
    }

    /// Access traces are sane: every op touches at least one bucket line,
    /// and GET value reads happen exactly on hits.
    #[test]
    fn traces_are_consistent(keys in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut store = KvStore::new(KvConfig::for_pairs(1000, 16));
        for (i, &k) in keys.iter().enumerate() {
            let t = store.put(k, vec![i as u8; 16]);
            prop_assert!(t.bucket_reads >= 1);
            prop_assert!(t.writes >= 1);
        }
        for &k in &keys {
            let (v, t) = store.get(k);
            prop_assert!(v.is_some());
            prop_assert_eq!(t.value_reads, 1);
            prop_assert!(t.accesses() >= 2);
        }
        let (v, t) = store.get(1_000_000);
        prop_assert!(v.is_none());
        prop_assert_eq!(t.value_reads, 0);
    }

    /// Footprint never shrinks as pairs are added and stays line-aligned.
    #[test]
    fn footprint_is_monotone(n in 1usize..500) {
        let mut store = KvStore::new(KvConfig::for_pairs(500, 32));
        let mut last = store.footprint_bytes();
        for k in 0..n as u64 {
            store.put(k, vec![0; 32]);
            let f = store.footprint_bytes();
            prop_assert!(f >= last);
            last = f;
        }
    }
}
