//! The `event_core` report section: deterministic scheduler telemetry.
//!
//! The DES event queue counts every push and pop it performs — per event
//! kind, per wheel tier — plus the cumulative sim-time dwell between enqueue
//! and fire. [`EventCoreSummary`] freezes those counters (with the pending
//! backlog at capture time) into a serializable section whose conservation
//! identities `RunReport::validate_event_core` checks: dispatches equal
//! enqueues minus cancellations minus the pending backlog, tier hits
//! telescope to the total enqueues, and the per-kind breakdown partitions
//! both sides exactly.

use rambda_des::EventCoreStats;

use crate::json::Json;
use crate::set::MetricSet;

/// One event kind's frozen telemetry (see `rambda_des::KindStats`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventKindSummary {
    /// Kind name as registered on the queue (`"event"`, `"prime"`, ...).
    pub name: String,
    /// Events of this kind scheduled.
    pub pushes: u64,
    /// Events of this kind dispatched.
    pub pops: u64,
    /// Cumulative enqueue→fire sim-time dwell, picoseconds.
    pub held_ps: u64,
}

/// Frozen event-core telemetry for one run, attached to a [`crate::RunReport`]
/// via `attach_event_core` when profiling is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventCoreSummary {
    /// Total events scheduled.
    pub enqueued: u64,
    /// Total events fired.
    pub dispatched: u64,
    /// Total events cancelled before firing.
    pub cancelled: u64,
    /// Events still pending when the summary was captured.
    pub pending: u64,
    /// Cumulative enqueue→fire sim-time dwell across all events, picoseconds.
    pub dwell_ps: u64,
    /// Pushes routed into the already-drained time range.
    pub drain_hits: u64,
    /// Pushes routed into the near wheel.
    pub near_hits: u64,
    /// Pushes routed into the far overflow.
    pub far_hits: u64,
    /// Wheel re-anchor events.
    pub reanchors: u64,
    /// Tickets redistributed from the far overflow across all re-anchors.
    pub redistributed: u64,
    /// Partitions the conservative executor sharded clients into (0 when
    /// the run was serial).
    pub partitions: u64,
    /// Lookahead windows the conservative executor opened.
    pub windows: u64,
    /// Window barriers crossed — equal to `windows` by construction.
    pub barriers: u64,
    /// Partition-window pairs that still held events past the horizon when
    /// a barrier closed; at most `windows * partitions`.
    pub horizon_stalls: u64,
    /// Per-kind breakdown, in registration order.
    pub kinds: Vec<EventKindSummary>,
}

impl EventCoreSummary {
    /// Freezes the queue's live stats, recording `pending` as the backlog
    /// still scheduled at capture time.
    pub fn of(stats: &EventCoreStats, pending: u64) -> Self {
        EventCoreSummary {
            enqueued: stats.enqueued,
            dispatched: stats.dispatched,
            cancelled: stats.cancelled,
            pending,
            dwell_ps: stats.dwell_ps,
            drain_hits: stats.drain_hits,
            near_hits: stats.near_hits,
            far_hits: stats.far_hits,
            reanchors: stats.reanchors,
            redistributed: stats.redistributed,
            partitions: 0,
            windows: 0,
            barriers: 0,
            horizon_stalls: 0,
            kinds: stats
                .kinds
                .iter()
                .map(|k| EventKindSummary {
                    name: k.name.to_string(),
                    pushes: k.pushes,
                    pops: k.pops,
                    held_ps: k.held_ps,
                })
                .collect(),
        }
    }

    /// Records the conservative executor's window/barrier accounting. This
    /// crate cannot see `rambda`'s `ExecStats` (the dependency points the
    /// other way), so the four counters arrive as plain values; all zero
    /// means the run was serial.
    pub fn with_exec(mut self, partitions: u64, windows: u64, barriers: u64, horizon_stalls: u64) -> Self {
        self.partitions = partitions;
        self.windows = windows;
        self.barriers = barriers;
        self.horizon_stalls = horizon_stalls;
        self
    }

    /// Publishes every telemetry value as a counter under `prefix`, so the
    /// analyzer's R9 identity-coverage rule ties each one to
    /// `validate_event_core`.
    pub fn publish_metrics(&self, m: &mut MetricSet, prefix: &str) {
        m.set(&format!("{prefix}.enqueued"), self.enqueued);
        m.set(&format!("{prefix}.dispatched"), self.dispatched);
        m.set(&format!("{prefix}.cancelled"), self.cancelled);
        m.set(&format!("{prefix}.pending"), self.pending);
        m.set(&format!("{prefix}.dwell_ps"), self.dwell_ps);
        m.set(&format!("{prefix}.tier.drain_hits"), self.drain_hits);
        m.set(&format!("{prefix}.tier.near_hits"), self.near_hits);
        m.set(&format!("{prefix}.tier.far_hits"), self.far_hits);
        m.set(&format!("{prefix}.tier.reanchors"), self.reanchors);
        m.set(&format!("{prefix}.tier.redistributed"), self.redistributed);
        m.set(&format!("{prefix}.exec.partitions"), self.partitions);
        m.set(&format!("{prefix}.exec.windows"), self.windows);
        m.set(&format!("{prefix}.exec.barriers"), self.barriers);
        m.set(&format!("{prefix}.exec.horizon_stalls"), self.horizon_stalls);
        for k in &self.kinds {
            let base = format!("{prefix}.kind.{}", k.name);
            m.set(&format!("{base}.pushes"), k.pushes);
            m.set(&format!("{base}.pops"), k.pops);
            m.set(&format!("{base}.held_ps"), k.held_ps);
        }
    }

    /// Renders the section as a deterministic JSON value.
    pub fn to_json(&self) -> Json {
        let mut kinds = Json::obj();
        for k in &self.kinds {
            let mut o = Json::obj();
            o.push("pushes", Json::U64(k.pushes));
            o.push("pops", Json::U64(k.pops));
            o.push("held_ps", Json::U64(k.held_ps));
            kinds.push(&k.name, o);
        }
        let mut tier = Json::obj();
        tier.push("drain_hits", Json::U64(self.drain_hits));
        tier.push("near_hits", Json::U64(self.near_hits));
        tier.push("far_hits", Json::U64(self.far_hits));
        tier.push("reanchors", Json::U64(self.reanchors));
        tier.push("redistributed", Json::U64(self.redistributed));
        let mut exec = Json::obj();
        exec.push("partitions", Json::U64(self.partitions));
        exec.push("windows", Json::U64(self.windows));
        exec.push("barriers", Json::U64(self.barriers));
        exec.push("horizon_stalls", Json::U64(self.horizon_stalls));
        let mut out = Json::obj();
        out.push("enqueued", Json::U64(self.enqueued));
        out.push("dispatched", Json::U64(self.dispatched));
        out.push("cancelled", Json::U64(self.cancelled));
        out.push("pending", Json::U64(self.pending));
        out.push("dwell_ps", Json::U64(self.dwell_ps));
        out.push("tier", tier);
        out.push("exec", exec);
        out.push("kinds", kinds);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_des::{EventQueue, SimTime};

    #[test]
    fn summary_freezes_queue_stats_and_serializes_deterministically() {
        let mut q = EventQueue::new();
        let serve = q.kind("serve");
        q.push(SimTime::from_ns(5), 1u32);
        q.push_kind(SimTime::from_ns(9), serve, 2);
        q.pop();
        let s = EventCoreSummary::of(q.stats(), q.len() as u64);
        assert_eq!(s.enqueued, 2);
        assert_eq!(s.dispatched, 1);
        assert_eq!(s.pending, 1);
        assert_eq!(s.kinds.len(), 2);
        let a = s.to_json().render();
        let b = EventCoreSummary::of(q.stats(), q.len() as u64).to_json().render();
        assert_eq!(a, b);
        assert!(a.contains("\"serve\""));

        let mut m = MetricSet::new();
        s.publish_metrics(&mut m, "event_core");
        assert_eq!(m.counter("event_core.enqueued"), Some(2));
        assert_eq!(m.counter("event_core.kind.serve.pushes"), Some(1));
        assert_eq!(m.counter("event_core.tier.near_hits"), Some(2));
        // Serial by default: the exec block publishes all-zero.
        assert_eq!(m.counter("event_core.exec.partitions"), Some(0));
    }

    #[test]
    fn with_exec_records_and_publishes_parallel_counters() {
        let q: EventQueue<u8> = EventQueue::new();
        let s = EventCoreSummary::of(q.stats(), 0).with_exec(2, 7, 7, 3);
        let mut m = MetricSet::new();
        s.publish_metrics(&mut m, "event_core");
        assert_eq!(m.counter("event_core.exec.partitions"), Some(2));
        assert_eq!(m.counter("event_core.exec.windows"), Some(7));
        assert_eq!(m.counter("event_core.exec.barriers"), Some(7));
        assert_eq!(m.counter("event_core.exec.horizon_stalls"), Some(3));
        let json = s.to_json().render();
        assert!(json.contains("\"exec\"") && json.contains("\"horizon_stalls\""), "{json}");
    }
}
