//! Whole-run critical-path analysis over the span DAG.
//!
//! Every traced request is a chain of leg spans, each classified onto a
//! resource [`Track`]. Within one request the legs are serial (they
//! partition the issue→completion interval), so the interesting parallelism
//! question is *across* resources: if the DES were partitioned so each
//! track ran on its own logical process, the run could finish no faster
//! than the busiest track. The tracer therefore accumulates, online and
//! deterministically:
//!
//! * per-track busy work (the sum of span durations on that track),
//! * total busy work across all tracks,
//! * per-request durations (count + longest).
//!
//! The whole-run **critical path** is the busiest track's work sum, and the
//! **parallelism ratio** is total work divided by that — the ideal-speedup
//! upper bound a parallel DES could reach with per-resource partitioning
//! (DESIGN.md §14). A ratio of 1.0 means the run is serial on one
//! resource; anything above it is exploitable concurrency.
//!
//! Accumulation happens inside the tracer's existing enabled-buffer guard,
//! so [`crate::Tracer::disabled`] runs skip it entirely and the fast-path
//! runners pay nothing.

use rambda_metrics::Json;

use crate::event::Track;

/// Online accumulator the tracer updates per leg/request. Lives inside the
/// tracer's enabled-only buffer, so disabled runs never touch it.
#[derive(Debug, Clone, Default)]
pub(crate) struct CritAcc {
    /// Busy picoseconds per track, indexed by `Track::id() - 1`.
    track_busy_ps: [u64; 8],
    /// Span count per track, same indexing.
    track_spans: [u64; 8],
    /// Completed request count.
    requests: u64,
    /// Longest single request duration, picoseconds.
    longest_request_ps: u64,
}

impl CritAcc {
    /// Charges one leg span of `work_ps` to `track`.
    pub(crate) fn leg(&mut self, track: Track, work_ps: u64) {
        let i = track.id() as usize - 1;
        self.track_busy_ps[i] += work_ps;
        self.track_spans[i] += 1;
    }

    /// Records one finished request of `dur_ps`.
    pub(crate) fn finish(&mut self, dur_ps: u64) {
        self.requests += 1;
        self.longest_request_ps = self.longest_request_ps.max(dur_ps);
    }

    /// Freezes the accumulator into a summary.
    pub(crate) fn summarize(&self) -> CriticalPathSummary {
        let tracks: Vec<TrackWork> = Track::ALL
            .iter()
            .map(|&t| {
                let i = t.id() as usize - 1;
                TrackWork { track: t, busy_ps: self.track_busy_ps[i], spans: self.track_spans[i] }
            })
            .collect();
        CriticalPathSummary {
            total_work_ps: self.track_busy_ps.iter().sum(),
            critical_path_ps: self.track_busy_ps.iter().copied().max().unwrap_or(0),
            spans: self.track_spans.iter().sum(),
            requests: self.requests,
            longest_request_ps: self.longest_request_ps,
            tracks,
        }
    }
}

/// One track's share of the run's busy work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackWork {
    /// The resource track.
    pub track: Track,
    /// Busy picoseconds summed over the track's spans.
    pub busy_ps: u64,
    /// Number of spans charged to the track.
    pub spans: u64,
}

/// The frozen whole-run critical-path analysis, from
/// [`crate::Tracer::critical_path`].
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPathSummary {
    /// Total busy work across every span, picoseconds.
    pub total_work_ps: u64,
    /// The busiest track's work sum — the run's critical path under
    /// per-resource partitioning, picoseconds.
    pub critical_path_ps: u64,
    /// Total leg spans recorded.
    pub spans: u64,
    /// Requests completed.
    pub requests: u64,
    /// Longest single request duration, picoseconds.
    pub longest_request_ps: u64,
    /// Per-track breakdown, in [`Track::ALL`] display order.
    pub tracks: Vec<TrackWork>,
}

impl CriticalPathSummary {
    /// Total work ÷ critical path: the ideal-speedup upper bound for a
    /// parallel DES partitioned by resource. 1.0 when the run recorded no
    /// work at all.
    pub fn parallelism_ratio(&self) -> f64 {
        if self.critical_path_ps == 0 {
            1.0
        } else {
            self.total_work_ps as f64 / self.critical_path_ps as f64
        }
    }

    /// Renders the analysis as a deterministic JSON value. Tracks with no
    /// spans are omitted so the section stays compact.
    pub fn to_json(&self) -> Json {
        let mut tracks = Json::obj();
        for t in &self.tracks {
            if t.spans == 0 {
                continue;
            }
            let mut o = Json::obj();
            o.push("busy_ps", Json::U64(t.busy_ps));
            o.push("spans", Json::U64(t.spans));
            tracks.push(t.track.name(), o);
        }
        let mut out = Json::obj();
        out.push("total_work_ps", Json::U64(self.total_work_ps));
        out.push("critical_path_ps", Json::U64(self.critical_path_ps));
        out.push("parallelism_ratio", Json::F64(self.parallelism_ratio()));
        out.push("spans", Json::U64(self.spans));
        out.push("requests", Json::U64(self.requests));
        out.push("longest_request_ps", Json::U64(self.longest_request_ps));
        out.push("tracks", tracks);
        out
    }
}

#[cfg(test)]
mod tests {
    use rambda_des::SimTime;
    use rambda_metrics::StageRecorder;

    use crate::Tracer;

    fn ns(n: u64) -> SimTime {
        SimTime::from_ns(n)
    }

    #[test]
    fn five_span_dag_has_known_critical_path_and_ratio() {
        let mut rec = StageRecorder::active();
        let mut tracer = Tracer::flight_recorder();

        // Request 0: fabric 30 ns, accel 50 ns.
        let mut r0 = tracer.observe(&mut rec, ns(0));
        r0.leg("fabric_request", ns(30));
        r0.leg("apu_compute", ns(80));
        r0.finish(ns(80));
        // Request 1: fabric 20 ns, coherence 30 ns, mem 10 ns.
        let mut r1 = tracer.observe(&mut rec, ns(100));
        r1.leg("fabric_request", ns(120));
        r1.leg("coherence", ns(150));
        r1.leg("mem_chase", ns(160));
        r1.finish(ns(160));

        let cp = tracer.critical_path().expect("enabled tracer analyzes");
        // Track sums: fabric 50, accel 50, coherence 30, mem 10 → total 140,
        // critical path 50 (ties on fabric/accel), ratio exactly 2.8.
        assert_eq!(cp.total_work_ps, 140_000);
        assert_eq!(cp.critical_path_ps, 50_000);
        assert_eq!(cp.parallelism_ratio(), 2.8);
        assert_eq!(cp.spans, 5);
        assert_eq!(cp.requests, 2);
        assert_eq!(cp.longest_request_ps, 80_000);
        let fabric = cp.tracks.iter().find(|t| t.track.name() == "fabric").unwrap();
        assert_eq!((fabric.busy_ps, fabric.spans), (50_000, 2));

        let json = cp.to_json().render();
        assert!(json.contains("\"parallelism_ratio\": 2.8"), "{json}");
        assert!(!json.contains("smartnic"), "empty tracks are omitted: {json}");
    }

    #[test]
    fn degenerate_single_span_request_is_serial() {
        let mut rec = StageRecorder::active();
        let mut tracer = Tracer::flight_recorder();
        let mut r = tracer.observe(&mut rec, ns(5));
        r.leg("cpu_serve", ns(25));
        r.finish(ns(25));

        let cp = tracer.critical_path().expect("enabled");
        assert_eq!(cp.total_work_ps, 20_000);
        assert_eq!(cp.critical_path_ps, 20_000);
        assert_eq!(cp.parallelism_ratio(), 1.0);
        assert_eq!((cp.spans, cp.requests), (1, 1));
        assert_eq!(cp.longest_request_ps, 20_000);
    }

    #[test]
    fn disabled_tracer_reports_no_critical_path() {
        let mut rec = StageRecorder::active();
        let mut tracer = Tracer::disabled();
        let mut r = tracer.observe(&mut rec, ns(0));
        r.leg("cpu_serve", ns(10));
        r.finish(ns(10));
        assert!(tracer.critical_path().is_none());
    }

    #[test]
    fn empty_enabled_tracer_has_unit_ratio() {
        let tracer = Tracer::flight_recorder();
        let cp = tracer.critical_path().expect("enabled");
        assert_eq!(cp.total_work_ps, 0);
        assert_eq!(cp.parallelism_ratio(), 1.0);
    }
}
