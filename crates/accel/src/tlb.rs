//! The coherence controller's address-translation block (Fig. 4 places the
//! TLB alongside the coherence controller: the accelerator operates on
//! application virtual addresses made visible by the framework, Sec. III-E).
//!
//! A small fully-associative TLB with LRU replacement; misses cost a page
//! walk through host memory. Functional (real translations) and timed
//! (hit/miss accounting for the engine).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Default page size (2 MB huge pages, standard for pinned RDMA regions).
pub const PAGE_BYTES: u64 = 2 << 20;

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translation hits.
    pub hits: u64,
    /// Translation misses (page walks).
    pub misses: u64,
}

impl TlbStats {
    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fully-associative LRU TLB mapping virtual to physical page frames.
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    page_bytes: u64,
    /// vpn -> (pfn, last-use stamp). Ordered map: the LRU victim scan
    /// iterates, so the container must iterate deterministically (ties on
    /// the stamp break toward the smallest vpn).
    entries: BTreeMap<u64, (u64, u64)>,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries over `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `page_bytes` is not a power of two.
    pub fn new(capacity: usize, page_bytes: u64) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        assert!(page_bytes.is_power_of_two(), "page size must be a power of two");
        Tlb { capacity, page_bytes, entries: BTreeMap::new(), clock: 0, stats: TlbStats::default() }
    }

    /// A 32-entry 2 MB-page TLB (the prototype's soft block).
    pub fn prototype() -> Self {
        Tlb::new(32, PAGE_BYTES)
    }

    /// Statistics so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn vpn(&self, vaddr: u64) -> u64 {
        vaddr / self.page_bytes
    }

    /// Translates `vaddr`; on a miss performs the "page walk" through
    /// `walk` (which maps a virtual page number to a physical frame) and
    /// fills the entry, evicting the LRU victim if full.
    ///
    /// Returns the physical address and whether the lookup hit.
    pub fn translate(&mut self, vaddr: u64, walk: impl FnOnce(u64) -> u64) -> (u64, bool) {
        self.clock += 1;
        let vpn = self.vpn(vaddr);
        let offset = vaddr % self.page_bytes;
        if let Some((pfn, stamp)) = self.entries.get_mut(&vpn) {
            *stamp = self.clock;
            self.stats.hits += 1;
            return (*pfn * self.page_bytes + offset, true);
        }
        self.stats.misses += 1;
        let pfn = walk(vpn);
        if self.entries.len() >= self.capacity {
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(vpn, _)| vpn)
                .expect("non-empty");
            self.entries.remove(&victim);
        }
        self.entries.insert(vpn, (pfn, self.clock));
        (pfn * self.page_bytes + offset, false)
    }

    /// Invalidates one page (framework teardown / remap).
    pub fn invalidate(&mut self, vaddr: u64) {
        let vpn = self.vpn(vaddr);
        self.entries.remove(&vpn);
    }

    /// Flushes everything.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity-ish walk: pfn = vpn + 1000.
    fn walk(vpn: u64) -> u64 {
        vpn + 1000
    }

    #[test]
    fn hit_after_fill() {
        let mut tlb = Tlb::new(4, 4096);
        let (pa1, hit1) = tlb.translate(5 * 4096 + 12, walk);
        assert!(!hit1);
        assert_eq!(pa1, (5 + 1000) * 4096 + 12);
        let (pa2, hit2) = tlb.translate(5 * 4096 + 900, walk);
        assert!(hit2);
        assert_eq!(pa2, (5 + 1000) * 4096 + 900);
        assert_eq!(tlb.stats(), TlbStats { hits: 1, misses: 1 });
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let mut tlb = Tlb::new(2, 4096);
        tlb.translate(4096, walk); // page 1 (miss)
        tlb.translate(2 * 4096, walk); // page 2 (miss)
        tlb.translate(4096, walk); // page 1 again (hit) -> page 2 is LRU
        tlb.translate(3 * 4096, walk); // page 3 (miss) evicts page 2
        let (_, hit) = tlb.translate(4096, walk);
        assert!(hit, "page 1 must have survived");
        let (_, hit) = tlb.translate(2 * 4096, walk);
        assert!(!hit, "page 2 must have been evicted");
    }

    #[test]
    fn sequential_scans_hit_within_a_page() {
        let mut tlb = Tlb::prototype();
        for addr in (0..PAGE_BYTES).step_by(64 * 1024) {
            tlb.translate(addr, walk);
        }
        let s = tlb.stats();
        assert_eq!(s.misses, 1);
        assert!(s.hit_rate() > 0.95);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut tlb = Tlb::new(4, 4096);
        tlb.translate(0, walk);
        tlb.invalidate(0);
        let (_, hit) = tlb.translate(0, walk);
        assert!(!hit);
        tlb.translate(4096, walk);
        tlb.flush();
        assert!(tlb.is_empty());
    }

    #[test]
    fn thrashing_working_set_misses() {
        let mut tlb = Tlb::new(4, 4096);
        // 8-page working set over a 4-entry TLB, round-robin: ~0% hits.
        for round in 0..10u64 {
            for page in 0..8u64 {
                tlb.translate(page * 4096, walk);
                let _ = round;
            }
        }
        assert!(tlb.stats().hit_rate() < 0.1);
        assert_eq!(tlb.len(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_panics() {
        Tlb::new(4, 1000);
    }
}
