//! Reproducibility: every experiment is a deterministic function of its
//! seed — identical runs, bit-for-bit identical statistics.

use rambda::micro::{run_cpu, run_rambda, MicroParams};
use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_kvs::designs as kvs;
use rambda_kvs::KvsParams;
use rambda_txn::{run_rambda_tx, TxnParams};
use rambda_workloads::TxnSpec;

fn same(a: &rambda::RunStats, b: &rambda::RunStats) -> bool {
    a.completed == b.completed
        && a.throughput_ops == b.throughput_ops
        && a.latency.mean() == b.latency.mean()
        && a.latency.percentile(0.99) == b.latency.percentile(0.99)
}

#[test]
fn micro_runs_are_reproducible() {
    let tb = Testbed::default();
    let p = MicroParams::quick();
    let a = run_rambda(&tb, p, DataLocation::HostDram, true, 7);
    let b = run_rambda(&tb, p, DataLocation::HostDram, true, 7);
    assert!(same(&a, &b));
    let c = run_rambda(&tb, p.with_nvm(), DataLocation::HostDram, false, 7);
    let d = run_rambda(&tb, p.with_nvm(), DataLocation::HostDram, false, 7);
    assert!(same(&c, &d));
    // The CPU run takes no seed: fully deterministic.
    assert!(same(&run_cpu(&tb, p, 4, 16), &run_cpu(&tb, p, 4, 16)));
}

#[test]
fn kvs_runs_are_reproducible_and_seed_sensitive() {
    let tb = Testbed::default();
    let p = KvsParams { requests: 10_000, ..KvsParams::quick() }.with_zipf(0.9);
    let a = kvs::run_rambda(&tb, &p, DataLocation::HostDram);
    let b = kvs::run_rambda(&tb, &p, DataLocation::HostDram);
    assert!(same(&a, &b));

    let mut p2 = p.clone();
    p2.seed = p.seed + 1;
    let c = kvs::run_cpu(&tb, &p);
    let d = kvs::run_cpu(&tb, &p2);
    // A different seed produces a (slightly) different run.
    assert!(c.latency.mean() != d.latency.mean() || c.throughput_ops != d.throughput_ops);
}

#[test]
fn txn_runs_are_reproducible() {
    let tb = Testbed::default();
    let p = TxnParams { txns: 2_000, ..TxnParams::quick(TxnSpec::read_write(64)) };
    let a = run_rambda_tx(&tb, &p);
    let b = run_rambda_tx(&tb, &p);
    assert!(same(&a, &b));
}
