//! Integration: the Sec. III-E programming model — framework registration,
//! cross-thread dispatch, and RPC framing working together.

use rambda::{AppRegistration, CpollLayout, Framework, Testbed};
use rambda_coherence::CpollChecker;
use rambda_fabric::NodeId;
use rambda_ring::rpc::{DecodeError, Frame, OpCode};
use rambda_ring::{run_dispatcher, shared_connection, BufferPair};
use rambda_rnic::RnicEndpoint;

fn parts() -> (RnicEndpoint, CpollChecker, Framework) {
    let tb = Testbed::default();
    (
        RnicEndpoint::new(NodeId(1), tb.rnic.clone(), tb.pcie.clone()),
        CpollChecker::new(tb.cc.local_cache_bytes),
        Framework::new(),
    )
}

#[test]
fn framework_chooses_layout_by_scale() {
    let (mut rnic, mut cpoll, mut fw) = parts();
    let small = fw
        .register_app::<u64, u64>(AppRegistration::new("small", 8).with_rings(32, 64), &mut rnic, &mut cpoll)
        .unwrap();
    assert_eq!(small.layout, CpollLayout::PinnedRings);
    // A second, large app on the *same* accelerator must take the pointer
    // buffer (the cache is partially pinned already).
    let large = fw
        .register_app::<u64, u64>(
            AppRegistration::new("large", 128).with_rings(1024, 512),
            &mut rnic,
            &mut cpoll,
        )
        .unwrap();
    assert_eq!(large.layout, CpollLayout::PointerBuffer);
}

#[test]
fn rpc_frames_survive_the_shared_connection() {
    let (mut rnic, mut cpoll, mut fw) = parts();
    let _app = fw
        .register_app::<Frame, Frame>(
            AppRegistration::new("rpc", 1).with_rings(32, 256),
            &mut rnic,
            &mut cpoll,
        )
        .unwrap();

    let (clients, mut dispatcher) = shared_connection::<Frame, Frame>(3);
    let (mut conn, mut server) = BufferPair::with_capacity::<Frame, Frame>(8);
    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, c)| {
            std::thread::spawn(move || {
                for i in 0..100u32 {
                    let id = (w as u32) * 1000 + i;
                    let resp = c.call(Frame::new(OpCode::Put, id, vec![w as u8; 40])).unwrap();
                    assert_eq!(resp.request_id, id);
                    assert_eq!(resp.payload, vec![w as u8; 40]);
                }
            })
        })
        .collect();
    run_dispatcher(
        &mut dispatcher,
        &mut conn,
        &mut server,
        |req| {
            // The server-side (de)serializer verifies integrity end-to-end.
            let round = Frame::decode(&req.encode()).unwrap();
            Frame::new(OpCode::Response, round.request_id, round.payload)
        },
        300,
    );
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn torn_entries_are_rejected_not_served() {
    // A frame whose RDMA write was torn mid-entry fails the checksum and
    // must be retried by polling again, not half-served.
    let good = Frame::new(OpCode::Txn, 9, vec![7; 128]).encode();
    let mut torn = good.clone();
    let cut = good.len() / 2;
    for b in &mut torn[cut..cut + 8] {
        *b = 0xEE;
    }
    assert!(matches!(Frame::decode(&torn), Err(DecodeError::Checksum { .. })));
    assert!(Frame::decode(&good).is_ok());
}
