//! Acceptance tests for the deterministic fault-injection and recovery
//! layer (DESIGN.md §11).
//!
//! The contract under test:
//!
//! - same seed + same [`FaultConfig`] ⇒ byte-identical [`RunReport`] JSON
//!   (the fault plan draws from its own RNG stream, so it perturbs nothing
//!   it shouldn't);
//! - a zero-loss plan is indistinguishable from no plan at all — the
//!   committed golden snapshots stay byte-for-byte valid;
//! - injected loss is *visible*: retransmissions land in the validated
//!   report and push the exact p99 strictly up against the clean run;
//! - exhausting the retry cap surfaces as a shed request, never a panic.

use std::fs;
use std::path::PathBuf;

use rambda::{Design, SimBuilder, Testbed};
use rambda_accel::DataLocation;
use rambda_fabric::FaultConfig;
use rambda_kvs::{KvsDesigns, KvsParams};
use rambda_metrics::RunReport;
use rambda_trace::Tracer;

const FAULT_SEED: u64 = 0xFA17;

/// Sums every counter whose name ends with `suffix`, mirroring the
/// reduction `RunReport::validate` applies to the fault identities.
fn counter_sum(report: &RunReport, suffix: &str) -> u64 {
    report.resources.counters().filter(|(name, _)| name.ends_with(suffix)).map(|(_, v)| v).sum()
}

fn kvs_with_faults(p: &KvsParams, faults: FaultConfig) -> RunReport {
    SimBuilder::new(Design::kvs_rambda(p.clone(), DataLocation::HostDram))
        .config(&Testbed::default())
        .faults(faults)
        .run()
}

#[test]
fn same_seed_and_plan_render_byte_identical_reports() {
    let p = KvsParams::quick();
    let a = kvs_with_faults(&p, FaultConfig::lossy(FAULT_SEED, 1e-3));
    let b = kvs_with_faults(&p, FaultConfig::lossy(FAULT_SEED, 1e-3));
    assert_eq!(
        a.to_json_string(),
        b.to_json_string(),
        "identical seeds and fault plans must reproduce the run byte-for-byte"
    );
    // A different fault seed moves the drops and therefore the run.
    let c = kvs_with_faults(&p, FaultConfig::lossy(FAULT_SEED + 1, 1e-3));
    assert_ne!(a.to_json_string(), c.to_json_string(), "the fault seed must matter");
}

#[test]
fn zero_loss_plan_matches_the_disabled_baseline_and_golden() {
    let p = KvsParams::quick();
    let baseline = SimBuilder::new(Design::kvs_rambda(p.clone(), DataLocation::HostDram))
        .config(&Testbed::default())
        .run();
    let zero = kvs_with_faults(&p, FaultConfig::lossy(FAULT_SEED, 0.0));
    assert_eq!(
        baseline.to_json_string(),
        zero.to_json_string(),
        "a zero-loss fault plan must be a no-op on the simulation"
    );
    // And both still match the committed golden snapshot: enabling the
    // fault layer with nothing to inject cannot drift any pinned artifact.
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens/kvs_rambda.json");
    let golden = fs::read_to_string(&golden).expect("committed kvs_rambda golden");
    assert_eq!(zero.to_json_string(), golden, "zero-loss run drifted from the golden snapshot");
}

#[test]
fn injected_loss_is_recovered_and_costs_exact_tail_latency() {
    let p = KvsParams::quick();
    let run = |loss: f64| {
        let mut tracer = Tracer::flight_recorder();
        let report = SimBuilder::new(Design::kvs_rambda(p.clone(), DataLocation::HostDram))
            .config(&Testbed::default())
            .faults(FaultConfig::lossy(FAULT_SEED, loss))
            .tracer(&mut tracer)
            .run();
        report.validate().expect("report with faults must satisfy the recovery identities");
        let p99 = tracer.tail_report(1).p99_ps;
        (report, p99)
    };
    let (clean, clean_p99) = run(0.0);
    let (lossy, lossy_p99) = run(1e-3);

    assert_eq!(counter_sum(&clean, ".retransmits"), 0, "clean fabric must not retransmit");
    assert!(counter_sum(&lossy, ".retransmits") > 0, "1e-3 loss must provoke retransmissions");
    assert!(counter_sum(&lossy, ".faults.dropped") > 0, "the plan must actually drop frames");
    // The recovery layer hides drops from correctness but not from the
    // tail: timeout + backoff lands squarely on the affected requests.
    // Compare *exact* percentiles from the flight recorder — the report's
    // histogram buckets are too coarse to resolve a 1e-3 perturbation.
    assert!(
        lossy_p99 > clean_p99,
        "injected loss must raise the exact p99 ({lossy_p99} ps vs {clean_p99} ps clean)"
    );
    assert_eq!(clean.completed, lossy.completed, "recovery must not lose requests at 1e-3 loss");
}

#[test]
fn retry_cap_exhaustion_sheds_the_request_instead_of_panicking() {
    // Total loss: every data-path frame drops, so every operation burns its
    // full retry budget and fails. The design must degrade — shed requests
    // and report them — rather than assert.
    let p = KvsParams { requests: 300, ..KvsParams::quick() };
    let report = kvs_with_faults(&p, FaultConfig::lossy(FAULT_SEED, 1.0));
    report.validate().expect("a fully shedding run still satisfies every identity");
    assert!(counter_sum(&report, ".retries_exhausted") > 0, "total loss must exhaust retry caps");
    assert!(
        report.stages.iter().any(|(name, s)| name == "shed" && s.count > 0),
        "shed requests must appear in the stage breakdown"
    );
}
