//! The Rambda-KV APU (Sec. IV-A): pipelined hash unit + data-structure
//! walker over the MICA-style store.

use rambda_accel::{Apu, ApuCtx};

use crate::store::{KvStore, OpTrace};

/// A KVS request as delivered through the request ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvRequest {
    /// Read a key.
    Get {
        /// The key.
        key: u64,
    },
    /// Insert or update a key.
    Put {
        /// The key.
        key: u64,
        /// The value payload.
        value: Vec<u8>,
    },
    /// Remove a key.
    Delete {
        /// The key.
        key: u64,
    },
}

/// A KVS response written back through the RNIC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResponse {
    /// GET result.
    Value(Option<Vec<u8>>),
    /// PUT acknowledgment.
    Stored,
    /// DELETE result: whether the key existed.
    Deleted(bool),
}

/// The KV APU: owns the store and walks it per request, charging the
/// traced memory accesses through the context.
#[derive(Debug)]
pub struct KvApu {
    store: KvStore,
}

impl KvApu {
    /// Wraps a store.
    pub fn new(store: KvStore) -> Self {
        KvApu { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Mutable access to the store (pre-loading).
    pub fn store_mut(&mut self) -> &mut KvStore {
        &mut self.store
    }

    fn charge(ctx: &mut ApuCtx<'_>, trace: &OpTrace) {
        // Hash unit is pipelined (one ALU op); the walker then performs the
        // traced dependent accesses: bucket line(s), then the value line(s).
        ctx.compute(1);
        ctx.read_chain(trace.bucket_reads, 64);
        if trace.value_reads > 0 {
            ctx.read_chain(trace.value_reads, 64);
        }
        if trace.writes > 0 {
            ctx.write(trace.writes as u64 * 64);
        }
    }
}

impl Apu for KvApu {
    type Req = KvRequest;
    type Resp = KvResponse;

    fn process(&mut self, req: KvRequest, ctx: &mut ApuCtx<'_>) -> KvResponse {
        match req {
            KvRequest::Get { key } => {
                let (value, trace) = {
                    let (v, t) = self.store.get(key);
                    (v.map(|v| v.to_vec()), t)
                };
                Self::charge(ctx, &trace);
                KvResponse::Value(value)
            }
            KvRequest::Put { key, value } => {
                let trace = self.store.put(key, value);
                Self::charge(ctx, &trace);
                KvResponse::Stored
            }
            KvRequest::Delete { key } => {
                let (old, trace) = self.store.remove(key);
                Self::charge(ctx, &trace);
                KvResponse::Deleted(old.is_some())
            }
        }
    }

    fn response_bytes(&self, resp: &KvResponse) -> u64 {
        match resp {
            KvResponse::Value(Some(v)) => 8 + v.len() as u64,
            KvResponse::Value(None) => 8,
            KvResponse::Stored | KvResponse::Deleted(_) => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KvConfig;
    use rambda_accel::{AccelConfig, AccelEngine, DataLocation};
    use rambda_des::SimTime;
    use rambda_mem::{MemConfig, MemorySystem};

    fn apu() -> KvApu {
        let mut apu = KvApu::new(KvStore::new(KvConfig::for_pairs(1000, 64)));
        apu.store_mut().put(5, vec![9u8; 64]);
        apu
    }

    #[test]
    fn get_round_trip_through_apu() {
        let mut engine = AccelEngine::new(AccelConfig::prototype(DataLocation::HostDram));
        let mut mem = MemorySystem::new(MemConfig::default(), true);
        let mut apu = apu();
        let mut ctx = ApuCtx::new(&mut engine, &mut mem, SimTime::ZERO);
        let resp = apu.process(KvRequest::Get { key: 5 }, &mut ctx);
        assert_eq!(resp, KvResponse::Value(Some(vec![9u8; 64])));
        // Two dependent host reads (bucket + value) plus hash.
        assert!(ctx.now().as_ns_f64() > 300.0);
        assert_eq!(apu.response_bytes(&resp), 72);
    }

    #[test]
    fn delete_round_trip_through_apu() {
        let mut engine = AccelEngine::new(AccelConfig::prototype(DataLocation::HostDram));
        let mut mem = MemorySystem::new(MemConfig::default(), true);
        let mut apu = apu();
        let mut ctx = ApuCtx::new(&mut engine, &mut mem, SimTime::ZERO);
        let resp = apu.process(KvRequest::Delete { key: 5 }, &mut ctx);
        assert_eq!(resp, KvResponse::Deleted(true));
        assert!(apu.store().get(5).0.is_none());
        let mut ctx = ApuCtx::new(&mut engine, &mut mem, SimTime::ZERO);
        let resp = apu.process(KvRequest::Delete { key: 5 }, &mut ctx);
        assert_eq!(resp, KvResponse::Deleted(false));
        assert_eq!(apu.response_bytes(&resp), 8);
    }

    #[test]
    fn put_writes_are_charged() {
        let mut engine = AccelEngine::new(AccelConfig::prototype(DataLocation::HostDram));
        let mut mem = MemorySystem::new(MemConfig::default(), true);
        let mut apu = apu();
        let mut ctx = ApuCtx::new(&mut engine, &mut mem, SimTime::ZERO);
        let resp = apu.process(KvRequest::Put { key: 6, value: vec![1; 64] }, &mut ctx);
        assert_eq!(resp, KvResponse::Stored);
        assert_eq!(apu.store().get(6).0.unwrap(), &[1u8; 64][..]);
        assert!(engine.stats().mem_bytes >= 128);
    }
}
