//! Property-based tests: MERCI memoization is a pure optimization — same
//! results, never more lookups.

use proptest::prelude::*;
use rambda_dlrm::merci::{MemoTable, ReductionPlan};
use rambda_dlrm::model::{EmbeddingTable, ReduceOp};
use rambda_workloads::DlrmQuery;

const ROWS: usize = 2048;
const DIM: usize = 16;

fn setup() -> (EmbeddingTable, MemoTable) {
    let table = EmbeddingTable::synthetic(ROWS, DIM);
    let memo = MemoTable::build(&table);
    (table, memo)
}

proptest! {
    /// The memoized reduction equals the naive reduction for any feature
    /// multiset (up to float associativity).
    #[test]
    fn memoized_reduce_is_exact(features in proptest::collection::vec(0u32..ROWS as u32, 1..64)) {
        let (table, memo) = setup();
        let q = DlrmQuery { features: features.clone() };
        let plan = ReductionPlan::build(&q, &memo);
        let fast = plan.reduce(&table, &memo);
        let naive = table.reduce(&features, ReduceOp::Sum);
        for (a, b) in fast.iter().zip(&naive) {
            prop_assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// The plan never performs more lookups than the naive reduction and
    /// always covers every feature exactly once.
    #[test]
    fn plans_conserve_features(features in proptest::collection::vec(0u32..ROWS as u32, 1..64)) {
        let (_, memo) = setup();
        let q = DlrmQuery { features: features.clone() };
        let plan = ReductionPlan::build(&q, &memo);
        prop_assert!(plan.lookups() <= features.len());
        prop_assert_eq!(plan.base_lookups(), features.len());
        // Reconstruct the covered multiset.
        let mut covered: Vec<u32> = plan.singles.clone();
        for p in &plan.memo_pairs {
            covered.push(2 * p);
            covered.push(2 * p + 1);
        }
        covered.sort_unstable();
        let mut want = features;
        want.sort_unstable();
        prop_assert_eq!(covered, want);
    }

    /// Reduction operators are order-insensitive for max/min.
    #[test]
    fn minmax_are_permutation_invariant(mut features in proptest::collection::vec(0u32..ROWS as u32, 2..32),
                                        seed in any::<u64>()) {
        let (table, _) = setup();
        let a_max = table.reduce(&features, ReduceOp::Max);
        let a_min = table.reduce(&features, ReduceOp::Min);
        // Deterministic shuffle.
        let mut rng = rambda_des::SimRng::seed(seed);
        rng.shuffle(&mut features);
        let b_max = table.reduce(&features, ReduceOp::Max);
        let b_min = table.reduce(&features, ReduceOp::Min);
        prop_assert_eq!(a_max, b_max);
        prop_assert_eq!(a_min, b_min);
    }
}
