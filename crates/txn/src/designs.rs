//! The Fig. 11 two-replica emulation and the Fig. 12 latency experiments.
//!
//! One physical server exposes two 25 GbE ports, each backed by a replica
//! instance; the client's Smart-NIC ARM cores route chain traffic between
//! the ports, adding the 2–3 µs that stands in for a datacenter network hop.
//! Transactions are issued serially by the client (window 1), as in the
//! paper, so the latency reduction also reflects throughput.

use rambda::{run_closed_loop, run_closed_loop_exec, Design, DriverConfig, RunStats, SimCtx, Testbed};
use rambda_accel::{AccelEngine, DataLocation};
use rambda_des::{SimRng, SimTime, Span};
use rambda_fabric::{Network, NodeId};
use rambda_mem::MemKind;
use rambda_rnic::{MrInfo, PostFlags, PostPath, RdmaError, WriteOpts};
use rambda_trace::{ReqObs, Tracer};
use rambda_workloads::{KeyDist, TxnSpec};

use crate::chain::{Chain, TxnWrite};

const CLIENT: NodeId = NodeId(0);
const PORT0: NodeId = NodeId(1);
const PORT1: NodeId = NodeId(2);

/// Per-partition RNG stream salts. Each simulated machine draws from its own
/// deterministically salted `SimRng` stream (`SimRng::stream(seed, salt)`),
/// so partitioning the world across executor workers cannot entangle one
/// machine's randomness with another's dispatch order.
const CLIENT_WORKLOAD_SALT: u64 = 0xC0;
const CLIENT_ROUTE_SALT: u64 = 0xC1;
const PORT0_ACCEL_SALT: u64 = 0xA0;
const PORT1_ACCEL_SALT: u64 = 0xA1;

/// Transaction experiment parameters.
#[derive(Debug, Clone)]
pub struct TxnParams {
    /// Key-value pair size (64 B or 1024 B in Fig. 12).
    pub value_bytes: u32,
    /// Transaction shape ((0,1) or (4,2) in Fig. 12).
    pub spec: TxnSpec,
    /// Transactions to execute (100 K in the paper).
    pub txns: u64,
    /// Key space (100 K pairs pre-loaded).
    pub keys: u64,
    /// RNG seed.
    pub seed: u64,
}

impl TxnParams {
    /// A fast configuration for tests.
    pub fn quick(spec: TxnSpec) -> Self {
        TxnParams { value_bytes: spec.value_bytes, spec, txns: 4_000, keys: 100_000, seed: 7 }
    }

    /// Paper-scale: 100 K transactions.
    pub fn paper(spec: TxnSpec) -> Self {
        TxnParams { txns: 100_000, ..TxnParams::quick(spec) }
    }

    fn driver(&self) -> DriverConfig {
        // Serial issue: one client, window 1.
        DriverConfig { clients: 1, window: 1, requests: self.txns, warmup: 0.05 }
    }

    /// Scoped runs attribute each transaction to its first key's home
    /// replica (`replica/{key % 2}`) — the coordinator that would own the
    /// key in a sharded two-replica deployment.
    fn scope_names(&self) -> Vec<String> {
        (0..2u64).map(|r| format!("replica/{r}")).collect()
    }
}

/// The home replica a scoped run attributes a transaction to: its first
/// sampled key, modulo the two Fig. 11 replicas.
fn scope_of(reads: &[u64], writes: &[TxnWrite]) -> usize {
    let key = reads.first().copied().unwrap_or_else(|| writes.first().map_or(0, |w| w.key));
    (key % 2) as usize
}

/// The shared Fig. 11 world: network, two replica machines (ports), the
/// client, and the functional chain.
struct TxnWorld {
    net: Network,
    client: rambda::Machine,
    port0: rambda::Machine,
    port1: rambda::Machine,
    chain: Chain,
    dist: KeyDist,
    /// Mean ARM routing delay between the ports (2-3 µs in Sec. VI-C).
    route_mean: Span,
}

impl TxnWorld {
    fn new(testbed: &Testbed, params: &TxnParams) -> Self {
        // DDIO disabled on the server, as both systems do in Sec. VI-C.
        let mut world = TxnWorld {
            net: Network::new(testbed.net.clone()),
            client: rambda::Machine::new(CLIENT, testbed, false),
            port0: rambda::Machine::new(PORT0, testbed, false),
            port1: rambda::Machine::new(PORT1, testbed, false),
            chain: Chain::new(2),
            dist: KeyDist::uniform(params.keys),
            route_mean: Span::from_ns(3_000),
        };
        // Pre-load 100K pairs (bulk path; state matches per-txn execution).
        world.chain.preload(
            (0..params.keys).map(|key| (key, vec![(key & 0xFF) as u8; params.value_bytes as usize])),
        );
        world
    }

    /// Routes a message from one server port to the other through the
    /// client's Smart-NIC ARM cores (Fig. 11): wire + ARM forward + wire.
    /// `rng` is the client machine's routing-jitter stream.
    fn route(&mut self, at: SimTime, from: NodeId, to: NodeId, bytes: u64, rng: &mut SimRng) -> SimTime {
        let at_arm = self.net.send(at, from, CLIENT, bytes);
        let forwarded =
            at_arm + self.route_mean + Span::from_ns_f64(self.route_mean.as_ns_f64() * rng.exp(0.08));
        self.net.send(forwarded, CLIENT, to, bytes)
    }

    /// Samples one transaction's key set from the client's workload stream.
    fn sample_txn(
        &mut self,
        spec: &TxnSpec,
        value_bytes: u32,
        rng: &mut SimRng,
    ) -> (Vec<u64>, Vec<TxnWrite>) {
        let keys = spec.sample_keys(&self.dist, rng);
        let (read_keys, write_keys) = keys.split_at(spec.reads);
        let writes =
            write_keys.iter().map(|&key| TxnWrite { key, value: vec![0xCD; value_bytes as usize] }).collect();
        (read_keys.to_vec(), writes)
    }
}

/// Degraded-mode completion: the RDMA layer exhausted its retransmission
/// budget, so the design sheds the transaction — the client observes a
/// timeout at the error-completion time — instead of asserting.
fn shed(mut tr: ReqObs<'_>, err: &RdmaError) -> SimTime {
    let at = err.at();
    tr.leg("shed", at);
    tr.finish(at);
    at
}

/// Forwards the run's injected-fault log from the network to the flight
/// recorder as instants on the fabric track.
fn drain_faults(net: &mut Network, tracer: &mut Tracer) {
    for ev in net.drain_fault_events() {
        tracer.fault(ev.kind.name(), ev.at, ev.from.0, ev.to.0);
    }
}

/// [`Design`] constructors for the transaction experiments, so
/// [`rambda::SimBuilder`] can run them.
pub trait TxnDesigns {
    /// The HyperLoop baseline (`txn.hyperloop`).
    fn txn_hyperloop(params: TxnParams) -> Design;
    /// Rambda-Tx (`txn.rambda_tx`).
    fn txn_rambda_tx(params: TxnParams) -> Design;
}

impl TxnDesigns for Design {
    fn txn_hyperloop(params: TxnParams) -> Design {
        Design::from_runner("txn.hyperloop", params.seed, move |tb, ctx| {
            run_hyperloop_inner(tb, &params, ctx)
        })
    }

    fn txn_rambda_tx(params: TxnParams) -> Design {
        Design::from_runner("txn.rambda_tx", params.seed, move |tb, ctx| {
            run_rambda_tx_inner(tb, &params, ctx)
        })
    }
}

/// HyperLoop: group-based RDMA primitives triggered by the RNIC. Reads are
/// one-sided reads to the head; each *write* is one group-RDMA operation
/// that traverses the whole chain — and multi-write transactions must issue
/// them sequentially (the Sec. IV-B limitation Rambda removes).
pub fn run_hyperloop(testbed: &Testbed, params: &TxnParams) -> RunStats {
    rambda::rambda_stats_only_ctx!(ctx);
    run_hyperloop_inner(testbed, params, ctx)
}

fn run_hyperloop_inner(testbed: &Testbed, params: &TxnParams, ctx: SimCtx<'_>) -> RunStats {
    let SimCtx { rec, resources, tracer, faults, profile, scopes, exec } = ctx;
    let mut w = TxnWorld::new(testbed, params);
    let mut workload_rng = SimRng::stream(params.seed, CLIENT_WORKLOAD_SALT);
    let mut route_rng = SimRng::stream(params.seed, CLIENT_ROUTE_SALT);
    w.net.install_faults(faults);
    if profile {
        w.net.enable_lookahead();
    }
    let nvm0 = w.port0.rnic.register_region(MrInfo::adaptive(MemKind::Nvm));
    let nvm1 = w.port1.rnic.register_region(MrInfo::adaptive(MemKind::Nvm));
    let spec = params.spec;
    let value = params.value_bytes as u64;
    let opts = WriteOpts { post: PostPath::HostMmio, batch: 1, flags: PostFlags::SIGNALED };
    let scope_names = params.scope_names();

    let lookahead = w.net.min_lookahead();
    let stats = run_closed_loop_exec(&params.driver(), exec, lookahead, |_c, at| {
        let mut trace = tracer.observe(rec, at);
        let (reads, writes) = w.sample_txn(&spec, params.value_bytes, &mut workload_rng);
        let home = scope_of(&reads, &writes);
        for &key in &reads {
            scopes.observe_key(key);
        }
        for wr in &writes {
            scopes.observe_key(wr.key);
        }
        let fin = 'txn: {
            let mut t = at;

            // Sequential one-sided reads from the head replica's NVM.
            for _ in 0..reads.len() {
                let out = match rambda_rnic::rdma_read(
                    t,
                    &mut w.client.rnic,
                    &mut w.port0.rnic,
                    &mut w.net,
                    &mut w.port0.mem,
                    nvm0,
                    value,
                    WriteOpts { flags: PostFlags::NONE, ..opts },
                ) {
                    Ok(out) => out,
                    Err(e) => break 'txn shed(trace, &e),
                };
                t = out.data_at;
            }
            trace.leg("read_rtts", t);

            // Sequential group-RDMA writes, one chain round per KV pair.
            let n_writes = writes.len();
            for _ in 0..n_writes {
                // Client -> port0: log-entry write into NVM (single tuple).
                let entry = 1 + value + 12;
                let d0 = match rambda_rnic::rdma_write(
                    t,
                    &mut w.client.rnic,
                    &mut w.port0.rnic,
                    &mut w.net,
                    &mut w.port0.mem,
                    &mut w.client.mem,
                    nvm0,
                    entry,
                    WriteOpts { flags: PostFlags::NONE, ..opts },
                ) {
                    Ok(out) => out,
                    Err(e) => break 'txn shed(trace, &e),
                };
                // RNIC-triggered forward to the next replica through the ARM.
                let fwd = w.port0.rnic.rx_process(d0.delivered_at);
                let at_p1 = w.route(fwd, PORT0, PORT1, entry, &mut route_rng);
                let (d1, _) = w.port1.rnic.deliver_write(at_p1, nvm1, entry, &mut w.port1.mem);
                // Tail ACK back-propagates: port1 -> port0 -> client.
                let ack_at_p0 = w.route(d1, PORT1, PORT0, 0, &mut route_rng);
                let acked = w.net.send(ack_at_p0, PORT0, CLIENT, 0);
                t = w.client.rnic.complete(acked, &mut w.client.mem);
            }
            trace.leg("chain_writes", t);

            // Functional effect.
            let _ = w.chain.execute(&reads, writes);
            // CQE polled on a client core (cheap).
            let fin = t + Span::from_ns(100);
            trace.leg("cqe_poll", fin);
            trace.finish(fin);
            tracer.sample_with(rec, at, |s| {
                w.client.publish_metrics(s, "client");
                w.port0.publish_metrics(s, "port0");
                w.port1.publish_metrics(s, "port1");
                w.net.publish_metrics(s, "net");
            });
            fin
        };
        // Scope attribution covers shed transactions too: every traced
        // transaction lands on exactly one home replica.
        scopes.record(&scope_names[home], at, fin);
        fin
    });
    drain_faults(&mut w.net, tracer);
    if rec.is_active() {
        w.client.publish_metrics(resources, "client");
        w.port0.publish_metrics(resources, "port0");
        w.port1.publish_metrics(resources, "port1");
        w.net.publish_metrics(resources, "net");
        w.net.publish_lookahead(resources, "net");
        w.net.publish_scoped(scopes, "net");
        tracer.final_sample(SimTime::ZERO + stats.makespan, resources);
    }
    stats
}

/// Rambda-Tx: the client issues one combined multi-tuple request; the
/// accelerator at each replica parses the log entry near-data, enforces
/// concurrency control, and forwards along the chain — one chain round per
/// *transaction*.
pub fn run_rambda_tx(testbed: &Testbed, params: &TxnParams) -> RunStats {
    rambda::rambda_stats_only_ctx!(ctx);
    run_rambda_tx_inner(testbed, params, ctx)
}

fn run_rambda_tx_inner(testbed: &Testbed, params: &TxnParams, ctx: SimCtx<'_>) -> RunStats {
    let SimCtx { rec, resources, tracer, faults, profile, scopes, exec } = ctx;
    let mut w = TxnWorld::new(testbed, params);
    let mut workload_rng = SimRng::stream(params.seed, CLIENT_WORKLOAD_SALT);
    let mut route_rng = SimRng::stream(params.seed, CLIENT_ROUTE_SALT);
    let mut accel0_rng = SimRng::stream(params.seed, PORT0_ACCEL_SALT);
    let mut accel1_rng = SimRng::stream(params.seed, PORT1_ACCEL_SALT);
    w.net.install_faults(faults);
    if profile {
        w.net.enable_lookahead();
    }
    // Request rings live in NVM and double as the redo log (Sec. IV-B).
    let ring0 = w.port0.rnic.register_region(MrInfo::adaptive(MemKind::Nvm));
    let ring1 = w.port1.rnic.register_region(MrInfo::adaptive(MemKind::Nvm));
    let client_mr = w.client.rnic.register_region(MrInfo::adaptive(MemKind::Dram));
    let mut accel0 = AccelEngine::new(testbed.accel_config(DataLocation::HostNvm, true));
    let mut accel1 = AccelEngine::new(testbed.accel_config(DataLocation::HostNvm, true));
    let spec = params.spec;
    let opts = WriteOpts { post: PostPath::HostMmio, batch: 1, flags: PostFlags::NONE };
    let accel_opts = WriteOpts { post: PostPath::AccelMmio, batch: 1, flags: PostFlags::NONE };
    let scope_names = params.scope_names();

    let lookahead = w.net.min_lookahead();
    let stats = run_closed_loop_exec(&params.driver(), exec, lookahead, |_c, at| {
        let mut trace = tracer.observe(rec, at);
        let (reads, writes) = w.sample_txn(&spec, params.value_bytes, &mut workload_rng);
        let home = scope_of(&reads, &writes);
        for &key in &reads {
            scopes.observe_key(key);
        }
        for wr in &writes {
            scopes.observe_key(wr.key);
        }
        let entry = spec.log_entry_bytes();

        let fin = 'txn: {
            // One combined request into the head's NVM ring (= redo log write).
            let d0 = match rambda_rnic::rdma_write(
                at,
                &mut w.client.rnic,
                &mut w.port0.rnic,
                &mut w.net,
                &mut w.port0.mem,
                &mut w.client.mem,
                ring0,
                entry,
                opts,
            ) {
                Ok(out) => out,
                Err(e) => break 'txn shed(trace, &e),
            };
            trace.leg("fabric_request", d0.delivered_at);

            // Head accelerator: on the cpoll signal it forwards the (already
            // durable) entry down the chain immediately; parsing, concurrency
            // control and the read set overlap with the chain round trip.
            let t = accel0.discover(d0.delivered_at, 1, &mut accel0_rng);
            trace.leg("coherence", t);
            let start = accel0.claim_slot(t);
            trace.leg("dispatch", start);
            let wqe = accel0.sq_write_wqe(start);
            let fwd_posted = w.port0.rnic.post(wqe, PostPath::AccelMmio, 1);
            let at_p1 = w.route(fwd_posted, PORT0, PORT1, entry, &mut route_rng);

            let mut local = accel0.ring_read(start, entry.min(256), &mut w.port0.mem);
            local = accel0.compute(local, 2 + spec.ops() as u64); // CC + parse
            for _ in 0..reads.len() {
                local = accel0.mem_access(local, params.value_bytes as u64, false, &mut w.port0.mem);
            }
            accel0.release_slot(d0.delivered_at, local);

            // Tail accelerator: the entry is durable once delivered into the
            // NVM ring, so the ACK goes out on discovery; the local apply
            // happens off the critical path.
            let (d1, _) = w.port1.rnic.deliver_write(at_p1, ring1, entry, &mut w.port1.mem);
            let t1 = accel1.discover(d1, 1, &mut accel1_rng);
            let start1 = accel1.claim_slot(t1);
            let wqe1 = accel1.sq_write_wqe(start1);
            let ack_posted = w.port1.rnic.post(wqe1, PostPath::AccelMmio, 1);
            let mut tail_local = accel1.ring_read(start1, entry.min(256), &mut w.port1.mem);
            tail_local = accel1.compute(tail_local, 1 + spec.ops() as u64);
            accel1.release_slot(d1, tail_local);

            // Tail ACK back through the chain; the head commits once both the
            // ACK and its own processing are done, then responds to the client.
            let ack_at_p0 = w.route(ack_posted, PORT1, PORT0, 0, &mut route_rng);
            // The chain round trip and the head's local work run in parallel;
            // the critical path resumes at their join point.
            trace.leg("chain_round", ack_at_p0.max(local));
            let commit = accel0.compute(ack_at_p0.max(local), 1);
            trace.leg("commit", commit);
            let resp = match rambda_rnic::rdma_write(
                commit,
                &mut w.port0.rnic,
                &mut w.client.rnic,
                &mut w.net,
                &mut w.client.mem,
                &mut w.port0.mem,
                client_mr,
                8 + reads.len() as u64 * params.value_bytes as u64,
                accel_opts,
            ) {
                Ok(out) => out,
                Err(e) => break 'txn shed(trace, &e),
            };
            trace.leg("fabric_response", resp.delivered_at);

            // Functional effect.
            let _ = w.chain.execute(&reads, writes);
            trace.finish(resp.delivered_at);
            tracer.sample_with(rec, at, |s| {
                w.client.publish_metrics(s, "client");
                w.port0.publish_metrics(s, "port0");
                w.port1.publish_metrics(s, "port1");
                accel0.publish_metrics(s, "accel0");
                accel1.publish_metrics(s, "accel1");
                w.net.publish_metrics(s, "net");
            });
            resp.delivered_at
        };
        // Scope attribution covers shed transactions too: every traced
        // transaction lands on exactly one home replica.
        scopes.record(&scope_names[home], at, fin);
        fin
    });
    drain_faults(&mut w.net, tracer);
    if rec.is_active() {
        w.client.publish_metrics(resources, "client");
        w.port0.publish_metrics(resources, "port0");
        w.port1.publish_metrics(resources, "port1");
        accel0.publish_metrics(resources, "accel0");
        accel1.publish_metrics(resources, "accel1");
        w.net.publish_metrics(resources, "net");
        w.net.publish_lookahead(resources, "net");
        w.net.publish_scoped(scopes, "net");
        tracer.final_sample(SimTime::ZERO + stats.makespan, resources);
    }
    stats
}

/// The pure-read fast path (Sec. IV-B): chain replication already provides
/// consistency, so a client reads directly from the head's NVM with a
/// one-sided RDMA read — identical in both designs, which is why Fig. 12
/// excludes pure reads.
pub fn run_pure_reads(testbed: &Testbed, params: &TxnParams) -> RunStats {
    let mut w = TxnWorld::new(testbed, params);
    let mut workload_rng = SimRng::stream(params.seed, CLIENT_WORKLOAD_SALT);
    let nvm0 = w.port0.rnic.register_region(MrInfo::adaptive(MemKind::Nvm));
    let value = params.value_bytes as u64;
    let opts = WriteOpts::host_unsignaled();

    run_closed_loop(&params.driver(), |_c, at| {
        let key = w.dist.sample(&mut workload_rng);
        let data_at = rambda_rnic::rdma_read(
            at,
            &mut w.client.rnic,
            &mut w.port0.rnic,
            &mut w.net,
            &mut w.port0.mem,
            nvm0,
            value,
            opts,
        )
        .map(|out| out.data_at)
        .unwrap_or_else(|e| e.at());
        // Functional effect: a read-only transaction at the head.
        let res = w.chain.execute(&[key], Vec::new());
        debug_assert!(res.reads[0].is_some(), "pre-loaded key must exist");
        data_at
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb() -> Testbed {
        Testbed::default()
    }

    #[test]
    fn pure_reads_skip_the_chain() {
        // One network round trip + NVM read: far below even the (0,1)
        // write transaction, and identical across designs by construction.
        let p = TxnParams { txns: 2_000, ..TxnParams::quick(TxnSpec::single_write(64)) };
        let reads = run_pure_reads(&tb(), &p);
        let writes = run_rambda_tx(&tb(), &p);
        assert!(
            reads.mean_us() < 0.5 * writes.mean_us(),
            "pure read {} vs write txn {}",
            reads.mean_us(),
            writes.mean_us()
        );
    }

    #[test]
    fn fig12_single_write_is_a_wash() {
        // (0,1): both designs pay one chain round; Rambda may be up to a few
        // percent slower (UPI on the path).
        let p = TxnParams::quick(TxnSpec::single_write(64));
        let hl = run_hyperloop(&tb(), &p).mean_us();
        let rt = run_rambda_tx(&tb(), &p).mean_us();
        // Paper: "may even be a bit (less than 3%) slower"; our accelerator
        // model charges slightly more per-hop work (doorbells are explicit
        // rather than RNIC-firmware-triggered), so allow up to ~15%.
        let diff = (rt - hl) / hl;
        assert!((-0.05..0.15).contains(&diff), "hyperloop={hl} rambda={rt} diff={diff}");
    }

    #[test]
    fn fig12_multi_op_txn_favors_rambda() {
        // (4,2): HyperLoop pays 4 read RTTs + 2 chain rounds; Rambda pays
        // one chain round. Paper: 63.2%-66.8% lower average latency.
        let p = TxnParams::quick(TxnSpec::read_write(64));
        let hl = run_hyperloop(&tb(), &p);
        let rt = run_rambda_tx(&tb(), &p);
        let saving = 1.0 - rt.mean_us() / hl.mean_us();
        assert!((0.5..0.8).contains(&saving), "saving={saving} hl={} rt={}", hl.mean_us(), rt.mean_us());
        // Tail saving in the same band (64.5%-69.1% in the paper).
        let tail_saving = 1.0 - rt.p99_us() / hl.p99_us();
        assert!((0.45..0.85).contains(&tail_saving), "tail saving={tail_saving}");
    }

    #[test]
    fn fig12_larger_values_cost_more() {
        let small = TxnParams::quick(TxnSpec::read_write(64));
        let large = TxnParams::quick(TxnSpec::read_write(1024));
        let s = run_rambda_tx(&tb(), &small).mean_us();
        let l = run_rambda_tx(&tb(), &large).mean_us();
        assert!(l > s, "1024B ({l}) should cost more than 64B ({s})");
        let hs = run_hyperloop(&tb(), &small).mean_us();
        let hlat = run_hyperloop(&tb(), &large).mean_us();
        assert!(hlat > hs);
    }

    #[test]
    fn chains_stay_consistent_under_both_designs() {
        // The functional chain inside each run must not diverge; re-run a
        // small workload and check.
        let p = TxnParams { txns: 500, ..TxnParams::quick(TxnSpec::read_write(64)) };
        let _ = run_hyperloop(&tb(), &p);
        let _ = run_rambda_tx(&tb(), &p);
        // Direct functional check.
        let mut world = TxnWorld::new(&tb(), &p);
        let mut workload_rng = SimRng::stream(p.seed, CLIENT_WORKLOAD_SALT);
        let spec = p.spec;
        for _ in 0..200 {
            let (r, w2) = world.sample_txn(&spec, p.value_bytes, &mut workload_rng);
            world.chain.execute(&r, w2);
        }
        world.chain.check_consistency().unwrap();
    }
}
