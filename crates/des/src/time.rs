//! Picosecond-resolution simulated time.
//!
//! Two newtypes keep instants and durations statically distinct
//! (API-guidelines `C-NEWTYPE`): [`SimTime`] is a point on the simulated
//! clock, [`Span`] is a length of simulated time. Arithmetic is defined only
//! where it is meaningful (`SimTime + Span`, `SimTime - SimTime`, ...).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
const PS_PER_S: u64 = 1_000_000_000_000;

/// An instant on the simulated clock, in picoseconds since simulation start.
///
/// ```
/// use rambda_des::{SimTime, Span};
/// let t = SimTime::ZERO + Span::from_us(3);
/// assert_eq!(t.as_ns_f64(), 3_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span (duration) of simulated time, in picoseconds.
///
/// ```
/// use rambda_des::Span;
/// assert_eq!(Span::from_ns(2) * 3, Span::from_ns(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Span(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant `ns` nanoseconds after the epoch.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Creates an instant `us` microseconds after the epoch.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Raw picoseconds since the epoch.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds since the epoch as a float.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Microseconds since the epoch as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// The span since `earlier`, or [`Span::ZERO`] if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Span {
    /// The empty span.
    pub const ZERO: Span = Span(0);
    /// The largest representable span.
    pub const MAX: Span = Span(u64::MAX);

    /// Creates a span from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Span(ps)
    }

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Span(ns * PS_PER_NS)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        Span(us * PS_PER_US)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Span(ms * PS_PER_MS)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        Span(s * PS_PER_S)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid span seconds: {secs}");
        Span((secs * PS_PER_S as f64).round() as u64)
    }

    /// Creates a span from fractional nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(ns.is_finite() && ns >= 0.0, "invalid span nanoseconds: {ns}");
        Span((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds as a float.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Microseconds as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Whether the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two spans.
    pub fn max(self, other: Span) -> Span {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: Span) -> Span {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Span) -> Span {
        Span(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a float factor (rounding to the nearest ps).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Span {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor: {factor}");
        Span((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<Span> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Span) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Span> for SimTime {
    fn add_assign(&mut self, rhs: Span) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Span;
    fn sub(self, rhs: SimTime) -> Span {
        assert!(self >= rhs, "SimTime subtraction underflow: {self:?} - {rhs:?}");
        Span(self.0 - rhs.0)
    }
}

impl Sub<Span> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Span) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Span {
    fn add_assign(&mut self, rhs: Span) {
        *self = *self + rhs;
    }
}

impl Sub for Span {
    type Output = Span;
    fn sub(self, rhs: Span) -> Span {
        assert!(self >= rhs, "Span subtraction underflow: {self:?} - {rhs:?}");
        Span(self.0 - rhs.0)
    }
}

impl SubAssign for Span {
    fn sub_assign(&mut self, rhs: Span) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Span {
    type Output = Span;
    fn mul(self, rhs: u64) -> Span {
        Span(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Span {
    type Output = Span;
    fn div(self, rhs: u64) -> Span {
        Span(self.0 / rhs)
    }
}

impl Sum for Span {
    fn sum<I: Iterator<Item = Span>>(iter: I) -> Span {
        iter.fold(Span::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_MS {
            write!(f, "{:.3}ms", self.0 as f64 / PS_PER_MS as f64)
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{:.1}ns", self.as_ns_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Span::from_ns(1).as_ps(), 1_000);
        assert_eq!(Span::from_us(1), Span::from_ns(1_000));
        assert_eq!(Span::from_ms(1), Span::from_us(1_000));
        assert_eq!(Span::from_secs(1), Span::from_ms(1_000));
        assert_eq!(SimTime::from_us(2).as_ns_f64(), 2_000.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100);
        let s = Span::from_ns(30);
        assert_eq!(t + s, SimTime::from_ns(130));
        assert_eq!((t + s) - t, s);
        assert_eq!(s * 3, Span::from_ns(90));
        assert_eq!(Span::from_ns(90) / 3, s);
        assert_eq!(s.mul_f64(0.5), Span::from_ns(15));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::from_ns(5).saturating_since(SimTime::from_ns(9)), Span::ZERO);
        assert_eq!(Span::from_ns(5).saturating_sub(Span::from_ns(9)), Span::ZERO);
        assert_eq!(SimTime::MAX + Span::from_ns(1), SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn strict_sub_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Span::from_secs_f64(1e-9), Span::from_ns(1));
        assert_eq!(Span::from_ns_f64(0.25).as_ps(), 250);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Span::from_ns(3).max(Span::from_ns(4)), Span::from_ns(4));
        assert_eq!(Span::from_ns(3).min(Span::from_ns(4)), Span::from_ns(3));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{}", Span::from_ns(5)).is_empty());
        assert!(format!("{}", Span::from_ms(2)).contains("ms"));
        assert!(format!("{}", Span::from_us(2)).contains("us"));
    }

    #[test]
    fn sum_of_spans() {
        let total: Span = [Span::from_ns(1), Span::from_ns(2), Span::from_ns(3)].into_iter().sum();
        assert_eq!(total, Span::from_ns(6));
    }
}
