//! Zipfian sampling and analytic skew helpers.

use rambda_des::SimRng;

/// A Zipfian distribution over ranks `0..n` with exponent `theta`
/// (`theta = 0` degenerates to uniform; the evaluation uses 0.9).
///
/// Uses rejection-inversion sampling (W. Hörmann & G. Derflinger), O(1) per
/// sample with no per-rank tables, so 100 M-key workloads are cheap.
///
/// ```
/// use rambda_des::SimRng;
/// use rambda_workloads::Zipf;
///
/// let zipf = Zipf::new(1_000_000, 0.9);
/// let mut rng = SimRng::seed(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    // Precomputed constants for rejection-inversion.
    h_half: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `theta < 0`, or `theta >= 1` is not finite.
    /// (Exponents ≥ 1 are supported too; only NaN/negative are rejected.)
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(theta.is_finite() && theta >= 0.0, "bad exponent {theta}");
        let h = |x: f64| -> f64 { Self::h_static(x, theta) };
        let h_half = h(0.5);
        let s = 2.0 - Self::h_inv_static(h(2.5) - Self::pow_theta(2.0, theta), theta);
        Zipf { n, theta, h_half, s }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    fn pow_theta(x: f64, theta: f64) -> f64 {
        (-theta * x.ln()).exp()
    }

    /// H(x) = (x^(1-theta) - 1) / (1 - theta), with the log limit at 1.
    fn h_static(x: f64, theta: f64) -> f64 {
        let one_minus = 1.0 - theta;
        if one_minus.abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(one_minus) - 1.0) / one_minus
        }
    }

    fn h_inv_static(x: f64, theta: f64) -> f64 {
        let one_minus = 1.0 - theta;
        if one_minus.abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + one_minus * x).powf(1.0 / one_minus)
        }
    }

    fn h(&self, x: f64) -> f64 {
        Self::h_static(x, self.theta)
    }

    fn h_inv(&self, x: f64) -> f64 {
        Self::h_inv_static(x, self.theta)
    }

    /// Draws a rank in `0..n` (rank 0 is the hottest).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(0..self.n);
        }
        let n = self.n as f64;
        let h_n = self.h(n + 0.5);
        loop {
            let u = self.h_half + rng.f64() * (h_n - self.h_half);
            let x = self.h_inv(u);
            let k = x.round().clamp(1.0, n);
            // Acceptance test.
            if k - x <= self.s || u >= self.h(k + 0.5) - Self::pow_theta(k, self.theta) {
                return k as u64 - 1;
            }
        }
    }

    /// Analytic probability mass of the hottest `c` ranks: the expected hit
    /// rate of an LRU-ish cache holding `c` of the `n` items. Used to model
    /// the Smart NIC's 512 MB on-board cache under skew.
    pub fn hot_mass(&self, c: u64) -> f64 {
        let c = c.min(self.n);
        if c == 0 {
            return 0.0;
        }
        // Continuous approximation of generalized harmonic sums.
        let h = |x: f64| self.h(x + 0.5);
        let num = h(c as f64) - self.h(0.5);
        let den = h(self.n as f64) - self.h(0.5);
        (num / den).clamp(0.0, 1.0)
    }

    /// Mass of the `c` hottest items behaving uniformly (theta = 0): `c/n`.
    pub fn uniform_mass(n: u64, c: u64) -> f64 {
        (c.min(n) as f64) / (n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let zipf = Zipf::new(1000, 0.9);
        let mut rng = SimRng::seed(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let zipf = Zipf::new(100, 0.0);
        let mut rng = SimRng::seed(2);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max as f64 / (*min as f64) < 1.4, "min={min} max={max}");
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let zipf = Zipf::new(1_000_000, 0.9);
        let mut rng = SimRng::seed(3);
        let mut hot = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10_000 {
                hot += 1; // top 1% of keys
            }
        }
        let frac = hot as f64 / n as f64;
        // Zipf 0.9 over 1M keys puts roughly half the mass on the top 1%.
        assert!((0.4..0.75).contains(&frac), "frac={frac}");
        // And matches the analytic mass within a few percent.
        let analytic = zipf.hot_mass(10_000);
        assert!((frac - analytic).abs() < 0.05, "emp={frac} analytic={analytic}");
    }

    #[test]
    fn hot_mass_monotone_and_bounded() {
        let zipf = Zipf::new(1_000_000, 0.9);
        let mut last = 0.0;
        for c in [0u64, 10, 1000, 100_000, 1_000_000, 2_000_000] {
            let m = zipf.hot_mass(c);
            assert!((0.0..=1.0).contains(&m));
            assert!(m >= last);
            last = m;
        }
        assert_eq!(zipf.hot_mass(0), 0.0);
        assert!((zipf.hot_mass(1_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_mass_is_linear() {
        assert_eq!(Zipf::uniform_mass(100, 50), 0.5);
        assert_eq!(Zipf::uniform_mass(100, 200), 1.0);
    }

    #[test]
    fn kvs_cache_scenario_matches_paper_intuition() {
        // Smart NIC: 512MB cache over ~7GB of hash entries + pairs.
        // With uniform keys >90% of accesses go to the host (Sec. VI-B);
        // with Zipf 0.9 most hit the cache.
        let n = 100_000_000u64; // 100M pairs
        let cache_items = n / 14; // 512MB : 7GB
        let uniform = Zipf::uniform_mass(n, cache_items);
        assert!(uniform < 0.08);
        let zipf = Zipf::new(n, 0.9);
        let skewed = zipf.hot_mass(cache_items);
        assert!(skewed > 0.55, "skewed={skewed}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 0.9);
    }
}
