//! Trace exporters: Chrome trace-event JSON (Perfetto) and compact binary.

use std::fmt::Write as _;

use crate::event::{TraceEvent, Track};
use crate::tracer::Tracer;

/// Binary-export magic: "RaMBda Trace".
const MAGIC: &[u8; 4] = b"RMBT";
/// Binary-export format version.
const VERSION: u32 = 1;

/// Formats picoseconds as the microsecond float Chrome's `ts`/`dur` expect,
/// using the shortest round-trip representation (same rule as the metrics
/// JSON encoder, so output is deterministic).
fn us(ps: u64) -> String {
    format!("{:?}", ps as f64 / 1.0e6)
}

impl Tracer {
    /// Renders the ring as Chrome trace-event JSON, loadable in Perfetto
    /// (`ui.perfetto.dev`) or `chrome://tracing`.
    ///
    /// Layout: one process (`rambda-sim`), one named thread per [`Track`]
    /// present in the trace. Leg spans become `ph:"X"` duration events on
    /// their track's thread; requests become `ph:"b"`/`ph:"e"` async pairs
    /// (category `req`), so Perfetto draws the full issue→completion
    /// interval above the per-resource legs; counter samples become
    /// `ph:"C"` counter series, plus a derived `outstanding_requests`
    /// series computed from the request intervals at each sample instant.
    ///
    /// The output is a pure function of the recorded events — byte-identical
    /// across runs of the same seed.
    pub fn export_chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.len() * 96);
        out.push_str("{\"traceEvents\": [\n");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  ");
            out.push_str(&line);
        };

        emit(
            "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", \"args\": {\"name\": \"rambda-sim\"}}"
                .to_string(),
            &mut out,
        );
        let mut present = [false; 8];
        for ev in self.events() {
            if let TraceEvent::Span { track, .. } = ev {
                present[*track as usize] = true;
            }
        }
        for track in Track::ALL {
            if present[track as usize] {
                emit(
                    format!(
                        "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {}, \"name\": \"thread_name\", \
                         \"args\": {{\"name\": \"{}\"}}}}",
                        track.id(),
                        track.name()
                    ),
                    &mut out,
                );
            }
        }

        let mut sample_ticks: Vec<u64> = Vec::new();
        for ev in self.events() {
            match ev {
                TraceEvent::Span { parent, req, track, stage, start_ps, end_ps, .. } => emit(
                    format!(
                        "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \
                         \"name\": \"{}\", \"args\": {{\"req\": {}, \"parent\": {}}}}}",
                        track.id(),
                        us(*start_ps),
                        us(end_ps - start_ps),
                        stage,
                        req,
                        parent
                    ),
                    &mut out,
                ),
                TraceEvent::Request { req, start_ps, end_ps, .. } => {
                    emit(
                        format!(
                            "{{\"ph\": \"b\", \"cat\": \"req\", \"id\": {req}, \"pid\": 1, \"tid\": 0, \
                             \"ts\": {}, \"name\": \"request\"}}",
                            us(*start_ps)
                        ),
                        &mut out,
                    );
                    emit(
                        format!(
                            "{{\"ph\": \"e\", \"cat\": \"req\", \"id\": {req}, \"pid\": 1, \"tid\": 0, \
                             \"ts\": {}, \"name\": \"request\"}}",
                            us(*end_ps)
                        ),
                        &mut out,
                    );
                }
                TraceEvent::Sample { name, at_ps, value } => {
                    sample_ticks.push(*at_ps);
                    emit(
                        format!(
                            "{{\"ph\": \"C\", \"pid\": 1, \"ts\": {}, \"name\": \"{name}\", \
                             \"args\": {{\"value\": {value}}}}}",
                            us(*at_ps)
                        ),
                        &mut out,
                    );
                }
                TraceEvent::Fault { kind, at_ps, from, to } => emit(
                    format!(
                        "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"s\": \"p\", \
                         \"name\": \"fault:{kind}\", \"args\": {{\"from\": {from}, \"to\": {to}}}}}",
                        Track::Fabric.id(),
                        us(*at_ps)
                    ),
                    &mut out,
                ),
            }
        }

        // Derived counter: requests in flight at each sample instant, from a
        // sweep over the recorded request intervals.
        sample_ticks.sort_unstable();
        sample_ticks.dedup();
        if !sample_ticks.is_empty() {
            let mut edges: Vec<(u64, i64)> = Vec::new();
            for ev in self.events() {
                if let TraceEvent::Request { start_ps, end_ps, .. } = ev {
                    edges.push((*start_ps, 1));
                    edges.push((*end_ps, -1));
                }
            }
            edges.sort_unstable();
            let mut outstanding: i64 = 0;
            let mut next_edge = 0usize;
            for tick in sample_ticks {
                while next_edge < edges.len() && edges[next_edge].0 <= tick {
                    outstanding += edges[next_edge].1;
                    next_edge += 1;
                }
                emit(
                    format!(
                        "{{\"ph\": \"C\", \"pid\": 1, \"ts\": {}, \"name\": \"outstanding_requests\", \
                         \"args\": {{\"value\": {outstanding}}}}}",
                        us(tick)
                    ),
                    &mut out,
                );
            }
        }

        out.push_str("\n]}");
        out
    }

    /// Renders the ring as a compact, versioned binary blob for the
    /// determinism tests to byte-compare: `"RMBT"` magic, `u32` version,
    /// `u64` event count, tagged fixed-layout records (all integers
    /// little-endian, strings length-prefixed), and a trailing `u64` count
    /// of dropped events.
    pub fn export_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.len() * 48);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for ev in self.events() {
            match ev {
                TraceEvent::Span { id, parent, req, track, stage, start_ps, end_ps } => {
                    out.push(1);
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(&parent.to_le_bytes());
                    out.extend_from_slice(&req.to_le_bytes());
                    out.push(track.id());
                    push_str(&mut out, stage);
                    out.extend_from_slice(&start_ps.to_le_bytes());
                    out.extend_from_slice(&end_ps.to_le_bytes());
                }
                TraceEvent::Request { id, req, start_ps, end_ps } => {
                    out.push(2);
                    out.extend_from_slice(&id.to_le_bytes());
                    out.extend_from_slice(&req.to_le_bytes());
                    out.extend_from_slice(&start_ps.to_le_bytes());
                    out.extend_from_slice(&end_ps.to_le_bytes());
                }
                TraceEvent::Sample { name, at_ps, value } => {
                    out.push(3);
                    push_str(&mut out, name);
                    out.extend_from_slice(&at_ps.to_le_bytes());
                    out.extend_from_slice(&value.to_le_bytes());
                }
                TraceEvent::Fault { kind, at_ps, from, to } => {
                    out.push(4);
                    push_str(&mut out, kind);
                    out.extend_from_slice(&at_ps.to_le_bytes());
                    out.extend_from_slice(&from.to_le_bytes());
                    out.extend_from_slice(&to.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&self.dropped().to_le_bytes());
        out
    }

    /// Renders a one-line human summary of the ring (event counts by kind),
    /// for log lines around an export.
    pub fn summary(&self) -> String {
        let (mut spans, mut reqs, mut samples, mut faults) = (0u64, 0u64, 0u64, 0u64);
        for ev in self.events() {
            match ev {
                TraceEvent::Span { .. } => spans += 1,
                TraceEvent::Request { .. } => reqs += 1,
                TraceEvent::Sample { .. } => samples += 1,
                TraceEvent::Fault { .. } => faults += 1,
            }
        }
        let mut s = String::new();
        let _ = write!(
            s,
            "{} events ({} spans, {} requests, {} samples, {} faults), {} dropped",
            self.len(),
            spans,
            reqs,
            samples,
            faults,
            self.dropped()
        );
        s
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("trace string over 64 KiB");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_des::{SimTime, Span};
    use rambda_metrics::{Json, StageRecorder};

    fn traced() -> Tracer {
        let mut rec = StageRecorder::active();
        let mut tracer = Tracer::bounded(1024, Span::from_us(10));
        for i in 0..4u64 {
            let t0 = SimTime::from_us(i * 12);
            let mut obs = tracer.observe(&mut rec, t0);
            obs.leg("fabric_request", t0 + Span::from_ns(300));
            obs.leg("apu_compute", t0 + Span::from_ns(900));
            obs.finish(t0 + Span::from_ns(900));
            tracer.maybe_sample(t0 + Span::from_ns(900), |s| s.set("net.bytes", (i + 1) * 64));
        }
        tracer
    }

    #[test]
    fn chrome_json_parses_and_carries_all_event_kinds() {
        let tracer = traced();
        let text = tracer.export_chrome_json();
        let json = Json::parse(&text).expect("chrome export must be valid JSON");
        let events = json.get("traceEvents").expect("traceEvents key");
        let rendered = events.render();
        assert!(rendered.contains("\"process_name\""));
        assert!(rendered.contains("\"fabric\""), "thread metadata for present tracks");
        assert!(rendered.contains("\"ph\": \"X\""));
        assert!(rendered.contains("\"ph\": \"b\""));
        assert!(rendered.contains("\"ph\": \"e\""));
        assert!(rendered.contains("\"ph\": \"C\""));
        assert!(rendered.contains("\"outstanding_requests\""));
        assert!(rendered.contains("\"net.bytes\""));
    }

    #[test]
    fn chrome_json_is_deterministic() {
        assert_eq!(traced().export_chrome_json(), traced().export_chrome_json());
    }

    #[test]
    fn binary_has_magic_version_count_and_footer() {
        let tracer = traced();
        let blob = tracer.export_binary();
        assert_eq!(&blob[0..4], MAGIC);
        assert_eq!(u32::from_le_bytes(blob[4..8].try_into().unwrap()), VERSION);
        let count = u64::from_le_bytes(blob[8..16].try_into().unwrap());
        assert_eq!(count, tracer.len() as u64);
        let dropped = u64::from_le_bytes(blob[blob.len() - 8..].try_into().unwrap());
        assert_eq!(dropped, 0);
        assert_eq!(traced().export_binary(), blob, "binary export must be deterministic");
    }

    #[test]
    fn summary_counts_event_kinds() {
        let s = traced().summary();
        assert!(s.contains("8 spans"), "{s}");
        assert!(s.contains("4 requests"), "{s}");
        assert!(s.contains("0 dropped"), "{s}");
    }

    #[test]
    fn fault_events_export_as_instants() {
        let mut tracer = traced();
        tracer.fault("dropped", SimTime::from_us(5), 0, 1);
        let text = tracer.export_chrome_json();
        assert!(text.contains("\"fault:dropped\""), "{text}");
        assert!(text.contains("\"ph\": \"i\""));
        Json::parse(&text).expect("fault instants keep the export valid JSON");
        let blob = tracer.export_binary();
        assert!(blob.windows(7).any(|w| w == b"dropped"), "binary export carries the fault kind");
        assert!(tracer.summary().contains("1 faults"), "{}", tracer.summary());
    }

    #[test]
    fn empty_tracer_exports_cleanly() {
        let tracer = Tracer::disabled();
        let json = Json::parse(&tracer.export_chrome_json()).unwrap();
        assert!(json.get("traceEvents").is_some());
        let blob = tracer.export_binary();
        assert_eq!(blob.len(), 4 + 4 + 8 + 8);
    }
}
