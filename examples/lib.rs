//! Shared output helpers for the example binaries. The examples themselves
//! live next to this file: `quickstart.rs`, `kvs_cluster.rs`,
//! `chain_txn.rs`, `dlrm_inference.rs` — run them with
//! `cargo run -p rambda-examples --bin <name>`.

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}

/// Prints one labelled measurement line.
pub fn metric(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<44} {value}");
}
