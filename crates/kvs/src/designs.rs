//! End-to-end KVS serving experiments (Fig. 8, Fig. 9, Fig. 10, Tab. III).
//!
//! One client machine runs ten client instances; one server machine runs
//! the design under test. 100 M 64 B pairs (~7 GB) are modelled; a smaller
//! functional store executes the actual GET/PUT logic while cache-hit rates
//! use the modelled footprint. Keys follow uniform or Zipf-0.9 popularity;
//! workloads are 100 % GET or 50/50 GET/PUT.

use rambda::{cpu::CpuServer, run_closed_loop_exec, Design, DriverConfig, RunStats, SimCtx, Testbed};
use rambda_accel::{AccelEngine, Apu, ApuCtx, DataLocation};
use rambda_des::{Server, SimRng, SimTime, Span};
use rambda_fabric::{Network, NodeId};
use rambda_mem::{MemKind, MemorySystem};
use rambda_rnic::{rdma_write, two_sided_send, MrInfo, PostFlags, PostPath, RdmaError, WriteOpts};
use rambda_smartnic::SmartNic;
use rambda_trace::{ReqObs, Tracer};
use rambda_workloads::{KeyDist, KvMix, KvOp};

use crate::apu::{KvApu, KvRequest};
use crate::store::{KvConfig, KvStore};

/// Which paper workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvsWorkload {
    /// 100 % GET.
    ReadIntensive,
    /// 50 % GET / 50 % PUT.
    WriteIntensive,
}

impl KvsWorkload {
    fn get_fraction(self) -> f64 {
        match self {
            KvsWorkload::ReadIntensive => 1.0,
            KvsWorkload::WriteIntensive => 0.5,
        }
    }
}

/// KVS experiment parameters.
#[derive(Debug, Clone)]
pub struct KvsParams {
    /// Pairs in the functional store (pre-loaded).
    pub pairs: u64,
    /// Pairs in the *modelled* deployment (100 M in the paper) — drives the
    /// footprint used for Smart NIC cache-hit and LLC modelling.
    pub modeled_pairs: u64,
    /// Value size (64 B).
    pub value_bytes: u32,
    /// Requests per run.
    pub requests: u64,
    /// Client instances (10 in Sec. VI-B).
    pub clients: usize,
    /// Request/doorbell batch size (32 at peak).
    pub batch: usize,
    /// Server cores for the CPU design (10 in Sec. VI-B).
    pub cores: usize,
    /// Per-client outstanding-request window (16 saturates the network;
    /// use a small window for latency-vs-load measurements like Fig. 9).
    pub window: usize,
    /// Zipf exponent; `None` = uniform.
    pub zipf: Option<f64>,
    /// Workload mix.
    pub workload: KvsWorkload,
    /// RNG seed.
    pub seed: u64,
}

impl KvsParams {
    /// A fast configuration for tests: 100 K functional pairs, 30 K requests.
    pub fn quick() -> Self {
        KvsParams {
            pairs: 100_000,
            modeled_pairs: 100_000_000,
            value_bytes: 64,
            requests: 30_000,
            clients: 10,
            batch: 32,
            cores: 10,
            window: 16,
            zipf: None,
            workload: KvsWorkload::ReadIntensive,
            seed: 42,
        }
    }

    /// Paper-scale run (1 M functional pairs, 300 K requests).
    pub fn paper() -> Self {
        KvsParams { pairs: 1_000_000, requests: 300_000, ..KvsParams::quick() }
    }

    /// Sets the key distribution to Zipf with the given exponent.
    pub fn with_zipf(mut self, theta: f64) -> Self {
        self.zipf = Some(theta);
        self
    }

    /// Sets the workload mix.
    pub fn with_workload(mut self, workload: KvsWorkload) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    fn dist(&self) -> KeyDist {
        match self.zipf {
            Some(theta) => KeyDist::zipfian(self.pairs, theta),
            None => KeyDist::uniform(self.pairs),
        }
    }

    fn mix(&self) -> KvMix {
        KvMix::new(self.dist(), self.workload.get_fraction(), self.value_bytes)
    }

    fn driver(&self) -> DriverConfig {
        DriverConfig::new(self.clients, self.requests).with_window(self.window)
    }

    fn loaded_store(&self) -> KvStore {
        let mut store = KvStore::new(KvConfig::for_pairs(self.pairs as usize, self.value_bytes as usize));
        let mut value = vec![0u8; self.value_bytes as usize];
        for key in 0..self.pairs {
            value.fill((key & 0xFF) as u8);
            store.put_slice(key, &value);
        }
        store
    }

    /// Modelled resident footprint: pairs × (bucket share + value line).
    pub fn modeled_footprint_bytes(&self) -> u64 {
        self.modeled_pairs * (64 + 8)
    }

    fn request_bytes(&self, op: &KvOp) -> u64 {
        match op {
            KvOp::Get { .. } => 16,
            KvOp::Put { .. } => 16 + self.value_bytes as u64,
        }
    }

    fn response_bytes(&self, op: &KvOp) -> u64 {
        match op {
            KvOp::Get { .. } => 8 + self.value_bytes as u64,
            KvOp::Put { .. } => 8,
        }
    }

    fn to_request(&self, op: &KvOp) -> KvRequest {
        match op {
            KvOp::Get { key } => KvRequest::Get { key: *key },
            KvOp::Put { key, .. } => {
                KvRequest::Put { key: *key, value: vec![0xAB; self.value_bytes as usize] }
            }
        }
    }
}

const CLIENT: NodeId = NodeId(0);
const SERVER: NodeId = NodeId(1);

/// Key-range shards a scoped run attributes requests to: key `k` of a
/// `pairs`-key store lands in `shard/{k·4/pairs}`. Matches the roadmap's
/// sharded multi-server direction without changing any serving path.
const SCOPE_SHARDS: u64 = 4;

impl KvsParams {
    fn scope_names(&self) -> Vec<String> {
        (0..SCOPE_SHARDS.min(self.pairs.max(1))).map(|s| format!("shard/{s}")).collect()
    }

    fn scope_of(&self, key: u64) -> usize {
        (key * SCOPE_SHARDS.min(self.pairs.max(1)) / self.pairs.max(1)) as usize
    }
}

/// Probability of an OS-induced hiccup on a CPU core per request, and its
/// mean duration — the scheduling/contention noise behind the paper's
/// "more stable behaviour than the CPU core" tail-latency observation.
const CPU_JITTER_P: f64 = 0.02;
const CPU_JITTER_MEAN_US: f64 = 0.8;

/// Degraded-mode completion: the RDMA layer exhausted its retransmission
/// budget, so the design sheds the request — the client observes a timeout
/// at the error-completion time — instead of asserting.
fn shed(mut tr: ReqObs<'_>, err: &RdmaError) -> SimTime {
    let at = err.at();
    tr.leg("shed", at);
    tr.finish(at);
    at
}

/// Forwards the run's injected-fault log from the network to the flight
/// recorder as instants on the fabric track.
fn drain_faults(net: &mut Network, tracer: &mut Tracer) {
    for ev in net.drain_fault_events() {
        tracer.fault(ev.kind.name(), ev.at, ev.from.0, ev.to.0);
    }
}

/// [`Design`] constructors for the KVS experiments, so
/// [`rambda::SimBuilder`] can run them: `SimBuilder::new(Design::kvs_rambda(p,
/// location)).faults(f).run()`.
pub trait KvsDesigns {
    /// The two-sided CPU design (`kvs.cpu`).
    fn kvs_cpu(params: KvsParams) -> Design;
    /// The Rambda design and its LD/LH variants (`kvs.rambda`).
    fn kvs_rambda(params: KvsParams, location: DataLocation) -> Design;
    /// The Smart NIC baseline (`kvs.smartnic`).
    fn kvs_smartnic(params: KvsParams) -> Design;
}

impl KvsDesigns for Design {
    fn kvs_cpu(params: KvsParams) -> Design {
        Design::from_runner("kvs.cpu", params.seed, move |tb, ctx| run_cpu_inner(tb, &params, ctx))
    }

    fn kvs_rambda(params: KvsParams, location: DataLocation) -> Design {
        Design::from_runner("kvs.rambda", params.seed, move |tb, ctx| {
            run_rambda_inner(tb, &params, location, ctx)
        })
    }

    fn kvs_smartnic(params: KvsParams) -> Design {
        Design::from_runner("kvs.smartnic", params.seed, move |tb, ctx| run_smartnic_inner(tb, &params, ctx))
    }
}

/// The CPU design: two-sided RDMA RPC over ten cores (HERD/MICA-style).
pub fn run_cpu(testbed: &Testbed, params: &KvsParams) -> RunStats {
    rambda::rambda_stats_only_ctx!(ctx);
    run_cpu_inner(testbed, params, ctx)
}

fn run_cpu_inner(testbed: &Testbed, params: &KvsParams, ctx: SimCtx<'_>) -> RunStats {
    let SimCtx { rec, resources, tracer, faults, profile, scopes, exec } = ctx;
    let mut net = Network::new(testbed.net.clone());
    net.install_faults(faults);
    if profile {
        net.enable_lookahead();
    }
    let mut client = rambda::Machine::new(CLIENT, testbed, true);
    let mut server = rambda::Machine::new(SERVER, testbed, true);
    let mut cpu = CpuServer::new(testbed.cpu.clone(), params.cores, params.batch);
    let mut store = params.loaded_store();
    let mix = params.mix();
    let mut rng = SimRng::seed(params.seed);
    let scope_names = params.scope_names();

    let rq_mr = server.rnic.register_region(MrInfo::adaptive(MemKind::Dram));
    let client_mr = client.rnic.register_region(MrInfo::adaptive(MemKind::Dram));
    let opts = WriteOpts { post: PostPath::HostMmio, batch: params.batch, flags: PostFlags::NONE };
    let put_value = vec![0xAB; params.value_bytes as usize];

    let lookahead = net.min_lookahead();
    let stats = run_closed_loop_exec(&params.driver(), exec, lookahead, |_c, at| {
        let mut tr = tracer.observe(rec, at);
        let op = mix.next_op(&mut rng);
        let fin = 'req: {
            // Request: two-sided send into the server's posted RQ.
            let delivered = match two_sided_send(
                at,
                &mut client.rnic,
                &mut server.rnic,
                &mut net,
                &mut server.mem,
                rq_mr,
                params.request_bytes(&op),
                opts,
            ) {
                Ok(t) => t,
                Err(e) => break 'req shed(tr, &e),
            };
            tr.leg("fabric_request", delivered);
            // Re-post the consumed RECV WQE (extra NIC pipeline work of the
            // two-sided path).
            let t = server.rnic.next_in_pipeline(delivered);
            tr.leg("rnic_pipeline", t);
            // Application processing on a core.
            let trace = match op {
                KvOp::Get { key } => store.get(key).1,
                KvOp::Put { key, .. } => store.put_slice(key, &put_value),
            };
            let mut done = cpu.serve_request(
                t,
                trace.bucket_reads + trace.value_reads,
                trace.writes as u64 * 64,
                MemKind::Dram,
                &mut server.mem,
            );
            if rng.chance(CPU_JITTER_P) {
                done += Span::from_ns_f64(1000.0 * rng.exp(CPU_JITTER_MEAN_US));
            }
            tr.leg("cpu_serve", done);
            // Response: two-sided back to the client.
            let fin = match two_sided_send(
                done,
                &mut server.rnic,
                &mut client.rnic,
                &mut net,
                &mut client.mem,
                client_mr,
                params.response_bytes(&op),
                opts,
            ) {
                Ok(t) => t,
                Err(e) => break 'req shed(tr, &e),
            };
            tr.leg("fabric_response", fin);
            tr.finish(fin);
            tracer.sample_with(rec, at, |s| {
                client.publish_metrics(s, "client");
                server.publish_metrics(s, "server");
                cpu.publish_metrics(s, "cpu");
                net.publish_metrics(s, "net");
            });
            fin
        };
        // Scope attribution covers shed requests too: every traced request
        // lands in exactly one key-range shard.
        scopes.record(&scope_names[params.scope_of(op.key())], at, fin);
        scopes.observe_key(op.key());
        fin
    });
    drain_faults(&mut net, tracer);
    if rec.is_active() {
        client.publish_metrics(resources, "client");
        server.publish_metrics(resources, "server");
        cpu.publish_metrics(resources, "cpu");
        net.publish_metrics(resources, "net");
        net.publish_lookahead(resources, "net");
        net.publish_scoped(scopes, "net");
        tracer.final_sample(SimTime::ZERO + stats.makespan, resources);
    }
    stats
}

/// The Rambda design (and its LD/LH variants via `location`).
pub fn run_rambda(testbed: &Testbed, params: &KvsParams, location: DataLocation) -> RunStats {
    rambda::rambda_stats_only_ctx!(ctx);
    run_rambda_inner(testbed, params, location, ctx)
}

fn run_rambda_inner(
    testbed: &Testbed,
    params: &KvsParams,
    location: DataLocation,
    ctx: SimCtx<'_>,
) -> RunStats {
    let SimCtx { rec, resources, tracer, faults, profile, scopes, exec } = ctx;
    let mut net = Network::new(testbed.net.clone());
    net.install_faults(faults);
    if profile {
        net.enable_lookahead();
    }
    // Adaptive DDIO: global DDIO off, TPH per region (all DRAM here).
    let mut client = rambda::Machine::new(CLIENT, testbed, false);
    let mut server = rambda::Machine::new(SERVER, testbed, false);
    let mut engine = AccelEngine::new(testbed.accel_config(location, true));
    let mut apu = KvApu::new(params.loaded_store());
    let mix = params.mix();
    let mut rng = SimRng::seed(params.seed);
    let clients = params.clients;
    let scope_names = params.scope_names();

    let ring_kind = match location {
        DataLocation::LocalDdr => MemKind::AccelDdr,
        DataLocation::LocalHbm => MemKind::AccelHbm,
        _ => MemKind::Dram,
    };
    let ring_mr = server.rnic.register_region(MrInfo::adaptive(ring_kind));
    let client_mr = client.rnic.register_region(MrInfo::adaptive(MemKind::Dram));
    let req_opts = WriteOpts { post: PostPath::HostMmio, batch: params.batch, flags: PostFlags::NONE };
    let resp_opts = WriteOpts { post: PostPath::AccelMmio, batch: params.batch, flags: PostFlags::NONE };
    // The SQ handler serializes WQE assembly + doorbells; batching amortizes
    // the MMIO+sfence (Sec. VI-B's ~2x batching gain for Rambda).
    let mut sq = Server::new(1);
    let sq_hold = Span::from_ns(165).mul_f64(1.0 / params.batch as f64) + Span::from_ns(5);

    let lookahead = net.min_lookahead();
    let stats = run_closed_loop_exec(&params.driver(), exec, lookahead, |_c, at| {
        let mut tr = tracer.observe(rec, at);
        let op = mix.next_op(&mut rng);
        let fin = 'req: {
            // One-sided write into the request ring (cpoll region).
            let out = match rdma_write(
                at,
                &mut client.rnic,
                &mut server.rnic,
                &mut net,
                &mut server.mem,
                &mut client.mem,
                ring_mr,
                params.request_bytes(&op),
                req_opts,
            ) {
                Ok(out) => out,
                Err(e) => break 'req shed(tr, &e),
            };
            tr.leg("fabric_request", out.delivered_at);
            // cpoll discovery + scheduler dispatch.
            let discovered = engine.discover(out.delivered_at, clients, &mut rng);
            tr.leg("coherence", discovered);
            let start = engine.claim_slot(discovered);
            tr.leg("dispatch", start);
            // Fetch the request entry from the ring.
            let fetched = if location.is_host() {
                engine.ring_read(start, params.request_bytes(&op), &mut server.mem)
            } else {
                engine.mem_access(start, params.request_bytes(&op), false, &mut server.mem)
            };
            tr.leg("ring_read", fetched);
            // APU processing (hash + walk + value).
            let mut ctx = ApuCtx::new(&mut engine, &mut server.mem, fetched);
            let _resp = apu.process(params.to_request(&op), &mut ctx);
            let done = ctx.now();
            tr.leg("apu_compute", done);
            // SQ handler: assemble WQE, write it to the WQ, ring the doorbell.
            let wqe = engine.sq_write_wqe(done);
            tr.leg("sq_wqe", wqe);
            let db_start = sq.acquire(wqe, sq_hold);
            let emitted = db_start + sq_hold;
            tr.leg("doorbell", emitted);
            engine.release_slot(discovered, emitted);
            // Response by one-sided write back to the client's response ring.
            let resp = match rdma_write(
                emitted,
                &mut server.rnic,
                &mut client.rnic,
                &mut net,
                &mut client.mem,
                &mut server.mem,
                client_mr,
                params.response_bytes(&op),
                resp_opts,
            ) {
                Ok(out) => out,
                Err(e) => break 'req shed(tr, &e),
            };
            tr.leg("fabric_response", resp.delivered_at);
            tr.finish(resp.delivered_at);
            tracer.sample_with(rec, at, |s| {
                client.publish_metrics(s, "client");
                server.publish_metrics(s, "server");
                engine.publish_metrics(s, "accel");
                s.observe_server("sq", &sq);
                net.publish_metrics(s, "net");
            });
            resp.delivered_at
        };
        // Scope attribution covers shed requests too: every traced request
        // lands in exactly one key-range shard.
        scopes.record(&scope_names[params.scope_of(op.key())], at, fin);
        scopes.observe_key(op.key());
        fin
    });
    drain_faults(&mut net, tracer);
    if rec.is_active() {
        client.publish_metrics(resources, "client");
        server.publish_metrics(resources, "server");
        engine.publish_metrics(resources, "accel");
        resources.observe_server("sq", &sq);
        net.publish_metrics(resources, "net");
        net.publish_lookahead(resources, "net");
        net.publish_scoped(scopes, "net");
        tracer.final_sample(SimTime::ZERO + stats.makespan, resources);
    }
    stats
}

/// The Smart NIC design: eight ARM cores, 512 MB on-board cache of the host
/// data, synchronous one-sided reads to the host on misses.
pub fn run_smartnic(testbed: &Testbed, params: &KvsParams) -> RunStats {
    rambda::rambda_stats_only_ctx!(ctx);
    run_smartnic_inner(testbed, params, ctx)
}

fn run_smartnic_inner(testbed: &Testbed, params: &KvsParams, ctx: SimCtx<'_>) -> RunStats {
    let SimCtx { rec, resources, tracer, faults, profile, scopes, exec } = ctx;
    // The Smart NIC path models raw Ethernet sends (its RPC transport hides
    // recovery in firmware), so only degrade windows of the fault plan
    // reach it — drop/corrupt verdicts apply to RC-QP `transmit`s.
    let mut net = Network::new(testbed.net.clone());
    net.install_faults(faults);
    if profile {
        net.enable_lookahead();
    }
    let mut client = rambda::Machine::new(CLIENT, testbed, true);
    let mut server = rambda::Machine::new(SERVER, testbed, true);
    let mut nic = SmartNic::new(testbed.smartnic.clone());
    let mut nic_mem = MemorySystem::new(testbed.mem.clone(), true);
    let mut store = params.loaded_store();
    let mix = params.mix();
    let mut rng = SimRng::seed(params.seed);

    // Cache-hit probability: the 512 MB on-board cache holds the hottest
    // fraction of the modelled footprint (hash entries + pairs).
    let cache_items = (testbed.smartnic.cache_bytes as f64 / params.modeled_footprint_bytes() as f64
        * params.pairs as f64) as u64;
    let hit_rate = params.dist().hot_mass(cache_items);
    let wqe_gap = client.rnic.config().wqe_gap;
    let put_value = vec![0xAB; params.value_bytes as usize];
    let scope_names = params.scope_names();

    let lookahead = net.min_lookahead();
    let stats = run_closed_loop_exec(&params.driver(), exec, lookahead, |_c, at| {
        let mut tr = tracer.observe(rec, at);
        let op = mix.next_op(&mut rng);
        // Client posts; request terminates at the Smart NIC (no host PCIe).
        let posted = if params.batch == 1 {
            client.rnic.post(at, PostPath::HostMmio, 1)
        } else {
            client.rnic.next_in_pipeline(at + wqe_gap.mul_f64(1.0 / params.batch as f64))
        };
        tr.leg("doorbell", posted);
        let arrived = net.send(posted, CLIENT, SERVER, params.request_bytes(&op));
        let arrived = server.rnic.rx_process(arrived);
        tr.leg("fabric_request", arrived);
        // ARM core walks the structure; each access hits the on-board cache
        // with `hit_rate`, else crosses PCIe synchronously.
        let start = nic.begin_request(arrived);
        tr.leg("arm_dispatch", start);
        let trace = match op {
            KvOp::Get { key } => store.get(key).1,
            KvOp::Put { key, .. } => store.put_slice(key, &put_value),
        };
        let mut t = start;
        for _ in 0..(trace.bucket_reads + trace.value_reads) {
            let local = rng.chance(hit_rate);
            t = nic.mem_access(t, 64, false, local, &mut nic_mem, &mut server.mem, MemKind::Dram, &mut rng);
        }
        for _ in 0..trace.writes {
            let local = rng.chance(hit_rate);
            t = nic.mem_access(t, 64, true, local, &mut nic_mem, &mut server.mem, MemKind::Dram, &mut rng);
        }
        tr.leg("arm_mem_access", t);
        nic.end_request(arrived, t);
        // Response straight from the NIC.
        let fin = net.send(t, SERVER, CLIENT, params.response_bytes(&op));
        tr.leg("fabric_response", fin);
        tr.finish(fin);
        scopes.record(&scope_names[params.scope_of(op.key())], at, fin);
        scopes.observe_key(op.key());
        tracer.sample_with(rec, at, |s| {
            client.publish_metrics(s, "client");
            server.publish_metrics(s, "server");
            nic.publish_metrics(s, "smartnic");
            nic_mem.publish_metrics(s, "nic_mem");
            net.publish_metrics(s, "net");
        });
        fin
    });
    drain_faults(&mut net, tracer);
    if rec.is_active() {
        client.publish_metrics(resources, "client");
        server.publish_metrics(resources, "server");
        nic.publish_metrics(resources, "smartnic");
        nic_mem.publish_metrics(resources, "nic_mem");
        net.publish_metrics(resources, "net");
        net.publish_lookahead(resources, "net");
        net.publish_scoped(scopes, "net");
        tracer.final_sample(SimTime::ZERO + stats.makespan, resources);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb() -> Testbed {
        Testbed::default()
    }

    #[test]
    fn fig8_rambda_slightly_beats_cpu() {
        // "Rambda's peak throughput is 2.3%-8.3% higher than CPU" (both
        // network-bound; one-sided beats two-sided slightly).
        let p = KvsParams::quick();
        let cpu = run_cpu(&tb(), &p).throughput_mops();
        let rambda = run_rambda(&tb(), &p, DataLocation::HostDram).throughput_mops();
        let gain = rambda / cpu - 1.0;
        assert!((0.01..0.20).contains(&gain), "gain={gain} cpu={cpu} rambda={rambda}");
        // Both near the network bound for 64B messages.
        assert!(cpu > 8.0, "cpu={cpu}");
    }

    #[test]
    fn fig8_distribution_hits_smartnic_not_cpu_or_rambda() {
        let uniform = KvsParams::quick();
        let zipf = KvsParams::quick().with_zipf(0.9);
        let snic_u = run_smartnic(&tb(), &uniform).throughput_mops();
        let snic_z = run_smartnic(&tb(), &zipf).throughput_mops();
        let ratio = snic_u / snic_z;
        assert!((0.15..0.55).contains(&ratio), "uniform/zipf={ratio}");

        let cpu_u = run_cpu(&tb(), &uniform).throughput_mops();
        let cpu_z = run_cpu(&tb(), &zipf).throughput_mops();
        assert!(((cpu_u / cpu_z) - 1.0).abs() < 0.08, "cpu {cpu_u} vs {cpu_z}");

        let r_u = run_rambda(&tb(), &uniform, DataLocation::HostDram).throughput_mops();
        let r_z = run_rambda(&tb(), &zipf, DataLocation::HostDram).throughput_mops();
        assert!(((r_u / r_z) - 1.0).abs() < 0.08, "rambda {r_u} vs {r_z}");

        // Smart NIC is far below both.
        assert!(snic_u < 0.5 * cpu_u);
    }

    #[test]
    fn fig8_local_memory_does_not_help_when_network_bound() {
        // "extra memory bandwidth does not help ... the network has reached
        // its limit".
        let p = KvsParams::quick();
        let rambda = run_rambda(&tb(), &p, DataLocation::HostDram).throughput_mops();
        let ld = run_rambda(&tb(), &p, DataLocation::LocalDdr).throughput_mops();
        let lh = run_rambda(&tb(), &p, DataLocation::LocalHbm).throughput_mops();
        assert!((ld / rambda - 1.0).abs() < 0.1, "ld={ld} rambda={rambda}");
        assert!((lh / rambda - 1.0).abs() < 0.1, "lh={lh} rambda={rambda}");
    }

    #[test]
    fn fig8_put_heavy_changes_little() {
        // MICA-style partitioning: 50/50 PUT performs close to GET-only.
        let p = KvsParams::quick();
        let w = KvsParams::quick().with_workload(KvsWorkload::WriteIntensive);
        let get_only = run_rambda(&tb(), &p, DataLocation::HostDram).throughput_mops();
        let mixed = run_rambda(&tb(), &w, DataLocation::HostDram).throughput_mops();
        assert!((mixed / get_only - 1.0).abs() < 0.15, "{mixed} vs {get_only}");
    }

    #[test]
    fn fig9_rambda_tail_beats_cpu_tail() {
        // Rambda p99 is ~30% lower than CPU (stable FPGA vs jittery cores),
        // while its *average* is similar or slightly higher. Measured at
        // light load (small window) so service time, not the closed-loop
        // saturation identity, dominates.
        let mut p = KvsParams::quick();
        p.window = 2;
        let cpu = run_cpu(&tb(), &p);
        let rambda = run_rambda(&tb(), &p, DataLocation::HostDram);
        assert!(
            rambda.p99_us() < 0.9 * cpu.p99_us(),
            "rambda p99 {} vs cpu p99 {}",
            rambda.p99_us(),
            cpu.p99_us()
        );
        assert!(
            rambda.mean_us() > 0.7 * cpu.mean_us(),
            "rambda mean {} vs cpu mean {}",
            rambda.mean_us(),
            cpu.mean_us()
        );
    }

    #[test]
    fn fig9_smartnic_latency_suffers_under_uniform() {
        let p = KvsParams::quick();
        let snic = run_smartnic(&tb(), &p);
        let cpu = run_cpu(&tb(), &p);
        assert!(snic.mean_us() > 1.5 * cpu.mean_us(), "snic {} cpu {}", snic.mean_us(), cpu.mean_us());
    }

    #[test]
    fn fig10_batching_helps_throughput() {
        let p32 = KvsParams::quick().with_zipf(0.9);
        let p1 = KvsParams::quick().with_zipf(0.9).with_batch(1);
        let r32 = run_rambda(&tb(), &p32, DataLocation::HostDram);
        let r1 = run_rambda(&tb(), &p1, DataLocation::HostDram);
        // Rambda gains ~2x from doorbell batching.
        let gain = r32.throughput_mops() / r1.throughput_mops();
        assert!((1.4..4.0).contains(&gain), "rambda batching gain={gain}");

        // The CPU batch effect is per-core (10 cores stay network-bound at
        // every batch size); with two cores it shows clearly.
        let mut c32p = KvsParams::quick().with_zipf(0.9);
        c32p.cores = 2;
        let mut c1p = c32p.clone().with_batch(1);
        c1p.cores = 2;
        let c32 = run_cpu(&tb(), &c32p);
        let c1 = run_cpu(&tb(), &c1p);
        let cpu_gain = c32.throughput_mops() / c1.throughput_mops();
        assert!(cpu_gain > 2.0, "cpu per-core batching gain={cpu_gain}");
    }

    #[test]
    fn sec3f_rambda_scales_with_faster_networks() {
        // Sec. III-F: the cc-interconnect is not saturated in Rambda-KV, so
        // a faster network raises Rambda's peak until the accelerator
        // binds; the 10-core CPU design scales less.
        let p = KvsParams::quick();
        let t25 = Testbed::default();
        let t100 = Testbed::default().with_network_gbps(100.0);
        let r25 = run_rambda(&t25, &p, DataLocation::HostDram).throughput_mops();
        let r100 = run_rambda(&t100, &p, DataLocation::HostDram).throughput_mops();
        // The wire stops binding and the RNIC's per-message pipeline takes
        // over (~20 Mops at 50ns/WQE), so scaling is substantial but not 4x.
        let scale = r100 / r25;
        assert!(scale > 1.5, "Rambda 25->100GbE scale {scale}");
        let c25 = run_cpu(&t25, &p).throughput_mops();
        let c100 = run_cpu(&t100, &p).throughput_mops();
        assert!(
            r100 / c100 > r25 / c25,
            "Rambda's edge should widen at 100GbE: {r100}/{c100} vs {r25}/{c25}"
        );
    }

    #[test]
    fn fig10_rambda_latency_grows_sublinearly_with_batch() {
        // "Rambda does not need to wait for a full batch to start
        // processing": its latency grows far slower than CPU's with batch.
        let mk = |b| KvsParams::quick().with_zipf(0.9).with_batch(b);
        let r1 = run_rambda(&tb(), &mk(1), DataLocation::HostDram).mean_us();
        let r32 = run_rambda(&tb(), &mk(32), DataLocation::HostDram).mean_us();
        assert!(r32 < 4.0 * r1, "rambda latency {r1} -> {r32}");
    }
}
