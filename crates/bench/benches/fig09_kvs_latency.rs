//! Fig. 9: KVS latency (avg and p99) on the 100 % GET workload, batch 32.
//!
//! Expectations: the Smart NIC's average collapses under uniform keys;
//! Rambda's average is slightly above CPU's (UPI on the data path) but its
//! p99 is ~30 % *below* CPU's (no OS scheduling noise); LD/LH remove the
//! UPI data-path penalty (tail latency inapplicable for them, as in the
//! paper — their latency is emulated from averages).

use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_bench::{us, Table};
use rambda_kvs::designs::{run_cpu, run_rambda, run_smartnic};
use rambda_kvs::KvsParams;

fn main() {
    let tb = Testbed::default();
    let mut base = KvsParams { requests: 100_000, ..KvsParams::paper() };
    base.window = 2; // light load: measure service latency, not saturation

    let mut table =
        Table::new("Fig. 9 — KVS latency, 100% GET, batch 32 (us)", &["design", "dist", "avg", "p99"]);
    for (dist_name, zipf) in [("uniform", None), ("zipf0.9", Some(0.9))] {
        let mut p = base.clone();
        p.zipf = zipf;
        let cpu = run_cpu(&tb, &p);
        let snic = run_smartnic(&tb, &p);
        let rambda = run_rambda(&tb, &p, DataLocation::HostDram);
        let ld = run_rambda(&tb, &p, DataLocation::LocalDdr);
        let lh = run_rambda(&tb, &p, DataLocation::LocalHbm);
        for (name, stats, tail_ok) in [
            ("CPU", &cpu, true),
            ("SmartNIC", &snic, true),
            ("Rambda", &rambda, true),
            ("Rambda-LD", &ld, false),
            ("Rambda-LH", &lh, false),
        ] {
            table.row(vec![
                name.into(),
                dist_name.into(),
                us(stats.mean_us()),
                if tail_ok { us(stats.p99_us()) } else { "n/a".into() },
            ]);
        }
    }
    table.print();
    println!("shape check: Rambda p99 < CPU p99 (paper: -30.1%); Rambda p99 << SmartNIC p99 (paper: -52%).");
}
