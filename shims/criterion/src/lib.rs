//! Offline minimal stand-in for `criterion`.
//!
//! The build container cannot reach crates.io, so this shim provides the
//! small slice of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Passing `--test` (as `cargo bench -- --test` does with the real
//! criterion) switches to smoke mode: every bench body runs once so CI can
//! verify bench code still compiles and executes, without timing loops.

use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes its setup (ignored by the shim's timer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver handed to each group function.
#[derive(Debug)]
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { smoke: self.smoke, iters: 0, elapsed_ns: 0 };
        body(&mut b);
        if self.smoke {
            println!("bench {name}: ok (smoke mode, {} iter)", b.iters);
        } else if b.iters > 0 {
            println!("bench {name}: {:.1} ns/iter ({} iters)", b.elapsed_ns as f64 / b.iters as f64, b.iters);
        } else {
            println!("bench {name}: no iterations recorded");
        }
        self
    }
}

/// Measurement target inside [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    smoke: bool,
    iters: u64,
    elapsed_ns: u128,
}

/// Iterations per timed measurement window in the shim.
const MEASURE_ITERS: u64 = 10_000;

impl Bencher {
    /// Times `routine` (once in smoke mode, a fixed loop otherwise).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let iters = if self.smoke { 1 } else { MEASURE_ITERS };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += iters;
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let iters = if self.smoke { 1 } else { MEASURE_ITERS };
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
        }
        self.iters += iters;
    }
}

/// Declares a benchmark group: a runner function invoking each bench fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion { smoke: true };
        let mut ran = 0u32;
        c.bench_function("demo", |b| {
            b.iter(|| ran += 1);
        });
        assert_eq!(ran, 1);
    }

    #[test]
    fn iter_batched_threads_inputs() {
        let mut c = Criterion { smoke: true };
        let mut total = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |v| total += v * 2, BatchSize::SmallInput);
        });
        assert_eq!(total, 42);
    }
}
