//! Per-machine RNIC state: QPs, regions, pipelines, doorbells.

use rambda_des::{SimTime, Span, Throttle};
use rambda_fabric::{NodeId, PcieConfig, PcieLink};
use rambda_mem::{DmaRoute, MemKind, MemorySystem};
use serde::{Deserialize, Serialize};

/// A queue-pair identifier (one per client–server connection, per Sec.
/// III-A's no-sharing-across-connections rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QpId(pub u32);

/// A registered memory region key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MrKey(pub u32);

/// A registered memory region: where it lives and whether inbound RDMA
/// writes to it should set the TPH bit (the adaptive-DDIO knob of Fig. 6:
/// TPH for DRAM regions, not for NVM regions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MrInfo {
    /// The medium backing the region.
    pub dest: MemKind,
    /// Whether the RNIC sets TPH on writes into this region.
    pub tph: bool,
}

impl MrInfo {
    /// The adaptive policy the paper proposes: steer DRAM-backed regions
    /// into the LLC, let NVM-backed regions bypass it.
    pub fn adaptive(dest: MemKind) -> MrInfo {
        MrInfo { dest, tph: matches!(dest, MemKind::Dram) }
    }
}

/// How WQEs reach the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PostPath {
    /// Host CPU writes WQEs to the SQ and rings the doorbell via MMIO.
    HostMmio,
    /// The cc-accelerator's SQ handler writes WQEs to the SQ (in host
    /// memory, over the cc-interconnect — charged by the caller) and rings
    /// the doorbell via MMIO. The paper notes MMIO + `sfence` from the
    /// accelerator is relatively expensive, which doorbell batching
    /// amortizes (Sec. VI-B).
    AccelMmio,
}

/// Loss-recovery parameters for the per-QP retransmission machinery.
///
/// The RC transport detects a lost frame by retransmission timeout and a
/// corrupted frame by the receiver's NACK; either way the sender backs off
/// and re-emits from its retry buffer, doubling the timeout per consecutive
/// loss of the same WQE up to [`RetryPolicy::max_timeout`], and abandons the
/// operation with an error completion after [`RetryPolicy::max_retries`]
/// retransmissions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retransmissions allowed per operation before it completes in error
    /// (the initial transmission is not counted).
    pub max_retries: u32,
    /// Retransmission timeout armed for the first attempt.
    pub base_timeout: Span,
    /// Cap on the exponentially growing timeout.
    pub max_timeout: Span,
    /// Sender-side pause after a NACK before the retransmit is posted
    /// (NACKs arrive on the wire, so no timeout is burned waiting).
    pub nack_backoff: Span,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 7,
            base_timeout: Span::from_us(16),
            max_timeout: Span::from_us(256),
            nack_backoff: Span::from_us(2),
        }
    }
}

impl RetryPolicy {
    /// The timeout armed for attempt `attempt` (0-based): exponential
    /// backoff from [`RetryPolicy::base_timeout`], capped at
    /// [`RetryPolicy::max_timeout`].
    pub fn timeout(&self, attempt: u32) -> Span {
        let scaled = self.base_timeout.as_ps().saturating_mul(1u64 << attempt.min(32));
        Span::from_ps(scaled.min(self.max_timeout.as_ps()))
    }
}

/// RNIC timing parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RnicConfig {
    /// Per-WQE processing time in the NIC pipeline.
    pub wqe_gap: Span,
    /// Bytes DMA-fetched per WQE from the send queue.
    pub wqe_bytes: u64,
    /// Extra cost of an accelerator-issued doorbell (`sfence` + slower MMIO
    /// path from the FPGA).
    pub accel_doorbell_extra: Span,
    /// CQE size written back to the host on signaled completions.
    pub cqe_bytes: u64,
    /// Loss-recovery behavior of the RC transport.
    pub retry: RetryPolicy,
}

impl Default for RnicConfig {
    fn default() -> Self {
        RnicConfig {
            wqe_gap: Span::from_ns(25),
            wqe_bytes: 64,
            accel_doorbell_extra: Span::from_ns(100),
            cqe_bytes: 64,
            retry: RetryPolicy::default(),
        }
    }
}

/// Operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RnicStats {
    /// Doorbell MMIOs observed.
    pub doorbells: u64,
    /// WQEs processed.
    pub wqes: u64,
    /// CQEs delivered to the host.
    pub cqes: u64,
    /// Inbound RDMA writes delivered to memory/LLC.
    pub inbound_writes: u64,
    /// Inbound RDMA reads served from host memory.
    pub inbound_reads: u64,
    /// Frames re-emitted from the retry buffer (after a timeout or NACK).
    pub retransmits: u64,
    /// Losses detected by retransmission timeout (drops and link flaps).
    pub timeouts: u64,
    /// NACKs received for frames that arrived corrupted.
    pub nacks: u64,
    /// Operations abandoned with an error completion at the retry cap.
    pub retries_exhausted: u64,
    /// Cumulative nanoseconds the transport spent stalled in recovery
    /// (timeout waits plus NACK backoff).
    pub backoff_ns: u64,
}

/// One machine's RNIC: PCIe attachment, SQ pipeline, regions, counters.
#[derive(Debug, Clone)]
pub struct RnicEndpoint {
    node: NodeId,
    cfg: RnicConfig,
    pcie: PcieLink,
    pipeline: Throttle,
    regions: Vec<MrInfo>,
    next_qp: u32,
    stats: RnicStats,
}

impl RnicEndpoint {
    /// Creates an RNIC for `node`.
    pub fn new(node: NodeId, cfg: RnicConfig, pcie: PcieConfig) -> Self {
        RnicEndpoint {
            node,
            pipeline: Throttle::new(cfg.wqe_gap),
            cfg,
            pcie: PcieLink::new(pcie),
            regions: Vec::new(),
            next_qp: 0,
            stats: RnicStats::default(),
        }
    }

    /// The node this RNIC belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The active configuration.
    pub fn config(&self) -> &RnicConfig {
        &self.cfg
    }

    /// Operation counters.
    pub fn stats(&self) -> &RnicStats {
        &self.stats
    }

    /// Publishes the RNIC's counters under `prefix`: operation counts, the
    /// WQE-pipeline throttle, and the PCIe attachment's links.
    pub fn publish_metrics(&self, m: &mut rambda_metrics::MetricSet, prefix: &str) {
        m.set(&format!("{prefix}.doorbells"), self.stats.doorbells);
        m.set(&format!("{prefix}.wqes"), self.stats.wqes);
        m.set(&format!("{prefix}.cqes"), self.stats.cqes);
        m.set(&format!("{prefix}.inbound_writes"), self.stats.inbound_writes);
        m.set(&format!("{prefix}.inbound_reads"), self.stats.inbound_reads);
        m.observe_throttle(&format!("{prefix}.pipeline"), &self.pipeline);
        self.pcie.publish_metrics(m, &format!("{prefix}.pcie"));
        // Recovery counters appear only once recovery has happened, so a
        // healthy-fabric run publishes a byte-identical metric set.
        let s = &self.stats;
        if s.timeouts > 0 || s.nacks > 0 || s.retransmits > 0 || s.retries_exhausted > 0 {
            m.set(&format!("{prefix}.retransmits"), s.retransmits);
            m.set(&format!("{prefix}.timeouts"), s.timeouts);
            m.set(&format!("{prefix}.nacks"), s.nacks);
            m.set(&format!("{prefix}.retries_exhausted"), s.retries_exhausted);
            m.set(&format!("{prefix}.backoff_ns"), s.backoff_ns);
            // The ps mirror makes recovery stall time a first-class busy
            // counter: the report derives a utilization gauge and the
            // timeline a per-window delta series (retransmit-rate curve).
            m.set(&format!("{prefix}.recovery.busy_ps"), s.backoff_ns * 1000);
        }
    }

    /// The PCIe link (shared by Smart-NIC models co-located on the device).
    pub fn pcie_mut(&mut self) -> &mut PcieLink {
        &mut self.pcie
    }

    /// Creates a queue pair.
    pub fn create_qp(&mut self) -> QpId {
        let id = QpId(self.next_qp);
        self.next_qp += 1;
        id
    }

    /// Registers a memory region.
    pub fn register_region(&mut self, info: MrInfo) -> MrKey {
        self.regions.push(info);
        MrKey(self.regions.len() as u32 - 1)
    }

    /// Looks up a region.
    ///
    /// # Panics
    ///
    /// Panics if `key` was not returned by
    /// [`register_region`](Self::register_region) (protection-domain
    /// violation).
    pub fn region(&self, key: MrKey) -> MrInfo {
        self.regions[key.0 as usize]
    }

    /// Posts `batch` WQEs and rings one doorbell; returns when the NIC has
    /// fetched the WQEs and the *first* one enters the pipeline.
    ///
    /// One doorbell covers the whole chain — the batching optimization; with
    /// `batch == 1` this is the unbatched cost.
    pub fn post(&mut self, at: SimTime, path: PostPath, batch: usize) -> SimTime {
        assert!(batch > 0, "cannot post an empty WQE chain");
        let ring_at = match path {
            PostPath::HostMmio => at,
            PostPath::AccelMmio => at + self.cfg.accel_doorbell_extra,
        };
        let db_seen = self.pcie.mmio_write(ring_at);
        self.stats.doorbells += 1;
        // A single WQE rides inline in the doorbell write (BlueFlame-style);
        // a chain is DMA-fetched from the SQ in host memory.
        let fetched = if batch == 1 {
            db_seen
        } else {
            self.pcie.dma_to_device(db_seen, self.cfg.wqe_bytes * batch as u64)
        };
        self.stats.wqes += batch as u64;
        self.pipeline.admit(fetched)
    }

    /// Admits one more WQE of an already-fetched chain into the pipeline.
    pub fn next_in_pipeline(&mut self, at: SimTime) -> SimTime {
        self.pipeline.admit(at)
    }

    /// Processing cost for an inbound packet before its DMA is issued.
    pub fn rx_process(&mut self, at: SimTime) -> SimTime {
        self.pipeline.admit(at)
    }

    /// Delivers an inbound RDMA write of `bytes` into region `mr`, letting
    /// the region's TPH setting steer it (Sec. III-D). Returns delivery time
    /// and the route taken.
    pub fn deliver_write(
        &mut self,
        at: SimTime,
        mr: MrKey,
        bytes: u64,
        mem: &mut MemorySystem,
    ) -> (SimTime, DmaRoute) {
        let info = self.region(mr);
        let processed = self.rx_process(at);
        let at_host = self.pcie.dma_to_host(processed, bytes);
        self.stats.inbound_writes += 1;
        match info.dest {
            MemKind::Dram | MemKind::Nvm => mem.dma_write(at_host, bytes, info.tph, info.dest),
            // Accelerator-local regions: the DMA crosses into the device
            // memory directly (Rambda-LD/LH); charged as a plain access.
            other => {
                let done = mem.access(
                    at_host,
                    rambda_mem::MemReq { kind: other, access: rambda_mem::AccessKind::Write, bytes },
                );
                (done, DmaRoute::Memory)
            }
        }
    }

    /// Serves an inbound RDMA read of `bytes` from region `mr`: media read,
    /// then DMA back toward the wire. Returns when the data is on the NIC.
    pub fn serve_read(&mut self, at: SimTime, mr: MrKey, bytes: u64, mem: &mut MemorySystem) -> SimTime {
        let info = self.region(mr);
        let processed = self.rx_process(at);
        let req_at_mem = self.pcie.dma_to_device(processed, 32);
        let data_ready = mem.access(
            req_at_mem,
            rambda_mem::MemReq { kind: info.dest, access: rambda_mem::AccessKind::Read, bytes },
        );
        self.stats.inbound_reads += 1;
        self.pcie.dma_to_device(data_ready, bytes)
    }

    /// Writes a CQE back to host memory for a signaled completion.
    pub fn complete(&mut self, at: SimTime, mem: &mut MemorySystem) -> SimTime {
        self.stats.cqes += 1;
        let at_host = self.pcie.dma_to_host(at, self.cfg.cqe_bytes);
        // CQs are DRAM rings and benefit from DDIO/TPH.
        mem.dma_write(at_host, self.cfg.cqe_bytes, true, MemKind::Dram).0
    }

    /// Records a retransmission-timeout detection (lost frame) and the
    /// stall it charges the transport.
    pub fn note_timeout(&mut self, wait: Span) {
        self.stats.timeouts += 1;
        self.stats.backoff_ns += wait.as_ps() / 1000;
    }

    /// Records a NACK received for a corrupted frame and the backoff
    /// charged before the retransmit.
    pub fn note_nack(&mut self, backoff: Span) {
        self.stats.nacks += 1;
        self.stats.backoff_ns += backoff.as_ps() / 1000;
    }

    /// Records one frame re-emitted from the retry buffer.
    pub fn note_retransmit(&mut self) {
        self.stats.retransmits += 1;
    }

    /// Records an operation abandoned at the retry cap.
    pub fn note_exhausted(&mut self) {
        self.stats.retries_exhausted += 1;
    }

    /// Resets pipelines and counters (regions/QPs are kept).
    pub fn reset(&mut self) {
        self.pipeline.reset();
        self.pcie.reset();
        self.stats = RnicStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_mem::MemConfig;

    fn endpoint() -> RnicEndpoint {
        RnicEndpoint::new(NodeId(0), RnicConfig::default(), PcieConfig::default())
    }

    fn memory() -> MemorySystem {
        MemorySystem::new(MemConfig::default(), false)
    }

    #[test]
    fn qp_ids_are_unique() {
        let mut nic = endpoint();
        assert_ne!(nic.create_qp(), nic.create_qp());
    }

    #[test]
    fn adaptive_region_policy() {
        assert!(MrInfo::adaptive(MemKind::Dram).tph);
        assert!(!MrInfo::adaptive(MemKind::Nvm).tph);
    }

    #[test]
    fn doorbell_batching_amortizes_mmio() {
        // Time for 8 WQEs posted with one doorbell vs eight.
        let mut batched = endpoint();
        let t_batched = batched.post(SimTime::ZERO, PostPath::AccelMmio, 8);
        let mut last = t_batched;
        for _ in 1..8 {
            last = batched.next_in_pipeline(last);
        }
        let batched_total = last;

        let mut unbatched = endpoint();
        let mut t = SimTime::ZERO;
        for _ in 0..8 {
            t = unbatched.post(t, PostPath::AccelMmio, 1);
        }
        assert!(batched_total < t, "batched {batched_total} should beat unbatched {t}");
        assert_eq!(batched.stats().doorbells, 1);
        assert_eq!(unbatched.stats().doorbells, 8);
    }

    #[test]
    fn accel_doorbell_costs_more_than_host() {
        let mut a = endpoint();
        let mut b = endpoint();
        let ta = a.post(SimTime::ZERO, PostPath::AccelMmio, 1);
        let tb = b.post(SimTime::ZERO, PostPath::HostMmio, 1);
        assert!(ta > tb);
    }

    #[test]
    fn inbound_write_respects_region_tph() {
        let mut nic = endpoint();
        let mut mem = memory(); // global DDIO off
        let dram = nic.register_region(MrInfo::adaptive(MemKind::Dram));
        let nvm = nic.register_region(MrInfo::adaptive(MemKind::Nvm));

        let (_, route) = nic.deliver_write(SimTime::ZERO, dram, 1024, &mut mem);
        assert_eq!(route, DmaRoute::Llc);

        let (_, route) = nic.deliver_write(SimTime::ZERO, nvm, 1024, &mut mem);
        assert_eq!(route, DmaRoute::Memory);
        // No write amplification on the direct path.
        assert_eq!(mem.stats().nvm_physical_write_bytes, 1024);
        assert_eq!(nic.stats().inbound_writes, 2);
    }

    #[test]
    fn serve_read_charges_media_and_pcie() {
        let mut nic = endpoint();
        let mut mem = memory();
        let mr = nic.register_region(MrInfo::adaptive(MemKind::Dram));
        let t = nic.serve_read(SimTime::ZERO, mr, 64, &mut mem);
        // PCIe down (700ns) + DRAM (90ns) + PCIe down again (700ns) ≈ 1.5us+.
        assert!(t.as_us_f64() > 1.4, "{}", t.as_us_f64());
        assert_eq!(mem.stats().dram_read_bytes, 64);
    }

    #[test]
    fn cqe_counts_and_lands_in_llc() {
        let mut nic = endpoint();
        let mut mem = memory();
        nic.complete(SimTime::ZERO, &mut mem);
        assert_eq!(nic.stats().cqes, 1);
        assert_eq!(mem.stats().dma_to_llc_bytes, 64);
    }

    #[test]
    #[should_panic(expected = "empty WQE chain")]
    fn empty_post_panics() {
        endpoint().post(SimTime::ZERO, PostPath::HostMmio, 0);
    }

    #[test]
    fn retry_timeout_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.timeout(0), p.base_timeout);
        assert_eq!(p.timeout(1), Span::from_ps(p.base_timeout.as_ps() * 2));
        assert_eq!(p.timeout(2), Span::from_ps(p.base_timeout.as_ps() * 4));
        assert_eq!(p.timeout(30), p.max_timeout);
        assert_eq!(p.timeout(63), p.max_timeout, "shift must not overflow");
    }

    #[test]
    fn recovery_counters_publish_only_when_nonzero() {
        let mut nic = endpoint();
        let mut m = rambda_metrics::MetricSet::new();
        nic.publish_metrics(&mut m, "nic");
        assert!(m.counter("nic.retransmits").is_none());

        nic.note_timeout(Span::from_us(16));
        nic.note_retransmit();
        nic.note_nack(Span::from_us(2));
        nic.note_retransmit();
        nic.note_exhausted();
        let mut m = rambda_metrics::MetricSet::new();
        nic.publish_metrics(&mut m, "nic");
        assert_eq!(m.counter("nic.retransmits"), Some(2));
        assert_eq!(m.counter("nic.timeouts"), Some(1));
        assert_eq!(m.counter("nic.nacks"), Some(1));
        assert_eq!(m.counter("nic.retries_exhausted"), Some(1));
        assert_eq!(m.counter("nic.backoff_ns"), Some(18_000));
        assert_eq!(m.counter("nic.recovery.busy_ps"), Some(18_000_000));
        nic.reset();
        assert_eq!(nic.stats(), &RnicStats::default());
    }
}
