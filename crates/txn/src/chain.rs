//! Chain replication with Rambda-Tx's concurrency-control unit (Sec. IV-B).
//!
//! Machines form a linear chain. A transaction's writes enter at the head,
//! are appended to every replica's redo log in order, and commit when the
//! tail's ACK back-propagates to the head. The concurrency-control unit —
//! a small hash table indexed by key — admits at most one outstanding
//! transaction per key; conflicting transactions queue in arrival order.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::store::{PersistentStore, WalRecord};

/// One write of a transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnWrite {
    /// Target key (addresses an offset in the NVM space).
    pub key: u64,
    /// New value.
    pub value: Vec<u8>,
}

/// Result of executing a transaction against the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnOutcome {
    /// The transaction id assigned by the head.
    pub txn_id: u64,
    /// Values observed by the read set (in request order).
    pub reads: Vec<Option<Vec<u8>>>,
    /// How many transactions were queued ahead on conflicting keys.
    pub conflicts_waited: usize,
}

/// The concurrency-control unit: per-key FIFO admission.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencyControl {
    queues: BTreeMap<u64, VecDeque<u64>>,
}

impl ConcurrencyControl {
    /// Creates an empty unit.
    pub fn new() -> Self {
        ConcurrencyControl::default()
    }

    /// Admits `txn` on `keys`; returns how many distinct transactions are
    /// queued ahead of it across its keys (0 = runs immediately).
    pub fn admit(&mut self, txn: u64, keys: impl IntoIterator<Item = u64>) -> usize {
        let mut ahead = Vec::new();
        for key in keys {
            let q = self.queues.entry(key).or_default();
            for &other in q.iter() {
                if other != txn && !ahead.contains(&other) {
                    ahead.push(other);
                }
            }
            if !q.contains(&txn) {
                q.push_back(txn);
            }
        }
        ahead.len()
    }

    /// Releases `txn`'s slots after commit.
    pub fn release(&mut self, txn: u64, keys: impl IntoIterator<Item = u64>) {
        for key in keys {
            if let Some(q) = self.queues.get_mut(&key) {
                q.retain(|&t| t != txn);
                if q.is_empty() {
                    self.queues.remove(&key);
                }
            }
        }
    }

    /// Keys currently under some transaction.
    pub fn busy_keys(&self) -> usize {
        self.queues.len()
    }
}

/// A replication chain of persistent stores.
#[derive(Debug, Clone)]
pub struct Chain {
    replicas: Vec<PersistentStore>,
    cc: ConcurrencyControl,
    next_txn: u64,
}

impl Chain {
    /// Creates a chain of `replicas` empty stores.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "a chain needs at least one replica");
        Chain { replicas: vec![PersistentStore::new(); replicas], cc: ConcurrencyControl::new(), next_txn: 0 }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the chain has no replicas (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Read access to a replica.
    pub fn replica(&self, i: usize) -> &PersistentStore {
        &self.replicas[i]
    }

    /// Mutable access to a replica (crash injection in tests).
    pub fn replica_mut(&mut self, i: usize) -> &mut PersistentStore {
        &mut self.replicas[i]
    }

    /// The concurrency-control unit.
    pub fn concurrency_control(&self) -> &ConcurrencyControl {
        &self.cc
    }

    /// Executes one transaction: reads are served at the head (chain
    /// replication keeps the head consistent), writes propagate down the
    /// chain and commit everywhere before the outcome returns.
    pub fn execute(&mut self, reads: &[u64], writes: Vec<TxnWrite>) -> TxnOutcome {
        let txn_id = self.next_txn;
        self.next_txn += 1;
        let keys: Vec<u64> = reads.iter().copied().chain(writes.iter().map(|w| w.key)).collect();
        let conflicts_waited = self.cc.admit(txn_id, keys.iter().copied());
        // (In the timed model, conflicting admission delays the start; the
        // functional chain executes serially, so admission always proceeds.)

        let read_values = reads.iter().map(|&k| self.replicas[0].get(k).map(|v| v.to_vec())).collect();

        if !writes.is_empty() {
            let record = WalRecord { txn_id, writes: writes.into_iter().map(|w| (w.key, w.value)).collect() };
            // Head -> tail: append + persist at every replica in order.
            for replica in &mut self.replicas {
                let idx = replica.apply(record.clone());
                replica.persist_through(idx);
            }
            // Tail ACK back-propagates; every replica then commits locally
            // (already durable here).
        }

        self.cc.release(txn_id, keys);
        TxnOutcome { txn_id, reads: read_values, conflicts_waited }
    }

    /// Bulk-loads `(key, value)` pairs, one committed single-write
    /// transaction each — observationally identical to calling
    /// [`execute`](Self::execute) with one write per pair (same transaction
    /// ids, same logs, same memtables), but skipping concurrency-control
    /// admission (a no-op when loading serially) and materializing the head
    /// replica once, then cloning it down the chain.
    pub fn preload<I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (u64, Vec<u8>)>,
    {
        let records: Vec<WalRecord> = items
            .into_iter()
            .map(|(key, value)| {
                let txn_id = self.next_txn;
                self.next_txn += 1;
                WalRecord { txn_id, writes: vec![(key, value)] }
            })
            .collect();
        if self.replicas.iter().all(|r| r.log_len() == 0) {
            self.replicas[0].preload(records);
            let head = self.replicas[0].clone();
            for replica in &mut self.replicas[1..] {
                *replica = head.clone();
            }
        } else {
            for replica in &mut self.replicas[1..] {
                replica.preload(records.clone());
            }
            self.replicas[0].preload(records);
        }
    }

    /// Checks that all replicas agree on the durable log length and on all
    /// read values (the chain invariant).
    pub fn check_consistency(&self) -> Result<(), String> {
        let head_len = self.replicas[0].durable_len();
        for (i, r) in self.replicas.iter().enumerate() {
            if r.durable_len() != head_len {
                return Err(format!(
                    "replica {i} has {} durable records, head has {head_len}",
                    r.durable_len()
                ));
            }
            if r.durable_log() != self.replicas[0].durable_log() {
                return Err(format!("replica {i} log diverges from head"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(key: u64, byte: u8) -> TxnWrite {
        TxnWrite { key, value: vec![byte; 16] }
    }

    #[test]
    fn single_write_replicates_everywhere() {
        let mut chain = Chain::new(3);
        chain.execute(&[], vec![w(5, 0xAA)]);
        for i in 0..3 {
            assert_eq!(chain.replica(i).get(5).unwrap(), &[0xAA; 16]);
        }
        chain.check_consistency().unwrap();
    }

    #[test]
    fn reads_see_committed_writes() {
        let mut chain = Chain::new(2);
        chain.execute(&[], vec![w(1, 0x01)]);
        let out = chain.execute(&[1, 2], vec![]);
        assert_eq!(out.reads[0].as_deref().unwrap(), &[0x01; 16]);
        assert!(out.reads[1].is_none());
    }

    #[test]
    fn multi_write_txn_is_one_log_record() {
        let mut chain = Chain::new(2);
        chain.execute(&[], vec![w(1, 1), w(2, 2)]);
        assert_eq!(chain.replica(0).log_len(), 1);
        assert_eq!(chain.replica(1).log_len(), 1);
    }

    #[test]
    fn concurrency_control_counts_conflicts() {
        let mut cc = ConcurrencyControl::new();
        assert_eq!(cc.admit(1, [10, 11]), 0);
        assert_eq!(cc.admit(2, [11, 12]), 1); // behind txn 1 on key 11
        assert_eq!(cc.admit(3, [10, 11]), 2); // behind both
        cc.release(1, [10, 11]);
        assert_eq!(cc.busy_keys(), 3); // 10:[3] 11:[2,3] 12:[2]
        cc.release(2, [11, 12]);
        cc.release(3, [10, 11]);
        assert_eq!(cc.busy_keys(), 0);
    }

    #[test]
    fn txn_ids_are_monotonic() {
        let mut chain = Chain::new(1);
        let a = chain.execute(&[], vec![w(1, 1)]).txn_id;
        let b = chain.execute(&[], vec![w(1, 2)]).txn_id;
        assert!(b > a);
    }

    #[test]
    fn tail_crash_recovers_to_consistency() {
        let mut chain = Chain::new(2);
        for i in 0..50u64 {
            chain.execute(&[], vec![w(i, i as u8)]);
        }
        chain.replica_mut(1).crash();
        chain.replica_mut(1).recover();
        chain.check_consistency().unwrap();
        assert_eq!(chain.replica(1).get(17).unwrap(), &[17u8; 16]);
    }

    #[test]
    fn later_write_wins_after_recovery() {
        let mut chain = Chain::new(2);
        chain.execute(&[], vec![w(9, 1)]);
        chain.execute(&[], vec![w(9, 2)]);
        chain.replica_mut(0).crash();
        chain.replica_mut(0).recover();
        assert_eq!(chain.replica(0).get(9).unwrap(), &[2u8; 16]);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_chain_panics() {
        Chain::new(0);
    }

    /// `preload` must be indistinguishable from per-transaction `execute`,
    /// including duplicate keys (later write wins) and follow-on txn ids.
    #[test]
    fn preload_matches_execute_loop() {
        let items: Vec<(u64, Vec<u8>)> = (0..500u64).map(|k| (k % 120, vec![(k & 0xFF) as u8; 16])).collect();
        let mut bulk = Chain::new(2);
        bulk.preload(items.clone());
        let mut slow = Chain::new(2);
        for (key, value) in items {
            slow.execute(&[], vec![TxnWrite { key, value }]);
        }
        for i in 0..2 {
            assert_eq!(bulk.replica(i).durable_log(), slow.replica(i).durable_log());
            assert_eq!(bulk.replica(i).len(), slow.replica(i).len());
            for k in 0..120 {
                assert_eq!(bulk.replica(i).get(k), slow.replica(i).get(k));
            }
        }
        bulk.check_consistency().unwrap();
        // Follow-on transactions get identical ids.
        let a = bulk.execute(&[], vec![w(1, 9)]).txn_id;
        let b = slow.execute(&[], vec![w(1, 9)]).txn_id;
        assert_eq!(a, b);
    }

    #[test]
    fn preload_after_writes_still_matches() {
        let mut bulk = Chain::new(2);
        bulk.execute(&[], vec![w(7, 0x07)]);
        bulk.preload((0..50u64).map(|k| (k, vec![k as u8; 8])));
        let mut slow = Chain::new(2);
        slow.execute(&[], vec![w(7, 0x07)]);
        for k in 0..50u64 {
            slow.execute(&[], vec![TxnWrite { key: k, value: vec![k as u8; 8] }]);
        }
        for i in 0..2 {
            assert_eq!(bulk.replica(i).durable_log(), slow.replica(i).durable_log());
            assert_eq!(bulk.replica(i).get(7), slow.replica(i).get(7));
        }
    }
}
