//! Seeded, deterministic randomness for experiments.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator for simulations.
///
/// Every experiment in the workspace takes a seed so that results are exactly
/// reproducible run-to-run.
///
/// ```
/// use rambda_des::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child RNG (for per-client streams).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.next_u64() ^ salt.rotate_left(17);
        SimRng::seed(s)
    }

    /// Samples uniformly from a range.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// A uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// An exponentially-distributed sample with the given mean.
    ///
    /// Used for request inter-arrival jitter in open-loop drivers.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = 1.0 - self.f64(); // (0, 1]
        -mean * u.ln()
    }

    /// A raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        use rand::seq::SliceRandom;
        slice.shuffle(&mut self.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ_but_are_deterministic() {
        let mut root1 = SimRng::seed(7);
        let mut root2 = SimRng::seed(7);
        let mut a = root1.fork(1);
        let mut b = root2.fork(1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SimRng::seed(7).fork(2);
        // Extremely unlikely to collide.
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = SimRng::seed(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() / mean < 0.05, "mean={m}");
    }

    #[test]
    fn chance_frequency() {
        let mut rng = SimRng::seed(4);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
