//! Offline minimal stand-in for `proptest`.
//!
//! The build container cannot reach crates.io, so this shim implements the
//! subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro wrapping `fn name(x in strategy, ...)` tests,
//! * [`Strategy`] with `prop_map`/`boxed`, range/tuple/`any` strategies,
//! * [`collection::vec`], [`prop_oneof!`], `prop_assert!`/`prop_assert_eq!`.
//!
//! Each test runs [`CASES`] random cases from a generator seeded by the
//! test's module path and name, so runs are fully deterministic (CI-stable)
//! at the cost of proptest's shrinking and persistence machinery. Failures
//! print the case number; re-running reproduces the same inputs.

/// Cases generated per `proptest!` test.
pub const CASES: usize = 64;

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test's fully-qualified name (FNV-1a hash).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` (53 bits).
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// A value generator. Unlike real proptest there is no shrinking: `generate`
/// produces one value per call.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies ([`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Integer types `Range`/`RangeInclusive` strategies cover.
pub trait UniformInt: Copy {
    /// Widens to the `u64` sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back from the `u64` sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl<T: UniformInt> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: UniformInt> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "empty range strategy");
        if hi - lo == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.below(hi - lo + 1))
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.f64_unit() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive type.
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, Strategy,
    };
}

/// Defines deterministic randomized tests from `fn name(x in strategy)`
/// items. Unlike real proptest there is no shrinking; the failing case
/// number is reported by the panic location instead.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __proptest_case in 0..$crate::CASES {
                    let _ = __proptest_case;
                    $crate::__proptest_bind!(__proptest_rng, $($params)*);
                    $body
                }
            }
        )*
    };
}

/// Internal: expands `x in strategy, ...` parameter lists to `let` bindings.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $var:ident in $strat:expr, $($rest:tt)+) => {
        let mut $var = $crate::Strategy::generate(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
    ($rng:ident, $var:ident in $strat:expr, $($rest:tt)+) => {
        let $var = $crate::Strategy::generate(&$strat, &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
    ($rng:ident, mut $var:ident in $strat:expr $(,)?) => {
        let mut $var = $crate::Strategy::generate(&$strat, &mut $rng);
    };
    ($rng:ident, $var:ident in $strat:expr $(,)?) => {
        let $var = $crate::Strategy::generate(&$strat, &mut $rng);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategy arms (all arms must yield the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u8..=4).generate(&mut rng);
            assert!(w <= 4);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::TestRng::for_test("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..10, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![(0u64..10).prop_map(|v| v as i64), (100u64..110).prop_map(|v| -(v as i64)),];
        let mut rng = crate::TestRng::for_test("oneof");
        let mut saw_pos = false;
        let mut saw_neg = false;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            if v >= 0 {
                assert!(v < 10);
                saw_pos = true;
            } else {
                assert!((-109..=-100).contains(&v));
                saw_neg = true;
            }
        }
        assert!(saw_pos && saw_neg);
    }

    proptest! {
        /// The macro itself: bindings, mut bindings, tuples, trailing comma.
        #[test]
        fn macro_smoke(a in 0u64..5, mut b in crate::collection::vec(any::<bool>(), 1..4),) {
            prop_assert!(a < 5);
            b.push(true);
            prop_assert!(b.len() >= 2);
        }
    }
}
