//! Workspace automation tasks (`cargo xtask ...`).
//!
//! The only task today is `analyze`: a dependency-free static analyzer that
//! enforces the workspace's determinism and unsafety invariants (DESIGN.md
//! §8). It is deliberately a library so the negative-fixture tests under
//! `xtask/tests/` can drive the rule engine directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{analyze, Analysis, Config, Violation};
