//! A time-ordered event queue for closed-loop simulation drivers.
//!
//! The queue is a calendar/time-wheel scheduler (Brown, CACM'88) with three
//! tiers — a sorted *drain* run, a bucketed *near* wheel, and an unsorted
//! *far* overflow — plus a slab arena for event payloads. Push and pop are
//! O(1) amortized for the near-horizon common case that dominates closed-loop
//! simulations, while pop order remains *exactly* the (time, insertion
//! sequence) order the original binary-heap implementation produced, so every
//! golden report stays byte-identical (DESIGN.md §12).

use crate::time::SimTime;

/// Number of near-wheel buckets. Must be a power of two; 256 keeps the
/// re-anchor scan short while making bucket collisions rare at µs scale.
const BUCKETS: usize = 256;

/// Initial bucket width exponent: 2^20 ps ≈ 1 µs per bucket, so the initial
/// wheel spans ~268 µs — a good fit for the µs-scale workloads the paper
/// models. The width re-adapts on every re-anchor.
const INITIAL_WIDTH_SHIFT: u32 = 20;

/// A scheduled-event ticket: time, global insertion sequence, arena slot,
/// event-kind index.
///
/// Tickets are `Copy` and small, so sorting a bucket never moves event
/// payloads — those stay put in the arena until popped.
type Ticket = (SimTime, u64, u32, u8);

/// A registered event-kind handle, returned by [`EventQueue::kind`] and
/// accepted by [`EventQueue::push_kind`]. Kind `0` is the pre-registered
/// default every plain [`EventQueue::push`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKind(u8);

/// Per-event-kind telemetry: how many events of this kind were scheduled
/// and fired, and their cumulative sim-time dwell (enqueue→fire).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Kind name as registered via [`EventQueue::kind`].
    pub name: &'static str,
    /// Events of this kind scheduled.
    pub pushes: u64,
    /// Events of this kind dispatched.
    pub pops: u64,
    /// Cumulative scheduled-ahead sim time (fire time minus the queue's
    /// current time at push), picoseconds.
    pub held_ps: u64,
}

/// Deterministic event-core telemetry, accumulated by every push/pop.
///
/// All counters are pure functions of the event sequence, so same-seed runs
/// produce identical stats. The conservation identities the metrics layer
/// checks (`validate_event_core`): `dispatched == enqueued − cancelled −
/// pending`, and the tier hits telescope to the total enqueues
/// (`drain_hits + near_hits + far_hits == enqueued`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCoreStats {
    /// Total events scheduled.
    pub enqueued: u64,
    /// Total events fired.
    pub dispatched: u64,
    /// Total events cancelled before firing (reserved; the queue has no
    /// cancel API yet, so this is always zero today).
    pub cancelled: u64,
    /// Cumulative enqueue→fire sim-time dwell across all events,
    /// picoseconds.
    pub dwell_ps: u64,
    /// Pushes routed into the already-drained time range.
    pub drain_hits: u64,
    /// Pushes routed into the near wheel.
    pub near_hits: u64,
    /// Pushes routed into the far overflow.
    pub far_hits: u64,
    /// Wheel re-anchor events (near range exhausted, overflow redistributed).
    pub reanchors: u64,
    /// Tickets redistributed from the far overflow across all re-anchors.
    pub redistributed: u64,
    /// Per-kind breakdown, in registration order (kind 0 first).
    pub kinds: Vec<KindStats>,
}

impl EventCoreStats {
    /// Folds `other` into `self`, summing every scalar counter and merging
    /// the per-kind breakdowns by name (kinds only `other` knows are
    /// appended). The conservative parallel executor uses this to reduce
    /// its per-partition queue telemetry into one run-level section whose
    /// conservation identities still hold — every identity is additive.
    pub fn absorb(&mut self, other: &EventCoreStats) {
        self.enqueued += other.enqueued;
        self.dispatched += other.dispatched;
        self.cancelled += other.cancelled;
        self.dwell_ps += other.dwell_ps;
        self.drain_hits += other.drain_hits;
        self.near_hits += other.near_hits;
        self.far_hits += other.far_hits;
        self.reanchors += other.reanchors;
        self.redistributed += other.redistributed;
        for k in &other.kinds {
            match self.kinds.iter_mut().find(|mine| mine.name == k.name) {
                Some(mine) => {
                    mine.pushes += k.pushes;
                    mine.pops += k.pops;
                    mine.held_ps += k.held_ps;
                }
                None => self.kinds.push(k.clone()),
            }
        }
    }
}

/// A deterministic time-ordered queue of events.
///
/// Ties on time pop in insertion order, so simulations are fully
/// reproducible.
///
/// ```
/// use rambda_des::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(20), "b");
/// q.push(SimTime::from_ns(10), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Arena of event payloads; `None` slots are free for reuse.
    slots: Vec<Option<E>>,
    /// Free-list of arena slot indices.
    free: Vec<u32>,
    /// Next insertion sequence number (the deterministic FIFO tie-break).
    seq: u64,
    /// Live event count across all tiers.
    len: usize,
    /// Drain tier: tickets sorted *descending* by `(time, seq)`; `pop`
    /// removes from the back. Holds exactly the events with `time < floor`.
    drain: Vec<Ticket>,
    /// Near wheel: `BUCKETS` buckets of unsorted tickets, bucket `b` covering
    /// `[near_start + b·width, near_start + (b+1)·width)`.
    near: Vec<Vec<Ticket>>,
    /// One bit per bucket: set iff the bucket is non-empty. Lets the cursor
    /// jump over empty runs in O(words) instead of O(buckets) — the common
    /// case for sparse queues (e.g. a serial closed-loop driver with one
    /// event in flight).
    occupied: [u64; BUCKETS / 64],
    /// Total tickets currently in the near wheel.
    near_len: usize,
    /// Time at the base of bucket 0.
    near_start: SimTime,
    /// First instant at or beyond the wheel (`near_start + BUCKETS·width`,
    /// saturating): pushes at or past it overflow to `far`.
    horizon: SimTime,
    /// log2 of the bucket width in picoseconds.
    width_shift: u32,
    /// Next bucket to promote into the drain. Buckets before the cursor are
    /// empty.
    cursor: usize,
    /// Boundary between the drain and the wheel: every stored event with
    /// `time < floor` lives in `drain`, everything else in `near`/`far`.
    /// Equals `near_start + cursor·width` whenever control is outside `pop`.
    floor: SimTime,
    /// Far overflow: unsorted tickets at or beyond the wheel horizon.
    far: Vec<Ticket>,
    /// Time of the most recent pop — the queue's notion of "now", used to
    /// charge each push its enqueue→fire dwell.
    last_pop: SimTime,
    /// Always-on deterministic telemetry (see [`EventCoreStats`]).
    stats: EventCoreStats,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            len: 0,
            drain: Vec::new(),
            near: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; BUCKETS / 64],
            near_len: 0,
            near_start: SimTime::ZERO,
            horizon: SimTime::from_ps(Self::horizon_ps(SimTime::ZERO, INITIAL_WIDTH_SHIFT)),
            width_shift: INITIAL_WIDTH_SHIFT,
            cursor: 0,
            floor: SimTime::ZERO,
            far: Vec::new(),
            last_pop: SimTime::ZERO,
            stats: EventCoreStats {
                kinds: vec![KindStats { name: "event", ..KindStats::default() }],
                ..EventCoreStats::default()
            },
        }
    }

    /// Registers (or looks up) an event kind by name, for per-kind
    /// telemetry. Returns the existing handle when the name is already
    /// registered. At most 256 kinds per queue.
    pub fn kind(&mut self, name: &'static str) -> EventKind {
        if let Some(i) = self.stats.kinds.iter().position(|k| k.name == name) {
            return EventKind(i as u8);
        }
        assert!(self.stats.kinds.len() < 256, "event-kind registry is full");
        self.stats.kinds.push(KindStats { name, ..KindStats::default() });
        EventKind((self.stats.kinds.len() - 1) as u8)
    }

    /// The telemetry accumulated so far.
    pub fn stats(&self) -> &EventCoreStats {
        &self.stats
    }

    /// `start + BUCKETS·2^shift`, saturating. When saturated, every
    /// representable time routes into the wheel, which stays correct: the
    /// bucket index `(at - start) >> shift` is then always below `BUCKETS`
    /// except for `at == u64::MAX` itself, which overflows to `far`.
    fn horizon_ps(start: SimTime, shift: u32) -> u64 {
        start.as_ps().saturating_add((BUCKETS as u64) << shift)
    }

    /// Stores `event` in the arena and returns its slot index.
    fn alloc(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(event);
                idx
            }
            None => {
                self.slots.push(Some(event));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Removes a ticket's payload from the arena, recycling the slot.
    fn release(&mut self, idx: u32) -> E {
        let event = self.slots[idx as usize].take().expect("ticket slot is occupied");
        self.free.push(idx);
        event
    }

    /// Schedules `event` at `at` under the default kind.
    pub fn push(&mut self, at: SimTime, event: E) {
        self.push_kind(at, EventKind(0), event);
    }

    /// Schedules `event` at `at`, attributing it to `kind` in the telemetry.
    pub fn push_kind(&mut self, at: SimTime, kind: EventKind, event: E) {
        self.push_kind_at_seq(at, kind, self.seq, event);
    }

    /// Schedules `event` at `at` under a caller-supplied insertion sequence.
    ///
    /// The conservative parallel executor shards events across per-partition
    /// queues but must preserve the *global* (time, sequence) pop order the
    /// serial executor would produce; it threads one shared counter through
    /// every partition's pushes. `seq` must be at least this queue's own next
    /// sequence (sequences are the FIFO tie-break — reusing a smaller one
    /// would reorder ties).
    pub fn push_kind_at_seq(&mut self, at: SimTime, kind: EventKind, seq: u64, event: E) {
        debug_assert!(seq >= self.seq, "insertion sequence must not move backwards");
        self.seq = seq + 1;
        let idx = self.alloc(event);
        let ticket = (at, seq, idx, kind.0);
        self.len += 1;
        let held = at.as_ps().saturating_sub(self.last_pop.as_ps());
        self.stats.enqueued += 1;
        self.stats.dwell_ps += held;
        let ks = &mut self.stats.kinds[kind.0 as usize];
        ks.pushes += 1;
        ks.held_ps += held;
        if at < self.floor {
            // Push into the already-drained time range (e.g. zero-span
            // rescheduling at `now`): keep the drain sorted. `partition_point`
            // finds where the descending (time, seq) order admits the new
            // ticket; same-time events sort after lower sequences, keeping
            // FIFO ties exact.
            self.stats.drain_hits += 1;
            let pos = self.drain.partition_point(|&(t, s, _, _)| (t, s) > (at, seq));
            self.drain.insert(pos, ticket);
        } else if at < self.horizon {
            self.stats.near_hits += 1;
            let bucket = ((at.as_ps() - self.near_start.as_ps()) >> self.width_shift) as usize;
            self.near[bucket].push(ticket);
            self.occupied[bucket / 64] |= 1 << (bucket % 64);
            self.near_len += 1;
        } else {
            self.stats.far_hits += 1;
            self.far.push(ticket);
        }
    }

    /// The first non-empty bucket at or after `from`, via the occupancy
    /// bitmap.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= BUCKETS {
            return None;
        }
        let mut word = from / 64;
        let mut bits = self.occupied[word] & (u64::MAX << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= self.occupied.len() {
                return None;
            }
            bits = self.occupied[word];
        }
    }

    /// Promotes the next non-empty near bucket into the drain, re-anchoring
    /// the wheel from the far overflow when the near range is exhausted.
    /// Returns `false` if no events remain anywhere.
    fn refill_drain(&mut self) -> bool {
        loop {
            if let Some(b) = if self.near_len > 0 { self.next_occupied(self.cursor) } else { None } {
                self.cursor = b + 1;
                self.floor = SimTime::from_ps(
                    self.near_start.as_ps().saturating_add((self.cursor as u64) << self.width_shift),
                );
                self.occupied[b / 64] &= !(1 << (b % 64));
                std::mem::swap(&mut self.drain, &mut self.near[b]);
                self.near_len -= self.drain.len();
                // Descending (time, seq): pop() takes from the back, so the
                // earliest event — lowest time, then lowest sequence — leaves
                // first.
                self.drain.sort_unstable_by_key(|&(at, seq, _, _)| std::cmp::Reverse((at, seq)));
                return true;
            }
            if self.far.is_empty() {
                return false;
            }
            // Re-anchor: size the wheel so the whole overflow fits, then
            // redistribute it. Width must exceed span/BUCKETS so the maximum
            // lands strictly inside the last bucket.
            self.stats.reanchors += 1;
            self.stats.redistributed += self.far.len() as u64;
            let (mut min, mut max) = (self.far[0].0, self.far[0].0);
            for t in &self.far[1..] {
                min = min.min(t.0);
                max = max.max(t.0);
            }
            let span = max.as_ps() - min.as_ps();
            let needed = span / BUCKETS as u64 + 1;
            self.width_shift = needed.next_power_of_two().trailing_zeros().max(INITIAL_WIDTH_SHIFT);
            self.near_start = min;
            self.horizon = SimTime::from_ps(Self::horizon_ps(min, self.width_shift));
            self.cursor = 0;
            self.floor = min;
            for ticket in std::mem::take(&mut self.far) {
                let bucket = ((ticket.0.as_ps() - min.as_ps()) >> self.width_shift) as usize;
                self.near[bucket].push(ticket);
                self.occupied[bucket / 64] |= 1 << (bucket % 64);
                self.near_len += 1;
            }
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.drain.is_empty() && !self.refill_drain() {
            return None;
        }
        let (at, _, idx, kind) = self.drain.pop().expect("drain was just refilled");
        self.len -= 1;
        self.last_pop = at;
        self.stats.dispatched += 1;
        self.stats.kinds[kind as usize].pops += 1;
        Some((at, self.release(idx)))
    }

    /// The `(time, sequence)` key of the earliest event, if any.
    ///
    /// Takes `&mut self` so it can promote the next wheel bucket into the
    /// drain (amortized O(1), exactly the work the next `pop` would do
    /// anyway) — the conservative executor's k-way merge peeks every
    /// partition per step, so the peek must not rescan buckets.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if self.drain.is_empty() && !self.refill_drain() {
            return None;
        }
        self.drain.last().map(|&(at, seq, _, _)| (at, seq))
    }

    /// Removes and returns the earliest event iff its time is at or before
    /// `horizon` — the window-bounded drain the conservative executor runs
    /// each partition's wheel with. The horizon is *inclusive*: an event
    /// landing exactly on the safe horizon is still causally safe to fire
    /// (lookahead is a strict lower bound on cross-partition latency).
    pub fn pop_within(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_key() {
            Some((at, _)) if at <= horizon => self.pop(),
            _ => None,
        }
    }

    /// The time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(&(at, _, _, _)) = self.drain.last() {
            return Some(at);
        }
        if let Some(b) = self.next_occupied(self.cursor) {
            return self.near[b].iter().map(|t| t.0).min();
        }
        self.far.iter().map(|t| t.0).min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue").field("len", &self.len).field("next", &self.peek_time()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_ns(5), "b");
        q.push(SimTime::from_ns(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn push_at_drained_time_keeps_fifo() {
        // Two events at the same instant, one pushed after that instant has
        // already been promoted into the drain: insertion order must hold.
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "first");
        q.push(SimTime::from_ns(30), "later");
        assert_eq!(q.pop().unwrap().1, "first");
        q.push(SimTime::from_ns(30), "second");
        assert_eq!(q.pop().unwrap(), (SimTime::from_ns(30), "later"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_ns(30), "second"));
    }

    #[test]
    fn far_future_overflow_promotes_in_order() {
        // Events far past the initial wheel horizon (~268 µs) land in the
        // overflow and must still pop in (time, seq) order after re-anchor.
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(500_000), 2);
        q.push(SimTime::from_us(100_000), 1);
        q.push(SimTime::from_us(900_000), 3);
        q.push(SimTime::from_ns(50), 0);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn wheel_rollover_boundary_is_exact() {
        // An event exactly on the initial horizon must overflow, one a tick
        // before it must not — and both must pop in time order.
        let horizon = (BUCKETS as u64) << INITIAL_WIDTH_SHIFT;
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(horizon), "on");
        q.push(SimTime::from_ps(horizon - 1), "before");
        assert_eq!(q.far.len(), 1);
        assert_eq!(q.pop().unwrap(), (SimTime::from_ps(horizon - 1), "before"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_ps(horizon), "on"));
    }

    #[test]
    fn event_core_stats_identities_hold() {
        let mut q = EventQueue::new();
        let serve = q.kind("serve");
        assert_eq!(q.kind("serve"), serve, "re-registering a kind returns the same handle");
        q.push(SimTime::from_ns(10), "a");
        q.push_kind(SimTime::from_ns(20), serve, "b");
        q.push(SimTime::from_us(500_000), "far");
        assert_eq!(q.pop().unwrap().1, "a");
        let s = q.stats();
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.dispatched, 1);
        assert_eq!(s.drain_hits + s.near_hits + s.far_hits, s.enqueued);
        assert_eq!(s.far_hits, 1, "the far-future push overflows the wheel");
        assert_eq!(s.dispatched, s.enqueued - s.cancelled - q.len() as u64);
        // Dwell is charged at push relative to the queue's current time
        // (zero before any pop), total and per kind.
        assert_eq!(s.dwell_ps, 10_000 + 20_000 + 500_000_000_000);
        assert_eq!(s.kinds[0].name, "event");
        assert_eq!(s.kinds[0].pushes, 2);
        assert_eq!(s.kinds[1].name, "serve");
        assert_eq!(s.kinds[1].pushes, 1);
        assert_eq!(s.kinds[1].held_ps, 20_000);
        assert_eq!(s.kinds.iter().map(|k| k.pushes).sum::<u64>(), s.enqueued);
        // Drain the rest: the re-anchor redistributes the overflow ticket.
        while q.pop().is_some() {}
        let s = q.stats();
        assert_eq!(s.dispatched, s.enqueued);
        assert_eq!(s.kinds.iter().map(|k| k.pops).sum::<u64>(), s.dispatched);
        assert_eq!(s.reanchors, 1);
        assert_eq!(s.redistributed, 1);
    }

    #[test]
    fn peek_key_reports_time_and_sequence() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_key(), None);
        q.push(SimTime::from_ns(20), "b");
        q.push(SimTime::from_ns(10), "a");
        assert_eq!(q.peek_key(), Some((SimTime::from_ns(10), 1)));
        q.pop();
        assert_eq!(q.peek_key(), Some((SimTime::from_ns(20), 0)));
    }

    #[test]
    fn pop_within_is_horizon_inclusive() {
        // The window-bounded drain: an event exactly on the horizon fires,
        // one a picosecond past it waits for the next window.
        let mut q = EventQueue::new();
        let horizon = SimTime::from_ns(100);
        q.push(horizon, "on");
        q.push(horizon + crate::time::Span::from_ps(1), "past");
        assert_eq!(q.pop_within(horizon).unwrap().1, "on");
        assert_eq!(q.pop_within(horizon), None);
        assert_eq!(q.len(), 1, "the past-horizon event is still pending");
        assert_eq!(q.pop().unwrap().1, "past");
    }

    #[test]
    fn shared_sequence_preserves_global_fifo_across_queues() {
        // Two partition queues fed from one global counter must merge back
        // into exactly the order a single queue would have popped.
        let mut single = EventQueue::new();
        let mut parts: [EventQueue<u64>; 2] = [EventQueue::new(), EventQueue::new()];
        let mut seq = 0u64;
        for i in 0..64u64 {
            let at = SimTime::from_ns(i / 8); // plenty of same-time ties
            single.push(at, i);
            parts[(i % 2) as usize].push_kind_at_seq(at, EventKind(0), seq, i);
            seq += 1;
        }
        let serial: Vec<u64> = std::iter::from_fn(|| single.pop().map(|(_, e)| e)).collect();
        let mut merged = Vec::new();
        loop {
            let best = match (parts[0].peek_key(), parts[1].peek_key()) {
                (Some(a), Some(b)) => usize::from(b < a),
                (Some(_), None) => 0,
                (None, Some(_)) => 1,
                (None, None) => break,
            };
            merged.push(parts[best].pop().unwrap().1);
        }
        assert_eq!(serial, merged);
    }

    #[test]
    fn stats_absorb_merges_scalars_and_kinds() {
        let mut a = EventQueue::new();
        let ka = a.kind("serve");
        a.push(SimTime::from_ns(10), 1);
        a.push_kind(SimTime::from_ns(20), ka, 2);
        while a.pop().is_some() {}
        let mut b = EventQueue::new();
        let kb = b.kind("reply");
        b.push_kind(SimTime::from_ns(5), kb, 3);
        b.pop();
        let mut total = a.stats().clone();
        total.absorb(b.stats());
        assert_eq!(total.enqueued, 3);
        assert_eq!(total.dispatched, 3);
        assert_eq!(total.dwell_ps, a.stats().dwell_ps + b.stats().dwell_ps);
        assert_eq!(total.drain_hits + total.near_hits + total.far_hits, total.enqueued);
        assert_eq!(total.kinds.iter().map(|k| k.pushes).sum::<u64>(), total.enqueued);
        // "event" merged by name; "serve"/"reply" each carried over.
        assert_eq!(total.kinds.iter().filter(|k| k.name == "event").count(), 1);
        assert!(total.kinds.iter().any(|k| k.name == "serve"));
        assert!(total.kinds.iter().any(|k| k.name == "reply"));
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            q.push(SimTime::from_ns(round), round);
            assert_eq!(q.pop().unwrap().1, round);
        }
        assert_eq!(q.slots.len(), 1, "steady-state churn reuses one slot");
    }
}
