//! `cargo xtask` — workspace automation.
//!
//! ```text
//! cargo xtask analyze [--root PATH] [--verbose]
//! cargo xtask bench [--quick] [--compare PATH] [...]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations (or stale allowlist entries, or
//! bench regressions), 2 = usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::rules::{analyze, Config};

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  analyze [--root PATH] [--verbose]
      Enforce the workspace determinism & unsafety invariants (DESIGN.md §8):
        R1  no HashMap/HashSet in simulation crates
        R2  no wall-clock / thread::spawn / env-dependent I/O in simulation crates
        R3  unsafe confined to crates/ring, each use documented with // SAFETY:
        R4  every pub item in rambda-des, rambda-metrics and rambda-trace documented
        R5  no println!/eprintln! outside src/bin drivers and the bench crate
        R6  deprecated runner shims note \"use SimBuilder ...\", and nothing
            in-tree outside a shim's own file still calls one
      Violations can be allowlisted in xtask/analyze.allow (one per line:
      `RULE path token  # reason`); stale entries are errors.

  bench [--quick] [--sweep NAME]... [--out DIR] [--compare PATH] [--list]
      Build (release) and run the continuous-benchmark harness: seeded
      sweeps reproducing the paper's curves, byte-deterministic
      BENCH_<sweep>.json artifacts, and — with --compare — a regression
      gate against committed baselines (DESIGN.md §10). All flags are
      forwarded to the rambda-bench `bench` binary.
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {
            let mut root: Option<PathBuf> = None;
            let mut verbose = false;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => match args.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => return usage_error("--root requires a path"),
                    },
                    "--verbose" => verbose = true,
                    other => return usage_error(&format!("unknown flag `{other}`")),
                }
            }
            run_analyze(root, verbose)
        }
        Some("bench") => run_bench(args.collect()),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
        None => usage_error("missing command"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// The workspace root: `--root`, or the parent of this crate's manifest dir
/// (so `cargo xtask analyze` works from any cwd inside the workspace).
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    explicit.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().expect("xtask has a parent dir").to_path_buf()
    })
}

/// Runs the bench harness binary in release mode from the workspace root
/// (relative artifact/baseline paths like `bench/baselines` then resolve
/// the same way from any cwd inside the workspace), forwarding all flags
/// and the child's exit status.
fn run_bench(forward: Vec<String>) -> ExitCode {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = std::process::Command::new(cargo)
        .current_dir(workspace_root(None))
        .args(["run", "--release", "-q", "-p", "rambda-bench", "--bin", "bench", "--"])
        .args(forward)
        .status();
    match status {
        Ok(s) => ExitCode::from(s.code().unwrap_or(2).clamp(0, 255) as u8),
        Err(e) => {
            eprintln!("error: failed to launch the bench harness: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_analyze(root: Option<PathBuf>, verbose: bool) -> ExitCode {
    let cfg = Config::rambda(workspace_root(root));
    let analysis = match analyze(&cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if verbose {
        for v in &analysis.allowed {
            println!("allowed: {v}");
        }
    }
    for v in &analysis.violations {
        println!("{v}");
    }
    for stale in &analysis.stale_allows {
        println!("xtask/analyze.allow: stale entry matches nothing, delete it: `{stale}`");
    }

    let n = analysis.violations.len();
    let s = analysis.stale_allows.len();
    println!(
        "analyze: {} files scanned, {n} violation{}, {} allowlisted, {s} stale allowlist entr{}",
        analysis.files_scanned,
        if n == 1 { "" } else { "s" },
        analysis.allowed.len(),
        if s == 1 { "y" } else { "ies" },
    );
    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
