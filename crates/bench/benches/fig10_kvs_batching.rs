//! Fig. 10: impact of the batch size on throughput and latency (100 % GET,
//! Zipf 0.9).
//!
//! Expectations: CPU (per-core) and Smart NIC gain substantially from
//! batching; Rambda gains ~2× from doorbell batching alone; Rambda's
//! latency grows *sub-linearly* with batch (it never waits to fill a
//! batch), unlike the baselines.

use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_bench::{mops, us, Table};
use rambda_kvs::designs::{run_cpu, run_rambda, run_smartnic};
use rambda_kvs::KvsParams;

fn main() {
    let tb = Testbed::default();
    let mut table = Table::new(
        "Fig. 10 — batch-size sweep, 100% GET, zipf 0.9",
        &["batch", "CPU Mops", "CPU us", "CPU(2c) Mops", "SNIC Mops", "SNIC us", "Rambda Mops", "Rambda us"],
    );
    for batch in [1usize, 2, 4, 8, 16, 32] {
        let p = KvsParams { requests: 60_000, ..KvsParams::quick() }.with_zipf(0.9).with_batch(batch);
        let mut p2 = p.clone();
        p2.cores = 2; // per-core batching effect (10 cores stay network-bound)
        let cpu = run_cpu(&tb, &p);
        let cpu2 = run_cpu(&tb, &p2);
        let snic = run_smartnic(&tb, &p);
        let rambda = run_rambda(&tb, &p, DataLocation::HostDram);
        table.row(vec![
            batch.to_string(),
            mops(cpu.throughput_mops()),
            us(cpu.mean_us()),
            mops(cpu2.throughput_mops()),
            mops(snic.throughput_mops()),
            us(snic.mean_us()),
            mops(rambda.throughput_mops()),
            us(rambda.mean_us()),
        ]);
    }
    table.print();
    println!(
        "shape check: baselines gain strongly with batch; Rambda ~2x; Rambda latency grows sub-linearly."
    );
}
