//! Clean fixture for rule R9: the conservation identities mention every
//! counter suffix the rnic fixture publishes. Never compiled — scanned by
//! xtask/tests.

#![forbid(unsafe_code)]

/// Summed counters grouped by suffix.
pub struct Totals;

/// Doorbell and completion accounting over the published counters.
pub fn validate_rnic(totals: &Totals) -> Result<(), String> {
    let wqes = totals.sum(".wqes");
    if totals.sum(".doorbells") > wqes {
        return Err(format!("more doorbells than WQEs"));
    }
    if totals.sum(".cqes") > wqes {
        return Err(format!("more completions than WQEs"));
    }
    Ok(())
}
