//! DLRM inference on Rambda (Sec. IV-C / VI-D).
//!
//! * [`model`] — the functional model: an embedding table with gather-reduce
//!   (sum/max/min/mean), a small MLP, and end-to-end inference.
//! * [`merci`] — MERCI sub-query memoization: pair-clustered memo tables at
//!   0.25× the embedding size; reduction plans that replace co-occurring
//!   pairs with single memo reads, bit-for-bit equal to the naive reduction
//!   up to float associativity.
//! * [`serving`] — the Fig. 13 experiments: CPU (1–16 cores) vs Rambda /
//!   Rambda-LD / Rambda-LH, where the CPU preprocesses requests and the
//!   accelerator performs the bandwidth-bound embedding reduction — the
//!   CPU-accelerator *collaboration* pattern of Sec. III-C.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod merci;
pub mod model;
pub mod serving;

pub use merci::{MemoTable, ReductionPlan};
pub use model::{DlrmModel, EmbeddingTable, Mlp, ReduceOp};
pub use serving::{run_cpu, run_rambda, DlrmCosts, DlrmDesigns, DlrmParams};
