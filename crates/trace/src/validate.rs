//! Cross-validation of a trace against its run's [`RunReport`].
//!
//! The trace and the report are produced by independent code paths from the
//! same simulated events (the tracer mirrors the `StageRecorder`, the
//! sampler mirrors the resources' own counters), so agreement between them
//! is a real end-to-end check, not a tautology.

use std::collections::BTreeMap;

use rambda_metrics::RunReport;

use crate::event::TraceEvent;
use crate::tracer::Tracer;

/// Maximum relative error of the histogram's log-bucket percentiles
/// (`1/(SUBS+1)` — see `rambda_des::hist`).
const HIST_REL_ERR: f64 = 1.0 / 17.0;

/// Checks that a bucketed percentile is consistent with the exact one: the
/// bucket's lower edge never exceeds the exact value and sits within the
/// histogram's worst-case relative error below it.
fn check_percentile(what: &str, hist_ps: u64, exact_ps: u64) -> Result<(), String> {
    if hist_ps > exact_ps {
        return Err(format!("{what}: histogram reports {hist_ps} ps above the exact {exact_ps} ps"));
    }
    let floor = exact_ps as f64 * (1.0 - HIST_REL_ERR) - 1.0;
    if (hist_ps as f64) < floor {
        return Err(format!(
            "{what}: histogram reports {hist_ps} ps, below the resolution floor {floor:.0} ps of the \
             exact {exact_ps} ps"
        ));
    }
    Ok(())
}

impl Tracer {
    /// Validates this trace against the [`RunReport`] of the same run.
    ///
    /// Checks, in order:
    ///
    /// 1. the tracer was enabled and 2. the ring did not overflow (a
    ///    partial trace cannot partition anything);
    /// 3. each request's leg spans partition its issue→completion interval
    ///    exactly, to the picosecond;
    /// 4. the trace holds exactly the report's traced request count and
    ///    5. the same total latency sum;
    /// 6. per-stage span count and time agree exactly with the report's
    ///    stage table, in both directions (no extra or missing stages);
    /// 7. the report's bucketed p99/p999 sit within the histogram's
    ///    worst-case resolution of the exact trace percentiles;
    /// 8. the final counter samples equal the report's resource counters
    ///    (so the sampler's last integral matches the resources' own busy
    ///    time), taken at the report's makespan.
    ///
    /// Because of (3) + (5), the integral of the derived
    /// outstanding-requests series equals the report's total latency sum —
    /// the sweep in the Chrome exporter uses the same request intervals.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn cross_validate(&self, report: &RunReport) -> Result<(), String> {
        if !self.is_enabled() {
            return Err("tracer is disabled; nothing to validate".to_string());
        }
        if self.dropped() > 0 {
            return Err(format!("ring dropped {} events; trace is partial", self.dropped()));
        }

        let mut req_totals: BTreeMap<u64, u64> = BTreeMap::new();
        let mut req_leg_sums: BTreeMap<u64, u64> = BTreeMap::new();
        let mut stage_sums: BTreeMap<&str, (u64, u128)> = BTreeMap::new();
        let mut total_sum: u128 = 0;
        for ev in self.events() {
            match ev {
                TraceEvent::Span { req, stage, start_ps, end_ps, .. } => {
                    *req_leg_sums.entry(*req).or_insert(0) += end_ps - start_ps;
                    let slot = stage_sums.entry(*stage).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += u128::from(end_ps - start_ps);
                }
                TraceEvent::Request { req, start_ps, end_ps, .. } => {
                    req_totals.insert(*req, end_ps - start_ps);
                    total_sum += u128::from(end_ps - start_ps);
                }
                TraceEvent::Sample { .. } | TraceEvent::Fault { .. } => {}
            }
        }

        for (req, total) in &req_totals {
            let legs = req_leg_sums.get(req).copied().unwrap_or(0);
            if legs != *total {
                return Err(format!("request {req}: legs sum to {legs} ps but the request took {total} ps"));
            }
        }
        if let Some(req) = req_leg_sums.keys().find(|r| !req_totals.contains_key(r)) {
            return Err(format!("request {req} has leg spans but no request span"));
        }

        if req_totals.len() as u64 != report.total.count {
            return Err(format!(
                "trace holds {} requests but the report traced {}",
                req_totals.len(),
                report.total.count
            ));
        }
        if total_sum != report.total.sum_ps {
            return Err(format!(
                "traced request totals sum to {} ps but the report's traced total is {} ps",
                total_sum, report.total.sum_ps
            ));
        }

        for (stage, summary) in &report.stages {
            let (count, sum) = stage_sums.get(stage.as_str()).copied().unwrap_or((0, 0));
            if count != summary.count || sum != summary.sum_ps {
                return Err(format!(
                    "stage {stage}: trace has {count} spans / {sum} ps, report has {} / {} ps",
                    summary.count, summary.sum_ps
                ));
            }
        }
        if let Some(stage) = stage_sums.keys().find(|s| !report.stages.iter().any(|(n, _)| n == *s)) {
            return Err(format!("trace stage {stage} is missing from the report"));
        }

        let exact = self.tail_report(0);
        check_percentile("p99", report.total.p99_ps, exact.p99_ps)?;
        check_percentile("p999", report.total.p999_ps, exact.p999_ps)?;

        match self.final_at_ps() {
            None => return Err("no final counter sample was recorded".to_string()),
            Some(at) if at != report.elapsed_ps => {
                return Err(format!(
                    "final sample taken at {at} ps but the report's makespan is {} ps",
                    report.elapsed_ps
                ));
            }
            Some(_) => {}
        }
        let finals: BTreeMap<&str, u64> = self.final_counters().collect();
        for (name, value) in report.resources.counters() {
            // `event_core.*` counters are attached by the profiler after
            // the run's final sample (`SimBuilder::run`); their own mirror
            // identity is enforced by `RunReport::validate_event_core`.
            if name.starts_with("event_core.") {
                continue;
            }
            if finals.get(name).copied() != Some(value) {
                return Err(format!(
                    "resource counter {name}: report says {value}, final trace sample says {:?}",
                    finals.get(name)
                ));
            }
        }
        if let Some((name, _)) = finals.iter().find(|(n, _)| report.resources.counter(n).is_none()) {
            return Err(format!("trace sampled counter {name} that the report does not publish"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_des::{Histogram, SimTime, Span};
    use rambda_metrics::{HistSummary, MetricSet, StageRecorder};

    /// Runs a tiny synthetic "runner" with recorder + tracer in lockstep
    /// and assembles the matching report.
    fn run(tracer: &mut Tracer) -> RunReport {
        let mut rec = StageRecorder::active();
        let mut latency = Histogram::new();
        let mut done_at = SimTime::ZERO;
        for i in 0..50u64 {
            let t0 = SimTime::from_us(i);
            let mut obs = tracer.observe(&mut rec, t0);
            obs.leg("fabric_request", t0 + Span::from_ns(200));
            obs.leg("apu_compute", obs.now() + Span::from_ns(300 + 40 * (i % 7)));
            let done = obs.now();
            obs.finish(done);
            latency.record(done - t0);
            done_at = done_at.max(done);
            tracer.maybe_sample(done, |s| s.set("accel.ops", i + 1));
        }
        let mut resources = MetricSet::new();
        resources.set("accel.ops", 50);
        tracer.final_sample(done_at, &resources);
        RunReport::new(
            "test.traced",
            3,
            50,
            1.0e6,
            done_at.saturating_since(SimTime::ZERO),
            HistSummary::of(&latency),
            &rec,
            resources,
        )
    }

    #[test]
    fn consistent_run_cross_validates() {
        let mut tracer = Tracer::flight_recorder();
        let report = run(&mut tracer);
        report.validate().expect("report is self-consistent");
        tracer.cross_validate(&report).expect("trace matches report");
    }

    #[test]
    fn disabled_tracer_fails() {
        let mut tracer = Tracer::disabled();
        let report = run(&mut tracer);
        let err = tracer.cross_validate(&report).unwrap_err();
        assert!(err.contains("disabled"), "{err}");
    }

    #[test]
    fn overflowed_ring_fails() {
        let mut tracer = Tracer::bounded(8, Span::from_us(50));
        let report = run(&mut tracer);
        let err = tracer.cross_validate(&report).unwrap_err();
        assert!(err.contains("dropped"), "{err}");
    }

    #[test]
    fn mismatched_counters_fail() {
        let mut tracer = Tracer::flight_recorder();
        let mut report = run(&mut tracer);
        report.resources.set("accel.ops", 51);
        let err = tracer.cross_validate(&report).unwrap_err();
        assert!(err.contains("accel.ops"), "{err}");
    }

    #[test]
    fn foreign_stage_fails() {
        let mut tracer = Tracer::flight_recorder();
        let mut report = run(&mut tracer);
        report.stages.retain(|(name, _)| name != "apu_compute");
        let err = tracer.cross_validate(&report).unwrap_err();
        assert!(err.contains("apu_compute"), "{err}");
    }

    #[test]
    fn percentile_check_enforces_the_resolution_band() {
        check_percentile("p99", 1000, 1000).unwrap();
        check_percentile("p99", 950, 1000).unwrap();
        let above = check_percentile("p99", 1001, 1000).unwrap_err();
        assert!(above.contains("above"), "{above}");
        let below = check_percentile("p99", 900, 1000).unwrap_err();
        assert!(below.contains("resolution floor"), "{below}");
    }
}
