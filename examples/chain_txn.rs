//! Chain-replication transactions: functional ACID behaviour (conflict
//! queueing, crash recovery) plus the HyperLoop-vs-Rambda latency
//! comparison on multi-operation transactions.
//!
//! Run: `cargo run --release -p rambda-examples --bin chain_txn`

use rambda::Testbed;
use rambda_examples::{banner, metric};
use rambda_txn::{run_hyperloop, run_rambda_tx, Chain, TxnParams, TxnWrite};
use rambda_workloads::TxnSpec;

fn main() {
    banner("functional chain: replicate, crash, recover");
    let mut chain = Chain::new(3);
    for key in 0..100u64 {
        chain.execute(&[], vec![TxnWrite { key, value: vec![key as u8; 32] }]);
    }
    // Multi-write transaction commits atomically as one log record.
    chain.execute(
        &[],
        vec![
            TxnWrite { key: 1, value: b"updated-1".to_vec() },
            TxnWrite { key: 2, value: b"updated-2".to_vec() },
        ],
    );
    metric("replicas", chain.len());
    metric("log records at head", chain.replica(0).log_len());
    chain.replica_mut(2).crash();
    metric("tail after crash holds keys", chain.replica(2).len());
    chain.replica_mut(2).recover();
    metric("tail after recovery holds keys", chain.replica(2).len());
    chain.check_consistency().expect("chain must be consistent after recovery");
    metric("key 1 on recovered tail", String::from_utf8_lossy(chain.replica(2).get(1).unwrap()).to_string());

    banner("Fig. 12 style latency comparison (2-replica emulation)");
    let testbed = Testbed::default();
    for (label, spec) in [
        ("(0,1) x 64B ", TxnSpec::single_write(64)),
        ("(4,2) x 64B ", TxnSpec::read_write(64)),
        ("(4,2) x 1KB ", TxnSpec::read_write(1024)),
    ] {
        let params = TxnParams::quick(spec);
        let hl = run_hyperloop(&testbed, &params);
        let rt = run_rambda_tx(&testbed, &params);
        metric(
            label,
            format!(
                "HyperLoop {:>6.2} us   Rambda {:>6.2} us   saving {:>5.1}%",
                hl.mean_us(),
                rt.mean_us(),
                (1.0 - rt.mean_us() / hl.mean_us()) * 100.0
            ),
        );
    }
    println!("\nOne combined near-data transaction replaces one chain round per KV pair.");
}
