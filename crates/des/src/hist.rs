//! Log-binned latency histogram.
//!
//! 64 log2 octaves × 16 linear sub-buckets cover the full picosecond range.
//! Quantiles report the *lower edge* of the bucket a sample lands in, so
//! with `s = 16` sub-buckets the worst-case relative error is exactly
//! bounded by `1/(s+1) = 1/17 ≈ 5.9 %` (a sample at the top of a sub-bucket
//! of width `w` sits `w - 1` above the edge, and the edge is at least
//! `16 w`; the bound is approached as the octave grows — see the
//! `worst_case_relative_error_is_one_over_seventeen` test). Values below
//! 2^4 ps are represented exactly. That resolution is plenty for reporting
//! mean / p50 / p99 / p99.9 latency the way the paper does; means and sums
//! are kept outside the bins and are exact.

use serde::{Deserialize, Serialize};

use crate::time::Span;

const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
const BUCKETS: usize = 64 * SUBS;

/// A log-binned histogram of [`Span`] samples.
///
/// ```
/// use rambda_des::{Histogram, Span};
/// let mut h = Histogram::new();
/// for us in 1..=100 {
///     h.record(Span::from_us(us));
/// }
/// assert_eq!(h.count(), 100);
/// let p99 = h.percentile(0.99);
/// // Bucket resolution: worst-case relative error 1/17 (~5.9 %).
/// assert!(p99 >= Span::from_us(92) && p99 <= Span::from_us(105));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum_ps: u128,
    min_ps: u64,
    max_ps: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKETS], count: 0, sum_ps: 0, min_ps: u64::MAX, max_ps: 0 }
    }

    fn bucket_index(ps: u64) -> usize {
        if ps < SUBS as u64 {
            return ps as usize;
        }
        let exp = 63 - ps.leading_zeros();
        let sub = (ps >> (exp - SUB_BITS)) & (SUBS as u64 - 1);
        ((exp - SUB_BITS + 1) as usize) * SUBS + sub as usize
    }

    fn bucket_value(idx: usize) -> u64 {
        if idx < SUBS {
            return idx as u64;
        }
        let exp = (idx / SUBS) as u32 + SUB_BITS - 1;
        let sub = (idx % SUBS) as u64;
        (1u64 << exp) | (sub << (exp - SUB_BITS))
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Span) {
        let ps = sample.as_ps();
        let idx = Self::bucket_index(ps).min(BUCKETS - 1);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_ps += ps as u128;
        self.min_ps = self.min_ps.min(ps);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples, in picoseconds.
    ///
    /// The sum is kept outside the log bins, so it is exact — the metrics
    /// layer relies on this for its stage-decomposition identity checks.
    pub fn sum_ps(&self) -> u128 {
        self.sum_ps
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples (exact, not binned).
    ///
    /// Returns [`Span::ZERO`] if the histogram is empty.
    pub fn mean(&self) -> Span {
        if self.count == 0 {
            Span::ZERO
        } else {
            Span::from_ps((self.sum_ps / self.count as u128) as u64)
        }
    }

    /// Smallest recorded sample, or [`Span::ZERO`] if empty.
    pub fn min(&self) -> Span {
        if self.count == 0 {
            Span::ZERO
        } else {
            Span::from_ps(self.min_ps)
        }
    }

    /// Largest recorded sample, or [`Span::ZERO`] if empty.
    pub fn max(&self) -> Span {
        if self.count == 0 {
            Span::ZERO
        } else {
            Span::from_ps(self.max_ps)
        }
    }

    /// The `q`-quantile (e.g. `0.99` for p99), to bucket resolution.
    ///
    /// Returns [`Span::ZERO`] if the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Span {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return Span::ZERO;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Span::from_ps(Self::bucket_value(idx).min(self.max_ps).max(self.min_ps));
            }
        }
        Span::from_ps(self.max_ps)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        self.min_ps = self.min_ps.min(other.min_ps);
        self.max_ps = self.max_ps.max(other.max_ps);
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum_ps = 0;
        self.min_ps = u64::MAX;
        self.max_ps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), Span::ZERO);
        assert_eq!(h.percentile(0.99), Span::ZERO);
        assert_eq!(h.min(), Span::ZERO);
        assert_eq!(h.max(), Span::ZERO);
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new();
        h.record(Span::from_ns(123));
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Span::from_ns(123));
        let p = h.percentile(0.5);
        let err = (p.as_ps() as f64 - 123_000.0).abs() / 123_000.0;
        assert!(err < 0.07, "p50={p}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(Span::from_ns(100));
        h.record(Span::from_ns(300));
        assert_eq!(h.mean(), Span::from_ns(200));
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(Span::from_ns(i));
        }
        let mut last = Span::ZERO;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let p = h.percentile(q);
            assert!(p >= last, "q={q} gave {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn p99_accuracy() {
        let mut h = Histogram::new();
        for i in 1..=100_000u64 {
            h.record(Span::from_ns(i));
        }
        let p99 = h.percentile(0.99).as_ns_f64();
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.05, "p99={p99}");
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Span::from_ns(10));
        b.record(Span::from_ns(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Span::from_ns(20));
        assert_eq!(a.min(), Span::from_ns(10));
        assert_eq!(a.max(), Span::from_ns(30));
    }

    #[test]
    fn empty_percentile_is_zero_at_every_quantile() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Span::ZERO, "q={q}");
        }
        assert_eq!(h.sum_ps(), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = Histogram::new();
        h.record(Span::from_us(7));
        for q in [0.0, 0.5, 1.0] {
            let p = h.percentile(q);
            let err = (p.as_ps() as f64 - 7.0e6).abs() / 7.0e6;
            assert!(err < 0.07, "q={q} p={p}");
        }
        assert_eq!(h.min(), h.max());
        assert_eq!(h.sum_ps(), 7_000_000);
    }

    #[test]
    fn merge_of_disjoint_ranges_keeps_both_tails() {
        // One histogram entirely in the ns range, one entirely in the ms
        // range; the merge must preserve the global min/max, the exact sum,
        // and put the median between the two clusters.
        let mut low = Histogram::new();
        let mut high = Histogram::new();
        for i in 1..=100u64 {
            low.record(Span::from_ns(i));
            high.record(Span::from_us(1000 + i));
        }
        let low_sum = low.sum_ps();
        let high_sum = high.sum_ps();
        low.merge(&high);
        assert_eq!(low.count(), 200);
        assert_eq!(low.sum_ps(), low_sum + high_sum);
        assert_eq!(low.min(), Span::from_ns(1));
        assert_eq!(low.max(), Span::from_us(1100));
        // p25 still in the low cluster, p75 in the high cluster.
        assert!(low.percentile(0.25) <= Span::from_ns(100));
        assert!(low.percentile(0.75) >= Span::from_us(900));
    }

    #[test]
    fn windowed_merge_matches_direct_accumulation() {
        // The timeline use case: a run's samples split into per-window
        // histograms by completion time, then merged back into a whole-run
        // histogram. Merge adds bucket counts, exact sums and min/max
        // losslessly, so every summary statistic matches the directly
        // accumulated histogram *exactly* — percentiles land in the same
        // bucket, so not even the usual 1/17 bucket tolerance is needed.
        let mut direct = Histogram::new();
        let mut windows: Vec<Histogram> = (0..16).map(|_| Histogram::new()).collect();
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        for i in 0..50_000u64 {
            // Cheap xorshift spread over ~4 decades of latency.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let sample = Span::from_ps(1 + x % 10_000_000);
            direct.record(sample);
            windows[(i % 16) as usize].record(sample);
        }
        let mut merged = Histogram::new();
        for w in &windows {
            merged.merge(w);
        }
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.sum_ps(), direct.sum_ps());
        assert_eq!(merged.min(), direct.min());
        assert_eq!(merged.max(), direct.max());
        assert_eq!(merged.mean(), direct.mean());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(merged.percentile(q), direct.percentile(q), "q={q}");
        }
    }

    #[test]
    fn merge_into_empty_histogram_copies() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.record(Span::from_ns(42));
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), Span::from_ns(42));
        assert_eq!(a.max(), Span::from_ns(42));
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(Span::from_ns(10));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.max(), Span::ZERO);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        Histogram::new().percentile(1.5);
    }

    #[test]
    fn bucket_round_trip_error_bounded() {
        for ps in [1u64, 15, 16, 17, 1000, 123_456, 999_999_999, u64::MAX / 2] {
            let idx = Histogram::bucket_index(ps);
            let v = Histogram::bucket_value(idx);
            assert!(v <= ps, "bucket value {v} exceeds sample {ps}");
            let err = (ps - v) as f64 / ps as f64;
            assert!(err < 1.0 / (SUBS as f64 + 1.0), "ps={ps} err={err}");
        }
    }

    #[test]
    fn worst_case_relative_error_is_one_over_seventeen() {
        // The module doc's claim, verified exhaustively at the worst point of
        // every sub-bucket in every octave: with s = SUBS sub-buckets, a
        // sample at the top of a sub-bucket of width `w = 2^(exp-4)` reports
        // the lower edge `2^exp + sub*w`, so the error `(w-1)/ps` is maximal
        // for `sub = 0` and grows with the octave toward — but never
        // reaching — `1/(s+1)`.
        let bound = 1.0 / (SUBS as f64 + 1.0); // 1/17 ≈ 0.0588
        let mut worst = 0.0f64;
        for exp in SUB_BITS..63 {
            let base = 1u64 << exp;
            let stride = (base >> SUB_BITS).max(1);
            for sub in 0..SUBS as u64 {
                let ps = base + sub * stride + (stride - 1); // top of sub-bucket
                let idx = Histogram::bucket_index(ps);
                let v = Histogram::bucket_value(idx);
                assert!(v <= ps, "bucket value {v} exceeds sample {ps}");
                worst = worst.max((ps - v) as f64 / ps as f64);
            }
        }
        // Mathematically `worst` is strictly below the bound — it equals
        // (w-1)/(17w-1) at the top octave — but at that magnitude the f64
        // quotient rounds to exactly 1/17, hence `<=`.
        assert!(worst <= bound, "worst-case error {worst} exceeds 1/(SUBS+1) = {bound}");
        // The bound is tight: the sup is approached (not attained) as the
        // octave grows, so the observed worst case sits essentially at 1/17
        // — in particular well above the old "~1.5 %" claim.
        assert!(worst > bound - 1e-9, "bound is not tight: worst {worst} vs {bound}");
    }
}
