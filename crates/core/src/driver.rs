//! The closed-loop measurement driver.
//!
//! Every experiment in the paper drives the server with closed-loop client
//! instances: each keeps a window of outstanding requests and issues a new
//! one the moment a response lands. Throughput is measured in steady state
//! (after a warm-up) and latency as the full issue→response span, so
//! queueing at every modelled resource shows up in the tail.

use rambda_des::{EventCoreStats, EventQueue, Histogram, SimTime, Span};
use serde::{Deserialize, Serialize};

/// Driver parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Closed-loop client instances.
    pub clients: usize,
    /// Outstanding requests per client.
    pub window: usize,
    /// Total requests to run.
    pub requests: u64,
    /// Fraction of requests treated as warm-up (excluded from stats).
    pub warmup: f64,
}

impl DriverConfig {
    /// A conventional configuration: `clients` clients, window 16, `n`
    /// requests, 10 % warm-up.
    pub fn new(clients: usize, n: u64) -> Self {
        DriverConfig { clients, window: 16, requests: n, warmup: 0.1 }
    }

    /// Sets the per-client window.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }
}

/// How the driver executes the simulated machines' events.
///
/// `Serial` is the classic single-wheel dispatch loop. `Conservative` is a
/// Chandy-Misra-style lookahead-synchronized executor: clients are sharded
/// into per-worker partitions, each partition's event wheel advances
/// independently up to a safe horizon (global minimum next-event time plus
/// the fabric's minimum link latency), and partitions synchronize at window
/// barriers. Cross-partition deliveries merge in deterministic
/// (timestamp, insertion-sequence) order, so the observable run — and the
/// resulting `RunReport` — is byte-identical to a serial run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// Single event wheel, global dispatch order (the default).
    #[default]
    Serial,
    /// Lookahead-windowed partitioned execution with `workers` partitions.
    ///
    /// Falls back to serial when `workers < 2`, when the design supplies a
    /// zero lookahead bound (opting out), or when there are fewer than two
    /// clients to shard.
    Conservative {
        /// Number of partitions to shard the closed-loop clients across.
        workers: usize,
    },
}

impl Execution {
    /// Human-readable label recorded on the run report: `"serial"` or
    /// `"conservative(N)"`.
    pub fn label(&self) -> String {
        match self {
            Execution::Serial => "serial".to_string(),
            Execution::Conservative { workers } => format!("conservative({workers})"),
        }
    }
}

/// Telemetry from the conservative executor: how many lookahead windows it
/// opened, how many barriers it crossed, and how often a partition stalled
/// with pending work beyond the horizon. All zero under serial execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Partitions the clients were sharded into (0 under serial).
    pub partitions: u64,
    /// Lookahead windows opened.
    pub windows: u64,
    /// Window barriers crossed (one per window, by construction).
    pub barriers: u64,
    /// Partition-window pairs that still held events past the horizon when
    /// the barrier closed — the work the lookahead bound deferred.
    pub horizon_stalls: u64,
}

/// Results of a closed-loop run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Requests measured (post-warm-up).
    pub completed: u64,
    /// Steady-state throughput in operations per second.
    pub throughput_ops: f64,
    /// Issue→response latency histogram (post-warm-up).
    pub latency: Histogram,
    /// Simulated time of the last completion (the run's makespan) — the
    /// denominator for resource-utilization figures in run reports.
    pub makespan: Span,
    /// Event-core telemetry captured from the driver's event queue after the
    /// run drains (dispatch counts, wheel-tier hits, sim-time dwell). Under
    /// conservative execution this is the fold of every partition's queue.
    pub event_core: EventCoreStats,
    /// Conservative-executor window/barrier accounting (zero under serial).
    pub exec: ExecStats,
}

impl RunStats {
    /// Throughput in Mops.
    pub fn throughput_mops(&self) -> f64 {
        self.throughput_ops / 1.0e6
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.latency.mean().as_us_f64()
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.latency.percentile(0.99).as_us_f64()
    }
}

/// Runs a closed loop: `serve(client, issue_time) -> completion_time`.
///
/// `serve` is called with non-decreasing times per client; resources inside
/// it (links, servers) provide the queueing.
///
/// # Panics
///
/// Panics if the configuration has zero clients, window, or requests.
pub fn run_closed_loop<F>(cfg: &DriverConfig, serve: F) -> RunStats
where
    F: FnMut(usize, SimTime) -> SimTime,
{
    run_closed_loop_exec(cfg, Execution::Serial, Span::ZERO, serve)
}

/// Shared post-warm-up measurement accounting for both executors. Processing
/// a completion in (time, sequence) order through this struct is what makes
/// the two execution modes observably identical.
struct Measure {
    warmup_count: u64,
    completed: u64,
    measured: u64,
    window_start: SimTime,
    window_end: SimTime,
    latency: Histogram,
}

impl Measure {
    fn new(cfg: &DriverConfig) -> Self {
        Measure {
            warmup_count: ((cfg.requests as f64) * cfg.warmup) as u64,
            completed: 0,
            measured: 0,
            window_start: SimTime::ZERO,
            window_end: SimTime::ZERO,
            latency: Histogram::new(),
        }
    }

    fn complete(&mut self, done: SimTime, issued_at: SimTime) {
        self.completed += 1;
        if self.completed == self.warmup_count.max(1) {
            self.window_start = done;
        }
        if self.completed > self.warmup_count.max(1) {
            self.latency.record(done - issued_at);
            self.measured += 1;
            self.window_end = done;
        }
    }

    fn finish(self, event_core: EventCoreStats, exec: ExecStats) -> RunStats {
        let span = self.window_end.saturating_since(self.window_start);
        let throughput = if span.is_zero() { 0.0 } else { self.measured as f64 / span.as_secs_f64() };
        RunStats {
            completed: self.measured,
            throughput_ops: throughput,
            latency: self.latency,
            makespan: self.window_end.saturating_since(SimTime::ZERO),
            event_core,
            exec,
        }
    }
}

/// Runs a closed loop under an explicit execution mode.
///
/// `lookahead` is the design's conservative bound on cross-partition event
/// latency — typically the fabric's minimum wire latency
/// (`Network::min_lookahead`). A zero lookahead opts the design out of
/// parallel execution (single-machine designs have no safe horizon), as does
/// `workers < 2` or a driver with fewer than two clients to shard.
///
/// # Determinism
///
/// The conservative path shards clients into `min(workers, clients)`
/// partition queues that share one global insertion-sequence counter. Each
/// window it advances every partition up to the horizon (global minimum
/// next-event time + `lookahead`, inclusive), always dispatching the globally
/// smallest (time, sequence) head. That merge order is exactly the pop order
/// of a single serial queue, so completions — and therefore every derived
/// statistic — are byte-identical to `Execution::Serial`.
///
/// # Panics
///
/// Panics if the configuration has zero clients, window, or requests.
pub fn run_closed_loop_exec<F>(cfg: &DriverConfig, exec: Execution, lookahead: Span, mut serve: F) -> RunStats
where
    F: FnMut(usize, SimTime) -> SimTime,
{
    assert!(cfg.clients > 0 && cfg.window > 0 && cfg.requests > 0, "empty driver config");
    let workers = match exec {
        Execution::Conservative { workers } if workers >= 2 => workers,
        _ => 0,
    };
    if workers >= 2 && !lookahead.is_zero() && cfg.clients >= 2 {
        return run_conservative(cfg, workers.min(cfg.clients), lookahead, serve);
    }

    let mut queue: EventQueue<(usize, SimTime)> = EventQueue::new();
    let prime_kind = queue.kind("prime");
    let serve_kind = queue.kind("serve");
    let mut issued = 0u64;

    // Prime every client's window.
    'prime: for c in 0..cfg.clients {
        for _ in 0..cfg.window {
            if issued >= cfg.requests {
                break 'prime;
            }
            // Tiny stagger keeps initial issues deterministic but ordered.
            let t0 = SimTime::from_ps(issued);
            let done = serve(c, t0);
            queue.push_kind(done, prime_kind, (c, t0));
            issued += 1;
        }
    }

    let mut m = Measure::new(cfg);
    while let Some((done, (client, issued_at))) = queue.pop() {
        m.complete(done, issued_at);
        if issued < cfg.requests {
            let next = serve(client, done);
            queue.push_kind(next, serve_kind, (client, done));
            issued += 1;
        }
    }
    m.finish(queue.stats().clone(), ExecStats::default())
}

/// The conservative lookahead-windowed executor. `parts >= 2` and
/// `lookahead > 0` are guaranteed by the caller.
fn run_conservative<F>(cfg: &DriverConfig, parts: usize, lookahead: Span, mut serve: F) -> RunStats
where
    F: FnMut(usize, SimTime) -> SimTime,
{
    // One event wheel per partition; clients shard round-robin so every
    // partition stays loaded. All queues draw insertion sequences from one
    // global counter — the invariant the deterministic merge rests on.
    let mut queues: Vec<EventQueue<(usize, SimTime)>> = Vec::with_capacity(parts);
    let mut prime_kinds = Vec::with_capacity(parts);
    let mut serve_kinds = Vec::with_capacity(parts);
    for _ in 0..parts {
        let mut q = EventQueue::new();
        prime_kinds.push(q.kind("prime"));
        serve_kinds.push(q.kind("serve"));
        queues.push(q);
    }
    let mut next_seq = 0u64;
    let mut issued = 0u64;

    // Prime in the same global order as the serial executor.
    'prime: for c in 0..cfg.clients {
        for _ in 0..cfg.window {
            if issued >= cfg.requests {
                break 'prime;
            }
            let t0 = SimTime::from_ps(issued);
            let done = serve(c, t0);
            let p = c % parts;
            queues[p].push_kind_at_seq(done, prime_kinds[p], next_seq, (c, t0));
            next_seq += 1;
            issued += 1;
        }
    }

    let mut m = Measure::new(cfg);
    let mut exec = ExecStats { partitions: parts as u64, windows: 0, barriers: 0, horizon_stalls: 0 };

    // Window loop: open a lookahead window at the global minimum next-event
    // time, drain every partition up to the (inclusive) horizon in global
    // (time, seq) order, then barrier and account for deferred work.
    loop {
        let mut min_t: Option<SimTime> = None;
        for q in queues.iter_mut() {
            if let Some((at, _)) = q.peek_key() {
                min_t = Some(min_t.map_or(at, |m| m.min(at)));
            }
        }
        let Some(min_t) = min_t else { break };
        let horizon = min_t + lookahead;
        exec.windows += 1;

        // Merge loop: repeatedly dispatch the globally smallest
        // (time, sequence) head at or before the horizon. `serve` mutates
        // shared world state, so the merge must interleave partitions
        // exactly as the serial wheel would.
        loop {
            let mut best: Option<(SimTime, u64, usize)> = None;
            for (p, q) in queues.iter_mut().enumerate() {
                if let Some((at, seq)) = q.peek_key() {
                    if at <= horizon && best.is_none_or(|(bt, bs, _)| (at, seq) < (bt, bs)) {
                        best = Some((at, seq, p));
                    }
                }
            }
            let Some((_, _, p)) = best else { break };
            let (done, (client, issued_at)) = queues[p].pop().expect("peeked head vanished");
            m.complete(done, issued_at);
            if issued < cfg.requests {
                let next = serve(client, done);
                // A completion re-arms its own client, which may live in any
                // partition — this is the cross-partition delivery, exchanged
                // here at the barrier boundary with its global sequence.
                let dest = client % parts;
                queues[dest].push_kind_at_seq(next, serve_kinds[dest], next_seq, (client, done));
                next_seq += 1;
                issued += 1;
            }
        }

        exec.barriers += 1;
        exec.horizon_stalls += queues.iter().filter(|q| !q.is_empty()).count() as u64;
    }

    let mut event_core = EventCoreStats::default();
    for q in &queues {
        event_core.absorb(q.stats());
    }
    m.finish(event_core, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_des::{Server, Span};

    #[test]
    fn fixed_service_time_throughput() {
        // One server unit, 100ns service: throughput must be 10 Mops
        // regardless of client count.
        let mut server = Server::new(1);
        let cfg = DriverConfig::new(4, 50_000);
        let stats = run_closed_loop(&cfg, |_c, at| {
            let start = server.acquire(at, Span::from_ns(100));
            start + Span::from_ns(100)
        });
        assert!((stats.throughput_mops() - 10.0).abs() < 0.1, "{}", stats.throughput_mops());
        assert!(stats.completed > 40_000);
    }

    #[test]
    fn latency_includes_queueing() {
        // 4 clients x window 16 = 64 outstanding on one 100ns unit:
        // latency ≈ 64 x 100ns.
        let mut server = Server::new(1);
        let cfg = DriverConfig::new(4, 20_000);
        let stats = run_closed_loop(&cfg, |_c, at| {
            let start = server.acquire(at, Span::from_ns(100));
            start + Span::from_ns(100)
        });
        let mean = stats.mean_us();
        assert!((5.0..7.5).contains(&mean), "mean={mean}");
    }

    #[test]
    fn parallel_units_scale_throughput() {
        let mut server = Server::new(4);
        let cfg = DriverConfig::new(8, 50_000);
        let stats = run_closed_loop(&cfg, |_c, at| {
            let start = server.acquire(at, Span::from_ns(100));
            start + Span::from_ns(100)
        });
        assert!((stats.throughput_mops() - 40.0).abs() < 1.0, "{}", stats.throughput_mops());
    }

    #[test]
    fn zero_latency_service_does_not_panic() {
        let cfg = DriverConfig::new(1, 100);
        let stats = run_closed_loop(&cfg, |_c, at| at + Span::from_ns(1));
        assert!(stats.completed > 0);
    }

    #[test]
    #[should_panic(expected = "empty driver config")]
    fn bad_config_panics() {
        run_closed_loop(&DriverConfig { clients: 0, window: 1, requests: 1, warmup: 0.0 }, |_c, at| at);
    }

    /// Runs the same contended-server workload under `exec` so stats can be
    /// compared across execution modes. The shared `Server` makes `serve`
    /// order-sensitive: any divergence in dispatch order changes the result.
    fn run_contended(cfg: &DriverConfig, exec: Execution, lookahead: Span) -> RunStats {
        let mut server = Server::new(2);
        run_closed_loop_exec(cfg, exec, lookahead, |_c, at| {
            let start = server.acquire(at, Span::from_ns(100));
            start + Span::from_ns(100)
        })
    }

    fn assert_same_observables(a: &RunStats, b: &RunStats) {
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.throughput_ops.to_bits(), b.throughput_ops.to_bits());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.latency.count(), b.latency.count());
        assert_eq!(a.latency.sum_ps(), b.latency.sum_ps());
        assert_eq!(a.latency.min(), b.latency.min());
        assert_eq!(a.latency.max(), b.latency.max());
        assert_eq!(a.latency.percentile(0.5), b.latency.percentile(0.5));
        assert_eq!(a.latency.percentile(0.99), b.latency.percentile(0.99));
    }

    #[test]
    fn conservative_matches_serial_on_a_contended_server() {
        let cfg = DriverConfig::new(6, 30_000);
        let serial = run_contended(&cfg, Execution::Serial, Span::from_ns(50));
        for workers in [2, 3, 6] {
            let par = run_contended(&cfg, Execution::Conservative { workers }, Span::from_ns(50));
            assert_same_observables(&serial, &par);
            assert_eq!(par.exec.partitions, workers as u64);
            assert!(par.exec.windows > 0);
            assert_eq!(par.exec.barriers, par.exec.windows);
        }
        assert_eq!(serial.exec, ExecStats::default());
    }

    #[test]
    fn zero_lookahead_falls_back_to_serial() {
        // A design that cannot bound cross-partition latency opts out with
        // `Span::ZERO`; the driver must take the serial path verbatim.
        let cfg = DriverConfig::new(4, 5_000);
        let serial = run_contended(&cfg, Execution::Serial, Span::ZERO);
        let par = run_contended(&cfg, Execution::Conservative { workers: 4 }, Span::ZERO);
        assert_same_observables(&serial, &par);
        assert_eq!(par.exec, ExecStats::default());
    }

    #[test]
    fn single_client_falls_back_to_serial() {
        // One client cannot be sharded; the conservative request degrades to
        // the serial executor rather than spinning up a lone partition.
        let cfg = DriverConfig::new(1, 2_000);
        let par = run_contended(&cfg, Execution::Conservative { workers: 8 }, Span::from_ns(50));
        assert_eq!(par.exec, ExecStats::default());
        let serial = run_contended(&cfg, Execution::Serial, Span::from_ns(50));
        assert_same_observables(&serial, &par);
    }

    #[test]
    fn workers_beyond_clients_clamp_to_client_count() {
        let cfg = DriverConfig::new(3, 5_000);
        let par = run_contended(&cfg, Execution::Conservative { workers: 64 }, Span::from_ns(50));
        assert_eq!(par.exec.partitions, 3);
        let serial = run_contended(&cfg, Execution::Serial, Span::from_ns(50));
        assert_same_observables(&serial, &par);
    }

    #[test]
    fn delivery_exactly_on_horizon_is_dispatched_within_the_window() {
        // Fixed 50ns service with a 50ns lookahead: every re-issue lands
        // exactly on the window horizon. Inclusive horizons dispatch it in
        // the same window; an exclusive bound would defer every event and
        // open one window per completion.
        let cfg = DriverConfig::new(4, 4_000).with_window(1);
        let lookahead = Span::from_ns(50);
        let serve = |_c: usize, at: SimTime| at + Span::from_ns(50);
        let serial = run_closed_loop_exec(&cfg, Execution::Serial, lookahead, serve);
        let par = run_closed_loop_exec(&cfg, Execution::Conservative { workers: 2 }, lookahead, serve);
        assert_same_observables(&serial, &par);
        assert!(
            par.exec.windows < cfg.requests,
            "horizon must be inclusive: {} windows for {} requests",
            par.exec.windows,
            cfg.requests
        );
    }
}
