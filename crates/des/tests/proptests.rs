//! Property-based tests for the discrete-event core.

use proptest::prelude::*;
use rambda_des::{Histogram, Link, Server, SimTime, Span, Throttle};

proptest! {
    /// Fluid-queue conservation for time-ordered arrivals: the link never
    /// moves bytes faster than its rate. (Out-of-timestamp-order
    /// reservations intentionally share bandwidth instead — see the Link
    /// docs — so the invariant is stated over ordered arrivals.)
    #[test]
    fn link_never_exceeds_bandwidth(mut transfers in proptest::collection::vec((0u64..1000, 1u64..100_000), 1..200)) {
        transfers.sort_by_key(|&(at, _)| at);
        let bw = 1.0e9;
        let mut link = Link::new(bw, Span::ZERO);
        let mut last_depart = SimTime::ZERO;
        let mut total_bytes = 0u64;
        for (at_us, bytes) in transfers {
            let t = link.transfer(SimTime::from_us(at_us), bytes);
            total_bytes += bytes;
            prop_assert!(t.depart >= SimTime::from_us(at_us));
            last_depart = last_depart.max(t.depart);
        }
        let min_time = total_bytes as f64 / bw;
        // All bytes can only have finished at or after the fluid minimum
        // (arrivals start at time >= 0).
        prop_assert!(last_depart.as_secs_f64() >= min_time * 0.999);
        prop_assert_eq!(link.bytes_moved(), total_bytes);
    }

    /// Monotone arrivals see monotone departures (FIFO within the fluid
    /// model when arrivals are ordered).
    #[test]
    fn link_is_fifo_for_ordered_arrivals(gaps in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut link = Link::new(1.0e9, Span::from_ns(10));
        let mut at = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        for g in gaps {
            at += Span::from_ns(g);
            let t = link.transfer(at, 500);
            prop_assert!(t.depart >= last);
            last = t.depart;
        }
    }

    /// A k-unit server never runs more than k requests concurrently.
    #[test]
    fn server_capacity_invariant(holds in proptest::collection::vec(1u64..1000, 1..200), units in 1usize..8) {
        let mut server = Server::new(units);
        let mut completions: Vec<(SimTime, SimTime)> = Vec::new();
        for h in holds {
            let hold = Span::from_ns(h);
            let start = server.acquire(SimTime::ZERO, hold);
            completions.push((start, start + hold));
        }
        // At any start instant, count overlapping service intervals.
        for &(s, _) in &completions {
            let overlapping = completions
                .iter()
                .filter(|&&(a, b)| a <= s && s < b)
                .count();
            prop_assert!(overlapping <= units, "{overlapping} > {units} units busy");
        }
    }

    /// Throttle admission rate never exceeds 1/gap in the long run.
    #[test]
    fn throttle_rate_invariant(n in 1u64..500) {
        let mut t = Throttle::new(Span::from_ns(10));
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = t.admit(SimTime::ZERO);
        }
        // n admissions take at least (n-1) * gap.
        prop_assert!(last >= SimTime::from_ns((n - 1) * 10));
    }

    /// Histogram percentiles bracket the true quantiles within bucket
    /// resolution for arbitrary sample sets.
    #[test]
    fn histogram_percentile_accuracy(mut samples in proptest::collection::vec(1u64..10_000_000, 10..500)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(Span::from_ns(s));
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((samples.len() as f64) * q).ceil() as usize - 1;
            let exact = samples[rank.min(samples.len() - 1)] as f64;
            let approx = h.percentile(q).as_ns_f64();
            let err = (approx - exact).abs() / exact;
            prop_assert!(err < 0.08, "q={q} exact={exact} approx={approx}");
        }
        prop_assert!(h.min() <= h.percentile(0.5));
        prop_assert!(h.percentile(0.5) <= h.max());
    }
}
