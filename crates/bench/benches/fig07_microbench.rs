//! Fig. 7: single-machine microbenchmark — normalized throughput of CPU
//! cores vs Rambda variants on the linked-list traversal, for DRAM and NVM.
//!
//! Expectations: CPU scales ~linearly with cores; Rambda-polling lands near
//! 8 cores; cpoll adds ~20 %; Rambda-LD/LH add a further ~2.1×/~2.7×; on
//! NVM, adaptive DDIO beats always-on DDIO by ~20 %.

use rambda::micro::{run_cpu, run_rambda, run_rambda_always_ddio, MicroParams};
use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_bench::{mops, ratio, Table};

fn main() {
    let tb = Testbed::default();
    let p = MicroParams { requests: 120_000, ..MicroParams::paper() };

    // DRAM panel (normalized to one core, as in the paper).
    let c1 = run_cpu(&tb, p, 1, 16).throughput_mops();
    let c8 = run_cpu(&tb, p, 8, 16).throughput_mops();
    let c16 = run_cpu(&tb, p, 16, 16).throughput_mops();
    let polling = run_rambda(&tb, p, DataLocation::HostDram, false, 1).throughput_mops();
    let cpoll = run_rambda(&tb, p, DataLocation::HostDram, true, 1).throughput_mops();
    let ld = run_rambda(&tb, p, DataLocation::LocalDdr, true, 1).throughput_mops();
    let lh = run_rambda(&tb, p, DataLocation::LocalHbm, true, 1).throughput_mops();

    let mut dram = Table::new(
        "Fig. 7 (DRAM) — microbenchmark throughput (normalized to 1 core)",
        &["design", "Mops", "vs 1 core"],
    );
    for (name, v) in [
        ("CPU x1", c1),
        ("CPU x8", c8),
        ("CPU x16", c16),
        ("Rambda-polling", polling),
        ("Rambda (cpoll)", cpoll),
        ("Rambda-LD", ld),
        ("Rambda-LH", lh),
    ] {
        dram.row(vec![name.into(), mops(v), ratio(v / c1)]);
    }
    dram.print();
    println!(
        "cpoll gain over polling: {} (paper ~21.6%); LD/LH over Rambda: {} / {} (paper ~2.14x / ~2.66x)",
        ratio(cpoll / polling),
        ratio(ld / cpoll),
        ratio(lh / cpoll),
    );

    // NVM panel (normalized to Rambda-DDIO, as in the paper).
    let pn = p.with_nvm();
    let n_c8 = run_cpu(&tb, pn, 8, 16).throughput_mops();
    let n_c16 = run_cpu(&tb, pn, 16, 16).throughput_mops();
    let n_polling = run_rambda(&tb, pn, DataLocation::HostDram, false, 1).throughput_mops();
    let n_ddio = run_rambda_always_ddio(&tb, pn, true, 1).throughput_mops();
    let n_adaptive = run_rambda(&tb, pn, DataLocation::HostDram, true, 1).throughput_mops();

    let mut nvm = Table::new(
        "Fig. 7 (NVM) — microbenchmark throughput (normalized to Rambda-DDIO)",
        &["design", "Mops", "vs Rambda-DDIO"],
    );
    for (name, v) in [
        ("CPU x8", n_c8),
        ("CPU x16", n_c16),
        ("Rambda-polling", n_polling),
        ("Rambda-DDIO", n_ddio),
        ("Rambda (adaptive)", n_adaptive),
    ] {
        nvm.row(vec![name.into(), mops(v), ratio(v / n_ddio)]);
    }
    nvm.print();
    println!("adaptive-DDIO gain: {} (paper ~20%)", ratio(n_adaptive / n_ddio));
}
