//! The cache-coherent interconnect (UPI in the prototype, CXL in the
//! envisioned system).

use rambda_des::{Link, SimTime, Span, Throttle};
use serde::{Deserialize, Serialize};

/// cc-interconnect parameters (defaults = Tab. II's UPI link plus the
//  400 MHz soft coherence controller).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CcConfig {
    /// Link bandwidth in bytes/second (10.4 GT/s UPI ⇒ 20.8 GB/s).
    pub bandwidth: f64,
    /// One-hop latency across the interconnect.
    pub hop_latency: Span,
    /// Minimum gap between *independent single-line* requests issued by the
    /// accelerator's coherence controller: pipelined soft logic at 400 MHz
    /// issues one per cycle. Multi-line gathers (DLRM's 256 B embedding
    /// rows) serialize far worse on the prototype — see
    /// [`CcConfig::gather_issue_gap`].
    pub controller_issue_gap: Span,
    /// Per-line issue gap during multi-line strided gathers. Sec. V calls
    /// the soft coherence controller the prototype's major limitation and
    /// Sec. VI-D blames its serial issue for DLRM: the CCI-P read path's
    /// ~380 ns turnaround with ~8 outstanding gather lines yields ~48 ns per
    /// line (≈1.3 GB/s effective) — the rate that makes Rambda-DLRM land at
    /// 19.7–31.3 % of one CPU core (Fig. 13).
    pub gather_issue_gap: Span,
    /// Local-cache hit latency inside the accelerator.
    pub local_cache_latency: Span,
    /// Local-cache capacity in bytes (64 KB in the prototype).
    pub local_cache_bytes: u64,
}

impl Default for CcConfig {
    fn default() -> Self {
        CcConfig {
            bandwidth: 20.8e9,
            hop_latency: Span::from_ns(70),
            // One pipelined issue per 400 MHz cycle.
            controller_issue_gap: Span::from_ns_f64(2.5),
            // CCI-P turnaround / outstanding gather lines.
            gather_issue_gap: Span::from_ns(48),
            local_cache_latency: Span::from_ns(10),
            local_cache_bytes: 64 * 1024,
        }
    }
}

impl CcConfig {
    /// A "hardened IP" variant: controller at CPU-like 2 GHz (Sec. V expects
    /// future FPGAs to close this gap). Used by ablation benches.
    pub fn hardened() -> Self {
        CcConfig {
            controller_issue_gap: Span::from_ns_f64(0.5),
            gather_issue_gap: Span::from_ns(6),
            ..CcConfig::default()
        }
    }
}

/// The cc-interconnect between the accelerator and the host.
///
/// Charges bandwidth serialization, per-hop latency, and the controller's
/// serial issue gap for accelerator-initiated requests.
#[derive(Debug, Clone)]
pub struct CcInterconnect {
    cfg: CcConfig,
    /// Accelerator → host direction (full-duplex link, like UPI).
    outbound: Link,
    /// Host → accelerator direction.
    inbound: Link,
    controller: Throttle,
    gather: Throttle,
}

impl CcInterconnect {
    /// Creates an interconnect from a configuration.
    pub fn new(cfg: CcConfig) -> Self {
        CcInterconnect {
            outbound: Link::new(cfg.bandwidth, cfg.hop_latency),
            inbound: Link::new(cfg.bandwidth, cfg.hop_latency),
            controller: Throttle::new(cfg.controller_issue_gap),
            gather: Throttle::new(cfg.gather_issue_gap),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CcConfig {
        &self.cfg
    }

    /// An accelerator-initiated coherent request of `bytes`: waits for the
    /// controller issue slot, then crosses the link. Returns when the
    /// request reaches the host side (the host memory system charges its own
    /// media time on top).
    pub fn accel_request(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let issued = self.controller.admit(at);
        self.outbound.transfer(issued, bytes).arrive
    }

    /// A host- or I/O-initiated transfer towards the accelerator (e.g. a
    /// coherence signal, or data filling the accelerator cache). No
    /// controller gap: the bottleneck is only on the accelerator's issue
    /// side.
    pub fn toward_accel(&mut self, at: SimTime, bytes: u64) -> SimTime {
        self.inbound.transfer(at, bytes).arrive
    }

    /// One line of a multi-line strided gather (e.g. a 256 B embedding row
    /// read as four 64 B lines). The prototype's soft controller turns these
    /// around far more slowly than pipelined independent requests
    /// ([`CcConfig::gather_issue_gap`]), which is what starves Rambda-DLRM
    /// in Fig. 13.
    pub fn accel_gather_line(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let issued = self.gather.admit(at);
        self.outbound.transfer(issued, bytes).arrive
    }

    /// Latency of a cpoll notification: the invalidation signal crossing one
    /// hop (no data payload, so no meaningful serialization).
    pub fn signal_latency(&self) -> Span {
        self.cfg.hop_latency
    }

    /// Total bytes moved over the link so far (both directions).
    pub fn bytes_moved(&self) -> u64 {
        self.outbound.bytes_moved() + self.inbound.bytes_moved()
    }

    /// Average consumed link bandwidth over `[0, now]` (both directions).
    pub fn consumed_bandwidth(&self, now: SimTime) -> f64 {
        self.outbound.consumed_bandwidth(now) + self.inbound.consumed_bandwidth(now)
    }

    /// Resets link and controller occupancy.
    pub fn reset(&mut self) {
        self.outbound.reset();
        self.inbound.reset();
        self.controller.reset();
        self.gather.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accel_request_pays_gap_and_hop() {
        let mut cc = CcInterconnect::new(CcConfig::default());
        let t1 = cc.accel_request(SimTime::ZERO, 64);
        // 70ns hop + ~3ns serialization.
        assert!((70.0..80.0).contains(&t1.as_ns_f64()), "{}", t1.as_ns_f64());
        // Second request waits for the controller gap.
        let t2 = cc.accel_request(SimTime::ZERO, 64);
        assert!(t2 > t1);
    }

    #[test]
    fn controller_gap_caps_issue_rate() {
        let mut cc = CcInterconnect::new(CcConfig::default());
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            t = cc.accel_request(SimTime::ZERO, 64);
        }
        // 1000 requests at one per 2.5ns ≈ 2.5us (plus one hop).
        let us = t.as_us_f64();
        assert!((2.5..3.6).contains(&us), "{us}");
    }

    #[test]
    fn hardened_controller_is_faster() {
        let mut soft = CcInterconnect::new(CcConfig::default());
        let mut hard = CcInterconnect::new(CcConfig::hardened());
        let mut ts = SimTime::ZERO;
        let mut th = SimTime::ZERO;
        // Small (sub-line) requests so the controller gap, not link
        // serialization, dominates.
        for _ in 0..100 {
            ts = soft.accel_request(SimTime::ZERO, 8);
            th = hard.accel_request(SimTime::ZERO, 8);
        }
        assert!(th < ts);
    }

    #[test]
    fn toward_accel_skips_controller() {
        let mut cc = CcInterconnect::new(CcConfig::default());
        cc.toward_accel(SimTime::ZERO, 64);
        cc.toward_accel(SimTime::ZERO, 64);
        // Only serialization (3ns each) + hop; no controller gaps.
        let t = cc.toward_accel(SimTime::ZERO, 64);
        assert!(t.as_ns_f64() < 85.0, "{}", t.as_ns_f64());
    }

    #[test]
    fn gather_lines_are_slower_than_pipelined_issues() {
        let mut cc = CcInterconnect::new(CcConfig::default());
        let mut t_pipe = SimTime::ZERO;
        let mut t_gather = SimTime::ZERO;
        for _ in 0..100 {
            t_pipe = cc.accel_request(SimTime::ZERO, 8);
        }
        let mut cc2 = CcInterconnect::new(CcConfig::default());
        for _ in 0..100 {
            t_gather = cc2.accel_gather_line(SimTime::ZERO, 8);
        }
        assert!(t_gather.as_ns_f64() > 3.0 * t_pipe.as_ns_f64());
    }

    #[test]
    fn bandwidth_accounting() {
        let mut cc = CcInterconnect::new(CcConfig::default());
        cc.accel_request(SimTime::ZERO, 1024);
        assert_eq!(cc.bytes_moved(), 1024);
        cc.reset();
        assert_eq!(cc.bytes_moved(), 0);
    }
}
