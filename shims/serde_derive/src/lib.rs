//! No-op derive macros standing in for `serde_derive`.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal shim (see `shims/serde`). Deriving `Serialize`/`Deserialize`
//! keeps source compatibility with the real serde; the derives emit nothing.
//! Actual JSON emission for run reports is hand-rolled in `rambda-metrics`.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
