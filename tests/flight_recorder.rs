//! End-to-end acceptance for the per-request flight recorder: a traced KVS
//! run must cross-validate against its own `RunReport`, export loadable
//! Chrome trace JSON and a well-formed compact binary, and attribute its
//! tail to a concrete stage and resource — while a disabled tracer must
//! leave the run report bit-for-bit unchanged.

use rambda::{Design, SimBuilder, Testbed};
use rambda_accel::DataLocation;
use rambda_kvs::{KvsDesigns, KvsParams};
use rambda_metrics::Json;
use rambda_trace::{Tracer, Track};

#[test]
fn traced_kvs_run_cross_validates_and_exports() {
    let tb = Testbed::default();
    let p = KvsParams::quick();
    let mut tracer = Tracer::flight_recorder();
    let report =
        SimBuilder::new(Design::kvs_rambda(p, DataLocation::HostDram)).config(&tb).tracer(&mut tracer).run();

    report.validate().expect("report internally consistent");
    tracer.cross_validate(&report).expect("trace agrees with the run report");
    assert_eq!(tracer.dropped(), 0, "quick run must fit in the flight-recorder ring");

    // Chrome export: valid JSON with a non-empty traceEvents array.
    let chrome = tracer.export_chrome_json();
    let parsed = Json::parse(&chrome).expect("chrome export parses");
    match parsed.get("traceEvents") {
        Some(Json::Arr(events)) => assert!(!events.is_empty(), "trace must carry events"),
        other => panic!("missing traceEvents array: {other:?}"),
    }

    // Binary export: magic, version, and room for the dropped-count footer.
    let blob = tracer.export_binary();
    assert_eq!(&blob[..4], b"RMBT");
    assert!(blob.len() > 16);

    // Tail attribution: the worst 10 requests each name a dominating stage
    // and a known resource track; percentiles are ordered.
    let tail = tracer.tail_report(10);
    assert_eq!(tail.worst.len(), 10);
    for w in &tail.worst {
        assert!(!w.dominant_stage.is_empty(), "worst request lacks a stage");
        assert!(
            Track::ALL.iter().any(|t| t.name() == w.dominant_track),
            "unknown track {}",
            w.dominant_track
        );
        assert!(w.total_ps >= tail.p99_ps, "worst requests sit in the tail");
    }
    assert!(tail.p50_ps <= tail.p99_ps && tail.p99_ps <= tail.p999_ps && tail.p999_ps <= tail.max_ps);
    assert!(!tail.dominant_tail_stage.is_empty() && !tail.dominant_tail_track.is_empty());
}

#[test]
fn disabled_tracer_leaves_the_report_unchanged() {
    let tb = Testbed::default();
    let p = KvsParams::quick();
    let plain = SimBuilder::new(Design::kvs_rambda(p.clone(), DataLocation::HostDram)).config(&tb).run();
    let mut off = Tracer::disabled();
    let traced =
        SimBuilder::new(Design::kvs_rambda(p, DataLocation::HostDram)).config(&tb).tracer(&mut off).run();

    assert!(!off.is_enabled());
    assert!(off.is_empty(), "a disabled tracer records nothing");
    assert_eq!(
        plain.to_json_string(),
        traced.to_json_string(),
        "threading a disabled tracer must not perturb the run"
    );
}
