//! A simulated machine: memory system + RNIC.

use rambda_fabric::NodeId;
use rambda_mem::MemorySystem;
use rambda_rnic::RnicEndpoint;

use crate::config::Testbed;

/// One machine of the testbed (a client or a server).
#[derive(Debug, Clone)]
pub struct Machine {
    /// The machine's network identity.
    pub node: NodeId,
    /// Host memory system.
    pub mem: MemorySystem,
    /// The machine's RNIC.
    pub rnic: RnicEndpoint,
}

impl Machine {
    /// Creates a machine from the testbed configuration.
    ///
    /// `ddio_enabled` is the global BIOS knob; Rambda's adaptive scheme
    /// (Fig. 6) disables it and steers per-packet with TPH instead.
    pub fn new(node: NodeId, testbed: &Testbed, ddio_enabled: bool) -> Self {
        Machine {
            node,
            mem: MemorySystem::new(testbed.mem.clone(), ddio_enabled),
            rnic: RnicEndpoint::new(node, testbed.rnic.clone(), testbed.pcie.clone()),
        }
    }

    /// Resets all dynamic state.
    pub fn reset(&mut self) {
        self.mem.reset();
        self.rnic.reset();
    }

    /// Publishes the machine's memory-system and RNIC counters under
    /// `prefix.mem.*` and `prefix.rnic.*`.
    pub fn publish_metrics(&self, m: &mut rambda_metrics::MetricSet, prefix: &str) {
        self.mem.publish_metrics(m, &format!("{prefix}.mem"));
        self.rnic.publish_metrics(m, &format!("{prefix}.rnic"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_des::SimTime;
    use rambda_mem::{MemKind, MemReq};

    #[test]
    fn machine_composes_mem_and_rnic() {
        let tb = Testbed::default();
        let mut m = Machine::new(NodeId(3), &tb, false);
        assert_eq!(m.node, NodeId(3));
        m.mem.access(SimTime::ZERO, MemReq::line_read(MemKind::Dram));
        assert_eq!(m.mem.stats().dram_read_bytes, 64);
        m.reset();
        assert_eq!(m.mem.stats().dram_read_bytes, 0);
    }
}
