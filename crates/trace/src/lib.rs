//! Deterministic per-request flight recorder for the Rambda simulators.
//!
//! The RunReport layer (`rambda-metrics`) answers *aggregate* questions —
//! stage sums, whole-run percentiles. This crate answers the per-request
//! ones the paper's Figs. 1/9/11 reasoning needs: where did the *slowest*
//! requests spend their microseconds, and on which resource? A [`Tracer`]
//! is threaded through a runner's serve closure alongside the
//! `StageRecorder`; when enabled it records, per request:
//!
//! * one [`TraceEvent::Span`] per critical-path leg, carrying a causal
//!   parent id (the enclosing request span) and a [`Track`] classifying the
//!   resource (rnic → fabric → coherence → accel/smartnic → mem → cpu);
//! * one [`TraceEvent::Request`] covering issue → completion;
//! * periodic [`TraceEvent::Sample`]s of cumulative resource counters on a
//!   deterministic [`rambda_des::SampleClock`] grid (queue depths, link
//!   bytes, busy time), plus one final sample at the run makespan.
//!
//! Everything is a pure function of the simulation's seed: no wall-clock,
//! no host state, bounded memory (a drop-oldest ring of events). Exporters
//! render three artifacts:
//!
//! * [`Tracer::export_chrome_json`] — Chrome trace-event JSON loadable in
//!   Perfetto (`ui.perfetto.dev`), legs as duration events on per-track
//!   threads, requests as async spans, samples as counter series;
//! * [`Tracer::export_binary`] — a compact length-prefixed binary the
//!   determinism tests byte-compare across runs;
//! * [`Tracer::tail_report`] — a tail-attribution report naming, for the
//!   worst-N requests and for the p99 tail as a whole, the dominating
//!   stage and resource.
//!
//! [`Tracer::cross_validate`] checks a trace against the run's
//! [`rambda_metrics::RunReport`]: traced leg spans must partition every
//! traced request total exactly (and therefore the aggregate stage sums),
//! and the final counter samples must equal the report's resource counters
//! — the sampler integral of busy-time matches the resources' busy-time.
//!
//! When disabled ([`Tracer::disabled`]), every call is a branch on a
//! `None`, so the plain `run_*` entry points share the instrumented serve
//! code at no measurable cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod critpath;
mod event;
mod export;
mod hostprof;
mod profile;
mod tail;
mod tracer;
mod validate;

pub use critpath::{CriticalPathSummary, TrackWork};
pub use event::{TraceEvent, Track};
pub use hostprof::HostProf;
pub use profile::profile_json;
pub use tail::{TailAttribution, WorstRequest};
pub use tracer::{ReqObs, Tracer};
