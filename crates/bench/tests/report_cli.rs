//! CLI contract of the `report` binary's scoped-metrics mode (DESIGN.md
//! §15): bad selections fail fast with the valid-runner listing before any
//! simulation runs or output directory is created, mirroring the existing
//! `--trace-runner`/`--profile-runner` validation.

use std::path::Path;
use std::process::{Command, Output};

fn report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_report")).args(args).output().expect("spawn report")
}

#[test]
fn unknown_scopes_runner_fails_fast_with_listing() {
    let out = report(&["--scopes", "nope"]);
    assert_eq!(out.status.code(), Some(2), "bad runner must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--scopes"), "{err}");
    // The shared check prints every valid runner, so the user can fix the
    // invocation without reading the source.
    for runner in ["micro.cpu", "kvs.rambda", "txn.rambda_tx", "dlrm.rambda"] {
        assert!(err.contains(runner), "listing missing {runner}: {err}");
    }
}

#[test]
fn stray_scopes_out_without_scopes_fails_fast() {
    let dir = format!("{}/stray-scopes-out", env!("CARGO_TARGET_TMPDIR"));
    let out = report(&["--scopes-out", &dir]);
    assert_eq!(out.status.code(), Some(2), "stray --scopes-out must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--scopes-out has no effect without --scopes"), "{err}");
    assert!(!Path::new(&dir).exists(), "fail-fast must not create the output dir");
}

#[test]
fn scopes_combined_with_trace_or_profile_fails_fast() {
    let dir = format!("{}/scopes-vs-trace", env!("CARGO_TARGET_TMPDIR"));
    for other in ["--trace", "--profile", "--report-out"] {
        let out = report(&["--scopes", "kvs.rambda", other, &dir]);
        assert_eq!(out.status.code(), Some(2), "{other} + --scopes must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("mutually exclusive"), "{err}");
        assert!(!Path::new(&dir).exists(), "fail-fast must not create the {other} dir");
    }
}

#[test]
fn report_export_is_byte_identical_across_execution_modes() {
    // The tentpole CLI contract: `--report-out` under `--workers 2` (the
    // conservative parallel executor) writes exactly the bytes the serial
    // run writes — the same cross-check CI's parallel-smoke job performs.
    let serial_dir = format!("{}/report-serial", env!("CARGO_TARGET_TMPDIR"));
    let par_dir = format!("{}/report-par", env!("CARGO_TARGET_TMPDIR"));
    let out = report(&["--report-out", &serial_dir, "--report-runner", "kvs.rambda"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("under serial"));
    let out = report(&["--report-out", &par_dir, "--report-runner", "kvs.rambda", "--workers", "2"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("under conservative(2)"));

    let serial = std::fs::read(format!("{serial_dir}/kvs.rambda.report.json")).expect("serial json");
    let par = std::fs::read(format!("{par_dir}/kvs.rambda.report.json")).expect("parallel json");
    assert_eq!(serial, par, "serial and conservative report exports must be byte-identical");
}

#[test]
fn stray_report_runner_without_report_out_fails_fast() {
    let out = report(&["--report-runner", "kvs.rambda"]);
    assert_eq!(out.status.code(), Some(2), "stray --report-runner must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--report-runner has no effect without --report-out"), "{err}");
}

#[test]
fn scoped_export_writes_both_artifacts_and_validates() {
    let dir = format!("{}/scopes-ok", env!("CARGO_TARGET_TMPDIR"));
    let out = report(&["--scopes", "micro.rambda", "--scopes-out", &dir]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scope conservation identities validated"), "{stdout}");
    assert!(stdout.contains("hot keys"), "{stdout}");
    assert!(stdout.contains("slo windows="), "{stdout}");

    let scoped = std::fs::read_to_string(format!("{dir}/micro.rambda.scopes.json")).expect("scoped json");
    assert!(scoped.contains("\"scopes\""), "scoped report must carry the scopes section");
    let unscoped =
        std::fs::read_to_string(format!("{dir}/micro.rambda.unscoped.json")).expect("unscoped json");
    assert!(!unscoped.contains("\"scopes\""), "unscoped report must omit the scopes section");
}
