//! Fig. 1: Smart NIC random-memory-access request latency vs the fraction
//! of accesses that go to host memory over PCIe.
//!
//! 100 back-to-back 64 B accesses per request; avg and p99 over many
//! requests. Expectation: both grow roughly linearly with the host fraction,
//! with 100 % host an order of magnitude slower than 0 %.

use rambda_bench::{us, Table};
use rambda_des::{Histogram, SimRng, SimTime};
use rambda_mem::{MemConfig, MemorySystem};
use rambda_smartnic::{SmartNic, SmartNicConfig};

fn main() {
    let mut table = Table::new(
        "Fig. 1 — Smart NIC request latency vs % host memory accesses (100 x 64B accesses/request)",
        &["host %", "avg (us)", "p99 (us)"],
    );
    let requests = 3_000u64;
    for pct in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut nic = SmartNic::new(SmartNicConfig::default());
        let mut nic_mem = MemorySystem::new(MemConfig::default(), true);
        let mut host_mem = MemorySystem::new(MemConfig::default(), true);
        let mut rng = SimRng::seed(1);
        let mut hist = Histogram::new();
        for i in 0..requests {
            // Open-loop, spaced out: no queueing, pure service latency.
            let at = SimTime::from_us(1_000 * (i + 1));
            let span = nic.random_access_request(at, 100, pct, &mut nic_mem, &mut host_mem, &mut rng);
            hist.record(span);
        }
        table.row(vec![
            format!("{:.0}", pct * 100.0),
            us(hist.mean().as_us_f64()),
            us(hist.percentile(0.99).as_us_f64()),
        ]);
    }
    table.print();
    println!("shape check: latency grows ~linearly with host fraction; p99 > avg.");
}
