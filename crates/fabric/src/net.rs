//! The 25 GbE RoCEv2 fabric between machines.

use std::collections::BTreeMap;

use rambda_des::{Link, SimTime, Span};
use serde::{Deserialize, Serialize};

/// Identifies a machine (or a Smart-NIC port acting as a replica, as in the
/// Fig. 11 topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u16);

/// Network parameters (defaults: Tab. II's 25 Gb/s ConnectX-6 ports).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    /// Per-port bandwidth in bytes/second (25 Gb/s ⇒ 3.125 GB/s).
    pub port_bandwidth: f64,
    /// One-way wire + switch latency between any two nodes.
    pub wire_latency: Span,
    /// Effective per-message wire overhead in bytes: Ethernet + IP + UDP +
    /// IB BTH/RETH headers, FCS, preamble/IFG, plus the amortized ACK
    /// traffic of reliable-connection RoCEv2. Calibrated so one 25 Gb/s
    /// port sustains ~12 M 64 B messages/s, matching the network-bound KVS
    /// regime of Sec. VI-B.
    pub header_bytes: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { port_bandwidth: 25.0e9 / 8.0, wire_latency: Span::from_ns(850), header_bytes: 200 }
    }
}

/// A switched network of nodes, each with one full-duplex port.
///
/// ```
/// use rambda_des::SimTime;
/// use rambda_fabric::{NetConfig, Network, NodeId};
///
/// let mut net = Network::new(NetConfig::default());
/// let (client, server) = (NodeId(0), NodeId(1));
/// let arrive = net.send(SimTime::ZERO, client, server, 64);
/// assert!(arrive.as_ns_f64() > 850.0);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetConfig,
    egress: BTreeMap<NodeId, Link>,
    ingress: BTreeMap<NodeId, Link>,
    messages: u64,
}

impl Network {
    /// Creates an empty network; ports materialize on first use.
    pub fn new(cfg: NetConfig) -> Self {
        Network { cfg, egress: BTreeMap::new(), ingress: BTreeMap::new(), messages: 0 }
    }

    /// The active configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    fn port<'a>(map: &'a mut BTreeMap<NodeId, Link>, cfg: &NetConfig, node: NodeId) -> &'a mut Link {
        map.entry(node).or_insert_with(|| Link::new(cfg.port_bandwidth, Span::ZERO))
    }

    /// Sends `bytes` of payload from `from` to `to`; returns when the last
    /// byte is available at the receiver (after egress serialization, the
    /// wire, and ingress serialization).
    pub fn send(&mut self, at: SimTime, from: NodeId, to: NodeId, bytes: u64) -> SimTime {
        assert_ne!(from, to, "loopback messages do not cross the network");
        let framed = bytes + self.cfg.header_bytes;
        let out = Self::port(&mut self.egress, &self.cfg, from).transfer(at, framed).depart;
        let on_wire = out + self.cfg.wire_latency;
        let arrived = Self::port(&mut self.ingress, &self.cfg, to).transfer(on_wire, framed).depart;
        self.messages += 1;
        arrived
    }

    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Bytes (framed) that left `node`'s egress port so far.
    pub fn egress_bytes(&self, node: NodeId) -> u64 {
        self.egress.get(&node).map(|l| l.bytes_moved()).unwrap_or(0)
    }

    /// Average egress bandwidth of `node` over `[0, now]`.
    pub fn egress_bandwidth(&self, node: NodeId, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.egress_bytes(node) as f64 / secs
        }
    }

    /// Publishes the network's counters under `prefix`: the message count
    /// and each active port's link counters, keyed by node id (the port
    /// maps are ordered, so the output order is deterministic).
    pub fn publish_metrics(&self, m: &mut rambda_metrics::MetricSet, prefix: &str) {
        m.set(&format!("{prefix}.messages"), self.messages);
        for (node, link) in &self.egress {
            m.observe_link(&format!("{prefix}.egress.{}", node.0), link);
        }
        for (node, link) in &self.ingress {
            m.observe_link(&format!("{prefix}.ingress.{}", node.0), link);
        }
    }

    /// Resets all port occupancy and counters.
    pub fn reset(&mut self) {
        self.egress.clear();
        self.ingress.clear();
        self.messages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_latency_is_wire_dominated() {
        let mut net = Network::new(NetConfig::default());
        let t = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        let ns = t.as_ns_f64();
        // 264 framed bytes at 3.125 GB/s ≈ 85ns x2 + 850ns wire.
        assert!((950.0..1100.0).contains(&ns), "{ns}");
    }

    #[test]
    fn port_bandwidth_limits_throughput() {
        let mut net = Network::new(NetConfig::default());
        let mut last = SimTime::ZERO;
        let n = 10_000u64;
        for _ in 0..n {
            last = net.send(SimTime::ZERO, NodeId(0), NodeId(1), 1000);
        }
        let achieved = (n as f64 * 1200.0) / last.as_secs_f64();
        let port = 25.0e9 / 8.0;
        assert!((achieved - port).abs() / port < 0.01, "achieved={achieved}");
    }

    #[test]
    fn distinct_senders_use_distinct_ports() {
        let mut net = Network::new(NetConfig::default());
        // Two senders to two receivers do not serialize on each other.
        let a = net.send(SimTime::ZERO, NodeId(0), NodeId(2), 1_000_000);
        let b = net.send(SimTime::ZERO, NodeId(1), NodeId(3), 1_000_000);
        assert_eq!(a, b);
    }

    #[test]
    fn receiver_port_is_shared() {
        let mut net = Network::new(NetConfig::default());
        // Two senders into one receiver serialize at the receiver's port.
        let a = net.send(SimTime::ZERO, NodeId(0), NodeId(9), 1_000_000);
        let b = net.send(SimTime::ZERO, NodeId(1), NodeId(9), 1_000_000);
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_panics() {
        Network::new(NetConfig::default()).send(SimTime::ZERO, NodeId(1), NodeId(1), 1);
    }

    #[test]
    fn counters() {
        let mut net = Network::new(NetConfig::default());
        net.send(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        assert_eq!(net.messages(), 1);
        assert_eq!(net.egress_bytes(NodeId(0)), 300);
        assert!(net.egress_bandwidth(NodeId(0), SimTime::from_us(1)) > 0.0);
        net.reset();
        assert_eq!(net.messages(), 0);
    }
}
