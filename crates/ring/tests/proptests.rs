//! Property-based tests for the ring-buffer layer.

use proptest::prelude::*;
use rambda_ring::{BufferPair, PointerBuffer, TailTracker};

proptest! {
    /// Whatever interleaving of pushes and pops we drive, the SPSC ring
    /// delivers exactly the pushed values, in order, with none lost.
    #[test]
    fn spsc_preserves_fifo(ops in proptest::collection::vec(any::<bool>(), 1..500),
                           cap_pow in 1u32..6) {
        let cap = 1usize << cap_pow;
        let (mut tx, mut rx) = rambda_ring::channel::<u64>(cap);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for push in ops {
            if push {
                if tx.push(next_push).is_ok() {
                    next_push += 1;
                }
            } else if let Some(v) = rx.pop() {
                prop_assert_eq!(v, next_pop);
                next_pop += 1;
            }
        }
        // Drain the rest.
        while let Some(v) = rx.pop() {
            prop_assert_eq!(v, next_pop);
            next_pop += 1;
        }
        prop_assert_eq!(next_pop, next_push);
    }

    /// The credit window never admits more than `capacity` in-flight
    /// requests and never deadlocks a compliant client/server pair.
    #[test]
    fn credit_window_invariant(ops in proptest::collection::vec(0u8..3, 1..500),
                               cap_pow in 1u32..5) {
        let cap = 1usize << cap_pow;
        let (mut client, mut server) = BufferPair::with_capacity::<u64, u64>(cap);
        let mut seq = 0u64;
        let mut expected = 0u64;
        for op in ops {
            match op {
                0 => {
                    let before = client.in_flight();
                    match client.issue(seq) {
                        Ok(()) => { seq += 1; }
                        Err(_) => prop_assert_eq!(before, cap as u64),
                    }
                }
                1 => {
                    if let Some(r) = server.next_request() {
                        server.respond(r).expect("response ring overflow under credits");
                    }
                }
                _ => {
                    if let Some(resp) = client.poll() {
                        prop_assert_eq!(resp, expected);
                        expected += 1;
                    }
                }
            }
            prop_assert!(client.in_flight() <= cap as u64);
        }
    }

    /// The tail tracker recovers the exact number of requests regardless of
    /// how bumps coalesce into observations.
    #[test]
    fn tail_tracker_recovers_all(bursts in proptest::collection::vec(1u32..100, 1..100)) {
        let pb = PointerBuffer::new(1);
        let mut tracker = TailTracker::new();
        let mut total = 0u64;
        let mut recovered = 0u64;
        for burst in bursts {
            for _ in 0..burst {
                pb.bump(0); // burst of writes, single coalesced observation
            }
            total += burst as u64;
            recovered += tracker.advance_to(pb.load(0)) as u64;
        }
        prop_assert_eq!(total, recovered);
    }
}
