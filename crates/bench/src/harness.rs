//! The continuous-benchmark harness behind `cargo xtask bench`.
//!
//! Declarative sweep definitions reproduce the paper's curve-style results
//! (Fig. 7 design comparison, Fig. 9 KVS load sweep, Fig. 12 transaction
//! latency, Fig. 13 DLRM serving): each sweep runs a grid of seeded
//! [`SimBuilder`] points, digests every [`RunReport`] — headline numbers
//! plus the windowed-timeline telemetry — into a [`BenchPoint`], and
//! serializes the whole [`SweepResult`] with the deterministic JSON encoder
//! so same-seed runs emit byte-identical `BENCH_<sweep>.json` files.
//!
//! [`compare`] diffs a fresh result against a committed baseline and
//! reports regressions — throughput drops or p99 rises beyond the sweep's
//! tolerance — as readable lines; the `bench` binary turns a non-empty diff
//! into a non-zero exit, which CI gates on.
//!
//! Everything in this module is pure simulation + formatting: no
//! wall-clock, filesystem or environment access (the workspace analyzer's
//! R2 bans them here). I/O and self-profiling live in `src/bin/bench.rs`.

use rambda::{micro, Design, Execution, SimBuilder, Testbed};
use rambda_accel::DataLocation;
use rambda_fabric::FaultConfig;
use rambda_metrics::{Json, RunReport, ScopeConfig};
use rambda_trace::Tracer;
use rambda_workloads::{DlrmProfile, TxnSpec};

use crate::Table;

/// The canonical quick-mode design registry: every runner in
/// [`rambda::designs::RUNNER_NAMES`] mapped to its quick-mode factory.
///
/// The framework crate owns the name list but cannot see the application
/// crates, so this is where the nine factories are installed. The `report`
/// binary, the bench harness, and the integration test suites all draw
/// their designs from here, so a new runner lands everywhere by adding it
/// to `RUNNER_NAMES` and installing its factory below — `is_complete()`
/// (asserted here) catches a list/registry mismatch at first use.
pub fn quick_registry() -> rambda::designs::Registry {
    use rambda_dlrm::{DlrmDesigns, DlrmParams};
    use rambda_kvs::{KvsDesigns, KvsParams};
    use rambda_txn::{TxnDesigns, TxnParams};
    let books = || DlrmProfile::by_name("Books").expect("Books DLRM profile exists");
    let mut reg = rambda::designs::Registry::new();
    reg.install("micro.cpu", || Design::micro_cpu(micro::MicroParams::quick(), 8, 16));
    reg.install("micro.rambda", || {
        Design::micro_rambda(micro::MicroParams::quick(), DataLocation::HostDram, true, 1)
    });
    reg.install("kvs.cpu", || Design::kvs_cpu(KvsParams::quick()));
    reg.install("kvs.rambda", || Design::kvs_rambda(KvsParams::quick(), DataLocation::HostDram));
    reg.install("kvs.smartnic", || Design::kvs_smartnic(KvsParams::quick()));
    reg.install("txn.hyperloop", || Design::txn_hyperloop(TxnParams::quick(TxnSpec::read_write(64))));
    reg.install("txn.rambda_tx", || Design::txn_rambda_tx(TxnParams::quick(TxnSpec::read_write(64))));
    reg.install("dlrm.cpu", move || Design::dlrm_cpu(DlrmParams::quick(books()), 8));
    reg.install("dlrm.rambda", move || {
        Design::dlrm_rambda(DlrmParams::quick(books()), DataLocation::HostDram)
    });
    assert!(reg.is_complete(), "quick registry must cover every runner in RUNNER_NAMES");
    reg
}

/// Per-sweep regression budget applied by [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum allowed fractional throughput drop vs. baseline (0.05 = 5 %).
    pub max_throughput_drop: f64,
    /// Maximum allowed fractional p99 latency rise vs. baseline.
    pub max_p99_rise: f64,
}

/// One point of a sweep: a run's headline numbers plus its windowed
/// telemetry digest.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Design under test (`"rambda"`, `"cpu-8"`, `"smartnic"`, ...).
    pub design: String,
    /// Sweep coordinate label (`"window=16"`, `"spec=r4w2"`, ...).
    pub x: String,
    /// Measured (post-warm-up) completions.
    pub completed: u64,
    /// Steady-state throughput, operations per second.
    pub throughput_ops: f64,
    /// Mean / median / tail latency, picoseconds.
    pub mean_ps: u64,
    /// Median latency, picoseconds.
    pub p50_ps: u64,
    /// 99th-percentile latency, picoseconds.
    pub p99_ps: u64,
    /// 99.9th-percentile latency, picoseconds.
    pub p999_ps: u64,
    /// Run makespan, picoseconds.
    pub elapsed_ps: u64,
    /// Timeline window width, picoseconds.
    pub window_ps: u64,
    /// Completions per timeline window (the throughput curve within the
    /// run; also the sparkline the summary table renders).
    pub window_completed: Vec<u64>,
    /// Largest per-window p99 across the run, picoseconds.
    pub peak_window_p99_ps: u64,
    /// Largest per-window utilization across all resources.
    pub peak_utilization: f64,
    /// Whole-run parallelism ratio (total busy work ÷ critical path) from
    /// the deterministic profiler; `None` unless the sweep ran with
    /// `--profile`. Omitted from the JSON when `None`, so baselines
    /// written before the profiler existed stay byte-identical.
    pub parallelism_ratio: Option<f64>,
    /// Events dispatched by the run's event core (scheduler telemetry);
    /// `None` unless the sweep ran with `--profile`.
    pub events_dispatched: Option<u64>,
    /// Hottest scope's share of the run's recorded requests, from the
    /// scoped-metrics registry (DESIGN.md §15); `None` unless the sweep
    /// ran with `--scopes`. Omitted from the JSON when `None`, so
    /// baselines written before scoped metrics existed stay byte-identical.
    pub hot_fraction: Option<f64>,
}

impl BenchPoint {
    /// Digests a validated report into a sweep point.
    ///
    /// # Errors
    ///
    /// Returns the report's validation error, or a description of a
    /// missing timeline — a bench point must never be built from telemetry
    /// that fails its own identities.
    pub fn from_report(design: &str, x: &str, report: &RunReport) -> Result<BenchPoint, String> {
        report.validate().map_err(|e| format!("{design}/{x}: {e}"))?;
        let tl = report.timeline.as_ref().ok_or_else(|| format!("{design}/{x}: report has no timeline"))?;
        Ok(BenchPoint {
            design: design.to_string(),
            x: x.to_string(),
            completed: report.completed,
            throughput_ops: report.throughput_ops,
            mean_ps: report.latency.mean_ps,
            p50_ps: report.latency.p50_ps,
            p99_ps: report.latency.p99_ps,
            p999_ps: report.latency.p999_ps,
            elapsed_ps: report.elapsed_ps,
            window_ps: tl.window_ps,
            window_completed: tl.windows.iter().map(|w| w.count).collect(),
            peak_window_p99_ps: tl.peak_p99_ps(),
            peak_utilization: tl.peak_utilization(),
            parallelism_ratio: None,
            events_dispatched: None,
            hot_fraction: None,
        })
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("design", Json::Str(self.design.clone()));
        o.push("x", Json::Str(self.x.clone()));
        o.push("completed", Json::U64(self.completed));
        o.push("throughput_ops", Json::F64(self.throughput_ops));
        o.push("mean_ps", Json::U64(self.mean_ps));
        o.push("p50_ps", Json::U64(self.p50_ps));
        o.push("p99_ps", Json::U64(self.p99_ps));
        o.push("p999_ps", Json::U64(self.p999_ps));
        o.push("elapsed_ps", Json::U64(self.elapsed_ps));
        o.push("window_ps", Json::U64(self.window_ps));
        o.push("window_completed", Json::Arr(self.window_completed.iter().map(|&v| Json::U64(v)).collect()));
        o.push("peak_window_p99_ps", Json::U64(self.peak_window_p99_ps));
        o.push("peak_utilization", Json::F64(self.peak_utilization));
        if let Some(ratio) = self.parallelism_ratio {
            o.push("parallelism_ratio", Json::F64(ratio));
        }
        if let Some(dispatched) = self.events_dispatched {
            o.push("events_dispatched", Json::U64(dispatched));
        }
        if let Some(hot) = self.hot_fraction {
            o.push("hot_fraction", Json::F64(hot));
        }
        o
    }

    fn from_json(j: &Json) -> Result<BenchPoint, String> {
        Ok(BenchPoint {
            design: get_str(j, "design")?,
            x: get_str(j, "x")?,
            completed: get_u64(j, "completed")?,
            throughput_ops: get_f64(j, "throughput_ops")?,
            mean_ps: get_u64(j, "mean_ps")?,
            p50_ps: get_u64(j, "p50_ps")?,
            p99_ps: get_u64(j, "p99_ps")?,
            p999_ps: get_u64(j, "p999_ps")?,
            elapsed_ps: get_u64(j, "elapsed_ps")?,
            window_ps: get_u64(j, "window_ps")?,
            window_completed: get_u64_arr(j, "window_completed")?,
            peak_window_p99_ps: get_u64(j, "peak_window_p99_ps")?,
            peak_utilization: get_f64(j, "peak_utilization")?,
            parallelism_ratio: match j.get("parallelism_ratio") {
                Some(Json::F64(v)) => Some(*v),
                Some(Json::U64(v)) => Some(*v as f64),
                _ => None,
            },
            events_dispatched: match j.get("events_dispatched") {
                Some(Json::U64(v)) => Some(*v),
                _ => None,
            },
            hot_fraction: match j.get("hot_fraction") {
                Some(Json::F64(v)) => Some(*v),
                Some(Json::U64(v)) => Some(*v as f64),
                _ => None,
            },
        })
    }
}

/// Runs one sweep point, optionally under the deterministic profiler
/// and/or the scoped-metrics registry.
///
/// With `profile` set, the run carries a flight-recorder tracer and the
/// builder's `profile()` telemetry, and the point records the whole-run
/// parallelism ratio plus the event core's dispatch count. With `scopes`
/// set, the run attributes requests to per-entity metric scopes and the
/// point records the hottest scope's request share. Both only observe —
/// they never perturb the simulated events — so the headline numbers are
/// identical either way.
#[allow(clippy::too_many_arguments)]
fn run_point(
    design: Design,
    name: &str,
    x: &str,
    tb: &Testbed,
    faults: Option<FaultConfig>,
    profile: bool,
    scopes: bool,
    execution: Execution,
) -> Result<BenchPoint, String> {
    let mut builder = SimBuilder::new(design).config(tb).execution(execution);
    if let Some(f) = faults {
        builder = builder.faults(f);
    }
    if scopes {
        builder = builder.scopes(ScopeConfig::default());
    }
    if !profile {
        let report = builder.run();
        let mut point = BenchPoint::from_report(name, x, &report)?;
        point.hot_fraction = report.scopes.as_ref().map(|sc| sc.hot_fraction());
        return Ok(point);
    }
    let mut tracer = Tracer::flight_recorder();
    let report = builder.tracer(&mut tracer).profile().run();
    let mut point = BenchPoint::from_report(name, x, &report)?;
    point.parallelism_ratio = tracer.critical_path().map(|cp| cp.parallelism_ratio());
    point.events_dispatched = report.event_core.as_ref().map(|ec| ec.dispatched);
    point.hot_fraction = report.scopes.as_ref().map(|sc| sc.hot_fraction());
    Ok(point)
}

/// A complete sweep: its identity, mode, tolerance, and curve points.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Sweep name (`"kvs_load"`, ...; see [`sweep_names`]).
    pub sweep: String,
    /// `"quick"` (CI-sized) or `"full"` (paper-scale) — compared files
    /// must agree, or every number diff is meaningless.
    pub mode: String,
    /// Regression budget for [`compare`].
    pub tolerance: Tolerance,
    /// Curve points in deterministic definition order.
    pub points: Vec<BenchPoint>,
}

impl SweepResult {
    /// Renders the sweep as a deterministic JSON value.
    pub fn to_json(&self) -> Json {
        let mut tol = Json::obj();
        tol.push("max_throughput_drop", Json::F64(self.tolerance.max_throughput_drop));
        tol.push("max_p99_rise", Json::F64(self.tolerance.max_p99_rise));
        let mut o = Json::obj();
        o.push("sweep", Json::Str(self.sweep.clone()));
        o.push("mode", Json::Str(self.mode.clone()));
        o.push("tolerance", tol);
        o.push("points", Json::Arr(self.points.iter().map(|p| p.to_json()).collect()));
        o
    }

    /// Canonical pretty-printed JSON — byte-identical across same-seed runs.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parses a `BENCH_<sweep>.json` document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or missing field.
    pub fn from_json_str(text: &str) -> Result<SweepResult, String> {
        let j = Json::parse(text)?;
        let tol = j.get("tolerance").ok_or("missing tolerance")?;
        let points = match j.get("points") {
            Some(Json::Arr(items)) => items.iter().map(BenchPoint::from_json).collect::<Result<_, _>>()?,
            _ => return Err("missing points array".to_string()),
        };
        Ok(SweepResult {
            sweep: get_str(&j, "sweep")?,
            mode: get_str(&j, "mode")?,
            tolerance: Tolerance {
                max_throughput_drop: get_f64(tol, "max_throughput_drop")?,
                max_p99_rise: get_f64(tol, "max_p99_rise")?,
            },
            points,
        })
    }

    /// Renders the sweep as an ASCII table with a per-run throughput
    /// sparkline (completions per timeline window). Profiled sweeps gain
    /// parallelism-ratio and event-dispatch columns; scoped sweeps gain a
    /// hottest-scope request-share column.
    pub fn render_table(&self) -> String {
        let profiled = self.points.iter().any(|p| p.parallelism_ratio.is_some());
        let scoped = self.points.iter().any(|p| p.hot_fraction.is_some());
        let mut headers = vec!["design", "x", "Mops", "p50 us", "p99 us", "peak util"];
        if profiled {
            headers.push("par");
            headers.push("events");
        }
        if scoped {
            headers.push("hot frac");
        }
        headers.push("throughput/window");
        let mut t = Table::new(&format!("{} [{}]", self.sweep, self.mode), &headers);
        for p in &self.points {
            let mut cells = vec![
                p.design.clone(),
                p.x.clone(),
                format!("{:.3}", p.throughput_ops / 1.0e6),
                format!("{:.2}", p.p50_ps as f64 / 1.0e6),
                format!("{:.2}", p.p99_ps as f64 / 1.0e6),
                format!("{:.2}", p.peak_utilization),
            ];
            if profiled {
                cells.push(p.parallelism_ratio.map_or_else(|| "-".to_string(), |r| format!("{r:.2}x")));
                cells.push(p.events_dispatched.map_or_else(|| "-".to_string(), |n| n.to_string()));
            }
            if scoped {
                cells.push(p.hot_fraction.map_or_else(|| "-".to_string(), |h| format!("{h:.3}")));
            }
            cells.push(sparkline(&p.window_completed));
            t.row(cells);
        }
        t.render()
    }
}

/// Renders values as a unicode sparkline, scaled to the series maximum.
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return "▁".repeat(values.len());
    }
    values.iter().map(|&v| BARS[((v * 7).div_ceil(max).min(7)) as usize]).collect()
}

/// Compares a fresh sweep against a baseline; returns human-readable
/// regression lines (empty = pass). Gates on the *baseline's* tolerance so
/// loosening the budget requires touching the committed file.
pub fn compare(current: &SweepResult, baseline: &SweepResult) -> Vec<String> {
    let mut diffs = Vec::new();
    if current.mode != baseline.mode {
        diffs.push(format!(
            "{}: mode mismatch — current is \"{}\", baseline is \"{}\"",
            current.sweep, current.mode, baseline.mode
        ));
        return diffs;
    }
    let tol = baseline.tolerance;
    for base in &baseline.points {
        let key = format!("{}/{}", base.design, base.x);
        let Some(cur) = current.points.iter().find(|p| p.design == base.design && p.x == base.x) else {
            diffs.push(format!("{}: point {key} disappeared from the sweep", current.sweep));
            continue;
        };
        let floor = base.throughput_ops * (1.0 - tol.max_throughput_drop);
        if cur.throughput_ops < floor {
            diffs.push(format!(
                "{}: {key} throughput {:.3} Mops < {:.3} Mops (baseline {:.3} − {:.0} % budget)",
                current.sweep,
                cur.throughput_ops / 1.0e6,
                floor / 1.0e6,
                base.throughput_ops / 1.0e6,
                tol.max_throughput_drop * 100.0
            ));
        }
        let ceiling = base.p99_ps as f64 * (1.0 + tol.max_p99_rise);
        if cur.p99_ps as f64 > ceiling {
            diffs.push(format!(
                "{}: {key} p99 {:.2} us > {:.2} us (baseline {:.2} + {:.0} % budget)",
                current.sweep,
                cur.p99_ps as f64 / 1.0e6,
                ceiling / 1.0e6,
                base.p99_ps as f64 / 1.0e6,
                tol.max_p99_rise * 100.0
            ));
        }
    }
    diffs
}

/// The defined sweeps, in the order the harness runs them.
pub fn sweep_names() -> &'static [&'static str] {
    &["micro_designs", "kvs_load", "txn_latency", "dlrm_load", "faults_sweep"]
}

/// Whether a sweep participates in the baseline comparison gate.
///
/// `faults_sweep` characterizes degraded-mode behaviour (its whole point is
/// a worse tail under injected loss), so it ships no committed baseline and
/// never gates — the `bench` binary skips its comparison.
pub fn is_gating(name: &str) -> bool {
    name != "faults_sweep"
}

/// Runs one sweep end to end. With `profile` set, every point also runs
/// the deterministic profiler (parallelism-ratio and event-core rows in
/// the sweep JSON and table). With `scopes` set, every point runs under
/// the scoped-metrics registry and records its hottest scope's request
/// share.
///
/// # Errors
///
/// Returns an unknown-sweep message (listing valid names), or the first
/// report that failed its telemetry validation.
pub fn run_sweep(
    name: &str,
    quick: bool,
    profile: bool,
    scopes: bool,
    execution: Execution,
) -> Result<SweepResult, String> {
    let mode = if quick { "quick" } else { "full" };
    let points = match name {
        "micro_designs" => micro_designs(quick, profile, scopes, execution)?,
        "kvs_load" => kvs_load(quick, profile, scopes, execution)?,
        "txn_latency" => txn_latency(quick, profile, scopes, execution)?,
        "dlrm_load" => dlrm_load(quick, profile, scopes, execution)?,
        "faults_sweep" => faults_sweep(quick, profile, scopes, execution)?,
        other => return Err(format!("unknown sweep `{other}` — valid sweeps: {}", sweep_names().join(", "))),
    };
    let tolerance = Tolerance { max_throughput_drop: 0.05, max_p99_rise: 0.10 };
    Ok(SweepResult { sweep: name.to_string(), mode: mode.to_string(), tolerance, points })
}

/// Fig. 7-style design comparison: CPU core scaling vs. the Rambda
/// variants on the pointer-chase microbenchmark.
fn micro_designs(
    quick: bool,
    profile: bool,
    scopes: bool,
    execution: Execution,
) -> Result<Vec<BenchPoint>, String> {
    let tb = Testbed::default();
    let p = if quick {
        micro::MicroParams { requests: 6_000, ..micro::MicroParams::quick() }
    } else {
        micro::MicroParams::paper()
    };
    let mut points = Vec::new();
    for cores in [1usize, 8, 16] {
        points.push(run_point(
            Design::micro_cpu(p, cores, 16),
            &format!("cpu-{cores}"),
            "micro",
            &tb,
            None,
            profile,
            scopes,
            execution,
        )?);
    }
    let variants: [(&str, DataLocation, bool); 4] = [
        ("rambda-polling", DataLocation::HostDram, false),
        ("rambda", DataLocation::HostDram, true),
        ("rambda-ld", DataLocation::LocalDdr, true),
        ("rambda-lh", DataLocation::LocalHbm, true),
    ];
    for (design, location, cpoll) in variants {
        points.push(run_point(
            Design::micro_rambda(p, location, cpoll, 1),
            design,
            "micro",
            &tb,
            None,
            profile,
            scopes,
            execution,
        )?);
    }
    Ok(points)
}

/// Fig. 9-style KVS offered-load sweep: per-client pipeline window × design.
fn kvs_load(
    quick: bool,
    profile: bool,
    scopes: bool,
    execution: Execution,
) -> Result<Vec<BenchPoint>, String> {
    use rambda_kvs::{KvsDesigns, KvsParams};
    let tb = Testbed::default();
    let base = if quick { KvsParams { requests: 8_000, ..KvsParams::quick() } } else { KvsParams::paper() };
    let mut points = Vec::new();
    for window in [1usize, 4, 16] {
        let p = KvsParams { window, ..base.clone() };
        let x = format!("window={window}");
        points.push(run_point(Design::kvs_cpu(p.clone()), "cpu", &x, &tb, None, profile, scopes, execution)?);
        points.push(run_point(
            Design::kvs_rambda(p.clone(), DataLocation::HostDram),
            "rambda",
            &x,
            &tb,
            None,
            profile,
            scopes,
            execution,
        )?);
        points.push(run_point(
            Design::kvs_smartnic(p.clone()),
            "smartnic",
            &x,
            &tb,
            None,
            profile,
            scopes,
            execution,
        )?);
    }
    Ok(points)
}

/// Fig. 12-style replicated-transaction comparison: HyperLoop chain vs.
/// Rambda-Tx, for write-only and read-write transactions.
fn txn_latency(
    quick: bool,
    profile: bool,
    scopes: bool,
    execution: Execution,
) -> Result<Vec<BenchPoint>, String> {
    use rambda_txn::{TxnDesigns, TxnParams};
    let tb = Testbed::default();
    let specs: [(&str, TxnSpec); 2] =
        [("spec=w1", TxnSpec::single_write(64)), ("spec=r4w2", TxnSpec::read_write(64))];
    let mut points = Vec::new();
    for (x, spec) in specs {
        let p =
            if quick { TxnParams { txns: 1_500, ..TxnParams::quick(spec) } } else { TxnParams::paper(spec) };
        points.push(run_point(
            Design::txn_hyperloop(p.clone()),
            "hyperloop",
            x,
            &tb,
            None,
            profile,
            scopes,
            execution,
        )?);
        points.push(run_point(
            Design::txn_rambda_tx(p.clone()),
            "rambda_tx",
            x,
            &tb,
            None,
            profile,
            scopes,
            execution,
        )?);
    }
    Ok(points)
}

/// Fig. 13-style DLRM serving comparison on the Books embedding profile.
fn dlrm_load(
    quick: bool,
    profile: bool,
    scopes: bool,
    execution: Execution,
) -> Result<Vec<BenchPoint>, String> {
    use rambda_dlrm::{DlrmDesigns, DlrmParams};
    let tb = Testbed::default();
    let embeddings = DlrmProfile::by_name("Books").ok_or("Books DLRM profile missing")?;
    let p = if quick {
        DlrmParams { queries: 1_500, ..DlrmParams::quick(embeddings) }
    } else {
        DlrmParams::paper(embeddings)
    };
    let mut points = Vec::new();
    for cores in [1usize, 8] {
        points.push(run_point(
            Design::dlrm_cpu(p.clone(), cores),
            &format!("cpu-{cores}"),
            "Books",
            &tb,
            None,
            profile,
            scopes,
            execution,
        )?);
    }
    points.push(run_point(
        Design::dlrm_rambda(p.clone(), DataLocation::HostDram),
        "rambda",
        "Books",
        &tb,
        None,
        profile,
        scopes,
        execution,
    )?);
    points.push(run_point(
        Design::dlrm_rambda(p.clone(), DataLocation::LocalHbm),
        "rambda-lh",
        "Books",
        &tb,
        None,
        profile,
        scopes,
        execution,
    )?);
    Ok(points)
}

/// Degraded-fabric characterization (non-gating): the KVS and transaction
/// Rambda designs under increasing injected packet loss. The zero-loss point
/// anchors each curve; the lossy points show the recovery layer's cost
/// (retransmissions push the tail up while throughput barely moves).
fn faults_sweep(
    quick: bool,
    profile: bool,
    scopes: bool,
    execution: Execution,
) -> Result<Vec<BenchPoint>, String> {
    use rambda_kvs::{KvsDesigns, KvsParams};
    use rambda_txn::{TxnDesigns, TxnParams};
    let tb = Testbed::default();
    let kp = if quick { KvsParams { requests: 8_000, ..KvsParams::quick() } } else { KvsParams::paper() };
    let spec = TxnSpec::read_write(64);
    let xp = if quick { TxnParams { txns: 1_500, ..TxnParams::quick(spec) } } else { TxnParams::paper(spec) };
    let mut points = Vec::new();
    for (x, loss) in [("loss=0", 0.0), ("loss=1e-4", 1e-4), ("loss=1e-3", 1e-3)] {
        points.push(run_point(
            Design::kvs_rambda(kp.clone(), DataLocation::HostDram),
            "kvs_rambda",
            x,
            &tb,
            Some(FaultConfig::lossy(0xFA17, loss)),
            profile,
            scopes,
            execution,
        )?);
        points.push(run_point(
            Design::txn_rambda_tx(xp.clone()),
            "txn_rambda_tx",
            x,
            &tb,
            Some(FaultConfig::lossy(0xFA17, loss)),
            profile,
            scopes,
            execution,
        )?);
    }
    Ok(points)
}

fn get_str(j: &Json, key: &str) -> Result<String, String> {
    match j.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(format!("missing string field `{key}`")),
    }
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    match j.get(key) {
        Some(Json::U64(v)) => Ok(*v),
        _ => Err(format!("missing integer field `{key}`")),
    }
}

fn get_f64(j: &Json, key: &str) -> Result<f64, String> {
    match j.get(key) {
        Some(Json::F64(v)) => Ok(*v),
        Some(Json::U64(v)) => Ok(*v as f64),
        _ => Err(format!("missing number field `{key}`")),
    }
}

fn get_u64_arr(j: &Json, key: &str) -> Result<Vec<u64>, String> {
    match j.get(key) {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| match v {
                Json::U64(n) => Ok(*n),
                _ => Err(format!("non-integer element in `{key}`")),
            })
            .collect(),
        _ => Err(format!("missing array field `{key}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> SweepResult {
        SweepResult {
            sweep: "demo".to_string(),
            mode: "quick".to_string(),
            tolerance: Tolerance { max_throughput_drop: 0.05, max_p99_rise: 0.10 },
            points: vec![BenchPoint {
                design: "rambda".to_string(),
                x: "window=16".to_string(),
                completed: 1000,
                throughput_ops: 2.0e6,
                mean_ps: 5_000_000,
                p50_ps: 4_000_000,
                p99_ps: 9_000_000,
                p999_ps: 11_000_000,
                elapsed_ps: 500_000_000,
                window_ps: 50_000_000,
                window_completed: vec![100, 120, 130, 120, 110, 100, 120, 100, 50, 50],
                peak_window_p99_ps: 10_000_000,
                peak_utilization: 0.85,
                parallelism_ratio: None,
                events_dispatched: None,
                hot_fraction: None,
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let sweep = tiny_sweep();
        let text = sweep.to_json_string();
        let parsed = SweepResult::from_json_str(&text).expect("parses");
        assert_eq!(parsed, sweep);
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn self_compare_passes() {
        let sweep = tiny_sweep();
        assert!(compare(&sweep, &sweep).is_empty());
    }

    #[test]
    fn throughput_drop_beyond_budget_fails() {
        let baseline = tiny_sweep();
        let mut current = tiny_sweep();
        current.points[0].throughput_ops *= 0.90; // 10 % drop vs. 5 % budget
        let diffs = compare(&current, &baseline);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("throughput"), "{}", diffs[0]);
        // A drop within budget passes.
        let mut ok = tiny_sweep();
        ok.points[0].throughput_ops *= 0.97;
        assert!(compare(&ok, &baseline).is_empty());
    }

    #[test]
    fn p99_rise_beyond_budget_fails() {
        let baseline = tiny_sweep();
        let mut current = tiny_sweep();
        current.points[0].p99_ps = (current.points[0].p99_ps as f64 * 1.2) as u64;
        let diffs = compare(&current, &baseline);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("p99"), "{}", diffs[0]);
    }

    #[test]
    fn missing_point_and_mode_mismatch_fail() {
        let baseline = tiny_sweep();
        let mut current = tiny_sweep();
        current.points.clear();
        assert!(compare(&current, &baseline)[0].contains("disappeared"));
        let mut full = tiny_sweep();
        full.mode = "full".to_string();
        assert!(compare(&full, &baseline)[0].contains("mode mismatch"));
    }

    #[test]
    fn unknown_sweep_lists_valid_names() {
        let err = run_sweep("nope", true, false, false, Execution::Serial).unwrap_err();
        for name in sweep_names() {
            assert!(err.contains(name), "{err}");
        }
    }

    #[test]
    fn profile_fields_are_optional_and_round_trip() {
        // A point without profile data serializes without the keys, so
        // pre-profiler baselines stay byte-identical and still parse.
        let bare = tiny_sweep().to_json_string();
        assert!(!bare.contains("parallelism_ratio"), "{bare}");
        assert!(!bare.contains("events_dispatched"), "{bare}");
        let parsed = SweepResult::from_json_str(&bare).expect("parses");
        assert_eq!(parsed.points[0].parallelism_ratio, None);
        assert_eq!(parsed.points[0].events_dispatched, None);

        let mut profiled = tiny_sweep();
        profiled.points[0].parallelism_ratio = Some(1.25);
        profiled.points[0].events_dispatched = Some(30_000);
        let text = profiled.to_json_string();
        let back = SweepResult::from_json_str(&text).expect("parses");
        assert_eq!(back, profiled);
        assert_eq!(back.to_json_string(), text);
        let table = profiled.render_table();
        assert!(table.contains("1.25x"), "{table}");
        assert!(table.contains("events"), "{table}");
        // An unprofiled sweep keeps the original table shape.
        assert!(!tiny_sweep().render_table().contains("par"), "no profile columns");
    }

    #[test]
    fn scope_fields_are_optional_and_round_trip() {
        // A point without scope data serializes without the key, so
        // baselines written before scoped metrics existed stay
        // byte-identical and still parse.
        let bare = tiny_sweep().to_json_string();
        assert!(!bare.contains("hot_fraction"), "{bare}");
        let parsed = SweepResult::from_json_str(&bare).expect("parses");
        assert_eq!(parsed.points[0].hot_fraction, None);

        let mut scoped = tiny_sweep();
        scoped.points[0].hot_fraction = Some(0.375);
        let text = scoped.to_json_string();
        let back = SweepResult::from_json_str(&text).expect("parses");
        assert_eq!(back, scoped);
        assert_eq!(back.to_json_string(), text);
        let table = scoped.render_table();
        assert!(table.contains("hot frac"), "{table}");
        assert!(table.contains("0.375"), "{table}");
        // An unscoped sweep keeps the original table shape.
        assert!(!tiny_sweep().render_table().contains("hot frac"), "no scope column");
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let s = sparkline(&[1, 4, 8]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
    }
}
