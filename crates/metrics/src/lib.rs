//! # rambda-metrics — the deterministic run-report observability layer.
//!
//! Every serving design in the workspace produces the same headline numbers
//! (`RunStats`: throughput + a latency histogram). This crate adds the layer
//! underneath: *where the time goes and which resource it goes to*.
//!
//! Three pieces compose:
//!
//! - [`MetricSet`] — a name-sorted registry of `u64` counters and `f64`
//!   gauges. DES resources ([`rambda_des::Server`], [`rambda_des::Link`],
//!   [`rambda_des::Throttle`]) expose cheap counters (busy time, bytes
//!   moved, queue delay, acquisitions); component crates publish them here
//!   under dotted prefixes (`accel.slots.*`, `mem.dram.*`, `rnic.pcie.*`).
//! - [`StageRecorder`] / [`ReqTrace`] — per-request critical-path tracing.
//!   A runner cuts each request into named legs (doorbell, fabric,
//!   coherence, APU compute, NVM persist, ...); the legs partition the
//!   issue→completion interval exactly, which [`RunReport::validate`]
//!   asserts to the picosecond.
//! - [`RunReport`] — the serde-style serializable artifact: headline stats,
//!   per-stage latency breakdown, per-resource counters and utilization.
//!   [`RunReport::to_json_string`] renders canonical JSON (via the local
//!   [`json::Json`] encoder — the workspace's vendored `serde` shim has
//!   no runtime serializer) that is byte-identical across runs, which the
//!   golden-report tests in `tests/` gate on.
//! - [`Timeline`] / [`TimelineSummary`] — windowed time-series telemetry:
//!   per-window latency histograms and per-resource busy/wait deltas on a
//!   deterministic sim-time grid, cross-checked against the whole-run
//!   totals by exact merge and busy-time identities (DESIGN.md §10).
//! - [`ScopedMetrics`] / [`ScopesSummary`] — per-entity attribution: named
//!   child scopes (shard, replica, table, link) whose counters, latency
//!   histograms, and timeline windows provably roll up to the global
//!   report; deterministic space-saving [`TopKSketch`]es over hot keys and
//!   hot scopes; and a windowed [`SloSummary`] burn-rate digest
//!   (DESIGN.md §15).
//!
//! Determinism is the design constraint throughout: `BTreeMap` storage,
//! insertion-ordered JSON objects, shortest-round-trip float formatting,
//! and no wall-clock anywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event_core;
pub mod json;
mod report;
mod scope;
mod set;
mod sketch;
mod timeline;

pub use event_core::{EventCoreSummary, EventKindSummary};
pub use json::Json;
pub use report::{HistSummary, ReqTrace, RunReport, StageRecorder};
pub use scope::{HotScope, ScopeConfig, ScopeSummary, ScopedMetrics, ScopesSummary, SloSummary};
pub use set::MetricSet;
pub use sketch::{SketchEntry, TopKSketch};
pub use timeline::{ResourceSeries, Timeline, TimelineSummary};
