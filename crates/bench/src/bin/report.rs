//! `report` — runs a reduced version of every experiment and prints the
//! paper's headline claims next to the measured values. The per-figure
//! benches (`cargo bench -p rambda-bench`) print the full tables.

use rambda::micro::{run_rambda as micro_rambda, run_rambda_always_ddio, MicroParams};
use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_bench::Table;
use rambda_dlrm::serving as dlrm;
use rambda_dlrm::DlrmParams;
use rambda_kvs::designs as kvs;
use rambda_kvs::KvsParams;
use rambda_metrics::RunReport;
use rambda_power::{kop_per_watt, Design, PowerConfig};
use rambda_txn::{run_hyperloop, run_rambda_tx, TxnParams};
use rambda_workloads::{DlrmProfile, TxnSpec};

fn main() {
    let tb = Testbed::default();
    let mut t = Table::new(
        "Rambda reproduction — headline claims (paper vs measured)",
        &["claim", "paper", "measured"],
    );

    // Microbenchmark: cpoll gain, local-memory gain, adaptive DDIO.
    let mp = MicroParams { requests: 60_000, ..MicroParams::paper() };
    let polling = micro_rambda(&tb, mp, DataLocation::HostDram, false, 1).throughput_mops();
    let cpoll = micro_rambda(&tb, mp, DataLocation::HostDram, true, 1).throughput_mops();
    let lh = micro_rambda(&tb, mp, DataLocation::LocalHbm, true, 1).throughput_mops();
    t.row(vec![
        "cpoll over spin-polling".into(),
        "+21.6%".into(),
        format!("{:+.1}%", (cpoll / polling - 1.0) * 100.0),
    ]);
    t.row(vec!["Rambda-LH over Rambda (micro)".into(), "~2.66x".into(), format!("{:.2}x", lh / cpoll)]);
    let mn = mp.with_nvm();
    let adaptive = micro_rambda(&tb, mn, DataLocation::HostDram, true, 1).throughput_mops();
    let ddio = run_rambda_always_ddio(&tb, mn, true, 1).throughput_mops();
    t.row(vec![
        "adaptive DDIO on NVM".into(),
        "~+20%".into(),
        format!("{:+.1}%", (adaptive / ddio - 1.0) * 100.0),
    ]);

    // KVS: throughput edge, tail latency, power efficiency.
    let kp = KvsParams { requests: 60_000, ..KvsParams::quick() };
    let cpu = kvs::run_cpu(&tb, &kp);
    let rambda = kvs::run_rambda(&tb, &kp, DataLocation::HostDram);
    t.row(vec![
        "KVS throughput vs CPU".into(),
        "+2.3-8.3%".into(),
        format!("{:+.1}%", (rambda.throughput_mops() / cpu.throughput_mops() - 1.0) * 100.0),
    ]);
    let mut lat = kp.clone();
    lat.window = 2;
    let cpu_l = kvs::run_cpu(&tb, &lat);
    let rambda_l = kvs::run_rambda(&tb, &lat, DataLocation::HostDram);
    t.row(vec![
        "KVS p99 vs CPU".into(),
        "-30.1%".into(),
        format!("{:+.1}%", (rambda_l.p99_us() / cpu_l.p99_us() - 1.0) * 100.0),
    ]);
    let power = PowerConfig::default();
    let kopw_cpu = kop_per_watt(cpu.throughput_ops, power.design_watts(Design::Cpu { cores: 10 }));
    let kopw_rambda = kop_per_watt(rambda.throughput_ops, power.design_watts(Design::Rambda));
    t.row(vec![
        "power efficiency vs CPU".into(),
        "~1.45x (188.7/130.4)".into(),
        format!("{:.2}x", kopw_rambda / kopw_cpu),
    ]);

    // Transactions: (4,2) latency saving.
    let tp = TxnParams::quick(TxnSpec::read_write(64));
    let hl = run_hyperloop(&tb, &tp);
    let rt = run_rambda_tx(&tb, &tp);
    t.row(vec![
        "TX (4,2) avg latency saving".into(),
        "63.2-66.8%".into(),
        format!("{:.1}%", (1.0 - rt.mean_us() / hl.mean_us()) * 100.0),
    ]);

    // DLRM (Books): prototype penalty and LH gain.
    let dp = DlrmParams { queries: 10_000, ..DlrmParams::quick(DlrmProfile::by_name("Books").unwrap()) };
    let c1 = dlrm::run_cpu(&tb, &dp, 1).throughput_mops();
    let c8 = dlrm::run_cpu(&tb, &dp, 8).throughput_mops();
    let r = dlrm::run_rambda(&tb, &dp, DataLocation::HostDram).throughput_mops();
    let dlh = dlrm::run_rambda(&tb, &dp, DataLocation::LocalHbm).throughput_mops();
    t.row(vec!["DLRM Rambda vs 1 core".into(), "19.7-31.3%".into(), format!("{:.1}%", r / c1 * 100.0)]);
    t.row(vec!["DLRM Rambda-LH vs 8 cores".into(), "1.6-3.1x".into(), format!("{:.2}x", dlh / c8)]);

    t.print();

    // Per-stage latency breakdowns from the observability layer: where do
    // the microseconds go on each design's critical path?
    let micro_report =
        rambda::micro::run_rambda_report(&tb, MicroParams::quick(), DataLocation::HostDram, true, 1);
    let kvs_report = kvs::run_rambda_report(&tb, &KvsParams::quick(), DataLocation::HostDram);
    let txn_report = rambda_txn::run_rambda_tx_report(&tb, &TxnParams::quick(TxnSpec::read_write(64)));
    for report in [&micro_report, &kvs_report, &txn_report] {
        print_breakdown(report);
    }

    println!("\nFull tables: cargo bench -p rambda-bench");
    println!("Machine-readable run reports: RunReport::to_json_string() (see tests/goldens/)");
}

/// Renders a run report's critical-path stage breakdown as a table.
fn print_breakdown(report: &RunReport) {
    report.validate().expect("inconsistent run report");
    let mut t = Table::new(
        &format!(
            "{} — stage breakdown ({} reqs, mean {:.2} us)",
            report.name,
            report.completed,
            report.latency.mean_us()
        ),
        &["stage", "mean us", "share"],
    );
    for (stage, mean_us, share) in report.breakdown() {
        t.row(vec![stage, format!("{mean_us:.3}"), format!("{:.1}%", share * 100.0)]);
    }
    t.print();
}
