//! # Rambda — RDMA-driven acceleration framework (HPCA'23 reproduction)
//!
//! Rambda is a network/architecture co-design for memory-intensive µs-scale
//! datacenter applications: a standard RDMA NIC delivers client requests by
//! one-sided write directly into lock-free ring buffers in server memory; a
//! *cache-coherent accelerator* discovers them through coherence traffic
//! (**cpoll**) instead of spin-polling, processes them with an
//! application-specific APU, and drives the RNIC itself to send responses —
//! the host CPU stays out of the data path. A TPH-based **adaptive DDIO**
//! mechanism steers inbound DMA into the LLC for DRAM-backed buffers and
//! around it for NVM-backed buffers.
//!
//! This crate is the framework layer of the reproduction: it composes the
//! substrate crates (`rambda-des`, `-mem`, `-coherence`, `-ring`, `-fabric`,
//! `-rnic`, `-accel`, `-smartnic`) into simulated machines and serving
//! designs, provides the closed-loop measurement driver, and implements the
//! Sec. VI-A microbenchmark. The three applications (`rambda-kvs`,
//! `rambda-txn`, `rambda-dlrm`) build on it.
//!
//! ## Quick start
//!
//! ```
//! use rambda::{micro, Testbed};
//! use rambda_accel::DataLocation;
//!
//! let testbed = Testbed::default(); // Tab. II configuration
//! // One Rambda accelerator serving the linked-list microbenchmark:
//! let stats = micro::run_rambda(&testbed, micro::MicroParams::quick(), DataLocation::HostDram, true, 7);
//! assert!(stats.throughput_mops() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod driver;
mod machine;

pub mod cpu;
pub mod designs;
pub mod framework;
pub mod micro;
pub mod report;
pub mod sim;

pub use config::{CpuConfig, Testbed};
pub use driver::{run_closed_loop, run_closed_loop_exec, DriverConfig, ExecStats, Execution, RunStats};
pub use framework::{AppRegistration, Connection, CpollLayout, Framework, RegisterError, RegisteredApp};
pub use machine::Machine;
pub use report::build_report;
pub use sim::{Design, SimBuilder, SimCtx};
