//! Request-buffer scheduling (Fig. 4's scheduler block).
//!
//! The prototype implements round-robin (Sec. V); the scheduler is a
//! pluggable policy over the per-ring pending counts the cpoll machinery
//! maintains, so alternative policies are a natural extension point. We
//! provide round-robin, strict priority, and deficit-weighted round-robin,
//! with fairness/starvation tests.

use serde::{Deserialize, Serialize};

/// A scheduling decision source.
pub trait SchedulePolicy {
    /// Picks the next ring to serve among `pending` (per-ring pending
    /// request counts). Returns `None` if nothing is pending.
    fn pick(&mut self, pending: &[u32]) -> Option<usize>;
}

/// The prototype's round-robin scheduler.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl SchedulePolicy for RoundRobin {
    fn pick(&mut self, pending: &[u32]) -> Option<usize> {
        if pending.is_empty() {
            return None;
        }
        for offset in 0..pending.len() {
            let ring = (self.next + offset) % pending.len();
            if pending[ring] > 0 {
                self.next = (ring + 1) % pending.len();
                return Some(ring);
            }
        }
        None
    }
}

/// Strict priority: lowest ring index wins (e.g. an intra-machine CPU ring
/// prioritized over client rings).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StrictPriority;

impl SchedulePolicy for StrictPriority {
    fn pick(&mut self, pending: &[u32]) -> Option<usize> {
        pending.iter().position(|&p| p > 0)
    }
}

/// Deficit-weighted round-robin: ring `i` receives service proportional to
/// `weights[i]` over time, without starving anyone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightedRoundRobin {
    weights: Vec<u32>,
    credits: Vec<f64>,
    next: usize,
}

impl WeightedRoundRobin {
    /// Creates a scheduler with per-ring weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains a zero.
    pub fn new(weights: Vec<u32>) -> Self {
        assert!(!weights.is_empty() && weights.iter().all(|&w| w > 0), "weights must be positive");
        WeightedRoundRobin { credits: vec![0.0; weights.len()], weights, next: 0 }
    }
}

impl SchedulePolicy for WeightedRoundRobin {
    fn pick(&mut self, pending: &[u32]) -> Option<usize> {
        assert_eq!(pending.len(), self.weights.len(), "ring count mismatch");
        if pending.iter().all(|&p| p == 0) {
            return None;
        }
        // Deficit round: replenish credits proportionally to weights, serve
        // the pending ring with the most credit, and charge it one full
        // round's worth — long-run service converges to the weight ratios
        // without starving anyone.
        for (c, &w) in self.credits.iter_mut().zip(&self.weights) {
            *c += w as f64;
        }
        let mut best: Option<usize> = None;
        for offset in 0..pending.len() {
            let ring = (self.next + offset) % pending.len();
            if pending[ring] == 0 {
                continue;
            }
            match best {
                None => best = Some(ring),
                Some(b) if self.credits[ring] > self.credits[b] => best = Some(ring),
                _ => {}
            }
        }
        let ring = best.expect("something is pending");
        let round: f64 = self.weights.iter().map(|&w| w as f64).sum();
        self.credits[ring] -= round;
        self.next = (ring + 1) % pending.len();
        Some(ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<P: SchedulePolicy>(policy: &mut P, mut pending: Vec<u32>, rounds: usize) -> Vec<u32> {
        let mut served = vec![0u32; pending.len()];
        for _ in 0..rounds {
            if let Some(ring) = policy.pick(&pending) {
                assert!(pending[ring] > 0, "picked an empty ring");
                pending[ring] -= 1;
                served[ring] += 1;
                // Closed loop: the client immediately refills.
                pending[ring] += 1;
            }
        }
        served
    }

    #[test]
    fn round_robin_is_fair() {
        let mut rr = RoundRobin::new();
        let served = drive(&mut rr, vec![1; 4], 4000);
        for &s in &served {
            assert_eq!(s, 1000);
        }
    }

    #[test]
    fn round_robin_skips_idle_rings() {
        let mut rr = RoundRobin::new();
        let served = drive(&mut rr, vec![1, 0, 1, 0], 1000);
        assert_eq!(served[1] + served[3], 0);
        assert_eq!(served[0], 500);
        assert_eq!(served[2], 500);
    }

    #[test]
    fn round_robin_handles_empty() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.pick(&[]), None);
        assert_eq!(rr.pick(&[0, 0]), None);
    }

    #[test]
    fn strict_priority_prefers_low_rings() {
        let mut sp = StrictPriority;
        assert_eq!(sp.pick(&[0, 3, 5]), Some(1));
        assert_eq!(sp.pick(&[2, 3, 5]), Some(0));
        assert_eq!(sp.pick(&[0, 0, 0]), None);
    }

    #[test]
    fn weighted_rr_matches_weights() {
        let mut w = WeightedRoundRobin::new(vec![3, 1]);
        let served = drive(&mut w, vec![1, 1], 4000);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio={ratio} served={served:?}");
    }

    #[test]
    fn weighted_rr_never_starves() {
        let mut w = WeightedRoundRobin::new(vec![100, 1]);
        let served = drive(&mut w, vec![1, 1], 10_000);
        assert!(served[1] > 50, "low-weight ring starved: {served:?}");
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        WeightedRoundRobin::new(vec![1, 0]);
    }
}
