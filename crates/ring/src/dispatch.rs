//! Flock-style cross-thread connection sharing (Sec. III-A).
//!
//! Ring buffers (and their QPs) are never shared across *connections*, but
//! they may be shared across *threads of one machine*: a dedicated dispatch
//! thread owns the connection's single-producer/single-consumer ends and
//! multiplexes requests from worker threads, so there is only one
//! buffer pair (and QP) per client–server pair per application — "with
//! slight performance overheads" and no change to the wire protocol.
//!
//! [`SharedClient`] is the worker-facing handle; [`run_dispatcher`] is the
//! loop the dedicated thread runs. Responses are routed back to the issuing
//! worker over per-worker channels.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use crate::pair::{ClientEnd, ServerEnd};

/// A request tagged with its issuing worker.
struct Tagged<Req> {
    worker: usize,
    req: Req,
}

/// Shared front-end state: workers enqueue here; the dispatcher drains.
struct Shared<Req, Resp> {
    submit: Mutex<mpsc::Sender<Tagged<Req>>>,
    replies: Vec<Mutex<mpsc::Receiver<Resp>>>,
}

/// A worker's handle onto a shared connection.
pub struct SharedClient<Req, Resp> {
    worker: usize,
    shared: Arc<Shared<Req, Resp>>,
}

impl<Req, Resp> SharedClient<Req, Resp> {
    /// Issues a request through the dispatch thread.
    ///
    /// # Errors
    ///
    /// Fails if the dispatcher has shut down.
    pub fn call_async(&self, req: Req) -> Result<(), DispatchGone> {
        let tx = self.shared.submit.lock().expect("submit lock poisoned");
        tx.send(Tagged { worker: self.worker, req }).map_err(|_| DispatchGone)
    }

    /// Blocks for this worker's next response.
    ///
    /// # Errors
    ///
    /// Fails if the dispatcher has shut down.
    pub fn recv(&self) -> Result<Resp, DispatchGone> {
        let rx = self.shared.replies[self.worker].lock().expect("reply lock poisoned");
        rx.recv().map_err(|_| DispatchGone)
    }

    /// A synchronous request/response round trip.
    ///
    /// # Errors
    ///
    /// Fails if the dispatcher has shut down.
    pub fn call(&self, req: Req) -> Result<Resp, DispatchGone> {
        self.call_async(req)?;
        self.recv()
    }
}

/// The dispatcher disappeared (connection torn down).
#[derive(Debug, PartialEq, Eq)]
pub struct DispatchGone;

impl std::fmt::Display for DispatchGone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the dispatch thread has shut down")
    }
}

impl std::error::Error for DispatchGone {}

/// Builds `workers` handles plus the dispatcher's private state.
pub fn shared_connection<Req, Resp>(workers: usize) -> (Vec<SharedClient<Req, Resp>>, Dispatcher<Req, Resp>) {
    let (submit_tx, submit_rx) = mpsc::channel();
    let mut reply_txs = Vec::with_capacity(workers);
    let mut reply_rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = mpsc::channel();
        reply_txs.push(tx);
        reply_rxs.push(Mutex::new(rx));
    }
    let shared = Arc::new(Shared { submit: Mutex::new(submit_tx), replies: reply_rxs });
    let clients = (0..workers).map(|worker| SharedClient { worker, shared: Arc::clone(&shared) }).collect();
    (clients, Dispatcher { submit: submit_rx, replies: reply_txs, in_flight: Vec::new() })
}

/// The dispatch thread's state: owns the SPSC connection end.
pub struct Dispatcher<Req, Resp> {
    submit: mpsc::Receiver<Tagged<Req>>,
    replies: Vec<mpsc::Sender<Resp>>,
    /// Issue-order worker tags of in-flight requests (ring responses come
    /// back in order).
    in_flight: Vec<usize>,
}

impl<Req, Resp> Dispatcher<Req, Resp> {
    /// Runs one dispatch iteration against the connection's client end:
    /// forward as many queued worker requests as credits allow, then route
    /// completed responses back. Returns the number of responses routed.
    pub fn pump(&mut self, conn: &mut ClientEnd<Req, Resp>) -> usize {
        // Forward while the credit window has room.
        while conn.can_issue() {
            match self.submit.try_recv() {
                Ok(t) => {
                    self.in_flight.push(t.worker);
                    if conn.issue(t.req).is_err() {
                        unreachable!("credits were checked");
                    }
                }
                Err(_) => break,
            }
        }
        // Route responses back in issue order (the ring is FIFO).
        let mut routed = 0;
        while let Some(resp) = conn.poll() {
            let worker = self.in_flight.remove(0);
            // A worker that hung up just drops its response.
            let _ = self.replies[worker].send(resp);
            routed += 1;
        }
        routed
    }

    /// Requests currently issued but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

/// Runs a complete dispatcher + echo-server loop until `total` responses
/// have been routed (test/demo harness; production embeds [`Dispatcher::pump`]
/// in its own loop).
pub fn run_dispatcher<Req: Send + 'static, Resp>(
    dispatcher: &mut Dispatcher<Req, Resp>,
    client: &mut ClientEnd<Req, Resp>,
    server: &mut ServerEnd<Req, Resp>,
    mut serve: impl FnMut(Req) -> Resp,
    total: usize,
) {
    let mut routed = 0;
    while routed < total {
        routed += dispatcher.pump(client);
        while let Some(req) = server.next_request() {
            if server.respond(serve(req)).is_err() {
                unreachable!("response ring overflow under credits");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::BufferPair;

    #[test]
    fn single_worker_round_trip() {
        let (clients, mut dispatcher) = shared_connection::<u32, u32>(1);
        let (mut conn, mut server) = BufferPair::with_capacity::<u32, u32>(8);
        clients[0].call_async(20).unwrap();
        run_dispatcher(&mut dispatcher, &mut conn, &mut server, |r| r + 1, 1);
        assert_eq!(clients[0].recv(), Ok(21));
    }

    #[test]
    fn many_workers_share_one_connection() {
        const WORKERS: usize = 8;
        const PER_WORKER: usize = 500;
        let (clients, mut dispatcher) = shared_connection::<u64, u64>(WORKERS);
        let (mut conn, mut server) = BufferPair::with_capacity::<u64, u64>(16);

        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(w, client)| {
                std::thread::spawn(move || {
                    for i in 0..PER_WORKER as u64 {
                        let req = (w as u64) << 32 | i;
                        let resp = client.call(req).unwrap();
                        // Each worker gets exactly its own responses, in its
                        // own order.
                        assert_eq!(resp, req + 1, "worker {w} got someone else's response");
                    }
                })
            })
            .collect();

        run_dispatcher(&mut dispatcher, &mut conn, &mut server, |r| r + 1, WORKERS * PER_WORKER);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(dispatcher.in_flight(), 0);
        assert_eq!(conn.issued(), (WORKERS * PER_WORKER) as u64);
    }

    #[test]
    fn dispatcher_respects_the_credit_window() {
        let (clients, mut dispatcher) = shared_connection::<u32, u32>(1);
        let (mut conn, _server) = BufferPair::with_capacity::<u32, u32>(4);
        for i in 0..10 {
            clients[0].call_async(i).unwrap();
        }
        dispatcher.pump(&mut conn);
        // Only the window's worth issued; the rest wait in the MPSC queue.
        assert_eq!(conn.in_flight(), 4);
        assert_eq!(dispatcher.in_flight(), 4);
    }

    #[test]
    fn hung_up_dispatcher_reports_gone() {
        let (clients, dispatcher) = shared_connection::<u32, u32>(1);
        drop(dispatcher);
        assert_eq!(clients[0].recv(), Err(DispatchGone));
        assert!(!format!("{DispatchGone}").is_empty());
    }
}
