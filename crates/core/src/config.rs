//! The testbed configuration (Tab. II) bundling every substrate's knobs.

use rambda_coherence::CcConfig;
use rambda_des::Span;
use rambda_fabric::{NetConfig, PcieConfig};
use rambda_mem::MemConfig;
use rambda_power::PowerConfig;
use rambda_rnic::RnicConfig;
use rambda_smartnic::SmartNicConfig;
use serde::{Deserialize, Serialize};

/// Host CPU serving parameters (the two-sided RDMA-RPC baselines).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Physical cores per socket (Tab. II: 20 Skylake cores).
    pub cores: usize,
    /// Per-request RPC handling (rx CQE poll, parse, tx post) on a core.
    pub rpc_overhead: Span,
    /// Per-request application instruction overhead.
    pub app_overhead: Span,
    /// Memory-level parallelism one core sustains across *independent*
    /// request chains when batching (line-fill buffers).
    pub mlp: usize,
    /// Per-batch fixed cost (CQ poll, doorbell, descriptor maintenance)
    /// amortized over the batch: this is what makes unbatched serving slow
    /// (Fig. 10).
    pub batch_overhead: Span,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            cores: 20,
            rpc_overhead: Span::from_ns(60),
            app_overhead: Span::from_ns(30),
            mlp: 8,
            batch_overhead: Span::from_ns(400),
        }
    }
}

/// The full evaluation testbed: two machines (client/server) as configured
/// in Tab. II, with every model's constants in one place.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Testbed {
    /// Host memory system (DRAM, NVM, LLC/DDIO).
    pub mem: MemConfig,
    /// cc-interconnect + accelerator coherence controller.
    pub cc: CcConfig,
    /// 25 GbE RoCEv2 network.
    pub net: NetConfig,
    /// PCIe links.
    pub pcie: PcieConfig,
    /// RNIC verbs engine.
    pub rnic: RnicConfig,
    /// Smart NIC baseline.
    pub smartnic: SmartNicConfig,
    /// Host CPU serving model.
    pub cpu: CpuConfig,
    /// Power accounting.
    pub power: PowerConfig,
}

impl Testbed {
    /// Effective wire bytes for a message with `payload` bytes, including
    /// framing.
    pub fn wire_bytes(&self, payload: u64) -> u64 {
        payload + self.net.header_bytes
    }

    /// Peak one-directional small-message rate of one 25 GbE port for
    /// `payload`-byte messages — the network bound that caps the KVS
    /// experiments (Sec. VI-B).
    pub fn net_msg_rate(&self, payload: u64) -> f64 {
        self.net.port_bandwidth / self.wire_bytes(payload) as f64
    }

    /// A testbed with a faster network (Sec. III-F: "Rambda will be
    /// bottlenecked by the network bandwidth and can achieve higher
    /// performance with newer network technologies").
    pub fn with_network_gbps(mut self, gbps: f64) -> Self {
        assert!(gbps > 0.0, "network speed must be positive");
        self.net.port_bandwidth = gbps * 1.0e9 / 8.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_testbed_is_consistent() {
        let t = Testbed::default();
        t.mem.validate().unwrap();
        assert_eq!(t.cpu.cores, 20);
        assert!(t.net.port_bandwidth > 3.0e9);
    }

    #[test]
    fn net_msg_rate_matches_paper_ballpark() {
        // 64 B KVS messages on 25 GbE should cap out around 10-13 Mops,
        // the regime where CPU and Rambda both saturate in Fig. 8.
        let t = Testbed::default();
        let rate = t.net_msg_rate(64);
        assert!((8.0e6..16.0e6).contains(&rate), "rate={rate}");
    }
}
