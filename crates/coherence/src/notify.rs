//! Notification mechanisms: cpoll vs spin-polling (the Fig. 7 ablation).
//!
//! Spin-polling costs the accelerator interconnect bandwidth (one line read
//! per monitored ring per interval) and adds, on average, half the polling
//! interval of discovery delay. cpoll is push-based: discovery delay is one
//! interconnect hop, and no polling traffic competes with application
//! memory requests.

use rambda_des::{SimRng, SimTime, Span};
use serde::{Deserialize, Serialize};

use crate::interconnect::CcInterconnect;

/// Which notification mechanism the accelerator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Notifier {
    /// Coherence-assisted notification (Sec. III-B).
    Cpoll,
    /// Spin-polling with the given interval between polls of each ring
    /// (30 FPGA cycles @400 MHz = 75 ns in the evaluation).
    SpinPoll {
        /// Gap between successive polls of the same ring.
        interval: Span,
    },
}

impl Notifier {
    /// The evaluation's spin-polling configuration: 30 cycles at 400 MHz.
    pub fn spin_poll_default() -> Notifier {
        Notifier::SpinPoll { interval: Span::from_ns(75) }
    }
}

/// The cost of discovering one request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotifyCost {
    /// When the accelerator learns about the request.
    pub discovered_at: SimTime,
    /// Interconnect bytes consumed by the discovery (polling reads).
    pub poll_bytes: u64,
}

impl Notifier {
    /// Computes when a request written to the cpoll region at `written_at`
    /// is discovered, charging any polling traffic to `cc`.
    ///
    /// `monitored_rings` is how many rings the accelerator watches — with
    /// spin-polling, every interval spends one line read *per ring*, which
    /// is the bandwidth tax the paper measures as ~21.6 % of throughput.
    pub fn discover(
        &self,
        written_at: SimTime,
        cc: &mut CcInterconnect,
        monitored_rings: usize,
        rng: &mut SimRng,
    ) -> NotifyCost {
        match *self {
            Notifier::Cpoll => NotifyCost {
                // The invalidation signal crosses one hop; no data read yet.
                discovered_at: written_at + cc.signal_latency(),
                poll_bytes: 0,
            },
            Notifier::SpinPoll { interval } => {
                // The write lands uniformly within the current poll cycle.
                let phase = Span::from_ps(rng.gen_range(0..=interval.as_ps()));
                // Each poll cycle reads one line from every monitored ring
                // across the interconnect before it can observe this one.
                let poll_bytes = 64 * monitored_rings as u64;
                let polled_at = written_at + phase;
                let arrived = cc.accel_request(polled_at, poll_bytes);
                NotifyCost { discovered_at: arrived, poll_bytes }
            }
        }
    }

    /// Steady-state interconnect bandwidth consumed by polling `rings` rings
    /// (bytes/second). Zero for cpoll.
    pub fn poll_bandwidth(&self, rings: usize) -> f64 {
        match *self {
            Notifier::Cpoll => 0.0,
            Notifier::SpinPoll { interval } => 64.0 * rings as f64 / interval.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::CcConfig;

    #[test]
    fn cpoll_discovery_is_one_hop_and_free() {
        let mut cc = CcInterconnect::new(CcConfig::default());
        let mut rng = SimRng::seed(1);
        let c = Notifier::Cpoll.discover(SimTime::from_us(1), &mut cc, 16, &mut rng);
        assert_eq!(c.discovered_at, SimTime::from_us(1) + Span::from_ns(70));
        assert_eq!(c.poll_bytes, 0);
        assert_eq!(cc.bytes_moved(), 0);
    }

    #[test]
    fn spin_poll_is_slower_on_average_and_consumes_bandwidth() {
        let mut cc = CcInterconnect::new(CcConfig::default());
        let mut rng = SimRng::seed(2);
        let spin = Notifier::spin_poll_default();
        let mut total_delay = Span::ZERO;
        let n = 1000;
        for i in 0..n {
            let wrote = SimTime::from_us(10 * (i + 1));
            let c = spin.discover(wrote, &mut cc, 16, &mut rng);
            total_delay += c.discovered_at - wrote;
            assert_eq!(c.poll_bytes, 64 * 16);
        }
        let avg = total_delay / n;
        // ~interval/2 + hop + serialization of 1KB at 20.8GB/s (~49ns).
        assert!(avg > Span::from_ns(100), "avg={avg}");
        assert!(cc.bytes_moved() > 0);
    }

    #[test]
    fn poll_bandwidth_scales_with_rings() {
        let spin = Notifier::SpinPoll { interval: Span::from_ns(75) };
        let one = spin.poll_bandwidth(1);
        let sixteen = spin.poll_bandwidth(16);
        assert!((sixteen / one - 16.0).abs() < 1e-9);
        // 16 rings at 64B / 75ns ≈ 13.7 GB/s: a huge share of a 20.8 GB/s
        // link — exactly why cpoll matters.
        assert!(sixteen > 10.0e9);
        assert_eq!(Notifier::Cpoll.poll_bandwidth(1024), 0.0);
    }
}
