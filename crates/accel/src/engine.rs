//! The accelerator engine: shared infrastructure blocks and their timing.

use rambda_coherence::{CcConfig, CcInterconnect, CpollChecker, Notifier};
use rambda_des::{Server, SimRng, SimTime, Span, Throttle};
use rambda_mem::{AccessKind, MemKind, MemReq, MemorySystem};
use rambda_metrics::MetricSet;
use serde::{Deserialize, Serialize};

/// Where the application's data lives, from the accelerator's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataLocation {
    /// Host DRAM across the cc-interconnect (the prototype).
    HostDram,
    /// Host NVM across the cc-interconnect (Rambda-Tx).
    HostNvm,
    /// Accelerator-local DDR4 (Rambda-LD).
    LocalDdr,
    /// Accelerator-local HBM2 (Rambda-LH).
    LocalHbm,
}

impl DataLocation {
    /// Whether accesses cross the cc-interconnect.
    pub fn is_host(self) -> bool {
        matches!(self, DataLocation::HostDram | DataLocation::HostNvm)
    }

    /// The memory medium behind this location.
    pub fn mem_kind(self) -> MemKind {
        match self {
            DataLocation::HostDram => MemKind::Dram,
            DataLocation::HostNvm => MemKind::Nvm,
            DataLocation::LocalDdr => MemKind::AccelDdr,
            DataLocation::LocalHbm => MemKind::AccelHbm,
        }
    }
}

/// Accelerator configuration (defaults = the prototype in Tab. II / Sec. V).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccelConfig {
    /// cc-interconnect + coherence-controller parameters.
    pub cc: CcConfig,
    /// Outstanding-request slots in the table-based FSM (256 in Sec. V).
    pub outstanding: usize,
    /// Where application data lives.
    pub location: DataLocation,
    /// Notification mechanism (cpoll by default).
    pub notifier: Notifier,
    /// One ALU operation (hash step, comparison, aggregation step).
    pub alu_op: Span,
    /// Effective issue gap of the pipelined local DDR4 controller
    /// ([`DataLocation::LocalDdr`]).
    pub local_issue_gap: Span,
    /// Effective issue gap of the many-channel HBM2 controllers
    /// ([`DataLocation::LocalHbm`]).
    pub hbm_issue_gap: Span,
    /// Fixed per-request scheduler + FSM bookkeeping overhead.
    pub dispatch_overhead: Span,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            cc: CcConfig::default(),
            outstanding: 256,
            location: DataLocation::HostDram,
            notifier: Notifier::Cpoll,
            alu_op: Span::from_ns(5),
            local_issue_gap: Span::from_ns_f64(1.1),
            hbm_issue_gap: Span::from_ns_f64(1.5),
            dispatch_overhead: Span::from_ns(20),
        }
    }
}

impl AccelConfig {
    /// Prototype configuration with data in host memory of `kind`.
    pub fn prototype(location: DataLocation) -> Self {
        AccelConfig { location, ..AccelConfig::default() }
    }

    /// The spin-polling ablation variant ("Rambda-polling" in Fig. 7).
    pub fn with_spin_polling(mut self) -> Self {
        self.notifier = Notifier::spin_poll_default();
        self
    }
}

/// Counters for the accelerator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccelStats {
    /// Requests fully processed.
    pub requests: u64,
    /// Memory operations issued by the APU.
    pub mem_ops: u64,
    /// Bytes moved for the APU (all media).
    pub mem_bytes: u64,
    /// ALU operations executed.
    pub alu_ops: u64,
    /// Notifications delivered.
    pub notifications: u64,
}

/// The accelerator's shared infrastructure.
#[derive(Debug, Clone)]
pub struct AccelEngine {
    cfg: AccelConfig,
    cc: CcInterconnect,
    cpoll: CpollChecker,
    slots: Server,
    local_issue: Throttle,
    stats: AccelStats,
}

impl AccelEngine {
    /// Creates an engine from a configuration.
    pub fn new(cfg: AccelConfig) -> Self {
        let local_gap = match cfg.location {
            DataLocation::LocalHbm => cfg.hbm_issue_gap,
            _ => cfg.local_issue_gap,
        };
        AccelEngine {
            cc: CcInterconnect::new(cfg.cc.clone()),
            cpoll: CpollChecker::new(cfg.cc.local_cache_bytes),
            slots: Server::new(cfg.outstanding),
            local_issue: Throttle::new(local_gap),
            cfg,
            stats: AccelStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &AccelStats {
        &self.stats
    }

    /// The cpoll checker (region registration happens at init time).
    pub fn cpoll_mut(&mut self) -> &mut CpollChecker {
        &mut self.cpoll
    }

    /// The cc-interconnect (for bandwidth inspection).
    pub fn cc(&self) -> &CcInterconnect {
        &self.cc
    }

    /// Publishes the engine's counters under `prefix`: the APU stats, the
    /// cc-interconnect traffic, the outstanding-request slots, and the
    /// local-memory issue throttle.
    pub fn publish_metrics(&self, m: &mut MetricSet, prefix: &str) {
        m.set(&format!("{prefix}.requests"), self.stats.requests);
        m.set(&format!("{prefix}.mem_ops"), self.stats.mem_ops);
        m.set(&format!("{prefix}.mem_bytes"), self.stats.mem_bytes);
        m.set(&format!("{prefix}.alu_ops"), self.stats.alu_ops);
        m.set(&format!("{prefix}.notifications"), self.stats.notifications);
        m.set(&format!("{prefix}.cc.bytes"), self.cc.bytes_moved());
        m.observe_server(&format!("{prefix}.slots"), &self.slots);
        m.observe_throttle(&format!("{prefix}.local_issue"), &self.local_issue);
    }

    /// Computes when a request written to the cpoll region at `written_at`
    /// is discovered by the scheduler (cpoll signal or spin-poll cycle).
    pub fn discover(&mut self, written_at: SimTime, monitored_rings: usize, rng: &mut SimRng) -> SimTime {
        self.stats.notifications += 1;
        let cost = self.cfg.notifier.discover(written_at, &mut self.cc, monitored_rings, rng);
        cost.discovered_at
    }

    /// Claims an outstanding-request slot for a request arriving at
    /// `arrival`; returns when processing may start (slot free + dispatch
    /// overhead). Pair with [`release_slot`](Self::release_slot).
    pub fn claim_slot(&mut self, arrival: SimTime) -> SimTime {
        self.slots.earliest_free().max(arrival) + self.cfg.dispatch_overhead
    }

    /// Releases the slot claimed at `arrival`, held until `end`.
    pub fn release_slot(&mut self, arrival: SimTime, end: SimTime) {
        // Mirror `claim_slot`'s start computation, then occupy the unit
        // until `end`.
        let start = self.slots.earliest_free().max(arrival);
        let hold = end.saturating_since(start);
        let _ = self.slots.acquire(arrival, hold);
        self.stats.requests += 1;
    }

    /// One APU memory access (read or write) of `bytes` starting at `at`.
    /// Returns the completion time.
    ///
    /// Host-resident data pays the coherence controller's serial issue gap,
    /// one interconnect hop each way, and the host media time; local data
    /// pays the local controller gap and the local media time.
    pub fn mem_access(&mut self, at: SimTime, bytes: u64, write: bool, mem: &mut MemorySystem) -> SimTime {
        self.stats.mem_ops += 1;
        self.stats.mem_bytes += bytes;
        let kind = self.cfg.location.mem_kind();
        let access = if write { AccessKind::Write } else { AccessKind::Read };
        if self.cfg.location.is_host() {
            if write {
                // Write: payload crosses the link, then commits at the media.
                let at_host = self.cc.accel_request(at, bytes);
                mem.access(at_host, MemReq { kind, access, bytes })
            } else {
                // Read: small request crosses, data returns over the link.
                let at_host = self.cc.accel_request(at, 16);
                let data_ready = mem.access(at_host, MemReq { kind, access, bytes });
                self.cc.toward_accel(data_ready, bytes)
            }
        } else {
            let issued = self.local_issue.admit(at);
            mem.access(issued, MemReq { kind, access, bytes })
        }
    }

    /// `n` *dependent* reads of `bytes` each (pointer chase): latencies
    /// accumulate serially.
    pub fn read_chain(&mut self, at: SimTime, n: usize, bytes: u64, mem: &mut MemorySystem) -> SimTime {
        let mut t = at;
        for _ in 0..n {
            t = self.mem_access(t, bytes, false, mem);
        }
        t
    }

    /// `n` *independent* reads of `bytes` each (the FSM keeps them all in
    /// flight): issue serializes at the controller, completions overlap;
    /// returns when the last one lands.
    pub fn read_fanout(&mut self, at: SimTime, n: usize, bytes: u64, mem: &mut MemorySystem) -> SimTime {
        let mut last = at;
        for _ in 0..n {
            let done = self.mem_access(at, bytes, false, mem);
            last = last.max(done);
        }
        last
    }

    /// Gathers `rows` independent objects of `row_bytes` each (e.g. DLRM
    /// embedding rows): each object is fetched as 64 B lines through the
    /// controller's slow gather path for host-resident data, or the local
    /// memory controller for accelerator-local data. Returns when the last
    /// row lands.
    pub fn gather(&mut self, at: SimTime, rows: usize, row_bytes: u64, mem: &mut MemorySystem) -> SimTime {
        let kind = self.cfg.location.mem_kind();
        let lines = row_bytes.div_ceil(64).max(1);
        let mut last = at;
        for _ in 0..rows {
            self.stats.mem_ops += 1;
            self.stats.mem_bytes += row_bytes;
            if self.cfg.location.is_host() {
                let mut line_done = at;
                for _ in 0..lines {
                    let at_host = self.cc.accel_gather_line(at, 16);
                    let ready = mem.access(at_host, MemReq { kind, access: AccessKind::Read, bytes: 64 });
                    line_done = self.cc.toward_accel(ready, 64);
                }
                last = last.max(line_done);
            } else {
                // Local memory controllers burst the whole row.
                let issued = self.local_issue.admit(at);
                let done = mem.access(issued, MemReq { kind, access: AccessKind::Read, bytes: row_bytes });
                last = last.max(done);
            }
        }
        last
    }

    /// `n` ALU operations.
    pub fn compute(&mut self, at: SimTime, n: u64) -> SimTime {
        self.stats.alu_ops += n;
        at + self.cfg.alu_op * n
    }

    /// The SQ handler assembling and writing one WQE into the connection's
    /// WQ in host memory over the interconnect. Doorbell cost is charged by
    /// the RNIC model on `post`.
    pub fn sq_write_wqe(&mut self, at: SimTime) -> SimTime {
        self.cc.accel_request(at, 64)
    }

    /// Writes a response message of `bytes` into an intra-machine response
    /// ring in host memory (CPU⇄accelerator path of Sec. III-A).
    pub fn ring_write(&mut self, at: SimTime, bytes: u64, mem: &mut MemorySystem) -> SimTime {
        let at_host = self.cc.accel_request(at, bytes);
        mem.access(at_host, MemReq { kind: MemKind::Dram, access: AccessKind::Write, bytes })
    }

    /// Reads a request of `bytes` from a ring in host memory. The cpoll
    /// region is pinned in the local cache, but the *data* was just
    /// invalidated by the producer's write, so it is fetched across the
    /// interconnect.
    pub fn ring_read(&mut self, at: SimTime, bytes: u64, mem: &mut MemorySystem) -> SimTime {
        let at_host = self.cc.accel_request(at, 16);
        let ready = mem.access(at_host, MemReq { kind: MemKind::Dram, access: AccessKind::Read, bytes });
        self.cc.toward_accel(ready, bytes)
    }

    /// Resets all dynamic state (configuration and registrations persist).
    pub fn reset(&mut self) {
        self.cc.reset();
        self.slots.reset();
        self.local_issue.reset();
        self.stats = AccelStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_mem::MemConfig;

    fn engine(location: DataLocation) -> (AccelEngine, MemorySystem) {
        (AccelEngine::new(AccelConfig::prototype(location)), MemorySystem::new(MemConfig::default(), true))
    }

    #[test]
    fn host_read_pays_link_and_media() {
        let (mut e, mut mem) = engine(DataLocation::HostDram);
        let t = e.mem_access(SimTime::ZERO, 64, false, &mut mem);
        // gap(15 implicit 0 first) + hop 70 + dram 90 + hop 70 ≈ 230ns+.
        let ns = t.as_ns_f64();
        assert!((220.0..260.0).contains(&ns), "{ns}");
    }

    #[test]
    fn local_read_is_cheaper_than_host_read() {
        let (mut eh, mut memh) = engine(DataLocation::HostDram);
        let (mut el, mut meml) = engine(DataLocation::LocalDdr);
        let th = eh.mem_access(SimTime::ZERO, 64, false, &mut memh);
        let tl = el.mem_access(SimTime::ZERO, 64, false, &mut meml);
        assert!(tl < th, "local {tl} vs host {th}");
    }

    #[test]
    fn chain_is_serial_fanout_overlaps() {
        let (mut e, mut mem) = engine(DataLocation::HostDram);
        let chain = e.read_chain(SimTime::ZERO, 8, 64, &mut mem);
        let (mut e2, mut mem2) = engine(DataLocation::HostDram);
        let fanout = e2.read_fanout(SimTime::ZERO, 8, 64, &mut mem2);
        assert!(chain.as_ns_f64() > 2.0 * fanout.as_ns_f64(), "chain {chain} fanout {fanout}");
    }

    #[test]
    fn fanout_issue_is_limited_by_controller_gap() {
        let (mut e, mut mem) = engine(DataLocation::HostDram);
        let n = 2048;
        let t = e.read_fanout(SimTime::ZERO, n, 64, &mut mem);
        // Issue alone takes n * 2.5ns = 5.12us; the last completes one
        // round-trip after its issue slot.
        assert!(t.as_us_f64() > 5.1, "{}", t.as_us_f64());
    }

    #[test]
    fn local_hbm_fanout_beats_host_fanout() {
        let (mut eh, mut memh) = engine(DataLocation::HostDram);
        let (mut el, mut meml) = engine(DataLocation::LocalHbm);
        let th = eh.read_fanout(SimTime::ZERO, 64, 64, &mut memh);
        let tl = el.read_fanout(SimTime::ZERO, 64, 64, &mut meml);
        assert!(tl < th);
    }

    #[test]
    fn compute_charges_alu() {
        let (mut e, _) = engine(DataLocation::HostDram);
        let t = e.compute(SimTime::ZERO, 10);
        assert_eq!(t, SimTime::ZERO + Span::from_ns(50));
        assert_eq!(e.stats().alu_ops, 10);
    }

    #[test]
    fn slots_gate_concurrency() {
        let cfg = AccelConfig { outstanding: 1, dispatch_overhead: Span::ZERO, ..AccelConfig::default() };
        let mut e = AccelEngine::new(cfg);
        let s1 = e.claim_slot(SimTime::ZERO);
        assert_eq!(s1, SimTime::ZERO);
        e.release_slot(SimTime::ZERO, SimTime::from_ns(500));
        let s2 = e.claim_slot(SimTime::ZERO);
        assert_eq!(s2, SimTime::from_ns(500));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let (mut e, mut mem) = engine(DataLocation::HostDram);
        e.mem_access(SimTime::ZERO, 64, true, &mut mem);
        e.compute(SimTime::ZERO, 1);
        assert_eq!(e.stats().mem_ops, 1);
        assert_eq!(e.stats().mem_bytes, 64);
        e.reset();
        assert_eq!(*e.stats(), AccelStats::default());
    }

    #[test]
    fn ring_round_trip() {
        let (mut e, mut mem) = engine(DataLocation::HostDram);
        let read = e.ring_read(SimTime::ZERO, 128, &mut mem);
        let written = e.ring_write(read, 128, &mut mem);
        assert!(written > read);
        assert!(read.as_ns_f64() > 200.0);
    }
}
