//! The APU trait — the only application-specific block in the accelerator.
//!
//! An APU receives a request (already delivered through a ring and
//! discovered via cpoll) and processes it using the standard interfaces the
//! paper lists: coherent data read/write, ALU operations, and (for
//! CPU-collaborative apps) ring messages to the host cores. All of these are
//! timed through [`ApuCtx`], which advances a per-request clock.

use rambda_des::SimTime;
use rambda_mem::MemorySystem;

use crate::engine::AccelEngine;

/// Per-request processing context handed to an APU.
///
/// Wraps the engine + host memory system and tracks the request's own
/// timeline: each operation advances `now`.
#[derive(Debug)]
pub struct ApuCtx<'a> {
    engine: &'a mut AccelEngine,
    mem: &'a mut MemorySystem,
    now: SimTime,
}

impl<'a> ApuCtx<'a> {
    /// Creates a context for one request starting at `start`.
    pub fn new(engine: &'a mut AccelEngine, mem: &'a mut MemorySystem, start: SimTime) -> Self {
        ApuCtx { engine, mem, now: start }
    }

    /// The request's current timestamp.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// A dependent read of `bytes` from application data (walker step).
    pub fn read(&mut self, bytes: u64) {
        self.now = self.engine.mem_access(self.now, bytes, false, self.mem);
    }

    /// A write of `bytes` to application data.
    pub fn write(&mut self, bytes: u64) {
        self.now = self.engine.mem_access(self.now, bytes, true, self.mem);
    }

    /// `n` dependent reads (pointer chase).
    pub fn read_chain(&mut self, n: usize, bytes: u64) {
        self.now = self.engine.read_chain(self.now, n, bytes, self.mem);
    }

    /// `n` independent reads kept in flight together (the FSM's
    /// out-of-order window); completes when the last one lands.
    pub fn read_fanout(&mut self, n: usize, bytes: u64) {
        self.now = self.engine.read_fanout(self.now, n, bytes, self.mem);
    }

    /// `n` ALU operations (hash steps, comparisons, aggregations).
    pub fn compute(&mut self, n: u64) {
        self.now = self.engine.compute(self.now, n);
    }

    /// Sends a message of `bytes` to the host CPU through the intra-machine
    /// ring (Sec. III-A) and waits `host_time` for the CPU-side work before
    /// the reply lands back in the accelerator's request ring.
    ///
    /// Used by CPU-collaborative APUs like DLRM's pre-processing hand-off.
    pub fn call_host(&mut self, bytes: u64, host_time: rambda_des::Span) {
        let sent = self.engine.ring_write(self.now, bytes, self.mem);
        let replied_at = sent + host_time;
        self.now = self.engine.ring_read(replied_at, bytes, self.mem);
    }

    /// Direct access to the engine for advanced APUs.
    pub fn engine_mut(&mut self) -> &mut AccelEngine {
        self.engine
    }
}

/// An application processing unit.
///
/// Implementations hold the application's *functional* state (hash tables,
/// embedding tables, ...) and express their *timing* through the context.
pub trait Apu {
    /// Request type.
    type Req;
    /// Response type.
    type Resp;

    /// Processes one request, advancing the context clock; returns the
    /// response to be emitted through the SQ handler.
    fn process(&mut self, req: Self::Req, ctx: &mut ApuCtx<'_>) -> Self::Resp;

    /// Response payload size in bytes (for the RDMA write back).
    fn response_bytes(&self, resp: &Self::Resp) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AccelConfig, DataLocation};
    use rambda_des::Span;
    use rambda_mem::MemConfig;

    /// A toy APU: chase two pointers and add.
    struct ToyApu;
    impl Apu for ToyApu {
        type Req = u64;
        type Resp = u64;
        fn process(&mut self, req: u64, ctx: &mut ApuCtx<'_>) -> u64 {
            ctx.read_chain(3, 64);
            ctx.compute(1);
            req + 1
        }
        fn response_bytes(&self, _resp: &u64) -> u64 {
            8
        }
    }

    #[test]
    fn toy_apu_advances_clock() {
        let mut engine = AccelEngine::new(AccelConfig::prototype(DataLocation::HostDram));
        let mut mem = MemorySystem::new(MemConfig::default(), true);
        let mut ctx = ApuCtx::new(&mut engine, &mut mem, SimTime::from_us(1));
        let resp = ToyApu.process(7, &mut ctx);
        assert_eq!(resp, 8);
        // 3 dependent host reads ≈ 3 x ~245ns + 5ns ALU.
        let took = ctx.now() - SimTime::from_us(1);
        assert!((600.0..900.0).contains(&took.as_ns_f64()), "{took}");
        assert_eq!(ToyApu.response_bytes(&resp), 8);
    }

    #[test]
    fn call_host_round_trip() {
        let mut engine = AccelEngine::new(AccelConfig::prototype(DataLocation::HostDram));
        let mut mem = MemorySystem::new(MemConfig::default(), true);
        let mut ctx = ApuCtx::new(&mut engine, &mut mem, SimTime::ZERO);
        ctx.call_host(256, Span::from_us(1));
        // Ring write + 1us host + ring read.
        assert!(ctx.now().as_us_f64() > 1.4, "{}", ctx.now().as_us_f64());
    }
}
