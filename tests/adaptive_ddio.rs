//! Adaptive-DDIO integration: RNIC memory regions, TPH routing, NVM write
//! amplification, and the end-to-end Fig. 5 / Sec. III-D behaviour.

use rambda_des::SimTime;
use rambda_fabric::{NodeId, PcieConfig};
use rambda_mem::{DmaRoute, MemConfig, MemKind, MemorySystem};
use rambda_rnic::{MrInfo, RnicConfig, RnicEndpoint};

fn nic() -> RnicEndpoint {
    RnicEndpoint::new(NodeId(1), RnicConfig::default(), PcieConfig::default())
}

#[test]
fn fig6_policy_steers_per_region() {
    // Global DDIO off (guideline 1); TPH set per region (guideline 2).
    let mut nic = nic();
    let mut mem = MemorySystem::new(MemConfig::default(), false);
    let dram = nic.register_region(MrInfo::adaptive(MemKind::Dram));
    let nvm = nic.register_region(MrInfo::adaptive(MemKind::Nvm));

    let (_, r1) = nic.deliver_write(SimTime::ZERO, dram, 4096, &mut mem);
    let (_, r2) = nic.deliver_write(SimTime::ZERO, nvm, 4096, &mut mem);
    assert_eq!(r1, DmaRoute::Llc, "DRAM region rides DDIO via TPH");
    assert_eq!(r2, DmaRoute::Memory, "NVM region bypasses the cache");
    // The DRAM region consumed no memory-channel bandwidth.
    assert_eq!(mem.stats().dram_total_bytes(), 0);
    // The NVM write was granule-rounded but NOT amplified.
    assert_eq!(mem.stats().nvm_physical_write_bytes, 4096);
}

#[test]
fn global_ddio_on_amplifies_nvm_evictions() {
    // The non-adaptive configuration: DDIO on, everything lands in the LLC;
    // flushing to the persistence domain pays the eviction amplification.
    let mut nic = nic();
    let mut mem = MemorySystem::new(MemConfig::default(), true);
    let nvm = nic.register_region(MrInfo { dest: MemKind::Nvm, tph: false });
    let (t, route) = nic.deliver_write(SimTime::ZERO, nvm, 4096, &mut mem);
    assert_eq!(route, DmaRoute::Llc, "global DDIO overrides the region");
    mem.flush_llc_to_nvm(t, 4096);
    let amp = mem.stats().nvm_write_amplification();
    assert!(amp > 1.15, "expected eviction amplification, got {amp}");
}

#[test]
fn adaptive_beats_ddio_on_nvm_write_bandwidth() {
    // Same logical write stream; compare physical NVM bytes.
    let logical: u64 = 10 * 1024 * 1024;
    let chunk = 4096u64;

    let mut adaptive = MemorySystem::new(MemConfig::default(), false);
    let mut nic_a = nic();
    let nvm_a = nic_a.register_region(MrInfo::adaptive(MemKind::Nvm));
    for i in 0..logical / chunk {
        nic_a.deliver_write(SimTime::from_us(i), nvm_a, chunk, &mut adaptive);
    }

    let mut always = MemorySystem::new(MemConfig::default(), true);
    let mut nic_b = nic();
    let nvm_b = nic_b.register_region(MrInfo { dest: MemKind::Nvm, tph: false });
    for i in 0..logical / chunk {
        let (t, _) = nic_b.deliver_write(SimTime::from_us(i), nvm_b, chunk, &mut always);
        always.flush_llc_to_nvm(t, chunk);
    }

    let a = adaptive.stats().nvm_physical_write_bytes;
    let b = always.stats().nvm_physical_write_bytes;
    assert_eq!(a, logical, "adaptive path writes exactly the logical bytes");
    assert!(b as f64 >= 1.15 * a as f64, "DDIO path amplifies: {b} vs {a}");
}

#[test]
fn cq_rings_still_use_the_cache() {
    // CQEs are DRAM rings: even with global DDIO off, the RNIC sets TPH on
    // them so completions land in the LLC.
    let mut nic = nic();
    let mut mem = MemorySystem::new(MemConfig::default(), false);
    nic.complete(SimTime::ZERO, &mut mem);
    assert_eq!(mem.stats().dma_to_llc_bytes, 64);
    assert_eq!(mem.stats().dram_total_bytes(), 0);
}
