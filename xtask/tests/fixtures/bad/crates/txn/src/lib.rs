//! Negative fixture for `cargo xtask analyze`: a crate breaking R6 —
//! deprecated runner shims that must not exist at all now that
//! `SimBuilder` is the sole run entry point. Never compiled — scanned by
//! xtask/tests.

#![forbid(unsafe_code)]

/// A legacy entry point with an unhelpful deprecation note: trips R6.
#[deprecated(note = "old entry point")]
pub fn run_txn_report() -> u64 {
    0
}

/// Even a properly routed note no longer saves a shim: the definition
/// itself trips R6, and the live call site over in `caller.rs` trips the
/// second half of the rule.
#[deprecated(note = "use SimBuilder with Design::txn_rambda_tx")]
pub fn run_txn_report_traced() -> u64 {
    1
}
