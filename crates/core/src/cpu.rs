//! The CPU serving model: multi-core two-sided RDMA-RPC baselines.
//!
//! Models a HERD/MICA-style server: each core polls its CQ, processes a
//! batch of requests, interleaves their independent memory chains across the
//! core's line-fill buffers (that is what request batching buys, Sec. VI-B),
//! and posts responses with a batched doorbell.

use rambda_des::{Server, SimTime, Span};
use rambda_mem::{AccessKind, MemKind, MemReq, MemorySystem};

use crate::config::CpuConfig;

/// A multi-core CPU server.
#[derive(Debug, Clone)]
pub struct CpuServer {
    cfg: CpuConfig,
    cores: Server,
    batch: usize,
}

impl CpuServer {
    /// Creates a server using `cores` cores and request batches of `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or exceeds the configured core count.
    pub fn new(cfg: CpuConfig, cores: usize, batch: usize) -> Self {
        assert!(cores > 0 && cores <= cfg.cores, "bad core count {cores}");
        CpuServer { cores: Server::new(cores), cfg, batch: batch.max(1) }
    }

    /// The configured batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Effective per-access latency for `kind` given the configured batch:
    /// dependent chains from different requests interleave across the
    /// core's MLP, dividing the exposed latency.
    pub fn effective_access(&self, kind: MemKind, mem: &MemorySystem) -> Span {
        let media = match kind {
            MemKind::Nvm => mem.config().nvm_read_latency,
            _ => mem.config().dram_latency,
        };
        let interleave = self.batch.min(self.cfg.mlp).max(1) as u64;
        media / interleave + Span::from_ns(2)
    }

    /// Serves one request with `reads` dependent line reads and
    /// `write_bytes` of value writes against `kind` memory. Returns the
    /// completion time.
    ///
    /// The request also charges its bandwidth on the memory system so that
    /// many-core configurations can hit the channel roofline.
    pub fn serve_request(
        &mut self,
        arrival: SimTime,
        reads: usize,
        write_bytes: u64,
        kind: MemKind,
        mem: &mut MemorySystem,
    ) -> SimTime {
        let access = self.effective_access(kind, mem);
        // Batching hides memory latency and amortizes the per-batch fixed
        // cost (CQ poll, doorbell, descriptor maintenance).
        let amortized = self.cfg.batch_overhead.mul_f64(1.0 / self.batch as f64);
        let mut hold = self.cfg.rpc_overhead + self.cfg.app_overhead + amortized + access * reads as u64;
        if write_bytes > 0 {
            let write_lat = match kind {
                MemKind::Nvm => mem.config().nvm_write_latency,
                _ => Span::from_ns(10), // store to write-back cache
            };
            hold += write_lat;
        }
        let start = self.cores.acquire(arrival, hold);
        // Charge bandwidth (latency already accounted in `hold`).
        for _ in 0..reads {
            mem.access(start, MemReq { kind, access: AccessKind::Read, bytes: 64 });
        }
        if write_bytes > 0 {
            mem.access(start, MemReq { kind, access: AccessKind::Write, bytes: write_bytes });
        }
        start + hold
    }

    /// Serves a request whose service time was computed externally
    /// (CPU-collaborative paths); just occupies a core.
    pub fn occupy(&mut self, arrival: SimTime, hold: Span) -> SimTime {
        let start = self.cores.acquire(arrival, hold);
        start + hold
    }

    /// Publishes the core pool's counters under `prefix`.
    pub fn publish_metrics(&self, m: &mut rambda_metrics::MetricSet, prefix: &str) {
        m.observe_server(&format!("{prefix}.cores"), &self.cores);
    }

    /// Resets core occupancy.
    pub fn reset(&mut self) {
        self.cores.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_mem::MemConfig;

    #[test]
    fn batching_hides_latency() {
        let cfg = CpuConfig::default();
        let mem = MemorySystem::new(MemConfig::default(), true);
        let batched = CpuServer::new(cfg.clone(), 1, 16);
        let unbatched = CpuServer::new(cfg, 1, 1);
        let fast = batched.effective_access(MemKind::Dram, &mem);
        let slow = unbatched.effective_access(MemKind::Dram, &mem);
        assert!(fast.as_ns_f64() * 4.0 < slow.as_ns_f64(), "{fast} vs {slow}");
    }

    #[test]
    fn single_core_request_rate() {
        let mut mem = MemorySystem::new(MemConfig::default(), true);
        let mut cpu = CpuServer::new(CpuConfig::default(), 1, 16);
        // Microbenchmark shape: 3 dependent reads, small response.
        let mut t = SimTime::ZERO;
        let n = 10_000u64;
        for _ in 0..n {
            t = cpu.serve_request(SimTime::ZERO, 3, 64, MemKind::Dram, &mut mem);
        }
        let mops = n as f64 / t.as_secs_f64() / 1e6;
        // Calibration target: ~5.5-8.5 Mops per core with batch 16 so that
        // 8 cores land near the Rambda-polling equivalence of Fig. 7.
        assert!((5.5..8.5).contains(&mops), "mops={mops}");
    }

    #[test]
    fn nvm_requests_are_slower() {
        let mut mem = MemorySystem::new(MemConfig::default(), true);
        let mut cpu = CpuServer::new(CpuConfig::default(), 1, 16);
        let d = cpu.serve_request(SimTime::ZERO, 3, 64, MemKind::Dram, &mut mem);
        let mut mem2 = MemorySystem::new(MemConfig::default(), true);
        let mut cpu2 = CpuServer::new(CpuConfig::default(), 1, 16);
        let n = cpu2.serve_request(SimTime::ZERO, 3, 64, MemKind::Nvm, &mut mem2);
        assert!(n > d);
    }

    #[test]
    fn cores_add_capacity() {
        let mut mem = MemorySystem::new(MemConfig::default(), true);
        let mut one = CpuServer::new(CpuConfig::default(), 1, 16);
        let mut eight = CpuServer::new(CpuConfig::default(), 8, 16);
        let mut t1 = SimTime::ZERO;
        let mut t8 = SimTime::ZERO;
        for _ in 0..8000 {
            t1 = t1.max(one.serve_request(SimTime::ZERO, 3, 0, MemKind::Dram, &mut mem));
            t8 = t8.max(eight.serve_request(SimTime::ZERO, 3, 0, MemKind::Dram, &mut mem));
        }
        let ratio = t1.as_secs_f64() / t8.as_secs_f64();
        assert!((7.0..9.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    #[should_panic(expected = "bad core count")]
    fn too_many_cores_panics() {
        CpuServer::new(CpuConfig::default(), 999, 16);
    }
}
