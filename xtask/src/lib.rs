//! Workspace automation tasks (`cargo xtask ...`).
//!
//! Two tasks live here: `analyze`, a dependency-free static analyzer that
//! enforces the workspace's determinism and unsafety invariants (DESIGN.md
//! §8), and the `bench --profile-compare` throughput gate that fails CI when
//! the simulator's events-per-wall-second drops below a committed floor
//! (DESIGN.md §12.3). Both are library modules so the negative-fixture tests
//! under `xtask/tests/` can drive them directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parse;
pub mod profile;
pub mod rules;

pub use rules::{analyze, Analysis, Config, Violation};
