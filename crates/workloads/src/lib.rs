//! Workload generators for the Rambda evaluation.
//!
//! * [`Zipf`] — rejection-inversion Zipfian sampler (the evaluation's
//!   "Zipfian 0.9" skew) plus analytic cache-hit-rate helpers used to model
//!   the Smart NIC's on-board cache.
//! * [`KeyDist`] / [`KvMix`] — the KVS workloads of Sec. VI-B (uniform vs
//!   Zipf 0.9; 100 % GET vs 50/50 GET/PUT over 100 M 64 B pairs).
//! * [`TxnSpec`] — the chain-replication transaction shapes of Sec. VI-C
//!   ((0,1) and (4,2) read/write counts at 64 B / 1024 B values).
//! * [`DlrmProfile`] — the six Amazon-Review dataset stand-ins of Sec. VI-D
//!   with per-profile query-length distributions and MERCI memoization hit
//!   rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dlrm;
mod kv;
mod zipf;

pub use dlrm::{DlrmProfile, DlrmQuery};
pub use kv::{KeyDist, KvMix, KvOp, TxnSpec};
pub use zipf::Zipf;
