//! Negative fixture for `cargo xtask analyze`: a simulation crate breaking
//! R1 (hash containers), R2 (wall-clock, threads, env I/O) and R3 (missing
//! `#![forbid(unsafe_code)]`). Never compiled — scanned by xtask/tests.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;

pub struct Shard {
    entries: HashMap<u64, Vec<u8>>,
    dirty: HashSet<u64>,
}

pub fn run(shard: &mut Shard) {
    let started = Instant::now();
    let worker = std::thread::spawn(move || 42);
    let seed = std::env::var("SEED").unwrap_or_default();
    let _ = (started, worker, seed, &shard.entries, &shard.dirty);
}

#[cfg(test)]
mod tests {
    // A HashMap inside #[cfg(test)] is fine: R1/R2 skip test modules.
    use std::collections::HashMap;

    #[test]
    fn oracle_may_hash() {
        let mut oracle: HashMap<u32, u32> = HashMap::new();
        oracle.insert(1, 2);
        assert_eq!(oracle.get(&1), Some(&2));
    }
}
