//! The Sec. VI-A single-machine microbenchmark (Fig. 7).
//!
//! Cores on the other NUMA node feed requests through shared-memory ring
//! buffers (emulating one-sided RDMA arrival). Each request picks a random
//! node in a permuted 10 M-node linked list and traverses the two succeeding
//! nodes (three dependent reads), then returns the value. The NVM variant
//! additionally persists a 256 B record per request, which is where the
//! adaptive-DDIO mechanism shows up.

use rambda_accel::{AccelConfig, AccelEngine, DataLocation};
use rambda_coherence::Notifier;
use rambda_des::{SimRng, SimTime, Span};
use rambda_mem::{MemKind, MemorySystem};

use crate::config::Testbed;
use crate::cpu::CpuServer;
use crate::driver::{run_closed_loop_exec, DriverConfig, RunStats};
use crate::sim::{Design, SimCtx};

/// Spin-polling throughput tax relative to cpoll, applied to both the
/// controller issue rate and the interconnect bandwidth. Calibrated to the
/// ~21.6 % throughput gain the paper measures for cpoll (Sec. VI-A).
const SPIN_POLL_TAX: f64 = 1.22;
/// Extra average discovery latency of spin-polling: half the 30-cycle
/// (75 ns) polling interval.
const SPIN_POLL_DELAY: Span = Span::from_ps(37_500);

/// Scoped runs bucket the feeding connections into this many scope groups
/// (fewer when the run has fewer connections).
const MICRO_SCOPE_GROUPS: usize = 4;

impl Testbed {
    /// Builds an accelerator configuration for this testbed.
    ///
    /// With `cpoll == false` (the "Rambda-polling" ablation), the polling
    /// loop competes with application requests for the coherence controller
    /// and the interconnect; the configuration derates both accordingly and
    /// the serving paths add half a polling interval of discovery latency.
    pub fn accel_config(&self, location: DataLocation, cpoll: bool) -> AccelConfig {
        let mut cc = self.cc.clone();
        if !cpoll {
            cc.bandwidth /= SPIN_POLL_TAX;
            cc.controller_issue_gap = cc.controller_issue_gap.mul_f64(SPIN_POLL_TAX);
            cc.gather_issue_gap = cc.gather_issue_gap.mul_f64(SPIN_POLL_TAX);
        }
        // Discovery always uses the push-based path here; the spin-polling
        // variant's costs are folded into the derated `cc` above plus the
        // SPIN_POLL_DELAY the serving paths add. (`Notifier::SpinPoll`
        // models a single discovery in isolation and would double-count the
        // steady-state polling traffic.)
        AccelConfig { cc, location, notifier: Notifier::Cpoll, ..AccelConfig::default() }
    }
}

/// Microbenchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct MicroParams {
    /// Total requests per run.
    pub requests: u64,
    /// Feeding connections (16 in the paper).
    pub connections: usize,
    /// Dependent node reads per request (pick + traverse two = 3).
    pub chase: usize,
    /// Whether the list and the persisted record live in NVM.
    pub nvm: bool,
}

impl MicroParams {
    /// A fast configuration for tests.
    pub fn quick() -> Self {
        MicroParams { requests: 20_000, connections: 16, chase: 3, nvm: false }
    }

    /// The paper-scale configuration.
    pub fn paper() -> Self {
        MicroParams { requests: 1_000_000, connections: 16, chase: 3, nvm: false }
    }

    /// Switches the run to the NVM variant.
    pub fn with_nvm(mut self) -> Self {
        self.nvm = true;
        self
    }

    fn driver(&self) -> DriverConfig {
        DriverConfig::new(self.connections, self.requests)
    }

    fn kind(&self) -> MemKind {
        if self.nvm {
            MemKind::Nvm
        } else {
            MemKind::Dram
        }
    }

    /// Scope names for the connection groups a scoped run attributes
    /// requests to: connections bucket into at most [`MICRO_SCOPE_GROUPS`]
    /// groups (`conn/0` .. `conn/3` at the paper's 16 connections).
    fn scope_names(&self) -> Vec<String> {
        (0..self.connections.min(MICRO_SCOPE_GROUPS)).map(|g| format!("conn/{g}")).collect()
    }

    /// Scope group of connection `c`.
    fn scope_of(&self, c: usize) -> usize {
        c * self.connections.min(MICRO_SCOPE_GROUPS) / self.connections.max(1)
    }

    /// Bytes persisted per request (NVM variant only).
    fn record_bytes(&self) -> u64 {
        if self.nvm {
            256
        } else {
            64
        }
    }
}

impl Design {
    /// The Sec. VI-A CPU baseline on `cores` cores with request batches of
    /// `batch`. Single-machine (shared-memory rings, no network), so the
    /// builder's fault plan does not apply.
    pub fn micro_cpu(params: MicroParams, cores: usize, batch: usize) -> Design {
        Design::from_runner("micro.cpu", 0, move |tb, ctx| run_cpu_inner(tb, params, cores, batch, ctx))
    }

    /// The Sec. VI-A Rambda microbenchmark (prototype or LD/LH via
    /// `location`; `cpoll == false` is the spin-polling ablation).
    /// Single-machine, so the builder's fault plan does not apply.
    pub fn micro_rambda(params: MicroParams, location: DataLocation, cpoll: bool, seed: u64) -> Design {
        Design::from_runner("micro.rambda", seed, move |tb, ctx| {
            run_rambda_inner(tb, params, location, cpoll, true, seed, ctx)
        })
    }
}

/// Runs the CPU baseline on `cores` cores with request batches of `batch`.
pub fn run_cpu(testbed: &Testbed, params: MicroParams, cores: usize, batch: usize) -> RunStats {
    crate::rambda_stats_only_ctx!(ctx);
    run_cpu_inner(testbed, params, cores, batch, ctx)
}

fn run_cpu_inner(
    testbed: &Testbed,
    params: MicroParams,
    cores: usize,
    batch: usize,
    ctx: SimCtx<'_>,
) -> RunStats {
    let SimCtx { rec, resources, tracer, faults: _, profile: _, scopes, exec } = ctx;
    let mut mem = MemorySystem::new(testbed.mem.clone(), true);
    let mut cpu = CpuServer::new(testbed.cpu.clone(), cores, batch);
    let kind = params.kind();
    let record = params.record_bytes();
    let scope_names = params.scope_names();
    // Single machine, no fabric: zero lookahead opts out of parallel
    // execution and the driver falls back to serial.
    let stats = run_closed_loop_exec(&params.driver(), exec, Span::ZERO, |c, at| {
        let mut tr = tracer.observe(rec, at);
        let done = cpu.serve_request(at, params.chase, record, kind, &mut mem);
        tr.leg("cpu_serve", done);
        tr.finish(done);
        scopes.record(&scope_names[params.scope_of(c)], at, done);
        scopes.observe_key(c as u64);
        tracer.sample_with(rec, at, |s| {
            cpu.publish_metrics(s, "cpu");
            mem.publish_metrics(s, "mem");
        });
        done
    });
    if rec.is_active() {
        cpu.publish_metrics(resources, "cpu");
        mem.publish_metrics(resources, "mem");
        tracer.final_sample(SimTime::ZERO + stats.makespan, resources);
    }
    stats
}

/// Runs a Rambda variant: prototype (`HostDram`/`HostNvm` per
/// `params.nvm`) or the envisioned local-memory accelerators
/// (`LocalDdr`/`LocalHbm`).
///
/// `cpoll == false` selects the spin-polling ablation; `seed` fixes the
/// run's randomness.
pub fn run_rambda(
    testbed: &Testbed,
    params: MicroParams,
    location: DataLocation,
    cpoll: bool,
    seed: u64,
) -> RunStats {
    // The adaptive scheme disables global DDIO (Fig. 6 guideline 1).
    crate::rambda_stats_only_ctx!(ctx);
    run_rambda_inner(testbed, params, location, cpoll, true, seed, ctx)
}

/// The "Rambda-DDIO" ablation of the NVM microbenchmark: global DDIO stays
/// on, so persisted records take the LLC-then-evict path with write
/// amplification.
pub fn run_rambda_always_ddio(testbed: &Testbed, params: MicroParams, cpoll: bool, seed: u64) -> RunStats {
    assert!(params.nvm, "the DDIO ablation only applies to the NVM variant");
    crate::rambda_stats_only_ctx!(ctx);
    run_rambda_inner(testbed, params, DataLocation::HostNvm, cpoll, false, seed, ctx)
}

fn run_rambda_inner(
    testbed: &Testbed,
    params: MicroParams,
    location: DataLocation,
    cpoll: bool,
    adaptive_ddio: bool,
    seed: u64,
    ctx: SimCtx<'_>,
) -> RunStats {
    let SimCtx { rec, resources, tracer, faults: _, profile: _, scopes, exec } = ctx;
    let location = match (params.nvm, location) {
        (true, DataLocation::HostDram) => DataLocation::HostNvm,
        (_, l) => l,
    };
    let mut engine = AccelEngine::new(testbed.accel_config(location, cpoll));
    let mut mem = MemorySystem::new(testbed.mem.clone(), !adaptive_ddio);
    let mut rng = SimRng::seed(seed);
    let connections = params.connections;
    let record = params.record_bytes();
    let scope_names = params.scope_names();

    // Single machine, no fabric: zero lookahead opts out of parallel
    // execution and the driver falls back to serial.
    let stats = run_closed_loop_exec(&params.driver(), exec, Span::ZERO, |c, at| {
        let mut trace = tracer.observe(rec, at);
        // Request written into the ring at `at`; discovery via cpoll (or the
        // slower spin-poll cycle).
        let mut t = engine.discover(at, connections, &mut rng);
        if !cpoll {
            t += SPIN_POLL_DELAY;
        }
        trace.leg("coherence", t);
        let start = engine.claim_slot(t);
        trace.leg("dispatch", start);
        let mut now = start;
        // Fetch the request entry. In the local-memory emulation requests
        // are generated within the FPGA (Sec. V), so only host-resident
        // variants fetch across the interconnect.
        if location.is_host() {
            now = engine.ring_read(now, 64, &mut mem);
            trace.leg("ring_read", now);
        }
        // Walk the list: three dependent reads.
        now = engine.read_chain(now, params.chase, 64, &mut mem);
        trace.leg("mem_chase", now);
        now = engine.compute(now, 1);
        trace.leg("apu_compute", now);
        // Emit the response / persist the record.
        now = match (params.nvm, adaptive_ddio) {
            (true, true) => engine.mem_access(now, record, true, &mut mem),
            (true, false) => {
                // DDIO on: the record lands in the LLC first, then must be
                // flushed to the persistence domain with amplification.
                let in_llc = engine.ring_write(now, record, &mut mem);
                mem.flush_llc_to_nvm(in_llc, record)
            }
            (false, _) => {
                if location.is_host() {
                    engine.ring_write(now, record, &mut mem)
                } else {
                    now // response consumed on-FPGA in the emulation
                }
            }
        };
        if params.nvm {
            trace.leg("nvm_persist", now);
        } else {
            trace.leg("response_write", now);
        }
        engine.release_slot(t, now);
        trace.finish(now);
        scopes.record(&scope_names[params.scope_of(c)], at, now);
        scopes.observe_key(c as u64);
        tracer.sample_with(rec, at, |s| {
            engine.publish_metrics(s, "accel");
            mem.publish_metrics(s, "mem");
        });
        now
    });
    if rec.is_active() {
        engine.publish_metrics(resources, "accel");
        mem.publish_metrics(resources, "mem");
        tracer.final_sample(SimTime::ZERO + stats.makespan, resources);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb() -> Testbed {
        Testbed::default()
    }

    #[test]
    fn cpu_scales_linearly_to_16_cores() {
        let p = MicroParams::quick();
        let one = run_cpu(&tb(), p, 1, 16).throughput_mops();
        let eight = run_cpu(&tb(), p, 8, 16).throughput_mops();
        let sixteen = run_cpu(&tb(), p, 16, 16).throughput_mops();
        assert!((6.0..10.5).contains(&(eight / one)), "8/1 = {}", eight / one);
        assert!((1.6..2.2).contains(&(sixteen / eight)), "16/8 = {}", sixteen / eight);
    }

    #[test]
    fn rambda_polling_is_roughly_eight_cores() {
        // Fig. 7: "Rambda-polling ... is equivalent to ~8 cores".
        let p = MicroParams::quick();
        let eight = run_cpu(&tb(), p, 8, 16).throughput_mops();
        let polling = run_rambda(&tb(), p, DataLocation::HostDram, false, 1).throughput_mops();
        let ratio = polling / eight;
        assert!((0.7..1.4).contains(&ratio), "polling/8core = {ratio}");
    }

    #[test]
    fn cpoll_improves_over_polling_by_about_20_percent() {
        let p = MicroParams::quick();
        let polling = run_rambda(&tb(), p, DataLocation::HostDram, false, 1).throughput_mops();
        let cpoll = run_rambda(&tb(), p, DataLocation::HostDram, true, 1).throughput_mops();
        let gain = cpoll / polling - 1.0;
        assert!((0.12..0.35).contains(&gain), "gain = {gain}");
    }

    #[test]
    fn local_memory_variants_improve_further() {
        // Fig. 7: LD/LH bring 114.4%-165.6% more improvement over Rambda.
        let p = MicroParams::quick();
        let rambda = run_rambda(&tb(), p, DataLocation::HostDram, true, 1).throughput_mops();
        let ld = run_rambda(&tb(), p, DataLocation::LocalDdr, true, 1).throughput_mops();
        let lh = run_rambda(&tb(), p, DataLocation::LocalHbm, true, 1).throughput_mops();
        assert!(ld > 1.6 * rambda, "LD {ld} vs Rambda {rambda}");
        assert!(lh > ld, "LH {lh} vs LD {ld}");
        assert!(lh < 4.0 * rambda, "LH {lh} vs Rambda {rambda}");
    }

    #[test]
    fn adaptive_ddio_helps_nvm_by_about_20_percent() {
        let p = MicroParams::quick().with_nvm();
        let adaptive = run_rambda(&tb(), p, DataLocation::HostDram, true, 1).throughput_mops();
        let always = run_rambda_always_ddio(&tb(), p, true, 1).throughput_mops();
        let gain = adaptive / always - 1.0;
        assert!((0.1..0.35).contains(&gain), "gain = {gain}");
    }

    #[test]
    fn nvm_is_slower_than_dram_everywhere() {
        let p = MicroParams::quick();
        let dram = run_rambda(&tb(), p, DataLocation::HostDram, true, 1).throughput_mops();
        let nvm = run_rambda(&tb(), p.with_nvm(), DataLocation::HostDram, true, 1).throughput_mops();
        assert!(nvm < dram);
        let cpu_dram = run_cpu(&tb(), p, 8, 16).throughput_mops();
        let cpu_nvm = run_cpu(&tb(), p.with_nvm(), 8, 16).throughput_mops();
        assert!(cpu_nvm < cpu_dram);
    }

    #[test]
    #[should_panic(expected = "only applies to the NVM variant")]
    fn ddio_ablation_requires_nvm() {
        run_rambda_always_ddio(&tb(), MicroParams::quick(), true, 1);
    }
}
