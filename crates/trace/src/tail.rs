//! Tail-latency attribution: which stage and resource own the p99.

use std::collections::BTreeMap;

use rambda_metrics::Json;

use crate::event::TraceEvent;
use crate::tracer::Tracer;

/// One of the worst-N requests, with its per-stage time split.
#[derive(Debug, Clone, PartialEq)]
pub struct WorstRequest {
    /// Request sequence number.
    pub req: u64,
    /// Issue time, picoseconds.
    pub issued_ps: u64,
    /// Issue→completion latency, picoseconds.
    pub total_ps: u64,
    /// The stage that consumed the most time in this request.
    pub dominant_stage: String,
    /// The resource track that consumed the most time in this request.
    pub dominant_track: String,
    /// Per-stage time, picoseconds, largest first (ties name-sorted).
    pub stages: Vec<(String, u64)>,
}

/// Where the tail of the latency distribution comes from.
///
/// Percentiles here are *exact* — computed from the sorted per-request
/// totals in the trace, not from the histogram's log-bucketed summary — so
/// the report can also serve as a resolution check on
/// [`rambda_metrics::HistSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct TailAttribution {
    /// Number of requests the trace holds complete data for.
    pub requests: u64,
    /// Exact median latency, picoseconds.
    pub p50_ps: u64,
    /// Exact 99th-percentile latency, picoseconds.
    pub p99_ps: u64,
    /// Exact 99.9th-percentile latency, picoseconds.
    pub p999_ps: u64,
    /// Worst request latency, picoseconds.
    pub max_ps: u64,
    /// The stage that dominates time spent by tail (≥ p99) requests.
    pub dominant_tail_stage: String,
    /// The resource track that dominates time spent by tail requests.
    pub dominant_tail_track: String,
    /// Each stage's share of total tail-request time, largest first.
    pub tail_stage_share: Vec<(String, f64)>,
    /// The worst-N requests, slowest first.
    pub worst: Vec<WorstRequest>,
}

/// Exact percentile over sorted samples: the value at rank `ceil(n·q)`,
/// matching the histogram's rank rule.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Picks the largest-value entry, breaking ties by name, from `(name, ps)`
/// sums.
fn dominant(sums: &BTreeMap<String, u64>) -> String {
    sums.iter()
        .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(name, _)| name.clone())
        .unwrap_or_default()
}

/// Sorts `(name, ps)` sums largest first, ties name-sorted.
fn ranked(sums: &BTreeMap<String, u64>) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = sums.iter().map(|(k, v)| (k.clone(), *v)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// Per-request accumulator while walking the ring.
#[derive(Debug, Default)]
struct ReqAcc {
    issued_ps: u64,
    total_ps: u64,
    complete: bool,
    stages: BTreeMap<String, u64>,
    tracks: BTreeMap<String, u64>,
}

impl Tracer {
    /// Builds the tail-attribution report: exact percentiles over the
    /// traced request totals, the dominating stage/resource over the p99
    /// tail, and a per-stage split for the `worst_n` slowest requests.
    ///
    /// Only requests whose [`TraceEvent::Request`] record is still in the
    /// ring are counted; if the ring overflowed ([`Tracer::dropped`] > 0),
    /// the report covers the retained suffix of the run.
    pub fn tail_report(&self, worst_n: usize) -> TailAttribution {
        let mut reqs: BTreeMap<u64, ReqAcc> = BTreeMap::new();
        for ev in self.events() {
            match ev {
                TraceEvent::Span { req, track, stage, start_ps, end_ps, .. } => {
                    let acc = reqs.entry(*req).or_default();
                    *acc.stages.entry(stage.to_string()).or_insert(0) += end_ps - start_ps;
                    *acc.tracks.entry(track.name().to_string()).or_insert(0) += end_ps - start_ps;
                }
                TraceEvent::Request { req, start_ps, end_ps, .. } => {
                    let acc = reqs.entry(*req).or_default();
                    acc.issued_ps = *start_ps;
                    acc.total_ps = end_ps - start_ps;
                    acc.complete = true;
                }
                TraceEvent::Sample { .. } | TraceEvent::Fault { .. } => {}
            }
        }
        reqs.retain(|_, acc| acc.complete);

        let mut totals: Vec<u64> = reqs.values().map(|a| a.total_ps).collect();
        totals.sort_unstable();
        let p50_ps = exact_percentile(&totals, 0.5);
        let p99_ps = exact_percentile(&totals, 0.99);
        let p999_ps = exact_percentile(&totals, 0.999);
        let max_ps = totals.last().copied().unwrap_or(0);

        let mut tail_stages: BTreeMap<String, u64> = BTreeMap::new();
        let mut tail_tracks: BTreeMap<String, u64> = BTreeMap::new();
        for acc in reqs.values().filter(|a| a.total_ps >= p99_ps) {
            for (stage, ps) in &acc.stages {
                *tail_stages.entry(stage.clone()).or_insert(0) += ps;
            }
            for (track, ps) in &acc.tracks {
                *tail_tracks.entry(track.clone()).or_insert(0) += ps;
            }
        }
        let tail_total: u64 = tail_stages.values().sum();
        let tail_stage_share: Vec<(String, f64)> = ranked(&tail_stages)
            .into_iter()
            .map(|(name, ps)| (name, ps as f64 / tail_total.max(1) as f64))
            .collect();

        let mut by_latency: Vec<(&u64, &ReqAcc)> = reqs.iter().collect();
        by_latency.sort_by(|a, b| b.1.total_ps.cmp(&a.1.total_ps).then_with(|| a.0.cmp(b.0)));
        let worst = by_latency
            .into_iter()
            .take(worst_n)
            .map(|(req, acc)| WorstRequest {
                req: *req,
                issued_ps: acc.issued_ps,
                total_ps: acc.total_ps,
                dominant_stage: dominant(&acc.stages),
                dominant_track: dominant(&acc.tracks),
                stages: ranked(&acc.stages),
            })
            .collect();

        TailAttribution {
            requests: reqs.len() as u64,
            p50_ps,
            p99_ps,
            p999_ps,
            max_ps,
            dominant_tail_stage: dominant(&tail_stages),
            dominant_tail_track: dominant(&tail_tracks),
            tail_stage_share,
            worst,
        }
    }
}

impl TailAttribution {
    /// Renders the report as a deterministic JSON value.
    pub fn to_json(&self) -> Json {
        let mut pct = Json::obj();
        pct.push("p50_ps", Json::U64(self.p50_ps));
        pct.push("p99_ps", Json::U64(self.p99_ps));
        pct.push("p999_ps", Json::U64(self.p999_ps));
        pct.push("max_ps", Json::U64(self.max_ps));
        let mut shares = Json::obj();
        for (stage, share) in &self.tail_stage_share {
            shares.push(stage, Json::F64(*share));
        }
        let mut worst = Vec::new();
        for w in &self.worst {
            let mut stages = Json::obj();
            for (stage, ps) in &w.stages {
                stages.push(stage, Json::U64(*ps));
            }
            let mut o = Json::obj();
            o.push("req", Json::U64(w.req));
            o.push("issued_ps", Json::U64(w.issued_ps));
            o.push("total_ps", Json::U64(w.total_ps));
            o.push("dominant_stage", Json::Str(w.dominant_stage.clone()));
            o.push("dominant_track", Json::Str(w.dominant_track.clone()));
            o.push("stages", stages);
            worst.push(o);
        }
        let mut out = Json::obj();
        out.push("requests", Json::U64(self.requests));
        out.push("exact_percentiles", pct);
        out.push("dominant_tail_stage", Json::Str(self.dominant_tail_stage.clone()));
        out.push("dominant_tail_track", Json::Str(self.dominant_tail_track.clone()));
        out.push("tail_stage_share", shares);
        out.push("worst", Json::Arr(worst));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_des::{SimTime, Span};
    use rambda_metrics::StageRecorder;

    /// 100 requests: all spend 100 ns in `fabric_request`; every tenth one
    /// additionally stalls 900·k ns in `apu_compute`, so the slowest
    /// requests are dominated by the accel track.
    fn traced() -> Tracer {
        let mut rec = StageRecorder::active();
        let mut tracer = Tracer::flight_recorder();
        for i in 0..100u64 {
            let t0 = SimTime::from_us(i);
            let mut obs = tracer.observe(&mut rec, t0);
            obs.leg("fabric_request", t0 + Span::from_ns(100));
            let stall = if i % 10 == 0 { 900 * (i / 10 + 1) } else { 50 };
            obs.leg("apu_compute", obs.now() + Span::from_ns(stall));
            let done = obs.now();
            obs.finish(done);
        }
        tracer
    }

    #[test]
    fn exact_percentiles_follow_the_rank_rule() {
        assert_eq!(exact_percentile(&[], 0.5), 0);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_percentile(&v, 0.5), 50);
        assert_eq!(exact_percentile(&v, 0.99), 99);
        assert_eq!(exact_percentile(&v, 0.999), 100);
        assert_eq!(exact_percentile(&v, 1.0), 100);
    }

    #[test]
    fn tail_is_attributed_to_the_stalling_stage() {
        let report = traced().tail_report(10);
        assert_eq!(report.requests, 100);
        assert_eq!(report.dominant_tail_stage, "apu_compute");
        assert_eq!(report.dominant_tail_track, "accel");
        // Exact percentiles: fast requests take 150 ns, the ten stallers
        // 100 + 900·k ns (max k = 10).
        assert_eq!(report.p50_ps, 150_000);
        assert_eq!(report.max_ps, 9_100_000);
        assert!(report.p99_ps > 150_000);
        // Shares are a probability distribution, largest first.
        let total: f64 = report.tail_stage_share.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
        assert!(report.tail_stage_share[0].0 == "apu_compute");

        assert_eq!(report.worst.len(), 10);
        let worst = &report.worst[0];
        assert_eq!(worst.req, 90, "request 90 has the largest stall");
        assert_eq!(worst.total_ps, 9_100_000);
        assert_eq!(worst.dominant_stage, "apu_compute");
        assert_eq!(worst.dominant_track, "accel");
        assert_eq!(worst.stages[0], ("apu_compute".to_string(), 9_000_000));
        assert_eq!(worst.stages[1], ("fabric_request".to_string(), 100_000));
        // Slowest first.
        assert!(report.worst.windows(2).all(|w| w[0].total_ps >= w[1].total_ps));
    }

    #[test]
    fn tail_json_is_deterministic_and_complete() {
        let a = traced().tail_report(5).to_json().render();
        let b = traced().tail_report(5).to_json().render();
        assert_eq!(a, b);
        assert!(a.contains("\"dominant_tail_stage\": \"apu_compute\""));
        assert!(a.contains("\"exact_percentiles\""));
        assert!(a.contains("\"worst\""));
    }

    #[test]
    fn empty_trace_reports_zeroes() {
        let report = Tracer::disabled().tail_report(10);
        assert_eq!(report.requests, 0);
        assert_eq!(report.max_ps, 0);
        assert!(report.worst.is_empty());
        assert!(report.dominant_tail_stage.is_empty());
    }
}
