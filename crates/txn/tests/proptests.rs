//! Property-based tests: chain replication invariants under arbitrary
//! transaction mixes and crash points.

use proptest::prelude::*;
use rambda_txn::{Chain, TxnWrite};

#[derive(Debug, Clone)]
struct PropTxn {
    reads: Vec<u64>,
    writes: Vec<(u64, u8)>,
}

fn txn_strategy() -> impl Strategy<Value = PropTxn> {
    (proptest::collection::vec(0u64..50, 0..4), proptest::collection::vec((0u64..50, any::<u8>()), 0..4))
        .prop_map(|(reads, writes)| PropTxn { reads, writes })
}

proptest! {
    /// All replicas hold identical durable logs and identical values after
    /// any workload.
    #[test]
    fn replicas_never_diverge(txns in proptest::collection::vec(txn_strategy(), 1..100),
                              replicas in 1usize..5) {
        let mut chain = Chain::new(replicas);
        for t in txns {
            let writes = t.writes.iter().map(|&(k, b)| TxnWrite { key: k, value: vec![b; 4] }).collect();
            chain.execute(&t.reads, writes);
        }
        chain.check_consistency().unwrap();
        for key in 0..50u64 {
            let head = chain.replica(0).get(key).map(<[u8]>::to_vec);
            for r in 1..replicas {
                prop_assert_eq!(chain.replica(r).get(key).map(<[u8]>::to_vec), head.clone());
            }
        }
    }

    /// Crash + recovery at any point preserves exactly the committed state.
    #[test]
    fn recovery_is_exact(txns in proptest::collection::vec(txn_strategy(), 1..60),
                         crash_replica in 0usize..3) {
        let mut chain = Chain::new(3);
        for t in &txns {
            let writes = t.writes.iter().map(|&(k, b)| TxnWrite { key: k, value: vec![b; 4] }).collect();
            chain.execute(&t.reads, writes);
        }
        let before: Vec<_> = (0..50u64)
            .map(|k| chain.replica(crash_replica).get(k).map(<[u8]>::to_vec))
            .collect();
        chain.replica_mut(crash_replica).crash();
        chain.replica_mut(crash_replica).recover();
        for (k, want) in before.into_iter().enumerate() {
            prop_assert_eq!(chain.replica(crash_replica).get(k as u64).map(<[u8]>::to_vec), want);
        }
        chain.check_consistency().unwrap();
    }

    /// Reads always observe the latest committed write for their key.
    #[test]
    fn reads_are_monotone(values in proptest::collection::vec(any::<u8>(), 1..50)) {
        let mut chain = Chain::new(2);
        for (i, &b) in values.iter().enumerate() {
            chain.execute(&[], vec![TxnWrite { key: 7, value: vec![b; 2] }]);
            let out = chain.execute(&[7], vec![]);
            prop_assert_eq!(out.reads[0].as_deref().unwrap(), &[b, b][..], "iteration {}", i);
        }
    }
}
