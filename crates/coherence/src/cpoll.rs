//! The cpoll checker (Fig. 3).
//!
//! During initialization the framework allocates the request buffers (or the
//! pointer buffer, at scale) in one contiguous *cpoll region* and registers
//! it with the checker in the accelerator's coherence controller. When a
//! coherence invalidation hits the region, the checker dispatches it to the
//! right ring by simple address arithmetic — which is why monitoring a
//! single region is "trivially scalable".

use serde::{Deserialize, Serialize};

use crate::mesi::{CoherenceEvent, LineAddr};

/// Identifies a registered cpoll region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// A notification produced by the checker: "ring `ring` of region `region`
/// received new data".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Notification {
    /// The registered region the write fell into.
    pub region: RegionId,
    /// The ring (connection) index within the region.
    pub ring: usize,
    /// The precise line that changed.
    pub line: LineAddr,
}

/// Errors from region registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpollError {
    /// The region would overflow the accelerator's pinnable local cache.
    CacheOverflow {
        /// Bytes requested (including already-registered regions).
        requested: u64,
        /// Bytes of pinnable local cache available.
        capacity: u64,
    },
    /// The region overlaps an already-registered region.
    Overlap,
    /// `ring_bytes` was zero or did not divide the region size.
    BadGeometry,
}

impl std::fmt::Display for CpollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpollError::CacheOverflow { requested, capacity } => write!(
                f,
                "cpoll region of {requested} B cannot be pinned in {capacity} B of local cache; \
                 use a pointer buffer (Fig. 3(c))"
            ),
            CpollError::Overlap => write!(f, "region overlaps an existing cpoll region"),
            CpollError::BadGeometry => {
                write!(f, "ring size must be nonzero and divide the region size")
            }
        }
    }
}

impl std::error::Error for CpollError {}

#[derive(Debug, Clone)]
struct Region {
    id: RegionId,
    base: u64,
    bytes: u64,
    ring_bytes: u64,
}

/// The cpoll checker in the accelerator coherence controller's datapath.
///
/// ```
/// use rambda_coherence::{CpollChecker, LineAddr};
///
/// // 64 KB of pinnable cache; register 4 rings of 1 KB each at base 0x1000.
/// let mut checker = CpollChecker::new(64 * 1024);
/// let region = checker.register(0x1000, 4 * 1024, 1024).unwrap();
/// let n = checker.dispatch_line(LineAddr::containing(0x1000 + 2 * 1024 + 64)).unwrap();
/// assert_eq!(n.region, region);
/// assert_eq!(n.ring, 2);
/// ```
#[derive(Debug, Clone)]
pub struct CpollChecker {
    cache_capacity: u64,
    pinned_bytes: u64,
    regions: Vec<Region>,
    next_id: u32,
    signals_seen: u64,
    signals_dispatched: u64,
}

impl CpollChecker {
    /// Creates a checker backed by `cache_capacity` bytes of pinnable local
    /// cache (64 KB in the prototype, Tab. II).
    pub fn new(cache_capacity: u64) -> Self {
        CpollChecker {
            cache_capacity,
            pinned_bytes: 0,
            regions: Vec::new(),
            next_id: 0,
            signals_seen: 0,
            signals_dispatched: 0,
        }
    }

    /// Registers a contiguous cpoll region of `bytes` at `base`, divided
    /// into rings of `ring_bytes` each, and pins it in the local cache.
    ///
    /// # Errors
    ///
    /// * [`CpollError::CacheOverflow`] if the pinned total would exceed the
    ///   local cache — the prototype limitation that motivates the pointer
    ///   buffer.
    /// * [`CpollError::Overlap`] if the region overlaps an existing one.
    /// * [`CpollError::BadGeometry`] if `ring_bytes` is zero or does not
    ///   divide `bytes`.
    pub fn register(&mut self, base: u64, bytes: u64, ring_bytes: u64) -> Result<RegionId, CpollError> {
        if ring_bytes == 0 || bytes == 0 || !bytes.is_multiple_of(ring_bytes) {
            return Err(CpollError::BadGeometry);
        }
        if self.pinned_bytes + bytes > self.cache_capacity {
            return Err(CpollError::CacheOverflow {
                requested: self.pinned_bytes + bytes,
                capacity: self.cache_capacity,
            });
        }
        let end = base + bytes;
        if self.regions.iter().any(|r| base < r.base + r.bytes && r.base < end) {
            return Err(CpollError::Overlap);
        }
        let id = RegionId(self.next_id);
        self.next_id += 1;
        self.regions.push(Region { id, base, bytes, ring_bytes });
        self.pinned_bytes += bytes;
        Ok(id)
    }

    /// Unregisters a region, releasing its pinned cache.
    pub fn unregister(&mut self, id: RegionId) {
        if let Some(pos) = self.regions.iter().position(|r| r.id == id) {
            let r = self.regions.swap_remove(pos);
            self.pinned_bytes -= r.bytes;
        }
    }

    /// Bytes currently pinned in the local cache.
    pub fn pinned_bytes(&self) -> u64 {
        self.pinned_bytes
    }

    /// Resolves a changed line to a notification, if it falls in a
    /// registered region.
    pub fn dispatch_line(&mut self, line: LineAddr) -> Option<Notification> {
        self.signals_seen += 1;
        let addr = line.0;
        for r in &self.regions {
            if addr >= r.base && addr < r.base + r.bytes {
                self.signals_dispatched += 1;
                return Some(Notification {
                    region: r.id,
                    ring: ((addr - r.base) / r.ring_bytes) as usize,
                    line,
                });
            }
        }
        None
    }

    /// Feeds a raw coherence event; only invalidations of the accelerator's
    /// copies inside registered regions notify.
    pub fn observe(&mut self, event: &CoherenceEvent) -> Option<Notification> {
        match event {
            CoherenceEvent::Invalidated { line, .. } => self.dispatch_line(*line),
            CoherenceEvent::Downgraded { .. } => None,
        }
    }

    /// Coherence signals observed (inside or outside registered regions).
    pub fn signals_seen(&self) -> u64 {
        self.signals_seen
    }

    /// Signals that fell inside a registered region.
    pub fn signals_dispatched(&self) -> u64 {
        self.signals_dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesi::{AgentId, Directory};

    #[test]
    fn dispatch_maps_address_to_ring() {
        let mut c = CpollChecker::new(1 << 16);
        let r = c.register(4096, 8192, 1024).unwrap();
        for ring in 0..8usize {
            let line = LineAddr::containing(4096 + ring as u64 * 1024 + 512);
            let n = c.dispatch_line(line).unwrap();
            assert_eq!(n.region, r);
            assert_eq!(n.ring, ring);
        }
    }

    #[test]
    fn out_of_region_lines_do_not_notify() {
        let mut c = CpollChecker::new(1 << 16);
        c.register(4096, 1024, 1024).unwrap();
        assert!(c.dispatch_line(LineAddr(0)).is_none());
        assert!(c.dispatch_line(LineAddr::containing(4096 + 1024)).is_none());
        assert_eq!(c.signals_seen(), 2);
        assert_eq!(c.signals_dispatched(), 0);
    }

    #[test]
    fn cache_capacity_limits_pinning() {
        // The prototype's 64 KB cache cannot pin 16 rings of 1 MB: this is
        // exactly the scalability limitation that motivates Fig. 3(c).
        let mut c = CpollChecker::new(64 * 1024);
        let err = c.register(0, 16 << 20, 1 << 20).unwrap_err();
        assert!(matches!(err, CpollError::CacheOverflow { .. }));
        assert!(!format!("{err}").is_empty());

        // A 16-ring pointer buffer (4 B each, line-padded to 64 B) fits fine.
        c.register(0, 16 * 64, 64).unwrap();
    }

    #[test]
    fn overlap_rejected() {
        let mut c = CpollChecker::new(1 << 20);
        c.register(0, 4096, 1024).unwrap();
        assert_eq!(c.register(2048, 4096, 1024).unwrap_err(), CpollError::Overlap);
        c.register(4096, 4096, 1024).unwrap();
    }

    #[test]
    fn bad_geometry_rejected() {
        let mut c = CpollChecker::new(1 << 20);
        assert_eq!(c.register(0, 1000, 0).unwrap_err(), CpollError::BadGeometry);
        assert_eq!(c.register(0, 1000, 333).unwrap_err(), CpollError::BadGeometry);
    }

    #[test]
    fn unregister_releases_cache() {
        let mut c = CpollChecker::new(4096);
        let r = c.register(0, 4096, 1024).unwrap();
        assert_eq!(c.pinned_bytes(), 4096);
        c.unregister(r);
        assert_eq!(c.pinned_bytes(), 0);
        c.register(0, 4096, 2048).unwrap();
    }

    #[test]
    fn end_to_end_with_directory() {
        // Accelerator owns the ring region; an RNIC DMA write produces an
        // invalidation that the checker turns into a ring notification.
        let mut dir = Directory::new();
        let mut c = CpollChecker::new(1 << 16);
        c.register(0, 4096, 1024).unwrap();
        let slot = LineAddr(2048); // ring 2, entry 0
        dir.write(AgentId::ACCEL, slot); // pin: accelerator owns the line
        let events = dir.write(AgentId::IO, slot); // request arrives via DMA
        let notes: Vec<_> = events.iter().filter_map(|e| c.observe(e)).collect();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].ring, 2);

        // A downgrade (read) does not notify.
        let events = dir.read(AgentId::ACCEL, slot);
        assert!(events.iter().filter_map(|e| c.observe(e)).next().is_none());
    }
}
