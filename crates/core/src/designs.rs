//! The canonical runner-name registry.
//!
//! Every surface that accepts a runner name — `report --trace-runner`,
//! `--profile-runner`, `--scopes`, the bench sweeps, and the differential
//! test suites — must agree on the same nine names. This module is the one
//! place that list lives. The application crates (`rambda-kvs`, `rambda-txn`,
//! `rambda-dlrm`) depend on this crate, so the framework cannot construct
//! their [`Design`]s itself; instead a [`Registry`] maps each name to an
//! installed factory, and `rambda_bench::quick_registry()` installs the nine
//! quick-mode factories for the CLI tools and tests.

use crate::sim::Design;

/// The nine named runners, in canonical report order.
pub const RUNNER_NAMES: [&str; 9] = [
    "micro.cpu",
    "micro.rambda",
    "kvs.cpu",
    "kvs.rambda",
    "kvs.smartnic",
    "txn.hyperloop",
    "txn.rambda_tx",
    "dlrm.cpu",
    "dlrm.rambda",
];

/// Validates a runner name against [`RUNNER_NAMES`]. `"all"` is accepted as
/// the conventional wildcard. On failure the error message lists the valid
/// names, ready to print.
pub fn check_runner(name: &str) -> Result<(), String> {
    if name == "all" || RUNNER_NAMES.contains(&name) {
        Ok(())
    } else {
        Err(format!("unknown runner `{name}` — valid runners: all, {}", RUNNER_NAMES.join(", ")))
    }
}

/// A deferred [`Design`] constructor, boxed so the registry can hold
/// factories over any closure state.
type Factory = Box<dyn Fn() -> Design>;

/// A name→[`Design`] factory table over [`RUNNER_NAMES`].
///
/// Factories are installed by a higher layer that can see the application
/// crates; [`Registry::design`] then builds a fresh `Design` per call so each
/// run gets its own closure state.
#[derive(Default)]
pub struct Registry {
    entries: Vec<(&'static str, Factory)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Installs the factory for `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of [`RUNNER_NAMES`] or was already
    /// installed — both are wiring bugs, not runtime conditions.
    pub fn install(&mut self, name: &'static str, factory: impl Fn() -> Design + 'static) {
        assert!(RUNNER_NAMES.contains(&name), "unknown runner name `{name}`");
        assert!(!self.entries.iter().any(|(n, _)| *n == name), "runner `{name}` installed twice");
        self.entries.push((name, Box::new(factory)));
    }

    /// Builds a fresh [`Design`] for `name`, or `None` if no factory is
    /// installed under that name.
    pub fn design(&self, name: &str) -> Option<Design> {
        self.entries.iter().find(|(n, _)| *n == name).map(|(_, f)| f())
    }

    /// Installed runner names, in [`RUNNER_NAMES`] order.
    pub fn names(&self) -> Vec<&'static str> {
        RUNNER_NAMES.iter().copied().filter(|name| self.entries.iter().any(|(n, _)| n == name)).collect()
    }

    /// Whether every runner in [`RUNNER_NAMES`] has a factory installed.
    pub fn is_complete(&self) -> bool {
        self.names().len() == RUNNER_NAMES.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_runner_accepts_known_names_and_the_wildcard() {
        for name in RUNNER_NAMES {
            check_runner(name).unwrap();
        }
        check_runner("all").unwrap();
        let err = check_runner("kvs.bogus").unwrap_err();
        assert!(err.contains("kvs.bogus") && err.contains("kvs.rambda"), "{err}");
    }

    #[test]
    fn registry_installs_and_builds_in_canonical_order() {
        let mut reg = Registry::new();
        reg.install("kvs.rambda", || Design::from_runner("kvs.rambda", 1, |_tb, _ctx| panic!()));
        reg.install("micro.cpu", || Design::from_runner("micro.cpu", 1, |_tb, _ctx| panic!()));
        // names() follows RUNNER_NAMES order, not installation order.
        assert_eq!(reg.names(), vec!["micro.cpu", "kvs.rambda"]);
        assert!(!reg.is_complete());
        assert_eq!(reg.design("kvs.rambda").unwrap().name(), "kvs.rambda");
        assert!(reg.design("txn.hyperloop").is_none());
    }

    #[test]
    #[should_panic(expected = "installed twice")]
    fn duplicate_install_panics() {
        let mut reg = Registry::new();
        reg.install("kvs.cpu", || Design::from_runner("kvs.cpu", 1, |_tb, _ctx| panic!()));
        reg.install("kvs.cpu", || Design::from_runner("kvs.cpu", 1, |_tb, _ctx| panic!()));
    }
}
