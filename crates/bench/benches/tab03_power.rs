//! Tab. III: overall power efficiency (Kop/W) of the KVS designs at the
//! uniform-distribution GET operating point.
//!
//! Paper: CPU 130.4, Smart NIC 25.2, Rambda 188.7 Kop/W — and ~38 % lower
//! whole-server power for Rambda at comparable throughput.

use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_bench::Table;
use rambda_kvs::designs::{run_cpu, run_rambda, run_smartnic};
use rambda_kvs::KvsParams;
use rambda_power::{kop_per_watt, Design, PowerConfig};

fn main() {
    let tb = Testbed::default();
    let p = KvsParams { requests: 100_000, ..KvsParams::paper() };
    let power = PowerConfig::default();

    let cpu = run_cpu(&tb, &p).throughput_ops;
    let snic = run_smartnic(&tb, &p).throughput_ops;
    let rambda = run_rambda(&tb, &p, DataLocation::HostDram).throughput_ops;

    let mut table = Table::new(
        "Tab. III — power efficiency, uniform GET (paper: CPU 130.4 / SNIC 25.2 / Rambda 188.7 Kop/W)",
        &["design", "Mops", "W", "Kop/W"],
    );
    for (name, ops, design) in [
        ("CPU", cpu, Design::Cpu { cores: 10 }),
        ("SmartNIC", snic, Design::SmartNic),
        ("Rambda", rambda, Design::Rambda),
    ] {
        let w = power.design_watts(design);
        table.row(vec![
            name.into(),
            format!("{:.2}", ops / 1e6),
            format!("{w:.0}"),
            format!("{:.1}", kop_per_watt(ops, w)),
        ]);
    }
    table.print();

    let cpu_box = power.server_watts(Design::Cpu { cores: 10 });
    let rambda_box = power.server_watts(Design::Rambda);
    println!(
        "server box power: CPU {cpu_box:.0} W vs Rambda {rambda_box:.0} W ({:.0}% lower; paper ~38% incl. uncore/DIMM deltas)",
        (1.0 - rambda_box / cpu_box) * 100.0
    );
}
