//! The unified experiment entry point: [`SimBuilder`] + [`Design`].
//!
//! Historically every runner exposed three entry points (`run_X`,
//! `run_X_report`, `run_X_report_traced`) and fault injection would have
//! added a fourth axis. `SimBuilder` collapses the matrix: a [`Design`]
//! names *what* to simulate, the builder configures *how* (testbed, fault
//! plan, flight recorder), and `run()` always yields a validated-shape
//! [`RunReport`].
//!
//! ```
//! use rambda::{Design, SimBuilder, Testbed};
//! use rambda::micro::MicroParams;
//! use rambda_accel::DataLocation;
//!
//! let report = SimBuilder::new(Design::micro_rambda(
//!         MicroParams::quick(), DataLocation::HostDram, true, 7))
//!     .config(&Testbed::default())
//!     .run();
//! assert!(report.completed > 0);
//! ```
//!
//! Application designs (KVS, TXN, DLRM) register themselves through
//! extension traits on [`Design`] in their own crates, so the builder's
//! surface stays identical across the workspace:
//!
//! ```text
//! use rambda_kvs::KvsDesigns;
//! let report = SimBuilder::new(Design::kvs_rambda(params, location))
//!     .faults(FaultConfig::lossy(9, 1e-3))
//!     .tracer(&mut tracer)
//!     .run();
//! ```

use rambda_fabric::FaultConfig;
use rambda_metrics::{MetricSet, RunReport, ScopeConfig, ScopedMetrics, StageRecorder};
use rambda_trace::Tracer;

use crate::config::Testbed;
use crate::driver::{Execution, RunStats};
use crate::report::build_report;

/// Everything a runner needs besides its own parameters: the stage
/// recorder + resource sink the report is built from, the (possibly
/// disabled) flight recorder, and the run's fault plan.
///
/// Runners receive this by value and destructure it; the borrows inside
/// live for the duration of one `run()`.
pub struct SimCtx<'a> {
    /// Per-stage latency recorder (always active under the builder).
    pub rec: &'a mut StageRecorder,
    /// Resource counter sink for the final report.
    pub resources: &'a mut MetricSet,
    /// Flight recorder; `Tracer::disabled()` when none was attached.
    pub tracer: &'a mut Tracer,
    /// Fault plan to install on the run's `Network` (disabled by default).
    /// Single-machine designs without a network ignore it.
    pub faults: &'a FaultConfig,
    /// Whether the run is being profiled: designs with a network record
    /// per-machine-pair lookahead bounds and publish them, and the builder
    /// attaches event-core telemetry to the report.
    pub profile: bool,
    /// Per-entity scoped metrics; `ScopedMetrics::disabled()` unless the
    /// builder enabled scoping. Designs tag each request with its scope
    /// (shard, replica, table) and feed hot keys into the sketch; the
    /// builder folds the registry into the report's `scopes` section.
    pub scopes: &'a mut ScopedMetrics,
    /// Requested execution mode. Runners thread this into
    /// [`run_closed_loop_exec`](crate::run_closed_loop_exec) together with
    /// their fabric's lookahead bound; designs without a usable lookahead
    /// pass `Span::ZERO` and the driver falls back to serial.
    pub exec: Execution,
}

/// Builds a throwaway [`SimCtx`] (disabled recorder, tracer and fault
/// plan) bound to `$ctx`, for the stats-only `run_*` entry points that
/// predate the builder. Internal plumbing for the runner crates.
#[doc(hidden)]
#[macro_export]
macro_rules! rambda_stats_only_ctx {
    ($ctx:ident) => {
        let mut rec = ::rambda_metrics::StageRecorder::disabled();
        let mut resources = ::rambda_metrics::MetricSet::new();
        let mut tracer = ::rambda_trace::Tracer::disabled();
        let faults = ::rambda_fabric::FaultConfig::disabled();
        let mut scopes = ::rambda_metrics::ScopedMetrics::disabled();
        let $ctx = $crate::SimCtx {
            rec: &mut rec,
            resources: &mut resources,
            tracer: &mut tracer,
            faults: &faults,
            profile: false,
            scopes: &mut scopes,
            exec: $crate::Execution::Serial,
        };
    };
}

/// The boxed runner closure a [`Design`] carries.
type RunFn = Box<dyn for<'a> FnOnce(&Testbed, SimCtx<'a>) -> RunStats>;

/// A named, seeded experiment: what [`SimBuilder`] runs.
///
/// The micro designs have inherent constructors here; application crates
/// add theirs via extension traits (`KvsDesigns`, `TxnDesigns`,
/// `DlrmDesigns`).
pub struct Design {
    name: &'static str,
    seed: u64,
    run: RunFn,
}

impl Design {
    /// Builds a design from its report name, seed, and runner closure.
    ///
    /// This is the extension point for application crates; in-tree callers
    /// use the named constructors instead.
    pub fn from_runner(
        name: &'static str,
        seed: u64,
        run: impl for<'a> FnOnce(&Testbed, SimCtx<'a>) -> RunStats + 'static,
    ) -> Design {
        Design { name, seed, run: Box::new(run) }
    }

    /// The report name this design will carry (e.g. `kvs.rambda`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The seed recorded in the report.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl std::fmt::Debug for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Design").field("name", &self.name).field("seed", &self.seed).finish()
    }
}

/// Builder for one simulation run. See the module docs for the shape.
#[derive(Debug)]
pub struct SimBuilder<'a> {
    design: Design,
    testbed: Testbed,
    faults: FaultConfig,
    tracer: Option<&'a mut Tracer>,
    profile: bool,
    scopes: Option<ScopeConfig>,
    execution: Execution,
}

impl<'a> SimBuilder<'a> {
    /// Starts a run of `design` on the default Tab. II testbed, with
    /// faults disabled and no flight recorder.
    pub fn new(design: Design) -> Self {
        SimBuilder {
            design,
            testbed: Testbed::default(),
            faults: FaultConfig::disabled(),
            tracer: None,
            profile: false,
            scopes: None,
            execution: Execution::Serial,
        }
    }

    /// Selects the execution mode (default [`Execution::Serial`]).
    ///
    /// `Execution::Conservative { workers }` runs the design under the
    /// lookahead-windowed partitioned executor; the resulting report is
    /// byte-identical to a serial run of the same design and seed, with the
    /// mode recorded in [`RunReport::execution`](RunReport).
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Uses `testbed` instead of the default configuration.
    pub fn config(mut self, testbed: &Testbed) -> Self {
        self.testbed = testbed.clone();
        self
    }

    /// Installs a fault plan on the run's network. A disabled config
    /// (`FaultConfig::disabled()`) leaves the run byte-identical to one
    /// that never called this.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a flight recorder: per-request spans, periodic resource
    /// samples and injected-fault instants land in `tracer`.
    pub fn tracer(mut self, tracer: &'a mut Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Enables deterministic profiling: the report gains an `event_core`
    /// section (scheduler telemetry with validated conservation identities)
    /// and network designs publish per-machine-pair lookahead bounds.
    pub fn profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Enables per-entity scoped metrics: the design tags each request
    /// with its scope (shard, replica, embedding table), hot keys feed a
    /// deterministic top-K sketch, and the report gains a `scopes` section
    /// whose conservation identities `RunReport::validate` checks. Runs
    /// without this stay byte-identical to pre-scoping reports.
    pub fn scopes(mut self, config: ScopeConfig) -> Self {
        self.scopes = Some(config);
        self
    }

    /// Runs the design and assembles its [`RunReport`].
    pub fn run(self) -> RunReport {
        let mut rec = StageRecorder::active();
        let mut resources = MetricSet::new();
        let mut no_tracer = Tracer::disabled();
        let tracer = self.tracer.unwrap_or(&mut no_tracer);
        let mut scoped = match self.scopes {
            Some(config) => ScopedMetrics::active(config),
            None => ScopedMetrics::disabled(),
        };
        let ctx = SimCtx {
            rec: &mut rec,
            resources: &mut resources,
            tracer,
            faults: &self.faults,
            profile: self.profile,
            scopes: &mut scoped,
            exec: self.execution,
        };
        let stats = (self.design.run)(&self.testbed, ctx);
        let mut report = build_report(self.design.name, self.design.seed, &stats, &mut rec, resources);
        report.execution = self.execution.label();
        if self.profile {
            report.attach_event_core(rambda_metrics::EventCoreSummary::of(&stats.event_core, 0).with_exec(
                stats.exec.partitions,
                stats.exec.windows,
                stats.exec.barriers,
                stats.exec.horizon_stalls,
            ));
        }
        if scoped.is_active() {
            report.attach_scopes(scoped.finalize(report.timeline.as_ref()));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_closed_loop, DriverConfig};
    use rambda_des::{Server, SimTime, Span};

    fn toy_design(seed: u64) -> Design {
        Design::from_runner("toy", seed, |_tb, ctx| {
            let SimCtx { rec, resources, tracer, faults, profile: _, scopes, exec: _ } = ctx;
            assert!(!faults.is_active(), "toy design runs healthy");
            let scope_names = ["conn/0", "conn/1"];
            let mut server = Server::new(2);
            let stats = run_closed_loop(&DriverConfig::new(2, 2_000), |c, at| {
                let mut tr = tracer.observe(rec, at);
                let start = server.acquire(at, Span::from_ns(100));
                let done = start + Span::from_ns(100);
                tr.leg("cpu_serve", done);
                tr.finish(done);
                scopes.record(scope_names[c], at, done);
                scopes.observe_key(c as u64);
                done
            });
            resources.observe_server("server", &server);
            tracer.final_sample(SimTime::ZERO + stats.makespan, resources);
            stats
        })
    }

    #[test]
    fn builder_produces_a_validated_report() {
        let report = SimBuilder::new(toy_design(3)).run();
        report.validate().expect("consistent report");
        assert_eq!(report.name, "toy");
        assert_eq!(report.seed, 3);
        assert!(report.completed > 0);
        assert!(report.timeline.is_some(), "builder always records stages");
    }

    #[test]
    fn builder_scopes_attach_and_validate() {
        use rambda_metrics::ScopeConfig;
        let plain = SimBuilder::new(toy_design(3)).run();
        let scoped = SimBuilder::new(toy_design(3)).scopes(ScopeConfig::default()).run();
        scoped.validate().expect("scoped report holds its conservation identities");
        let section = scoped.scopes.as_ref().expect("scopes section attached");
        assert_eq!(section.scopes.len(), 2);
        assert_eq!(section.merged.count, scoped.total.count);
        // Scoping is passive: the simulated run is unchanged, and the
        // unscoped report has no scopes section at all.
        assert_eq!(plain.elapsed_ps, scoped.elapsed_ps);
        assert_eq!(plain.total, scoped.total);
        assert!(plain.scopes.is_none());
        assert!(!plain.to_json_string().contains("\"scopes\""));
        // Same seed, same scoped run, byte for byte.
        let again = SimBuilder::new(toy_design(3)).scopes(ScopeConfig::default()).run();
        assert_eq!(scoped.to_json_string(), again.to_json_string());
    }

    #[test]
    fn builder_feeds_the_attached_tracer() {
        let mut tracer = Tracer::flight_recorder();
        let report = SimBuilder::new(toy_design(3)).tracer(&mut tracer).run();
        tracer.cross_validate(&report).expect("trace matches report");
    }

    #[test]
    fn design_debug_hides_the_closure() {
        let d = toy_design(9);
        assert_eq!(d.name(), "toy");
        assert_eq!(d.seed(), 9);
        assert!(format!("{d:?}").contains("toy"));
    }
}
