//! RDMA NIC model.
//!
//! Implements the verbs-level machinery the paper relies on (Sec. II-A,
//! Sec. III):
//!
//! * queue pairs with send-queue processing pipelines,
//! * WQE posting with MMIO doorbells and **doorbell batching** (one MMIO for
//!   a chain of WQEs, only the last signaled — the optimization Rambda's SQ
//!   handler and the HERD-style baselines both use),
//! * **unsignaled WQEs** (CQEs generated only for selected operations),
//! * memory-region registration carrying the **TPH knob** of Sec. III-D, so
//!   an RDMA write to a DRAM region steers into the LLC while a write to an
//!   NVM region bypasses it,
//! * end-to-end one-sided write / read paths composing the PCIe, network,
//!   and memory models.
//!
//! The model charges time and routes bytes; message *contents* move through
//! `rambda-ring` structures owned by the framework layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod endpoint;
mod ops;

pub use endpoint::{MrInfo, MrKey, PostPath, QpId, RetryPolicy, RnicConfig, RnicEndpoint, RnicStats};
pub use ops::{
    rdma_read, rdma_write, two_sided_send, PostFlags, RdmaError, ReadOutcome, WriteOpts, WriteOutcome,
};
