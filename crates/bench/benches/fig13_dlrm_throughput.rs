//! Fig. 13: MERCI-based DLRM inference throughput on the six Amazon-Review
//! dataset stand-ins: CPU 1/2/4/8/16 cores vs Rambda / Rambda-LD / Rambda-LH.
//!
//! Expectations: CPU scales ~linearly to 8 cores then saturates; the
//! prototype Rambda reaches only ~20–50 % of *one* core (serial gather
//! issue across the interconnect); Rambda-LD recovers to roughly the 8-core
//! level; Rambda-LH exceeds the CPU until the RDMA network becomes the
//! limit.

use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_bench::{mops, Table};
use rambda_dlrm::serving::{run_cpu, run_rambda};
use rambda_dlrm::DlrmParams;
use rambda_workloads::DlrmProfile;

fn main() {
    let tb = Testbed::default();
    let mut table = Table::new(
        "Fig. 13 — DLRM (MERCI) inference throughput (Mq/s)",
        &["dataset", "CPUx1", "CPUx2", "CPUx4", "CPUx8", "CPUx16", "Rambda", "LD", "LH"],
    );
    for profile in DlrmProfile::all() {
        let p = DlrmParams { queries: 30_000, ..DlrmParams::quick(profile) };
        let name = p.profile.name;
        let mut cells = vec![name.to_string()];
        for cores in [1usize, 2, 4, 8, 16] {
            cells.push(mops(run_cpu(&tb, &p, cores).throughput_mops()));
        }
        for loc in [DataLocation::HostDram, DataLocation::LocalDdr, DataLocation::LocalHbm] {
            cells.push(mops(run_rambda(&tb, &p, loc).throughput_mops()));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "shape check: CPU ~linear to 8 cores; Rambda << 1 core; LD ~8-core level; LH > CPU (network-capped)."
    );
}
