//! A time-ordered event queue for closed-loop simulation drivers.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // insertion sequence, for deterministic FIFO tie-breaking) pops first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered queue of events.
///
/// Ties on time pop in insertion order, so simulations are fully
/// reproducible.
///
/// ```
/// use rambda_des::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(20), "b");
/// q.push(SimTime::from_ns(10), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(20), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue").field("len", &self.heap.len()).field("next", &self.peek_time()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_ns(5), "b");
        q.push(SimTime::from_ns(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }
}
