//! Differential suite for the conservative parallel executor
//! (`SimBuilder::execution`, DESIGN.md §16).
//!
//! The executor's contract is absolute: for every design, under every
//! observation mode, a run under `Execution::Conservative { workers }`
//! renders a `RunReport` byte-identical to the serial run of the same
//! seed. Not statistically close — the same bytes. These tests enforce
//! that for all nine named runners, clean and under injected faults and
//! under the scoped-metrics registry, at several worker counts.

use rambda::designs::RUNNER_NAMES;
use rambda::{Execution, SimBuilder, Testbed};
use rambda_bench::quick_registry;
use rambda_fabric::FaultConfig;
use rambda_metrics::ScopeConfig;

/// Builds the named runner's report under `execution`, with optional
/// fault injection and scoped metrics.
fn run(name: &str, execution: Execution, faults: bool, scopes: bool) -> rambda_metrics::RunReport {
    let reg = quick_registry();
    let design = reg.design(name).unwrap_or_else(|| panic!("runner {name} missing from registry"));
    let mut builder = SimBuilder::new(design).config(&Testbed::default()).execution(execution);
    if faults {
        builder = builder.faults(FaultConfig::lossy(0xFA17, 1e-3));
    }
    if scopes {
        builder = builder.scopes(ScopeConfig::default());
    }
    builder.run()
}

#[test]
fn every_runner_is_byte_identical_under_conservative_execution() {
    for name in RUNNER_NAMES {
        let serial = run(name, Execution::Serial, false, false);
        let par = run(name, Execution::Conservative { workers: 2 }, false, false);
        serial.validate().unwrap_or_else(|e| panic!("{name}: serial report invalid: {e}"));
        par.validate().unwrap_or_else(|e| panic!("{name}: parallel report invalid: {e}"));
        assert_eq!(
            serial.to_json_string(),
            par.to_json_string(),
            "{name}: conservative execution changed the report"
        );
        // The mode is recorded on the struct for tooling, but deliberately
        // kept out of the serialized report so the byte comparison above
        // (and the committed goldens) hold across modes.
        assert_eq!(serial.execution, "serial");
        assert_eq!(par.execution, "conservative(2)");
        assert!(!serial.to_json_string().contains("\"execution\""));
    }
}

#[test]
fn every_runner_is_byte_identical_under_faults() {
    // Fault injection exercises timeout/retransmit scheduling — extra event
    // traffic that must merge in exactly the serial order too.
    for name in RUNNER_NAMES {
        let serial = run(name, Execution::Serial, true, false);
        let par = run(name, Execution::Conservative { workers: 2 }, true, false);
        assert_eq!(
            serial.to_json_string(),
            par.to_json_string(),
            "{name}: conservative execution diverged under injected faults"
        );
    }
}

#[test]
fn every_runner_is_byte_identical_under_scoped_metrics() {
    // Scoped metrics attribute each request to per-entity scopes as it
    // completes, so attribution order is observable — another surface the
    // deterministic merge must keep identical.
    for name in RUNNER_NAMES {
        let serial = run(name, Execution::Serial, false, true);
        let par = run(name, Execution::Conservative { workers: 2 }, false, true);
        assert_eq!(
            serial.to_json_string(),
            par.to_json_string(),
            "{name}: conservative execution diverged under scoped metrics"
        );
    }
}

#[test]
fn worker_count_does_not_change_the_report() {
    // Partition count changes the schedule's shape (queues, windows,
    // barriers) but never the merge order. Hit the two designs with real
    // multi-client fabrics at several counts, including workers > clients.
    for name in ["kvs.rambda", "dlrm.rambda"] {
        let serial = run(name, Execution::Serial, false, false).to_json_string();
        for workers in [2, 3, 10, 64] {
            let par = run(name, Execution::Conservative { workers }, false, false);
            assert_eq!(serial, par.to_json_string(), "{name}: report diverged at workers={workers}");
        }
    }
}

#[test]
fn profile_counters_expose_the_parallel_schedule() {
    // Profile mode is where the two runs legitimately differ: the exec
    // counters record partitions/windows/barriers for the conservative
    // run and all-zero for serial. kvs.rambda has 10 clients and a real
    // fabric lookahead, so the parallel path must actually engage.
    let reg = quick_registry();
    let tb = Testbed::default();
    let par = SimBuilder::new(reg.design("kvs.rambda").unwrap())
        .config(&tb)
        .execution(Execution::Conservative { workers: 2 })
        .profile()
        .run();
    par.validate().expect("profiled parallel report");
    let ec = par.event_core.as_ref().expect("profile attaches event-core telemetry");
    assert_eq!(ec.partitions, 2, "kvs.rambda must shard into 2 partitions");
    assert!(ec.windows > 0, "conservative run must open lookahead windows");
    assert_eq!(ec.barriers, ec.windows);

    let serial = SimBuilder::new(reg.design("kvs.rambda").unwrap()).config(&tb).profile().run();
    let ec = serial.event_core.as_ref().expect("profiled serial report");
    assert_eq!((ec.partitions, ec.windows, ec.barriers, ec.horizon_stalls), (0, 0, 0, 0));
}

#[test]
fn single_machine_and_single_client_designs_fall_back_to_serial() {
    // micro.* opt out via zero lookahead (one machine, no fabric); txn.*
    // runs one closed-loop client. Both must take the serial path and
    // report zero exec counters even when parallelism is requested.
    for name in ["micro.rambda", "txn.rambda_tx"] {
        let reg = quick_registry();
        let par = SimBuilder::new(reg.design(name).unwrap())
            .config(&Testbed::default())
            .execution(Execution::Conservative { workers: 4 })
            .profile()
            .run();
        let ec = par.event_core.as_ref().expect("profiled report");
        assert_eq!(
            (ec.partitions, ec.windows, ec.barriers, ec.horizon_stalls),
            (0, 0, 0, 0),
            "{name}: expected serial fallback"
        );
        assert_eq!(par.execution, "conservative(4)", "the requested mode is still recorded");
    }
}
