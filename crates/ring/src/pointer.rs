//! The pointer buffer (Fig. 3(c)) and coalesced-signal tail tracking.
//!
//! When the system has many connections or large request buffers, the cpoll
//! region cannot be pinned in the accelerator's 64 KB local cache. The paper
//! introduces a *pointer buffer*: one 4-byte entry per request ring, bumped
//! by the writer so that it always points at the ring's tail. Only the
//! pointer buffer (4 B × #rings) is registered as the cpoll region.
//!
//! Coherence signals may be *coalesced* — two bumps in a short window can
//! produce a single cpoll signal. The accelerator recovers by remembering the
//! previous tail per ring and computing how many new requests arrived
//! ([`TailTracker::advance_to`]), relying on the ring's in-order-write
//! semantics (Sec. III-B).

use std::sync::atomic::{AtomicU32, Ordering};

/// An array of 4-byte tail pointers, one per request ring.
#[derive(Debug)]
pub struct PointerBuffer {
    entries: Box<[AtomicU32]>,
}

impl PointerBuffer {
    /// Creates a pointer buffer covering `rings` request rings, all tails at
    /// zero.
    pub fn new(rings: usize) -> Self {
        PointerBuffer { entries: (0..rings).map(|_| AtomicU32::new(0)).collect() }
    }

    /// Number of rings covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer covers no rings.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bumps ring `idx`'s tail by one (what the remote client's second WQE —
    /// or the UMR-interleaved write — does) and returns the new tail.
    ///
    /// Wraps at `u32::MAX`, which [`TailTracker`] handles.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bump(&self, idx: usize) -> u32 {
        self.entries[idx].fetch_add(1, Ordering::Release).wrapping_add(1)
    }

    /// Reads ring `idx`'s current tail.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn load(&self, idx: usize) -> u32 {
        self.entries[idx].load(Ordering::Acquire)
    }

    /// Memory footprint of the cpoll region in bytes (4 B per ring): the
    /// quantity Sec. III-B's scalability argument is about.
    pub fn region_bytes(&self) -> usize {
        self.entries.len() * 4
    }
}

/// Per-ring tail tracking on the accelerator side.
///
/// ```
/// use rambda_ring::{PointerBuffer, TailTracker};
/// let pb = PointerBuffer::new(1);
/// let mut tracker = TailTracker::new();
/// pb.bump(0);
/// pb.bump(0); // second bump coalesces into the same cpoll signal
/// assert_eq!(tracker.advance_to(pb.load(0)), 2); // both recovered
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailTracker {
    last: u32,
}

impl TailTracker {
    /// Creates a tracker with the tail at zero.
    pub fn new() -> Self {
        TailTracker { last: 0 }
    }

    /// Observes the pointer-buffer value `tail` and returns how many new
    /// requests arrived since the last observation (wrapping-safe).
    pub fn advance_to(&mut self, tail: u32) -> u32 {
        let delta = tail.wrapping_sub(self.last);
        self.last = tail;
        delta
    }

    /// The last observed tail.
    pub fn last(&self) -> u32 {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_load() {
        let pb = PointerBuffer::new(3);
        assert_eq!(pb.len(), 3);
        assert!(!pb.is_empty());
        assert_eq!(pb.bump(1), 1);
        assert_eq!(pb.bump(1), 2);
        assert_eq!(pb.load(0), 0);
        assert_eq!(pb.load(1), 2);
    }

    #[test]
    fn region_is_4_bytes_per_ring() {
        // 1K clients -> 4 KB cpoll region, trivially pinnable; compare with
        // pinning 1K x 1MB rings.
        let pb = PointerBuffer::new(1024);
        assert_eq!(pb.region_bytes(), 4096);
    }

    #[test]
    fn tracker_counts_coalesced_signals() {
        let pb = PointerBuffer::new(1);
        let mut t = TailTracker::new();
        for _ in 0..5 {
            pb.bump(0);
        }
        assert_eq!(t.advance_to(pb.load(0)), 5);
        assert_eq!(t.advance_to(pb.load(0)), 0);
        pb.bump(0);
        assert_eq!(t.advance_to(pb.load(0)), 1);
        assert_eq!(t.last(), 6);
    }

    #[test]
    fn tracker_handles_u32_wraparound() {
        let mut t = TailTracker::new();
        t.advance_to(u32::MAX - 1);
        assert_eq!(t.advance_to(1), 3); // MAX-1 -> MAX -> 0 -> 1
    }

    #[test]
    fn concurrent_bumps_are_not_lost() {
        use std::sync::Arc;
        let pb = Arc::new(PointerBuffer::new(4));
        let mut handles = Vec::new();
        for thread in 0..4 {
            let pb = Arc::clone(&pb);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    pb.bump(thread);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for ring in 0..4 {
            assert_eq!(pb.load(ring), 10_000);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_bump_panics() {
        PointerBuffer::new(1).bump(5);
    }
}
