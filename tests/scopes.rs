//! Scoped observability (DESIGN.md §15) across every design: the per-entity
//! metric registry must validate its conservation identities on all nine
//! runners, stay a pure function of the seed (byte-identical same-seed
//! JSON), and never perturb the simulated run it observes — the committed
//! goldens are unscoped and must keep matching after scoped runs exist.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use rambda::micro::MicroParams;
use rambda::{Design, SimBuilder, Testbed};
use rambda_accel::DataLocation;
use rambda_des::{Histogram, SimTime, Span};
use rambda_dlrm::{DlrmDesigns, DlrmParams};
use rambda_kvs::{KvsDesigns, KvsParams};
use rambda_metrics::{RunReport, ScopeConfig, ScopedMetrics, Timeline};
use rambda_txn::{TxnDesigns, TxnParams};
use rambda_workloads::{DlrmProfile, TxnSpec};

type Builder = fn() -> Design;

/// Every runner the report binary knows, as fresh-design constructors.
fn all_designs() -> Vec<(&'static str, Builder)> {
    vec![
        ("micro.cpu", || Design::micro_cpu(MicroParams::quick(), 8, 16)),
        ("micro.rambda", || Design::micro_rambda(MicroParams::quick(), DataLocation::HostDram, true, 1)),
        ("kvs.cpu", || Design::kvs_cpu(KvsParams::quick())),
        ("kvs.rambda", || Design::kvs_rambda(KvsParams::quick(), DataLocation::HostDram)),
        ("kvs.smartnic", || Design::kvs_smartnic(KvsParams::quick())),
        ("txn.hyperloop", || Design::txn_hyperloop(TxnParams::quick(TxnSpec::read_write(64)))),
        ("txn.rambda_tx", || Design::txn_rambda_tx(TxnParams::quick(TxnSpec::read_write(64)))),
        ("dlrm.cpu", || Design::dlrm_cpu(DlrmParams::quick(DlrmProfile::by_name("Books").unwrap()), 8)),
        ("dlrm.rambda", || {
            Design::dlrm_rambda(
                DlrmParams::quick(DlrmProfile::by_name("Books").unwrap()),
                DataLocation::HostDram,
            )
        }),
    ]
}

fn scoped(design: Design) -> RunReport {
    SimBuilder::new(design).config(&Testbed::default()).scopes(ScopeConfig::default()).run()
}

fn plain(design: Design) -> RunReport {
    SimBuilder::new(design).config(&Testbed::default()).run()
}

#[test]
fn every_design_validates_its_scope_identities() {
    for (name, design) in all_designs() {
        let report = scoped(design());
        report.validate().unwrap_or_else(|e| panic!("{name}: scoped report fails validation: {e}"));
        let sc = report.scopes.as_ref().unwrap_or_else(|| panic!("{name}: scoped run lost its registry"));
        assert!(!sc.scopes.is_empty(), "{name}: at least one scope must exist");
        assert!(sc.merged.count > 0, "{name}: scoped requests were recorded");
        let hot = sc.hot_fraction();
        assert!(hot > 0.0 && hot <= 1.0, "{name}: hot fraction {hot} out of range");
        assert!(sc.slo.windows > 0, "{name}: SLO digest saw at least one window");
        assert!(report.to_json_string().contains("\"scopes\""), "{name}: JSON carries the scopes section");
    }
}

#[test]
fn same_seed_scoped_runs_are_byte_identical() {
    for (name, design) in all_designs() {
        let a = scoped(design()).to_json_string();
        let b = scoped(design()).to_json_string();
        assert_eq!(a, b, "{name}: same-seed scoped reports must render byte-identically");
    }
}

#[test]
fn scoping_never_perturbs_the_run_it_observes() {
    for (name, design) in all_designs() {
        let bare = plain(design());
        let observed = scoped(design());
        assert_eq!(bare.completed, observed.completed, "{name}: completion count changed");
        assert_eq!(bare.elapsed_ps, observed.elapsed_ps, "{name}: makespan changed");
        assert_eq!(bare.latency.p99_ps, observed.latency.p99_ps, "{name}: tail latency changed");
        assert!(bare.scopes.is_none(), "{name}: unscoped report must omit the registry");
        assert!(
            !bare.to_json_string().contains("\"scopes\""),
            "{name}: unscoped JSON must stay free of the scopes section"
        );
    }
}

#[test]
fn unscoped_golden_still_matches_after_a_scoped_run() {
    // Run the scoped variant first so any registry residue (a leaked scope,
    // a mutated global histogram) would surface in the following unscoped
    // render, then compare that render to the committed snapshot.
    let _ = scoped(Design::kvs_rambda(KvsParams::quick(), DataLocation::HostDram));
    let bare = plain(Design::kvs_rambda(KvsParams::quick(), DataLocation::HostDram));
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens/kvs_rambda.json");
    let snapshot = fs::read_to_string(&golden).expect("committed golden exists");
    assert_eq!(bare.to_json_string(), snapshot, "unscoped report drifted from its golden");
}

proptest! {
    /// Telescoping conservation on synthetic traffic: for any scope count,
    /// request count, and spacing, the per-scope histograms and windows must
    /// merge back to exactly the global totals, and the busiest scope's
    /// share must bound every other scope's.
    #[test]
    fn scope_rollups_telescope_to_the_global_totals(
        nscopes in 1usize..6,
        requests in 1u64..400,
        spacing_us in 1u64..90,
    ) {
        let mut sm = ScopedMetrics::active(ScopeConfig::default());
        let mut global = Timeline::default();
        let mut direct = Histogram::new();
        for i in 0..requests {
            let issued = SimTime::from_us(i * spacing_us);
            let done = SimTime::from_us(i * spacing_us + 3 + (i % 7));
            let scope = format!("s{}", i as usize % nscopes);
            sm.record(&scope, issued, done);
            global.record(issued, done);
            direct.record(done.saturating_since(issued));
        }
        let makespan = Span::from_us(requests * spacing_us + 16);
        let tl = global.finalize(makespan, &rambda_metrics::MetricSet::new());
        let summary = sm.finalize(Some(&tl));

        prop_assert_eq!(summary.merged.count, requests);
        prop_assert_eq!(summary.merged.sum_ps, direct.sum_ps());
        prop_assert_eq!(summary.merged.p99_ps, direct.percentile(0.99).as_ps());
        let per_scope: u64 = summary.scopes.iter().map(|s| s.latency.count).sum();
        prop_assert_eq!(per_scope, requests);
        for (i, w) in tl.windows.iter().enumerate() {
            let count: u64 = summary.scopes.iter().map(|s| s.windows[i].count).sum();
            prop_assert_eq!(count, w.count);
        }
        let hot = summary.hot_fraction();
        prop_assert!(hot >= 1.0 / nscopes as f64 - 1e-9 && hot <= 1.0);
    }
}
