//! Driver binary inside a simulation crate: R1, R2 and R5 must NOT fire
//! here — a driver may read the environment and print its results.

fn main() {
    let dir = std::env::var("PROBE_OUT").unwrap_or_default();
    println!("probe output -> {dir}");
}
