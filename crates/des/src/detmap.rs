//! Deterministic-iteration hash containers.
//!
//! `std::collections::HashMap` iterates in a per-process random order, which
//! must never reach simulation state or run reports (analyzer rule R1,
//! DESIGN.md §8). Simulation crates normally use `BTreeMap`/`BTreeSet`; when
//! a hot path genuinely wants O(1) point lookups, [`DetHashMap`] /
//! [`DetHashSet`] are the sanctioned alternative: hash-backed storage whose
//! *only* iteration APIs sort by key first, so iteration order can never
//! depend on hasher seeds or insertion history.
//!
//! The wrapper is deliberately narrow — point access is constant-time, every
//! traversal is `O(n log n)` and allocates. If a structure is traversed more
//! than it is probed, use a B-tree instead.

// The one allowlisted HashMap/HashSet use in the simulation crates: this
// module is the wrapper rule R1 points violators at (xtask/analyze.allow).
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// A hash map whose iteration is always key-sorted.
///
/// ```
/// use rambda_des::DetHashMap;
///
/// let mut m = DetHashMap::new();
/// m.insert(30u64, "c");
/// m.insert(10, "a");
/// m.insert(20, "b");
/// let keys: Vec<u64> = m.iter_sorted().map(|(k, _)| *k).collect();
/// assert_eq!(keys, vec![10, 20, 30]); // never hasher-order
/// ```
#[derive(Debug, Clone, Default)]
pub struct DetHashMap<K, V> {
    inner: HashMap<K, V>,
}

impl<K: Eq + Hash + Ord, V> DetHashMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DetHashMap { inner: HashMap::new() }
    }

    /// Creates an empty map with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        DetHashMap { inner: HashMap::with_capacity(capacity) }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    /// Mutable access to the value at `key`, if present.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.inner.get_mut(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.contains_key(key)
    }

    /// Removes and returns the value at `key`, if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.inner.remove(key)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.inner.clear()
    }

    /// Iterates entries in ascending key order (the only iteration order
    /// this container offers).
    pub fn iter_sorted(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut entries: Vec<(&K, &V)> = self.inner.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries.into_iter()
    }

    /// Iterates keys in ascending order.
    pub fn keys_sorted(&self) -> impl Iterator<Item = &K> {
        self.iter_sorted().map(|(k, _)| k)
    }

    /// Consumes the map, yielding entries in ascending key order.
    pub fn into_iter_sorted(self) -> impl Iterator<Item = (K, V)> {
        let mut entries: Vec<(K, V)> = self.inner.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.into_iter()
    }
}

impl<K: Eq + Hash + Ord, V> FromIterator<(K, V)> for DetHashMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        DetHashMap { inner: iter.into_iter().collect() }
    }
}

/// A hash set whose iteration is always sorted.
#[derive(Debug, Clone, Default)]
pub struct DetHashSet<T> {
    inner: HashSet<T>,
}

impl<T: Eq + Hash + Ord> DetHashSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        DetHashSet { inner: HashSet::new() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts `value`; returns whether it was newly added.
    pub fn insert(&mut self, value: T) -> bool {
        self.inner.insert(value)
    }

    /// Whether `value` is present.
    pub fn contains(&self, value: &T) -> bool {
        self.inner.contains(value)
    }

    /// Removes `value`; returns whether it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.inner.remove(value)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.inner.clear()
    }

    /// Iterates elements in ascending order (the only iteration order this
    /// container offers).
    pub fn iter_sorted(&self) -> impl Iterator<Item = &T> {
        let mut elems: Vec<&T> = self.inner.iter().collect();
        elems.sort();
        elems.into_iter()
    }
}

impl<T: Eq + Hash + Ord> FromIterator<T> for DetHashSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        DetHashSet { inner: iter.into_iter().collect() }
    }
}

/// Builds a [`DetHashMap`] from `key => value` pairs.
///
/// ```
/// use rambda_des::det_hash_map;
///
/// let m = det_hash_map! { 2u32 => "b", 1 => "a" };
/// assert_eq!(m.keys_sorted().copied().collect::<Vec<_>>(), vec![1, 2]);
/// ```
#[macro_export]
macro_rules! det_hash_map {
    ($($key:expr => $value:expr),* $(,)?) => {
        $crate::DetHashMap::from_iter([$(($key, $value)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_point_ops() {
        let mut m = DetHashMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1u64, "one"), None);
        assert_eq!(m.insert(1, "uno"), Some("one"));
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"uno"));
        assert!(m.contains_key(&2));
        *m.get_mut(&2).unwrap() = "dos";
        assert_eq!(m.remove(&2), Some("dos"));
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn map_iteration_is_key_sorted() {
        // Enough keys that hasher order and insertion order both disagree
        // with sorted order with overwhelming probability.
        let mut m = DetHashMap::new();
        for k in [77u64, 3, 512, 1, 90, 41, 2, 1000, 13, 8] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.keys_sorted().copied().collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(keys, expect);
        let owned: Vec<u64> = m.clone().into_iter_sorted().map(|(k, _)| k).collect();
        assert_eq!(owned, expect);
    }

    #[test]
    fn set_ops_and_sorted_iteration() {
        let mut s: DetHashSet<i32> = [5, -1, 3].into_iter().collect();
        assert!(s.insert(4));
        assert!(!s.insert(4));
        assert!(s.contains(&-1));
        assert!(s.remove(&5));
        assert_eq!(s.iter_sorted().copied().collect::<Vec<_>>(), vec![-1, 3, 4]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn macro_builds_a_map() {
        let m = det_hash_map! { "b" => 2, "a" => 1 };
        assert_eq!(m.iter_sorted().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(), vec![("a", 1), ("b", 2)]);
        let empty: DetHashMap<u8, u8> = det_hash_map! {};
        assert!(empty.is_empty());
    }
}
