//! End-to-end verb operations composing PCIe, network, and memory models.

use rambda_des::SimTime;
use rambda_fabric::Network;
use rambda_mem::{DmaRoute, MemorySystem};

use crate::endpoint::{MrKey, PostPath, RnicEndpoint};

/// Options for a one-sided write.
#[derive(Debug, Clone, Copy)]
pub struct WriteOpts {
    /// How the WQE is posted at the sender.
    pub post: PostPath,
    /// WQEs covered by the same doorbell as this one (1 = unbatched). The
    /// amortized doorbell/fetch cost is `1/batch` of the full cost.
    pub batch: usize,
    /// Whether this WQE is signaled (generates a CQE at the sender).
    pub signaled: bool,
}

impl WriteOpts {
    /// Unbatched, unsignaled, host-posted write.
    pub fn host_unsignaled() -> Self {
        WriteOpts { post: PostPath::HostMmio, batch: 1, signaled: false }
    }
}

impl Default for WriteOpts {
    fn default() -> Self {
        WriteOpts::host_unsignaled()
    }
}

/// The outcome of a one-sided write.
#[derive(Debug, Clone, Copy)]
pub struct WriteOutcome {
    /// When the payload is visible in destination memory/LLC.
    pub delivered_at: SimTime,
    /// Where the inbound DMA landed on the destination host.
    pub route: DmaRoute,
    /// When the sender's CQE landed (if signaled).
    pub completed_at: Option<SimTime>,
}

/// The outcome of a one-sided read.
#[derive(Debug, Clone, Copy)]
pub struct ReadOutcome {
    /// When the data is available at the requester.
    pub data_at: SimTime,
}

/// Executes a one-sided RDMA write of `bytes` from `src`'s machine into
/// region `mr` on `dst`'s machine.
///
/// The full pipeline: post (doorbell + WQE fetch, amortized over
/// `opts.batch`), sender NIC pipeline, wire, receiver NIC pipeline, DMA into
/// host memory with the region's TPH policy, optional CQE at the sender.
#[allow(clippy::too_many_arguments)]
pub fn rdma_write(
    at: SimTime,
    src: &mut RnicEndpoint,
    dst: &mut RnicEndpoint,
    net: &mut Network,
    dst_mem: &mut MemorySystem,
    src_mem: &mut MemorySystem,
    mr: MrKey,
    bytes: u64,
    opts: WriteOpts,
) -> WriteOutcome {
    let (delivered_at, route) = write_path(at, src, dst, net, dst_mem, mr, bytes, opts);
    let completed_at = opts.signaled.then(|| {
        // The ACK travels back before the CQE is generated.
        let acked = net.send(delivered_at, dst.node(), src.node(), 0);
        src.complete(acked, src_mem)
    });
    WriteOutcome { delivered_at, route, completed_at }
}

/// The unsignaled write pipeline shared by [`rdma_write`] and
/// [`two_sided_send`].
#[allow(clippy::too_many_arguments)]
fn write_path(
    at: SimTime,
    src: &mut RnicEndpoint,
    dst: &mut RnicEndpoint,
    net: &mut Network,
    dst_mem: &mut MemorySystem,
    mr: MrKey,
    bytes: u64,
    opts: WriteOpts,
) -> (SimTime, DmaRoute) {
    assert!(opts.batch > 0, "batch must be at least 1");
    let on_nic = if opts.batch == 1 {
        src.post(at, opts.post, 1)
    } else {
        // Amortized: this WQE pays its pipeline slot; the doorbell+fetch
        // cost is paid once per chain by the first WQE.
        src.next_in_pipeline(at + src.config().wqe_gap.mul_f64(1.0 / opts.batch as f64))
    };
    let on_wire = net.send(on_nic, src.node(), dst.node(), bytes);
    dst.deliver_write(on_wire, mr, bytes, dst_mem)
}

/// Executes a one-sided RDMA read of `bytes` from region `mr` on `dst`'s
/// machine back to `src`'s machine.
#[allow(clippy::too_many_arguments)]
pub fn rdma_read(
    at: SimTime,
    src: &mut RnicEndpoint,
    dst: &mut RnicEndpoint,
    net: &mut Network,
    dst_mem: &mut MemorySystem,
    mr: MrKey,
    bytes: u64,
    opts: WriteOpts,
) -> ReadOutcome {
    let on_nic = if opts.batch == 1 {
        src.post(at, opts.post, 1)
    } else {
        src.next_in_pipeline(at + src.config().wqe_gap.mul_f64(1.0 / opts.batch as f64))
    };
    // Request message carries no payload.
    let req_at = net.send(on_nic, src.node(), dst.node(), 0);
    let data_on_nic = dst.serve_read(req_at, mr, bytes, dst_mem);
    let data_at = net.send(data_on_nic, dst.node(), src.node(), bytes);
    ReadOutcome { data_at }
}

/// A two-sided send/recv: like a write into the receiver's posted RQ buffer,
/// plus receiver CPU involvement (charged by the caller's CPU model). The
/// returned time is when the payload and the receive completion are visible
/// to the receiving host.
#[allow(clippy::too_many_arguments)]
pub fn two_sided_send(
    at: SimTime,
    src: &mut RnicEndpoint,
    dst: &mut RnicEndpoint,
    net: &mut Network,
    dst_mem: &mut MemorySystem,
    rq_region: MrKey,
    bytes: u64,
    opts: WriteOpts,
) -> SimTime {
    // SEND carries extra transport state on the wire (immediate data, RQ
    // credit updates) relative to a one-sided WRITE — the small edge
    // Sec. VI-B measures for Rambda's one-sided path.
    let framed = bytes + 16;
    let (delivered_at, _route) =
        write_path(at, src, dst, net, dst_mem, rq_region, framed, WriteOpts { signaled: false, ..opts });
    // The receiver learns via a CQE on its own CQ.
    dst.complete(delivered_at, dst_mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{MrInfo, RnicConfig};
    use rambda_des::Span;
    use rambda_fabric::{NetConfig, NodeId, PcieConfig};
    use rambda_mem::{MemConfig, MemKind};

    struct World {
        client: RnicEndpoint,
        server: RnicEndpoint,
        net: Network,
        client_mem: MemorySystem,
        server_mem: MemorySystem,
    }

    fn world() -> World {
        World {
            client: RnicEndpoint::new(NodeId(0), RnicConfig::default(), PcieConfig::default()),
            server: RnicEndpoint::new(NodeId(1), RnicConfig::default(), PcieConfig::default()),
            net: Network::new(NetConfig::default()),
            client_mem: MemorySystem::new(MemConfig::default(), false),
            server_mem: MemorySystem::new(MemConfig::default(), false),
        }
    }

    #[test]
    fn one_sided_write_single_trip_latency() {
        let mut w = world();
        let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let out = rdma_write(
            SimTime::ZERO,
            &mut w.client,
            &mut w.server,
            &mut w.net,
            &mut w.server_mem,
            &mut w.client_mem,
            mr,
            64,
            WriteOpts::default(),
        );
        // doorbell w/ inline WQE (~0.6us) + wire (~1us) + rx DMA (~0.7us).
        let us = out.delivered_at.as_us_f64();
        assert!((2.0..4.5).contains(&us), "{us}");
        assert_eq!(out.route, DmaRoute::Llc);
        assert!(out.completed_at.is_none());
    }

    #[test]
    fn signaled_write_generates_cqe_after_ack() {
        let mut w = world();
        let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let out = rdma_write(
            SimTime::ZERO,
            &mut w.client,
            &mut w.server,
            &mut w.net,
            &mut w.server_mem,
            &mut w.client_mem,
            mr,
            64,
            WriteOpts { signaled: true, ..WriteOpts::default() },
        );
        let cqe = out.completed_at.unwrap();
        assert!(cqe > out.delivered_at);
        assert_eq!(w.client.stats().cqes, 1);
    }

    #[test]
    fn read_round_trip_is_slower_than_write() {
        let mut w = world();
        let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let wr = rdma_write(
            SimTime::ZERO,
            &mut w.client,
            &mut w.server,
            &mut w.net,
            &mut w.server_mem,
            &mut w.client_mem,
            mr,
            64,
            WriteOpts::default(),
        );
        let mut w2 = world();
        let mr2 = w2.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let rd = rdma_read(
            SimTime::ZERO,
            &mut w2.client,
            &mut w2.server,
            &mut w2.net,
            &mut w2.server_mem,
            mr2,
            64,
            WriteOpts::default(),
        );
        assert!(rd.data_at > wr.delivered_at);
    }

    #[test]
    fn batched_writes_have_higher_throughput() {
        let mut unbatched_done = SimTime::ZERO;
        {
            let mut w = world();
            let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
            let mut t = SimTime::ZERO;
            for _ in 0..32 {
                let out = rdma_write(
                    t,
                    &mut w.client,
                    &mut w.server,
                    &mut w.net,
                    &mut w.server_mem,
                    &mut w.client_mem,
                    mr,
                    64,
                    WriteOpts::default(),
                );
                t = out.delivered_at - Span::from_ns(1500); // keep pipeline busy
                unbatched_done = out.delivered_at;
            }
        }
        let mut batched_done = SimTime::ZERO;
        {
            let mut w = world();
            let mr = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
            for i in 0..32 {
                let opts = WriteOpts { batch: 32, ..WriteOpts::default() };
                let opts = if i == 0 { WriteOpts { batch: 1, ..opts } } else { opts };
                let out = rdma_write(
                    SimTime::ZERO,
                    &mut w.client,
                    &mut w.server,
                    &mut w.net,
                    &mut w.server_mem,
                    &mut w.client_mem,
                    mr,
                    64,
                    opts,
                );
                batched_done = out.delivered_at;
            }
        }
        assert!(batched_done < unbatched_done, "batched {batched_done} vs {unbatched_done}");
    }

    #[test]
    fn two_sided_costs_receiver_cqe() {
        let mut w = world();
        let rq = w.server.register_region(MrInfo::adaptive(MemKind::Dram));
        let done = two_sided_send(
            SimTime::ZERO,
            &mut w.client,
            &mut w.server,
            &mut w.net,
            &mut w.server_mem,
            rq,
            64,
            WriteOpts::default(),
        );
        assert!(done.as_us_f64() > 3.0);
        assert_eq!(w.server.stats().cqes, 1);
    }
}
