//! Design-choice ablations beyond the paper's figures:
//!
//! 1. cpoll region scaling: pinned request rings vs the pointer buffer
//!    (Fig. 3(b)/(c)) against the 64 KB local cache.
//! 2. A hardened (2 GHz-class) coherence controller, the Sec. V
//!    "future FPGAs" fix, on the microbenchmark and the DLRM gather.
//! 3. Unsignaled WQEs: CQE traffic with and without selective signaling.
//! 4. Doorbell batching alone (Rambda KVS batch 1 vs 32 — also in Fig. 10).

use rambda::micro::{run_rambda, MicroParams};
use rambda::Testbed;
use rambda_accel::{AccelConfig, AccelEngine, DataLocation};
use rambda_bench::{mops, ratio, Table};
use rambda_coherence::{CcConfig, CpollChecker};
use rambda_des::SimTime;
use rambda_mem::{MemConfig, MemorySystem};

fn cpoll_scaling() {
    let mut table = Table::new(
        "Ablation 1 — cpoll region vs 64 KB pinned cache",
        &["connections", "ring bytes", "pinned rings", "pointer buffer"],
    );
    for (conns, ring_bytes) in [(16u64, 1u64 << 10), (64, 1 << 10), (16, 1 << 20), (1024, 1 << 20)] {
        let mut pinned = CpollChecker::new(64 * 1024);
        let pinned_ok = pinned.register(0, conns * ring_bytes, ring_bytes).is_ok();
        let mut ptr = CpollChecker::new(64 * 1024);
        // 4 B per ring, padded to one 64 B line per entry group.
        let ptr_bytes = (conns * 4).div_ceil(64) * 64;
        let ptr_ok = ptr.register(0, ptr_bytes.max(64), 64).is_ok();
        table.row(vec![
            conns.to_string(),
            ring_bytes.to_string(),
            if pinned_ok { "fits" } else { "OVERFLOW" }.into(),
            if ptr_ok { format!("fits ({ptr_bytes} B)") } else { "OVERFLOW".into() },
        ]);
    }
    table.print();
}

fn hardened_controller() {
    let tb = Testbed::default();
    let p = MicroParams { requests: 60_000, ..MicroParams::paper() };
    let soft = run_rambda(&tb, p, DataLocation::HostDram, true, 1).throughput_mops();
    let tb_hard = Testbed { cc: CcConfig::hardened(), ..Testbed::default() };
    let hard = run_rambda(&tb_hard, p, DataLocation::HostDram, true, 1).throughput_mops();

    // DLRM-style gather rate, soft vs hardened.
    let gather_rate = |cc: CcConfig| {
        let mut engine =
            AccelEngine::new(AccelConfig { cc, ..AccelConfig::prototype(DataLocation::HostDram) });
        let mut mem = MemorySystem::new(MemConfig::default(), true);
        let rows = 4_000usize;
        let done = engine.gather(SimTime::ZERO, rows, 256, &mut mem);
        rows as f64 * 256.0 / done.as_secs_f64() / 1e9
    };
    let soft_gather = gather_rate(CcConfig::default());
    let hard_gather = gather_rate(CcConfig::hardened());

    let mut table = Table::new(
        "Ablation 2 — hardened coherence controller (Sec. V outlook)",
        &["metric", "soft 400MHz", "hardened", "gain"],
    );
    table.row(vec!["microbench Mops".into(), mops(soft), mops(hard), ratio(hard / soft)]);
    table.row(vec![
        "DLRM gather GB/s".into(),
        format!("{soft_gather:.2}"),
        format!("{hard_gather:.2}"),
        ratio(hard_gather / soft_gather),
    ]);
    table.print();
}

fn unsignaled_wqes() {
    use rambda_fabric::{NodeId, PcieConfig};
    use rambda_rnic::{MrInfo, RnicConfig, RnicEndpoint};

    let mut table = Table::new(
        "Ablation 3 — selective signaling (CQE DMA traffic per 1000 responses)",
        &["policy", "CQEs", "CQE bytes DMA-ed"],
    );
    for (name, every) in [("all signaled", 1usize), ("1-in-32 signaled", 32)] {
        let mut nic = RnicEndpoint::new(NodeId(0), RnicConfig::default(), PcieConfig::default());
        let mut mem = MemorySystem::new(MemConfig::default(), true);
        let _ = nic.register_region(MrInfo::adaptive(rambda_mem::MemKind::Dram));
        for i in 0..1000usize {
            if i % every == 0 {
                nic.complete(SimTime::from_us(i as u64), &mut mem);
            }
        }
        table.row(vec![name.into(), nic.stats().cqes.to_string(), (nic.stats().cqes * 64).to_string()]);
    }
    table.print();
}

fn network_scaling() {
    use rambda_kvs::designs::{run_cpu as kvs_cpu, run_rambda as kvs_rambda};
    use rambda_kvs::KvsParams;

    let p = KvsParams { requests: 40_000, ..KvsParams::quick() };
    let mut table = Table::new(
        "Ablation 4 — Sec. III-F network scalability (KVS, 100% GET)",
        &["network", "CPU x10 Mops", "Rambda Mops", "Rambda/CPU"],
    );
    for gbps in [25.0, 50.0, 100.0, 400.0] {
        let tb = Testbed::default().with_network_gbps(gbps);
        let cpu = kvs_cpu(&tb, &p).throughput_mops();
        let rambda = kvs_rambda(&tb, &p, DataLocation::HostDram).throughput_mops();
        table.row(vec![format!("{gbps:.0} GbE"), mops(cpu), mops(rambda), ratio(rambda / cpu)]);
    }
    table.print();
}

fn main() {
    cpoll_scaling();
    hardened_controller();
    unsignaled_wqes();
    network_scaling();
    println!("\n(doorbell-batching ablation: see fig10_kvs_batching, Rambda column)");
}
