//! End-to-end checks for the continuous-benchmark harness behind
//! `cargo xtask bench` (DESIGN.md §10).
//!
//! The regression gate is only trustworthy if (a) same-seed sweeps are
//! byte-deterministic, (b) every point's telemetry digest is internally
//! consistent with its run report, and (c) `compare` actually fails when a
//! baseline promises more than the simulator delivers. The committed
//! quick-mode baselines under `bench/baselines/` are themselves pinned
//! byte-for-byte, so any model change that shifts a curve must regenerate
//! them in the same commit.

use std::path::Path;

use rambda::Execution;
use rambda_bench::harness::{compare, is_gating, run_sweep, sweep_names, SweepResult};

/// Same seed, same sweep, same bytes — the property the CI gate stands on.
#[test]
fn quick_sweeps_are_byte_deterministic_and_self_consistent() {
    for name in sweep_names() {
        let a = run_sweep(name, true, false, false, Execution::Serial).expect(name);
        let b = run_sweep(name, true, false, false, Execution::Serial).expect(name);
        let text = a.to_json_string();
        assert_eq!(text, b.to_json_string(), "{name}: same-seed sweeps serialized differently");

        let parsed = SweepResult::from_json_str(&text).expect(name);
        assert_eq!(parsed, a, "{name}: JSON round-trip lost information");
        assert_eq!(parsed.to_json_string(), text);

        assert!(compare(&a, &b).is_empty(), "{name}: identical sweeps must not diff");

        for p in &a.points {
            // The per-window throughput curve must tile the run. The
            // windows hold every *traced* request (warm-up included; the
            // exact identity vs the traced total is enforced by
            // RunReport::validate inside from_report), so they cover at
            // least the measured completions, and the window grid covers
            // the makespan.
            let windowed: u64 = p.window_completed.iter().sum();
            assert!(
                windowed >= p.completed,
                "{name} {}/{}: windows hold {windowed} < {} completions",
                p.design,
                p.x,
                p.completed
            );
            let covered = p.window_ps * p.window_completed.len() as u64;
            assert!(covered >= p.elapsed_ps, "{name} {}/{}: windows do not cover the run", p.design, p.x);
            assert!(
                p.peak_window_p99_ps >= p.p50_ps,
                "{name} {}/{}: peak window p99 below run p50",
                p.design,
                p.x
            );
        }
    }
}

/// Profiled sweeps stay byte-deterministic, carry the profiler rows, and
/// never perturb the headline numbers of the run they observe.
#[test]
fn profiled_sweeps_are_deterministic_and_additive() {
    let plain = run_sweep("micro_designs", true, false, false, Execution::Serial).expect("plain");
    let a = run_sweep("micro_designs", true, true, false, Execution::Serial).expect("profiled");
    let b = run_sweep("micro_designs", true, true, false, Execution::Serial).expect("profiled");
    assert_eq!(a.to_json_string(), b.to_json_string(), "same-seed profiled sweeps must match");
    assert!(a.to_json_string().contains("parallelism_ratio"));
    for (p, q) in plain.points.iter().zip(&a.points) {
        assert_eq!(p.throughput_ops, q.throughput_ops, "profiling perturbed {}", p.design);
        assert_eq!(p.p99_ps, q.p99_ps, "profiling perturbed {}", p.design);
        assert!(q.parallelism_ratio.is_some_and(|r| r.is_finite() && r >= 1.0), "{}", q.design);
        assert!(q.events_dispatched.is_some_and(|n| n > 0), "{}", q.design);
    }
}

/// Scoped sweeps stay byte-deterministic, carry the hot-fraction digest,
/// and never perturb the headline numbers of the run they observe
/// (scoped metrics only attribute what the run already records).
#[test]
fn scoped_sweeps_are_deterministic_and_additive() {
    let plain = run_sweep("kvs_load", true, false, false, Execution::Serial).expect("plain");
    let a = run_sweep("kvs_load", true, false, true, Execution::Serial).expect("scoped");
    let b = run_sweep("kvs_load", true, false, true, Execution::Serial).expect("scoped");
    assert_eq!(a.to_json_string(), b.to_json_string(), "same-seed scoped sweeps must match");
    assert!(a.to_json_string().contains("hot_fraction"));
    assert!(!plain.to_json_string().contains("hot_fraction"), "unscoped sweeps must omit the key");
    for (p, q) in plain.points.iter().zip(&a.points) {
        assert_eq!(p.throughput_ops, q.throughput_ops, "scoping perturbed {}", p.design);
        assert_eq!(p.p99_ps, q.p99_ps, "scoping perturbed {}", p.design);
        assert!(q.hot_fraction.is_some_and(|h| h > 0.0 && h <= 1.0), "{}", q.design);
    }
}

/// The gate must fire when a baseline claims better numbers than the
/// current build produces (equivalently: when the current build regresses
/// against what was committed).
#[test]
fn compare_fails_against_a_perturbed_baseline() {
    let current = run_sweep("micro_designs", true, false, false, Execution::Serial).expect("micro_designs");

    let mut inflated = current.clone();
    inflated.points[0].throughput_ops *= 1.20; // pretend the baseline was 20 % faster
    let diffs = compare(&current, &inflated);
    assert!(diffs.iter().any(|d| d.contains("throughput")), "no throughput regression reported: {diffs:?}");

    let mut tighter_tail = current.clone();
    tighter_tail.points[0].p99_ps = (tighter_tail.points[0].p99_ps as f64 * 0.5) as u64;
    let diffs = compare(&current, &tighter_tail);
    assert!(diffs.iter().any(|d| d.contains("p99")), "no p99 regression reported: {diffs:?}");
}

/// The committed baselines parse, gate-pass against a fresh run, and are
/// byte-identical to what the harness produces today. If a deliberate model
/// change moves a curve, regenerate them in the same commit:
/// `cargo xtask bench --quick --out bench/baselines`.
#[test]
fn committed_baselines_are_current() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root").join("bench/baselines");
    // The non-gating sweeps (faults_sweep) ship no baseline: their numbers
    // characterize degraded fabrics and are expected to look like
    // regressions. Their determinism is still covered above.
    for name in sweep_names().iter().filter(|n| is_gating(n)) {
        let file = dir.join(format!("BENCH_{name}.json"));
        let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
            panic!(
                "missing baseline {} ({e}) — run cargo xtask bench --quick --out bench/baselines",
                file.display()
            )
        });
        let baseline = SweepResult::from_json_str(&text).expect(name);
        assert_eq!(baseline.sweep, *name);
        assert_eq!(baseline.mode, "quick", "{name}: committed baselines must be quick-mode");

        let current = run_sweep(name, true, false, false, Execution::Serial).expect(name);
        let diffs = compare(&current, &baseline);
        assert!(diffs.is_empty(), "{name} regressed vs committed baseline: {diffs:?}");
        assert_eq!(
            current.to_json_string(),
            text,
            "{name}: baseline stale — regenerate with cargo xtask bench --quick --out bench/baselines"
        );
    }
}
