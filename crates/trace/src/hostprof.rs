//! The non-deterministic side of the profiler: host wall-clock attribution.
//!
//! Everything else this crate records is a pure function of the simulation
//! seed. [`HostProf`] is deliberately not: it measures where *host* time
//! goes while the simulator runs, so `cargo xtask profile` can say which
//! design or handler burns the wall clock. To keep the simulation crates
//! free of wall-clock calls (analyzer rule R2), the clock is injected as a
//! closure returning monotonic nanoseconds — the `report` binary passes
//! `std::time::Instant`, tests pass a fake counter.
//!
//! Timing is sampled: only every Nth [`HostProf::time`] call per profiler
//! pays the two clock reads, and recorded durations are scaled back up by
//! the sampling factor, so hot per-request paths stay cheap. Output is the
//! folded-stack text format (`frame;subframe <value>` per line) that
//! `inferno`/`flamegraph.pl` consume; it is git-ignored and never part of
//! golden artifacts.

use std::collections::BTreeMap;

/// A sampling wall-clock attributor. See the module docs.
pub struct HostProf {
    clock: Box<dyn FnMut() -> u64>,
    every: u32,
    calls: u32,
    frames: BTreeMap<String, FrameStat>,
}

#[derive(Debug, Clone, Copy, Default)]
struct FrameStat {
    ns: u64,
    samples: u64,
}

impl std::fmt::Debug for HostProf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostProf")
            .field("every", &self.every)
            .field("calls", &self.calls)
            .field("frames", &self.frames.len())
            .finish()
    }
}

impl HostProf {
    /// A profiler timing every call (sampling factor 1). `clock` must
    /// return monotonic nanoseconds.
    pub fn new(clock: impl FnMut() -> u64 + 'static) -> Self {
        HostProf::sampling(clock, 1)
    }

    /// A profiler timing one in `every` calls and scaling recorded
    /// durations by `every` to compensate.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn sampling(clock: impl FnMut() -> u64 + 'static, every: u32) -> Self {
        assert!(every > 0, "sampling factor must be positive");
        HostProf { clock: Box::new(clock), every, calls: 0, frames: BTreeMap::new() }
    }

    /// Runs `f`, attributing its (sampled, scaled) wall time to `frame`.
    /// Nest frames by joining names with `;` — the folded-stack separator.
    pub fn time<R>(&mut self, frame: &str, f: impl FnOnce() -> R) -> R {
        self.calls = self.calls.wrapping_add(1);
        if !self.calls.is_multiple_of(self.every) {
            return f();
        }
        let t0 = (self.clock)();
        let out = f();
        let dt = (self.clock)().saturating_sub(t0);
        let stat = self.frames.entry(frame.to_string()).or_default();
        stat.ns += dt.saturating_mul(self.every as u64);
        stat.samples += 1;
        out
    }

    /// Number of distinct frames recorded.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Renders the folded-stack text: one `frame;subframe <ns>` line per
    /// frame in name order, ready for `flamegraph.pl`/`inferno`.
    pub fn export_folded(&self) -> String {
        let mut out = String::new();
        for (frame, stat) in &self.frames {
            out.push_str(frame);
            out.push(' ');
            out.push_str(&stat.ns.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A fake monotonic clock advancing 10 ns per read.
    fn fake_clock() -> impl FnMut() -> u64 {
        let t = Rc::new(Cell::new(0u64));
        move || {
            let now = t.get();
            t.set(now + 10);
            now
        }
    }

    #[test]
    fn frames_accumulate_and_fold() {
        let mut prof = HostProf::new(fake_clock());
        let v = prof.time("run;kvs.rambda", || 41 + 1);
        assert_eq!(v, 42);
        prof.time("run;kvs.rambda", || ());
        prof.time("render", || ());
        assert_eq!(prof.frame_count(), 2);
        // Each timed call sees the clock advance once between its two reads.
        assert_eq!(prof.export_folded(), "render 10\nrun;kvs.rambda 20\n");
    }

    #[test]
    fn sampling_skips_calls_but_scales_durations() {
        let mut prof = HostProf::sampling(fake_clock(), 4);
        for _ in 0..8 {
            prof.time("hot", || ());
        }
        // Calls 4 and 8 are timed (10 ns each), scaled ×4 → 80 ns total.
        assert_eq!(prof.export_folded(), "hot 80\n");
    }

    #[test]
    #[should_panic(expected = "sampling factor must be positive")]
    fn zero_sampling_factor_panics() {
        let _ = HostProf::sampling(|| 0, 0);
    }
}
