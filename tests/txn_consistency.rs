//! Transaction-system integration: atomicity, durability, and conflict
//! ordering across the chain under crashes.

use rambda_des::SimRng;
use rambda_txn::{Chain, TxnWrite};
use rambda_workloads::{KeyDist, TxnSpec};

fn value(tag: u64) -> Vec<u8> {
    tag.to_le_bytes().to_vec()
}

#[test]
fn multi_write_transactions_are_atomic_across_recovery() {
    let mut chain = Chain::new(3);
    for i in 0..200u64 {
        // Each transaction writes the same tag to two keys.
        chain.execute(
            &[],
            vec![TxnWrite { key: 2 * i, value: value(i) }, TxnWrite { key: 2 * i + 1, value: value(i) }],
        );
    }
    for r in 0..3 {
        chain.replica_mut(r).crash();
        chain.replica_mut(r).recover();
    }
    chain.check_consistency().unwrap();
    // Atomicity: both halves of every transaction are present and agree.
    for i in 0..200u64 {
        let a = chain.replica(1).get(2 * i).expect("first write lost");
        let b = chain.replica(2).get(2 * i + 1).expect("second write lost");
        assert_eq!(a, b, "transaction {i} torn");
    }
}

#[test]
fn reads_reflect_the_latest_committed_write() {
    let mut chain = Chain::new(2);
    chain.execute(&[], vec![TxnWrite { key: 9, value: value(1) }]);
    chain.execute(&[], vec![TxnWrite { key: 9, value: value(2) }]);
    let out = chain.execute(&[9], vec![]);
    assert_eq!(out.reads[0].as_deref().unwrap(), &value(2)[..]);
}

#[test]
fn conflicting_transactions_queue_in_arrival_order() {
    let mut chain = Chain::new(2);
    chain.execute(&[], vec![TxnWrite { key: 5, value: value(0) }]);
    // With the functional chain executing serially, conflicts_waited counts
    // what the timed model would have queued behind.
    let out = chain.execute(&[5], vec![TxnWrite { key: 6, value: value(1) }]);
    assert_eq!(out.conflicts_waited, 0, "no overlap in serial execution");
    assert!(chain.concurrency_control().busy_keys() == 0, "all locks released");
}

#[test]
fn random_workload_keeps_replicas_identical() {
    let mut chain = Chain::new(4);
    let dist = KeyDist::zipfian(500, 0.9);
    let mut rng = SimRng::seed(17);
    let spec = TxnSpec::read_write(32);
    for i in 0..1_000u64 {
        let keys = spec.sample_keys(&dist, &mut rng);
        let (reads, writes) = keys.split_at(spec.reads);
        let writes = writes.iter().map(|&key| TxnWrite { key, value: value(i) }).collect();
        chain.execute(reads, writes);
        if i % 250 == 0 {
            chain.check_consistency().unwrap();
        }
    }
    chain.check_consistency().unwrap();
    // Every replica answers every key identically.
    for key in 0..500u64 {
        let head = chain.replica(0).get(key).map(<[u8]>::to_vec);
        for r in 1..4 {
            assert_eq!(
                chain.replica(r).get(key).map(<[u8]>::to_vec),
                head,
                "key {key} diverges at replica {r}"
            );
        }
    }
}

#[test]
fn unpersisted_tail_never_resurrects() {
    let mut chain = Chain::new(1);
    chain.execute(&[], vec![TxnWrite { key: 1, value: value(1) }]);
    // Tamper: append a record but do NOT persist it.
    let idx = {
        let store = chain.replica_mut(0);
        store.apply(rambda_txn::WalRecord { txn_id: 999, writes: vec![(2, value(2))] })
    };
    assert!(idx > 0);
    let store = chain.replica_mut(0);
    store.crash();
    store.recover();
    assert!(store.get(2).is_none(), "unpersisted write must not survive");
    assert!(store.get(1).is_some(), "durable write must survive");
}
