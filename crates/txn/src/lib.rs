//! Distributed transactions with NVM-based chain replication
//! (Sec. IV-B / VI-C).
//!
//! * [`store`] — a log-structured persistent key-value store (the RocksDB
//!   stand-in): a volatile memtable over a durable write-ahead redo log in
//!   (simulated) NVM, with crash recovery by log replay.
//! * [`chain`] — the chain-replication protocol with Rambda-Tx's
//!   concurrency-control unit: per-key FIFO queueing so any single pair has
//!   at most one outstanding transaction, multi-tuple redo-log entries
//!   (`count || (data, len, offset)*`), head→tail propagation and
//!   back-propagated ACKs.
//! * [`designs`] — the Fig. 11 two-replica emulation and the Fig. 12
//!   latency comparison between HyperLoop (one group-RDMA round per KV
//!   pair, sequential) and Rambda-Tx (one combined request processed
//!   near-data by the accelerator at each replica).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod designs;
pub mod store;

pub use chain::{Chain, ConcurrencyControl, TxnOutcome, TxnWrite};
pub use designs::{run_hyperloop, run_pure_reads, run_rambda_tx, TxnDesigns, TxnParams};
pub use store::{PersistentStore, WalRecord};
