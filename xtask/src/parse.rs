//! An item-level parse layer over the token stream (DESIGN.md §13).
//!
//! The lexer ([`crate::lexer`]) sees tokens; the rules that de-risk the
//! parallel-DES refactor (R7–R9) need *structure*: which struct owns which
//! fields, which `fn` lives inside which `impl`, which counters a
//! `publish_metrics` body names, and what is reachable from a simulated
//! machine through the type graph. This module builds exactly as much of
//! that structure as the rules consume, and no more:
//!
//! * a flattened item list per file (structs/enums/unions/traits/fns/
//!   impls/consts/statics/type aliases/macro invocations), each with its
//!   attributes' raw text, doc status, visibility, `#[cfg(test)]`
//!   classification inherited through the module tree, and its token span;
//! * struct fields with the identifiers appearing in their types (the
//!   conservative type graph's edges);
//! * `use`-tree resolution to `local name → path segments` within the file;
//! * token masks (`test_mask`, `use_mask`) derived from the item tree, so
//!   the token-level rules R1/R2/R5/R6 share one notion of "test code"
//!   with the structural rules;
//! * a workspace-level [`TypeGraph`] with breadth-first reachability that
//!   reports the access path (`Machine -> MemorySystem -> Dram`).
//!
//! The parser is conservative by construction: an unrecognized construct
//! advances one token and is simply not an item, never an error. A missed
//! item can only make the analyzer *lenient*, and the negative fixtures
//! under `xtask/tests/fixtures/` pin the constructs the rules rely on.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{lex, Token, TokenKind};

/// Visibility of an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub` — part of the crate's public surface.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in ...)`.
    Restricted,
    /// No visibility qualifier.
    Private,
}

/// The kind of a parsed item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `trait`.
    Trait,
    /// `fn` (free or inside an `impl`).
    Fn,
    /// `impl` block (inherent or trait).
    Impl,
    /// `mod` (inline or out-of-line).
    Mod,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `type` alias.
    TypeAlias,
    /// `use` declaration.
    Use,
    /// An item-position macro invocation (`thread_local! { ... }`).
    MacroCall,
}

impl ItemKind {
    /// The keyword the item declares itself with (for diagnostics).
    pub fn keyword(self) -> &'static str {
        match self {
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Union => "union",
            ItemKind::Trait => "trait",
            ItemKind::Fn => "fn",
            ItemKind::Impl => "impl",
            ItemKind::Mod => "mod",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::TypeAlias => "type",
            ItemKind::Use => "use",
            ItemKind::MacroCall => "macro",
        }
    }
}

/// One struct/union field (or a synthetic `variants` field carrying every
/// identifier mentioned inside an enum body).
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name (`variants` for the synthetic enum field).
    pub name: String,
    /// Identifiers appearing in the field's type, in order.
    pub ty_idents: Vec<String>,
    /// The type rendered back to text (for diagnostics).
    pub ty_text: String,
    /// 1-based line of the field name.
    pub line: u32,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// The item's name (`impl` blocks: the self type; `use`: empty).
    pub name: String,
    /// For items nested in an `impl` block: the block's self type.
    pub impl_of: Option<String>,
    /// For `impl Trait for Type` blocks: the trait name.
    pub trait_of: Option<String>,
    /// 1-based line of the declaring keyword.
    pub line: u32,
    /// Visibility qualifier.
    pub vis: Vis,
    /// Whether a `///` doc comment or `#[doc]` attribute precedes the item.
    pub docd: bool,
    /// Whether the item sits under `#[cfg(test)]` (its own attribute or an
    /// enclosing module's).
    pub in_test: bool,
    /// `static mut` (R7's most direct target).
    pub mutable: bool,
    /// The raw source text of the item's attributes (empty if none).
    pub attr_text: String,
    /// Whether the attributes include `#[deprecated ...]`.
    pub deprecated: bool,
    /// Token span `[start, end]` (inclusive) covering attributes through
    /// the closing brace or semicolon.
    pub span: (usize, usize),
    /// Token span of the item's body (between its braces), if braced.
    pub body: Option<(usize, usize)>,
    /// Struct/union fields, or the synthetic enum `variants` field.
    pub fields: Vec<Field>,
}

/// One resolved `use` binding: `use a::b::c as d;` → `d → [a, b, c]`.
#[derive(Debug, Clone)]
pub struct Import {
    /// The name the binding introduces (`*` for glob imports).
    pub local: String,
    /// The full path segments.
    pub path: Vec<String>,
    /// 1-based line of the binding.
    pub line: u32,
}

/// One fully parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// The crate directory name under `crates/`.
    pub crate_name: String,
    /// Whether the file is a `src/bin/` driver target.
    pub is_bin: bool,
    /// The raw source (attribute text extraction, R6's note check).
    pub source: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Per-token: inside a `#[cfg(test)]` item (inherited through mods).
    pub test_mask: Vec<bool>,
    /// Per-token: part of a `use` declaration.
    pub use_mask: Vec<bool>,
    /// Flattened items (nested items appear after their parents).
    pub items: Vec<Item>,
    /// Resolved `use` bindings.
    pub imports: Vec<Import>,
}

impl ParsedFile {
    /// Parses `source` into tokens, masks and items.
    pub fn parse(rel: &str, crate_name: &str, source: String) -> ParsedFile {
        let tokens = lex(&source);
        let mut p = Parser {
            tokens: &tokens,
            source: &source,
            pos: 0,
            items: Vec::new(),
            imports: Vec::new(),
            test_mask: vec![false; tokens.len()],
            use_mask: vec![false; tokens.len()],
        };
        p.parse_items(false, None, None);
        let (items, imports, test_mask, use_mask) = (p.items, p.imports, p.test_mask, p.use_mask);
        ParsedFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            is_bin: rel.contains("/src/bin/"),
            source,
            tokens,
            test_mask,
            use_mask,
            items,
            imports,
        }
    }

    /// The items defining a type (struct/enum/union) with `name`.
    pub fn type_items(&self) -> impl Iterator<Item = &Item> {
        self.items.iter().filter(|i| matches!(i.kind, ItemKind::Struct | ItemKind::Enum | ItemKind::Union))
    }
}

struct Parser<'a> {
    tokens: &'a [Token],
    source: &'a str,
    pos: usize,
    items: Vec<Item>,
    imports: Vec<Import>,
    test_mask: Vec<bool>,
    use_mask: Vec<bool>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.ident() == Some(s))
    }

    /// Skips comment tokens (doc comments too — callers that care about
    /// docs handle them before calling this).
    fn skip_comments(&mut self) {
        while self.peek().is_some_and(Token::is_comment) {
            self.pos += 1;
        }
    }

    /// Consumes a balanced `open`..`close` region starting at the current
    /// `open` token; tolerates EOF.
    fn skip_balanced(&mut self, open: char, close: char) {
        debug_assert!(self.at_punct(open));
        let mut depth = 0i32;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth <= 0 {
                    return;
                }
            }
        }
    }

    /// Consumes tokens until a `;` at zero brace/paren/bracket depth
    /// (inclusive); tolerates EOF. Used for `const`/`static`/`type` bodies,
    /// whose initializer expressions may contain braced literals.
    fn skip_to_semi(&mut self) {
        let mut brace = 0i32;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while let Some(t) = self.bump() {
            match t.kind {
                TokenKind::Punct('{') => brace += 1,
                TokenKind::Punct('}') => brace -= 1,
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren -= 1,
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(']') => bracket -= 1,
                TokenKind::Punct(';') if brace <= 0 && paren <= 0 && bracket <= 0 => return,
                _ => {}
            }
        }
    }

    /// Parses items until the matching `}` of an enclosing block (`until_close`
    /// true) or EOF. `in_test` is inherited `#[cfg(test)]` state; `impl_of`
    /// the enclosing impl block's self type.
    fn parse_items(&mut self, in_test: bool, impl_of: Option<&str>, until_close: Option<()>) {
        loop {
            self.skip_comments_preserving_nothing();
            if self.peek().is_none() {
                return;
            }
            if until_close.is_some() && self.at_punct('}') {
                return;
            }
            self.parse_item(in_test, impl_of);
        }
    }

    fn skip_comments_preserving_nothing(&mut self) {
        // Plain (non-doc) comments between items are insignificant here;
        // doc comments are consumed by `parse_item`'s preamble.
        while self
            .peek()
            .is_some_and(|t| matches!(t.kind, TokenKind::LineComment(_) | TokenKind::BlockComment(_)))
        {
            self.pos += 1;
        }
    }

    /// Parses one item (or advances one token if none is recognized).
    fn parse_item(&mut self, in_test: bool, impl_of: Option<&str>) {
        let start = self.pos;
        let mut docd = false;
        let mut cfg_test = false;
        let mut deprecated = false;
        let mut attr_text = String::new();

        // Preamble: doc comments and attributes, in any order.
        loop {
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::DocComment { inner: false, .. }) => {
                    docd = true;
                    self.pos += 1;
                }
                Some(TokenKind::DocComment { .. })
                | Some(TokenKind::LineComment(_))
                | Some(TokenKind::BlockComment(_)) => {
                    self.pos += 1;
                }
                Some(TokenKind::Punct('#')) => {
                    let attr_start = self.pos;
                    let (saw_cfg_test, saw_doc, saw_deprecated) = self.consume_attribute();
                    cfg_test |= saw_cfg_test;
                    docd |= saw_doc;
                    deprecated |= saw_deprecated;
                    self.append_attr_text(&mut attr_text, attr_start);
                }
                _ => break,
            }
        }

        // Visibility.
        let mut vis = Vis::Private;
        if self.at_ident("pub") {
            self.pos += 1;
            self.skip_comments();
            if self.at_punct('(') {
                vis = Vis::Restricted;
                self.skip_balanced('(', ')');
            } else {
                vis = Vis::Pub;
            }
        }
        self.skip_comments();

        // Qualifiers before `fn` (const/unsafe/async/extern "C").
        // `const`/`static` may themselves head an item; look ahead.
        let line = self.peek().map_or(0, |t| t.line);
        let in_test = in_test || cfg_test;
        let mut push = |p: &mut Parser<'a>, mut item: Item| {
            item.span = (start, p.pos.saturating_sub(1).max(start));
            item.vis = vis;
            item.docd = docd;
            item.in_test = in_test;
            item.attr_text = std::mem::take(&mut attr_text);
            item.deprecated = deprecated;
            if in_test {
                for m in &mut p.test_mask[item.span.0..=item.span.1] {
                    *m = true;
                }
            }
            if item.kind == ItemKind::Use {
                for m in &mut p.use_mask[item.span.0..=item.span.1] {
                    *m = true;
                }
            }
            p.items.push(item);
        };

        match self.peek().and_then(Token::ident) {
            Some("mod") => {
                self.pos += 1;
                self.skip_comments();
                let name = self.take_ident().unwrap_or_default();
                self.skip_comments();
                if self.at_punct('{') {
                    self.pos += 1; // '{'
                    let body_start = self.pos;
                    self.parse_items(in_test, None, Some(()));
                    let body_end = self.pos.saturating_sub(1);
                    if self.at_punct('}') {
                        self.pos += 1;
                    }
                    push(self, Item::new(ItemKind::Mod, name, line).with_body(body_start, body_end));
                } else {
                    if self.at_punct(';') {
                        self.pos += 1;
                    }
                    push(self, Item::new(ItemKind::Mod, name, line));
                }
            }
            Some("struct") | Some("union") => {
                let kind = if self.at_ident("struct") { ItemKind::Struct } else { ItemKind::Union };
                self.pos += 1;
                self.skip_comments();
                let name = self.take_ident().unwrap_or_default();
                self.skip_generics_and_where();
                if self.at_punct('{') {
                    self.pos += 1;
                    let body_start = self.pos;
                    let fields = self.parse_fields();
                    let body_end = self.pos.saturating_sub(1);
                    if self.at_punct('}') {
                        self.pos += 1;
                    }
                    let mut item = Item::new(kind, name, line).with_body(body_start, body_end);
                    item.fields = fields;
                    push(self, item);
                } else if self.at_punct('(') {
                    // Tuple struct: one synthetic field carrying the idents.
                    let body_start = self.pos;
                    self.skip_balanced('(', ')');
                    let ty_idents = ident_texts(&self.tokens[body_start..self.pos]);
                    self.skip_to_semi();
                    let mut item = Item::new(kind, name, line);
                    item.fields = vec![Field {
                        name: "0".to_string(),
                        ty_text: render(&self.tokens[body_start..self.pos]),
                        ty_idents,
                        line,
                    }];
                    push(self, item);
                } else {
                    if self.at_punct(';') {
                        self.pos += 1;
                    }
                    push(self, Item::new(kind, name, line));
                }
            }
            Some("enum") => {
                self.pos += 1;
                self.skip_comments();
                let name = self.take_ident().unwrap_or_default();
                self.skip_generics_and_where();
                let mut item = Item::new(ItemKind::Enum, name, line);
                if self.at_punct('{') {
                    let body_start = self.pos + 1;
                    self.skip_balanced('{', '}');
                    let body_end = self.pos.saturating_sub(1);
                    // Every ident inside the body is a conservative type
                    // edge (variant payloads).
                    item.fields = vec![Field {
                        name: "variants".to_string(),
                        ty_idents: ident_texts(&self.tokens[body_start..body_end]),
                        ty_text: String::new(),
                        line,
                    }];
                    item.body = Some((body_start, body_end));
                }
                push(self, item);
            }
            Some("trait") => {
                self.pos += 1;
                self.skip_comments();
                let name = self.take_ident().unwrap_or_default();
                // Opaque body: default methods are still covered by the
                // token-level rules; nothing structural is needed inside.
                self.advance_to_body_or_semi();
                let mut item = Item::new(ItemKind::Trait, name, line);
                if self.at_punct('{') {
                    let body_start = self.pos + 1;
                    self.skip_balanced('{', '}');
                    item.body = Some((body_start, self.pos.saturating_sub(1)));
                }
                push(self, item);
            }
            Some("impl") => {
                self.pos += 1;
                self.skip_generics_only();
                // Collect the path up to `for` / `where` / `{`: the self
                // type is the last ident outside angle brackets; with a
                // `for`, the part before it is the trait.
                let (first, second) = self.impl_heads();
                let (trait_of, name) = match second {
                    Some(ty) => (Some(first), ty),
                    None => (None, first),
                };
                let mut item = Item::new(ItemKind::Impl, name.clone(), line);
                item.trait_of = trait_of;
                self.advance_to_body_or_semi(); // skip a `where` clause

                if self.at_punct('{') {
                    self.pos += 1;
                    let body_start = self.pos;
                    self.parse_items(in_test, Some(&name), Some(()));
                    let body_end = self.pos.saturating_sub(1);
                    if self.at_punct('}') {
                        self.pos += 1;
                    }
                    item.body = Some((body_start, body_end));
                } else if self.at_punct(';') {
                    self.pos += 1;
                }
                push(self, item);
            }
            Some("fn") => {
                self.pos += 1;
                self.skip_comments();
                let name = self.take_ident().unwrap_or_default();
                self.advance_to_body_or_semi();
                let mut item = Item::new(ItemKind::Fn, name, line);
                item.impl_of = impl_of.map(str::to_owned);
                if self.at_punct('{') {
                    let body_start = self.pos + 1;
                    self.skip_balanced('{', '}');
                    item.body = Some((body_start, self.pos.saturating_sub(1)));
                } else if self.at_punct(';') {
                    self.pos += 1;
                }
                push(self, item);
            }
            Some(q @ ("const" | "static" | "unsafe" | "async" | "extern" | "default")) => {
                // Either a qualifier chain ending in `fn`, or a
                // `const`/`static` item, or an `extern` block/crate.
                let q = q.to_string();
                self.pos += 1;
                self.skip_comments();
                match q.as_str() {
                    "const" | "static"
                        if !self.at_ident("fn")
                            && !self.at_ident("unsafe")
                            && !self.at_ident("async")
                            && !self.at_ident("extern") =>
                    {
                        let mutable = self.at_ident("mut");
                        if mutable {
                            self.pos += 1;
                            self.skip_comments();
                        }
                        let name = self.take_ident().unwrap_or_default();
                        self.skip_to_semi();
                        let kind = if q == "const" { ItemKind::Const } else { ItemKind::Static };
                        let mut item = Item::new(kind, name, line);
                        item.mutable = mutable;
                        item.impl_of = impl_of.map(str::to_owned);
                        push(self, item);
                    }
                    "extern" if self.at_ident("crate") => {
                        self.skip_to_semi();
                        // `extern crate` declarations carry no structure.
                    }
                    "extern"
                        if self.peek().is_some_and(|t| t.str_text().is_some())
                            && self.tokens.get(self.pos + 1).is_some_and(|t| t.is_punct('{')) =>
                    {
                        // `extern "C" { ... }` foreign block: opaque.
                        self.pos += 1;
                        self.skip_balanced('{', '}');
                    }
                    _ => {
                        // Qualifier chain: re-enter item parsing with the
                        // preamble state we already collected. `fn`/`const`
                        // etc. will be the next keyword; the simplest
                        // faithful handling is to fall through by doing
                        // nothing — the next parse_item call sees the
                        // remaining `fn name ...` without the preamble, so
                        // instead handle the common `... fn` case directly.
                        while self.at_ident("unsafe")
                            || self.at_ident("async")
                            || self.at_ident("extern")
                            || self.at_ident("const")
                            || self.at_ident("default")
                            || self.peek().is_some_and(|t| t.str_text().is_some())
                        {
                            self.pos += 1;
                            self.skip_comments();
                        }
                        if self.at_ident("fn") {
                            self.pos += 1;
                            self.skip_comments();
                            let name = self.take_ident().unwrap_or_default();
                            self.advance_to_body_or_semi();
                            let mut item = Item::new(ItemKind::Fn, name, line);
                            item.impl_of = impl_of.map(str::to_owned);
                            if self.at_punct('{') {
                                let body_start = self.pos + 1;
                                self.skip_balanced('{', '}');
                                item.body = Some((body_start, self.pos.saturating_sub(1)));
                            } else if self.at_punct(';') {
                                self.pos += 1;
                            }
                            push(self, item);
                        } else if self.at_punct('{') {
                            // `unsafe { ... }` at item position (unusual):
                            // skip the block.
                            self.skip_balanced('{', '}');
                        }
                    }
                }
            }
            Some("type") => {
                self.pos += 1;
                self.skip_comments();
                let name = self.take_ident().unwrap_or_default();
                self.skip_to_semi();
                let mut item = Item::new(ItemKind::TypeAlias, name, line);
                item.impl_of = impl_of.map(str::to_owned);
                push(self, item);
            }
            Some("use") => {
                self.pos += 1;
                let tree_start = self.pos;
                self.skip_to_semi();
                let bindings = parse_use_tree(&self.tokens[tree_start..self.pos]);
                let line = self.tokens.get(tree_start).map_or(line, |t| t.line);
                for (local, path) in bindings {
                    self.imports.push(Import { local, path, line });
                }
                push(self, Item::new(ItemKind::Use, String::new(), line));
            }
            Some("macro_rules") => {
                self.pos += 1; // macro_rules
                if self.at_punct('!') {
                    self.pos += 1;
                }
                self.skip_comments();
                let name = self.take_ident().unwrap_or_default();
                self.skip_comments();
                self.skip_macro_body();
                push(self, Item::new(ItemKind::MacroCall, name, line));
            }
            Some(name) if self.tokens.get(self.pos + 1).is_some_and(|t| t.is_punct('!')) => {
                // Item-position macro invocation: `thread_local! { ... }`.
                let name = name.to_string();
                self.pos += 2; // ident, '!'
                self.skip_comments();
                self.skip_macro_body();
                push(self, Item::new(ItemKind::MacroCall, name, line));
            }
            _ => {
                // Not an item head we know. If we consumed a preamble,
                // record nothing; always make progress.
                if self.pos == start {
                    self.pos += 1;
                }
            }
        }
    }

    /// Consumes a `#[...]` or `#![...]` attribute starting at `#`. Returns
    /// `(cfg(test) present, doc attribute, deprecated attribute)`.
    fn consume_attribute(&mut self) -> (bool, bool, bool) {
        self.pos += 1; // '#'
        self.skip_comments();
        if self.at_punct('!') {
            self.pos += 1;
            self.skip_comments();
        }
        if !self.at_punct('[') {
            return (false, false, false);
        }
        let mut depth = 0i32;
        let mut saw_cfg = false;
        let mut saw_test = false;
        let mut saw_doc = false;
        let mut saw_deprecated = false;
        let mut first_ident = true;
        while let Some(t) = self.bump() {
            match &t.kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(s) => {
                    if first_ident {
                        saw_doc |= s == "doc";
                        saw_deprecated |= s == "deprecated";
                        first_ident = false;
                    }
                    saw_cfg |= s == "cfg";
                    saw_test |= s == "test";
                }
                _ => {}
            }
        }
        (saw_cfg && saw_test, saw_doc, saw_deprecated)
    }

    /// Appends the raw source lines of an attribute (token `attr_start`
    /// through the current position) to `out`.
    fn append_attr_text(&mut self, out: &mut String, attr_start: usize) {
        let (Some(first), Some(last)) =
            (self.tokens.get(attr_start), self.tokens.get(self.pos.saturating_sub(1)))
        else {
            return;
        };
        let lo = first.line as usize;
        let hi = last.end_line as usize;
        for l in self.source.lines().skip(lo - 1).take(hi - lo + 1) {
            out.push_str(l);
            out.push('\n');
        }
    }

    fn take_ident(&mut self) -> Option<String> {
        self.skip_comments();
        let name = self.peek()?.ident()?.to_string();
        self.pos += 1;
        Some(name)
    }

    /// Skips a leading `<...>` generic parameter list, if present.
    fn skip_generics_only(&mut self) {
        self.skip_comments();
        if !self.at_punct('<') {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.bump() {
            match t.kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth <= 0 {
                        return;
                    }
                }
                // A generic list never contains these at depth > 0; bail
                // out rather than swallow the file on a misparse.
                TokenKind::Punct('{') | TokenKind::Punct(';') => {
                    self.pos -= 1;
                    return;
                }
                _ => {}
            }
        }
    }

    /// Skips generics and a `where` clause, stopping at `{`, `(`, or `;`.
    fn skip_generics_and_where(&mut self) {
        self.skip_generics_only();
        self.skip_comments();
        // Tuple structs: the paren list is the body, handled by the caller.
        if self.at_punct('(') || self.at_punct('{') || self.at_punct(';') {
            return;
        }
        // `where` clause (or anything unexpected): scan to the body.
        while let Some(t) = self.peek() {
            if t.is_punct('{') || t.is_punct(';') || t.is_punct('(') {
                return;
            }
            self.pos += 1;
        }
    }

    /// Advances over a fn signature (or trait header) to its `{` body or
    /// terminating `;`, tracking paren/bracket depth so type-level braces
    /// in argument position don't end the signature early.
    fn advance_to_body_or_semi(&mut self) {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while let Some(t) = self.peek() {
            match t.kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren -= 1,
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(']') => bracket -= 1,
                TokenKind::Punct('{') if paren <= 0 && bracket <= 0 => return,
                TokenKind::Punct(';') if paren <= 0 && bracket <= 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Parses named fields until the struct's closing `}` (exclusive).
    fn parse_fields(&mut self) -> Vec<Field> {
        let mut fields = Vec::new();
        loop {
            // Skip comments, docs and attributes before a field.
            loop {
                match self.peek().map(|t| &t.kind) {
                    Some(
                        TokenKind::LineComment(_) | TokenKind::BlockComment(_) | TokenKind::DocComment { .. },
                    ) => {
                        self.pos += 1;
                    }
                    Some(TokenKind::Punct('#')) => {
                        self.consume_attribute();
                    }
                    _ => break,
                }
            }
            if self.peek().is_none() || self.at_punct('}') {
                return fields;
            }
            if self.at_ident("pub") {
                self.pos += 1;
                self.skip_comments();
                if self.at_punct('(') {
                    self.skip_balanced('(', ')');
                    self.skip_comments();
                }
            }
            let Some(name) = self.take_ident() else {
                // Not a field start; make progress.
                self.pos += 1;
                continue;
            };
            let line = self.tokens.get(self.pos.saturating_sub(1)).map_or(0, |t| t.line);
            self.skip_comments();
            if !self.at_punct(':') {
                continue;
            }
            self.pos += 1; // ':'
            let ty_start = self.pos;
            // The type runs to a `,` or the closing `}` at zero depth.
            let mut angle = 0i32;
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut brace = 0i32;
            while let Some(t) = self.peek() {
                match t.kind {
                    TokenKind::Punct('<') => angle += 1,
                    TokenKind::Punct('>') => angle = (angle - 1).max(0),
                    TokenKind::Punct('(') => paren += 1,
                    TokenKind::Punct(')') => paren -= 1,
                    TokenKind::Punct('[') => bracket += 1,
                    TokenKind::Punct(']') => bracket -= 1,
                    TokenKind::Punct('{') => brace += 1,
                    TokenKind::Punct('}') => {
                        if brace == 0 {
                            break;
                        }
                        brace -= 1;
                    }
                    TokenKind::Punct(',') if angle <= 0 && paren <= 0 && bracket <= 0 && brace <= 0 => {
                        break;
                    }
                    _ => {}
                }
                self.pos += 1;
            }
            let ty_tokens = &self.tokens[ty_start..self.pos];
            fields.push(Field { name, ty_idents: ident_texts(ty_tokens), ty_text: render(ty_tokens), line });
            if self.at_punct(',') {
                self.pos += 1;
            }
        }
    }

    /// After `impl <generics>`: collects the trait path (if any) and the
    /// self type. Returns `(first, None)` for `impl Type` and
    /// `(trait, Some(type))` for `impl Trait for Type`.
    fn impl_heads(&mut self) -> (String, Option<String>) {
        let first = self.impl_path_head();
        self.skip_comments();
        if self.at_ident("for") {
            self.pos += 1;
            let second = self.impl_path_head();
            (first, Some(second))
        } else {
            (first, None)
        }
    }

    /// The last path ident outside angle brackets before `for`/`where`/`{`.
    fn impl_path_head(&mut self) -> String {
        let mut angle = 0i32;
        let mut last = String::new();
        while let Some(t) = self.peek() {
            match &t.kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle = (angle - 1).max(0),
                TokenKind::Punct('{') | TokenKind::Punct(';') if angle <= 0 => break,
                TokenKind::Ident(s) if angle == 0 => {
                    if s == "for" || s == "where" {
                        break;
                    }
                    last = s.clone();
                }
                _ => {}
            }
            self.pos += 1;
        }
        last
    }

    /// Skips a macro invocation body: `{...}`, `(...);` or `[...];`.
    fn skip_macro_body(&mut self) {
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Punct('{')) => self.skip_balanced('{', '}'),
            Some(TokenKind::Punct('(')) => {
                self.skip_balanced('(', ')');
                if self.at_punct(';') {
                    self.pos += 1;
                }
            }
            Some(TokenKind::Punct('[')) => {
                self.skip_balanced('[', ']');
                if self.at_punct(';') {
                    self.pos += 1;
                }
            }
            _ => {}
        }
    }
}

impl Item {
    fn new(kind: ItemKind, name: String, line: u32) -> Item {
        Item {
            kind,
            name,
            impl_of: None,
            trait_of: None,
            line,
            vis: Vis::Private,
            docd: false,
            in_test: false,
            mutable: false,
            attr_text: String::new(),
            deprecated: false,
            span: (0, 0),
            body: None,
            fields: Vec::new(),
        }
    }

    fn with_body(mut self, start: usize, end: usize) -> Item {
        self.body = Some((start, end));
        self
    }
}

/// The identifier texts in a token slice, in order.
pub fn ident_texts(tokens: &[Token]) -> Vec<String> {
    tokens.iter().filter_map(|t| t.ident().map(str::to_owned)).collect()
}

/// Renders a token slice back to compact text (diagnostics only).
pub fn render(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        match &t.kind {
            TokenKind::Ident(s) => {
                if out.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    out.push(' ');
                }
                out.push_str(s);
            }
            TokenKind::Punct(c) => out.push(*c),
            TokenKind::Number => {
                if out.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    out.push(' ');
                }
                out.push('#');
            }
            _ => {}
        }
    }
    out
}

/// Parses the token slice of a `use` tree (without the leading `use` and
/// trailing `;`) into `(local name, path)` bindings. Globs bind `*`.
fn parse_use_tree(tokens: &[Token]) -> Vec<(String, Vec<String>)> {
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    let mut pos = 0usize;
    walk_use(&sig, &mut pos, &mut Vec::new(), &mut out);
    out
}

fn walk_use(sig: &[&Token], pos: &mut usize, prefix: &mut Vec<String>, out: &mut Vec<(String, Vec<String>)>) {
    let depth_at_entry = prefix.len();
    loop {
        match sig.get(*pos).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                *pos += 1;
                // `a as b`?
                if sig.get(*pos).and_then(|t| t.ident()) == Some("as") {
                    // handled below after path accumulation
                }
                prefix.push(s);
                match sig.get(*pos).map(|t| &t.kind) {
                    Some(TokenKind::Punct(':')) if sig.get(*pos + 1).is_some_and(|t| t.is_punct(':')) => {
                        *pos += 2;
                        continue; // more segments
                    }
                    Some(TokenKind::Ident(k)) if k == "as" => {
                        *pos += 1;
                        let alias = sig.get(*pos).and_then(|t| t.ident()).unwrap_or("_").to_string();
                        *pos += 1;
                        out.push((alias, prefix.clone()));
                        prefix.truncate(depth_at_entry);
                    }
                    _ => {
                        let local = prefix.last().cloned().unwrap_or_default();
                        out.push((local, prefix.clone()));
                        prefix.truncate(depth_at_entry);
                    }
                }
            }
            Some(TokenKind::Punct('{')) => {
                *pos += 1;
                walk_use(sig, pos, prefix, out);
                if sig.get(*pos).is_some_and(|t| t.is_punct('}')) {
                    *pos += 1;
                }
                prefix.truncate(depth_at_entry);
            }
            Some(TokenKind::Punct('*')) => {
                *pos += 1;
                out.push(("*".to_string(), prefix.clone()));
                prefix.truncate(depth_at_entry);
            }
            Some(TokenKind::Punct(',')) => {
                *pos += 1;
                prefix.truncate(depth_at_entry);
            }
            Some(TokenKind::Punct('}')) | None => return,
            _ => {
                *pos += 1;
            }
        }
    }
}

/// The workspace-level conservative type graph: `struct A { f: B }` puts an
/// edge `A → B` labelled with the field. Enum variant payloads contribute
/// edges through the synthetic `variants` field.
#[derive(Debug, Default)]
pub struct TypeGraph {
    /// Edges `from → [(to, field name)]`, deterministic order.
    pub edges: BTreeMap<String, Vec<(String, String)>>,
    /// `type name → (file, field list)` for every defining item.
    pub defs: BTreeMap<String, Vec<TypeDef>>,
}

/// One type definition site retained by the graph.
#[derive(Debug, Clone)]
pub struct TypeDef {
    /// File (workspace-relative) defining the type.
    pub rel: String,
    /// Crate directory name.
    pub crate_name: String,
    /// Declaration line.
    pub line: u32,
    /// The fields (synthetic for enums/tuple structs).
    pub fields: Vec<Field>,
}

impl TypeGraph {
    /// Builds the graph from every non-test type item in `files`.
    pub fn build<'a>(files: impl IntoIterator<Item = &'a ParsedFile>) -> TypeGraph {
        let mut g = TypeGraph::default();
        for f in files {
            for item in f.type_items() {
                if item.in_test {
                    continue;
                }
                g.defs.entry(item.name.clone()).or_default().push(TypeDef {
                    rel: f.rel.clone(),
                    crate_name: f.crate_name.clone(),
                    line: item.line,
                    fields: item.fields.clone(),
                });
            }
        }
        let defined: BTreeSet<&String> = g.defs.keys().collect();
        let mut edges: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
        for (name, defs) in &g.defs {
            let mut outs = Vec::new();
            for def in defs {
                for field in &def.fields {
                    for ty in &field.ty_idents {
                        if ty != name && defined.contains(ty) {
                            let edge = (ty.clone(), field.name.clone());
                            if !outs.contains(&edge) {
                                outs.push(edge);
                            }
                        }
                    }
                }
            }
            edges.insert(name.clone(), outs);
        }
        g.edges = edges;
        g
    }

    /// Breadth-first reachability from `roots`; returns for every reachable
    /// type the field-path from a root, e.g. `Machine -> mem -> dram`.
    pub fn reachable(&self, roots: &[String]) -> BTreeMap<String, String> {
        let mut paths: BTreeMap<String, String> = BTreeMap::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        for r in roots {
            if self.defs.contains_key(r) && !paths.contains_key(r) {
                paths.insert(r.clone(), r.clone());
                queue.push_back(r.clone());
            }
        }
        while let Some(from) = queue.pop_front() {
            let base = paths[&from].clone();
            for (to, field) in self.edges.get(&from).into_iter().flatten() {
                if !paths.contains_key(to) {
                    paths.insert(to.clone(), format!("{base} .{field} -> {to}"));
                    queue.push_back(to.clone());
                }
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse("crates/kvs/src/lib.rs", "kvs", src.to_string())
    }

    #[test]
    fn items_and_docs() {
        let f = parse("/// Doc.\npub struct S { pub x: u64 }\nfn helper() {}\npub(crate) fn inner() {}");
        let s = &f.items[0];
        assert_eq!((s.kind, s.name.as_str(), s.vis, s.docd), (ItemKind::Struct, "S", Vis::Pub, true));
        assert_eq!(s.fields.len(), 1);
        assert_eq!(s.fields[0].name, "x");
        let h = f.items.iter().find(|i| i.name == "helper").unwrap();
        assert_eq!((h.kind, h.vis, h.docd), (ItemKind::Fn, Vis::Private, false));
        let i = f.items.iter().find(|i| i.name == "inner").unwrap();
        assert_eq!(i.vis, Vis::Restricted);
    }

    #[test]
    fn cfg_test_inherits_through_modules() {
        let f = parse("#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  fn t() { let x = 1; }\n}\nfn live() {}");
        let t = f.items.iter().find(|i| i.name == "t").unwrap();
        assert!(t.in_test);
        let live = f.items.iter().find(|i| i.name == "live").unwrap();
        assert!(!live.in_test);
        // Every token of the test module is masked; `live` is not.
        let hm = f.tokens.iter().position(|t| t.ident() == Some("HashMap")).unwrap();
        assert!(f.test_mask[hm]);
        let lv = f.tokens.iter().position(|t| t.ident() == Some("live")).unwrap();
        assert!(!f.test_mask[lv]);
    }

    #[test]
    fn impl_blocks_give_context_to_fns() {
        let f = parse("impl SimRng {\n  pub fn seed(s: u64) -> Self { todo!() }\n}\nimpl Clone for World { fn clone(&self) -> Self { todo!() } }");
        let seed = f.items.iter().find(|i| i.name == "seed").unwrap();
        assert_eq!(seed.impl_of.as_deref(), Some("SimRng"));
        let imp = f.items.iter().find(|i| i.kind == ItemKind::Impl && i.name == "World").unwrap();
        assert_eq!(imp.trait_of.as_deref(), Some("Clone"));
        let clone = f.items.iter().find(|i| i.name == "clone").unwrap();
        assert_eq!(clone.impl_of.as_deref(), Some("World"));
    }

    #[test]
    fn generic_impls_and_structs() {
        let f = parse("impl<T: Ord> Wheel<T> {\n  fn push(&mut self, t: T) {}\n}\npub struct Wheel<T> { slots: Vec<Vec<T>>, count: usize }");
        let imp = f.items.iter().find(|i| i.kind == ItemKind::Impl).unwrap();
        assert_eq!(imp.name, "Wheel");
        let w = f.items.iter().find(|i| i.kind == ItemKind::Struct).unwrap();
        assert_eq!(w.fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(), vec!["slots", "count"]);
        assert!(w.fields[0].ty_idents.contains(&"Vec".to_string()));
    }

    #[test]
    fn static_mut_and_macro_calls() {
        let f = parse(
            "pub static mut TICKS: u64 = 0;\nthread_local! { static S: u64 = 0; }\nstatic OK: u64 = 1;",
        );
        let t = f.items.iter().find(|i| i.name == "TICKS").unwrap();
        assert!(t.mutable && t.kind == ItemKind::Static);
        let m = f.items.iter().find(|i| i.kind == ItemKind::MacroCall).unwrap();
        assert_eq!(m.name, "thread_local");
        let ok = f.items.iter().find(|i| i.name == "OK").unwrap();
        assert!(!ok.mutable);
    }

    #[test]
    fn use_trees_resolve() {
        let f = parse("use rambda_des::{SimRng, SimTime as T};\nuse std::fmt;\nuse a::b::*;");
        let find = |local: &str| f.imports.iter().find(|i| i.local == local).map(|i| i.path.join("::"));
        assert_eq!(find("SimRng").as_deref(), Some("rambda_des::SimRng"));
        assert_eq!(find("T").as_deref(), Some("rambda_des::SimTime"));
        assert_eq!(find("fmt").as_deref(), Some("std::fmt"));
        assert_eq!(find("*").as_deref(), Some("a::b"));
        // use tokens are masked for the R6 caller scan.
        let sr = f.tokens.iter().position(|t| t.ident() == Some("SimRng")).unwrap();
        assert!(f.use_mask[sr]);
    }

    #[test]
    fn const_fn_is_a_fn_and_const_item_is_const() {
        let f =
            parse("pub const X: u8 = 0;\npub const fn f() -> u8 { 0 }\npub unsafe extern \"C\" fn g() {}");
        assert_eq!(f.items.iter().find(|i| i.name == "X").unwrap().kind, ItemKind::Const);
        assert_eq!(f.items.iter().find(|i| i.name == "f").unwrap().kind, ItemKind::Fn);
        assert_eq!(f.items.iter().find(|i| i.name == "g").unwrap().kind, ItemKind::Fn);
    }

    #[test]
    fn deprecated_attr_text_is_captured() {
        let f = parse("#[deprecated(note = \"use SimBuilder with Design::kvs\")]\npub fn run_old() {}");
        let i = &f.items[0];
        assert!(i.deprecated);
        assert!(i.attr_text.contains("use SimBuilder"));
    }

    #[test]
    fn braced_const_initializers_do_not_derail() {
        let f = parse("pub const P: Point = Point { x: 1, y: 2 };\npub fn after() {}");
        assert!(f.items.iter().any(|i| i.name == "after" && i.kind == ItemKind::Fn));
    }

    #[test]
    fn type_graph_reachability_reports_paths() {
        let a = parse(
            "pub struct Machine { pub mem: MemorySystem }\npub struct MemorySystem { pub dram: Dram }\npub struct Dram { pub cell: u64 }\npub struct Island { pub lonely: u64 }",
        );
        let g = TypeGraph::build(&[a]);
        let reach = g.reachable(&["Machine".to_string()]);
        assert!(reach.contains_key("Dram"), "{reach:?}");
        assert_eq!(reach["Dram"], "Machine .mem -> MemorySystem .dram -> Dram");
        assert!(!reach.contains_key("Island"));
    }

    #[test]
    fn enum_variant_payloads_are_edges() {
        let f = parse("pub enum Ev { Fire(Payload), Idle }\npub struct Payload { pub x: u64 }");
        let g = TypeGraph::build(&[f]);
        let reach = g.reachable(&["Ev".to_string()]);
        assert!(reach.contains_key("Payload"));
    }

    #[test]
    fn fn_bodies_are_spanned() {
        let f = parse("fn outer() { inner(); }\nfn inner() {}");
        let outer = f.items.iter().find(|i| i.name == "outer").unwrap();
        let (b0, b1) = outer.body.unwrap();
        let body_idents = ident_texts(&f.tokens[b0..=b1]);
        assert_eq!(body_idents, vec!["inner"]);
    }
}
