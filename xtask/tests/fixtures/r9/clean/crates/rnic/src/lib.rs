//! Clean fixture for rule R9: every counter published here is mentioned by
//! a validate_* identity in the metrics fixture. Never compiled — scanned
//! by xtask/tests.

#![forbid(unsafe_code)]

pub fn publish_metrics(m: &mut MetricSet, prefix: &str) {
    m.set(&format!("{prefix}.doorbells"), 7);
    m.set(&format!("{prefix}.wqes"), 9);
    m.set(&format!("{prefix}.cqes"), 9);
}
